//! Umbrella crate re-exporting the bionic-dbms workspace crates.
pub use bionic_btree as btree;
pub use bionic_core as core;
pub use bionic_overlay as overlay;
pub use bionic_queue as queue;
pub use bionic_scan as scan;
pub use bionic_sim as sim;
pub use bionic_storage as storage;
pub use bionic_telemetry as telemetry;
pub use bionic_wal as wal;
pub use bionic_workloads as workloads;
