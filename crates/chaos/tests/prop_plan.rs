//! Round-trip property test for the one-line `chaosplan v1` serialization.
//!
//! The serialized plan is the *only* artifact a failing torture run leaves
//! behind, so parse(serialize(p)) == p must hold for every normalized plan
//! across every fault family — crash fuse, torn tails, bit flips, page
//! flushes, checkpoints, and the hardware-unit rate knobs.

use bionic_chaos::FaultPlan;
use bionic_workloads::WorkloadKind;
use proptest::prelude::*;

// An arbitrary plan touching every field, including values normalize()
// must repair (over-saturated rates, zero flip masks, incoherent
// page-flush + log-corruption combinations).
fn plan() -> impl Strategy<Value = FaultPlan> {
    let shape = (any::<u64>(), any::<bool>(), 0u32..400, 0u32..12, 0u32..64);
    let crash = (
        any::<bool>(),
        0u64..2_000,
        any::<bool>(),
        0u32..32,
        0u32..4_096,
    );
    let hw = (
        prop::collection::vec((0u64..1_048_576, 0u32..256), 0..4),
        0u32..12_000,
        0u32..12_000,
        0u32..12_000,
    );
    let net = (0u32..12_000, 0u32..12_000, 0u32..12_000, 0u32..12_000);
    (shape, crash, hw, net).prop_map(
        |(
            (seed, tpcc, txns, group, checkpoint_every),
            (has_crash, crash_n, flush_log_tail, flush_pool_pages, torn_tail_bytes),
            (flips, hw_stall, hw_transient, hw_ecc),
            (net_drop, net_dup, net_delay, net_part),
        )| FaultPlan {
            seed,
            workload: if tpcc {
                WorkloadKind::Tpcc
            } else {
                WorkloadKind::Tatp
            },
            txns,
            group,
            crash_after_appends: has_crash.then_some(crash_n),
            flush_log_tail,
            flush_pool_pages,
            torn_tail_bytes,
            bit_flips: flips.into_iter().map(|(o, m)| (o, m as u8)).collect(),
            checkpoint_every,
            hw_stall,
            hw_transient,
            hw_ecc,
            net_drop,
            net_dup,
            net_delay,
            net_part,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_normalized_plan_round_trips(raw in plan()) {
        let mut plan = raw;
        plan.normalize();
        let line = plan.serialize();
        // One line, no tabs: the artifact must survive a plan file.
        prop_assert!(!line.contains('\n') && !line.contains('\t'), "{}", line);
        prop_assert_eq!(FaultPlan::parse(&line), Some(plan), "{}", line);
    }

    #[test]
    fn parse_is_normalizing(raw in plan()) {
        // Even an un-normalized plan's line parses back to a coherent
        // plan: parse() runs normalize(), so a hand-edited plan file can
        // never smuggle in a physically-incoherent schedule.
        let line = raw.serialize();
        if let Some(parsed) = FaultPlan::parse(&line) {
            let mut renorm = parsed.clone();
            renorm.normalize();
            prop_assert_eq!(parsed, renorm);
        }
    }
}
