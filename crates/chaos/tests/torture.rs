//! The fixed-seed crash-torture matrix: 64 seeded fault schedules across
//! TATP and TPC-C (even seeds TATP, odd TPC-C), split into four tests so
//! the harness runs them in parallel. Every schedule must satisfy the full
//! differential oracle — committed durability, in-flight undo, and
//! secondary-index consistency — and rerunning any seed must be
//! byte-identical.

use bionic_chaos::{run_plan, run_plan_catching, run_plan_forced_degraded_catching, FaultPlan};

fn run_seed_range(range: std::ops::Range<u64>) {
    let mut failures = Vec::new();
    for seed in range {
        let plan = FaultPlan::from_seed(seed);
        if let Err(msg) = run_plan_catching(&plan) {
            failures.push(format!("seed {seed}: {msg}\n  plan: {}", plan.serialize()));
        }
    }
    assert!(
        failures.is_empty(),
        "{} oracle violations:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn torture_seeds_00_to_15() {
    run_seed_range(0..16);
}

#[test]
fn torture_seeds_16_to_31() {
    run_seed_range(16..32);
}

#[test]
fn torture_seeds_32_to_47() {
    run_seed_range(32..48);
}

#[test]
fn torture_seeds_48_to_63() {
    run_seed_range(48..64);
}

#[test]
fn forced_fallback_matrix_survives_every_seed() {
    // Every seed reruns with all five hardware units saturated: each
    // offloaded op goes timeout → retry → software fallback, the breakers
    // quarantine the units, and the full differential oracle must still
    // hold — fallback is a pricing decision and can never change committed
    // results. Units are asserted in aggregate because a plan whose crash
    // fuse blows on the first append may legitimately never reach, say,
    // the overlay; across 64 seeds every OLTP op class must fall back.
    // (The scanner unit idles here — torture workloads run no scans; it is
    // covered by the hybrid workload tests and experiment E14.)
    let mut failures = Vec::new();
    let mut unit_fallbacks = [0u64; 5];
    for seed in 0..64u64 {
        let plan = FaultPlan::from_seed(seed);
        match run_plan_forced_degraded_catching(&plan) {
            Ok(report) => {
                for (total, n) in unit_fallbacks.iter_mut().zip(report.hw_fallbacks) {
                    *total += n;
                }
                if report.hw_fallbacks.iter().take(4).sum::<u64>() == 0 {
                    failures.push(format!(
                        "seed {seed}: saturated units yet nothing fell back"
                    ));
                }
            }
            Err(msg) => {
                failures.push(format!("seed {seed}: {msg}\n  plan: {}", plan.serialize()));
            }
        }
    }
    for (unit, &total) in ["tree-probe", "log-insert", "queue", "overlay"]
        .iter()
        .zip(&unit_fallbacks)
    {
        assert!(total > 0, "unit {unit} never exercised its fallback path");
    }
    assert!(
        failures.is_empty(),
        "{} oracle violations under forced degradation:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn reruns_are_byte_identical() {
    // A seed from each workload family; the whole report (digests
    // included) must match across independent runs.
    for seed in [6, 9] {
        let plan = FaultPlan::from_seed(seed);
        let a = run_plan(&plan).expect("oracle holds");
        let b = run_plan(&plan).expect("oracle holds");
        assert_eq!(a, b, "seed {seed} must reproduce byte-identically");
    }
}

#[test]
fn serialized_plans_reproduce_the_run() {
    // The repro path the `chaos` binary prints: serialize → parse → rerun.
    for seed in [3, 12] {
        let plan = FaultPlan::from_seed(seed);
        let reparsed = FaultPlan::parse(&plan.serialize()).expect("round trip");
        let a = run_plan(&plan).expect("oracle holds");
        let b = run_plan(&reparsed).expect("oracle holds");
        assert_eq!(a, b, "seed {seed}: serialized plan must replay identically");
    }
}
