//! The differential oracle's reference model: a plain in-memory database
//! that replays transaction programs with exactly the engine's semantics —
//! same abort reasons, same first-failure ordering, same secondary-index
//! maintenance — but none of its machinery (no WAL, no buffer pool, no
//! recovery). After a crash, replaying only the durably-committed programs
//! through a pristine model must produce the exact table and secondary
//! contents the recovered engine exposes.

use bionic_core::ops::{Op, TxnProgram};
use bionic_core::table::make_record;
use bionic_core::AbortReason;
use std::collections::BTreeMap;

/// One mirrored table: full record images by primary key, plus the
/// secondary mapping when the table has one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefTable {
    /// Table name (diagnostics only).
    pub name: String,
    /// Byte offset of the secondary i64 field in the record image.
    pub secondary_offset: Option<usize>,
    /// `primary key → full record image` (the `key || body` layout).
    pub rows: BTreeMap<i64, Vec<u8>>,
    /// `secondary key → primary key`.
    pub secondary: BTreeMap<i64, i64>,
}

impl RefTable {
    fn secondary_key(&self, record: &[u8]) -> Option<i64> {
        self.secondary_offset
            .map(|off| i64::from_le_bytes(record[off..off + 8].try_into().expect("field fits")))
    }
}

/// Undo journal entry for one mirrored mutation (replayed in reverse on
/// abort, mirroring the engine's WAL-undo + index compensations).
enum Undo {
    RowRestore {
        table: u32,
        key: i64,
        before: Option<Vec<u8>>,
    },
    SecondaryReinsert {
        table: u32,
        skey: i64,
        pkey: i64,
    },
    SecondaryRemove {
        table: u32,
        skey: i64,
    },
}

/// The reference database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefDb {
    /// Tables in engine id order.
    pub tables: Vec<RefTable>,
}

impl RefDb {
    /// Snapshot a reference model from a live engine (used right after the
    /// load phase, before any measured transaction runs).
    pub fn snapshot(engine: &mut bionic_core::Engine) -> RefDb {
        let mut tables = Vec::with_capacity(engine.table_count());
        for t in 0..engine.table_count() as u32 {
            tables.push(RefTable {
                name: engine.table_name(t).to_string(),
                secondary_offset: engine.secondary_offset(t),
                rows: engine.scan_table(t).into_iter().collect(),
                secondary: engine.scan_secondary(t).into_iter().collect(),
            });
        }
        RefDb { tables }
    }

    /// Replay one program with the engine's exact decision semantics:
    /// `Ok(())` iff the engine would commit it, `Err(reason)` with the
    /// engine's first-failure abort reason otherwise. On abort the model is
    /// left untouched (the journal is unwound), mirroring rollback.
    pub fn replay(&mut self, program: &TxnProgram) -> Result<(), AbortReason> {
        let mut journal: Vec<Undo> = Vec::new();
        for phase in &program.phases {
            for action in phase {
                for op in &action.ops {
                    if let Err(reason) =
                        self.apply_op(op, program.abort_on_missing_read, &mut journal)
                    {
                        self.unwind(journal);
                        return Err(reason);
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_op(
        &mut self,
        op: &Op,
        abort_on_missing_read: bool,
        journal: &mut Vec<Undo>,
    ) -> Result<(), AbortReason> {
        match op {
            Op::Compute { .. } | Op::ReadRange { .. } => Ok(()),
            Op::Read { table, key } => {
                if !self.tables[*table as usize].rows.contains_key(key) && abort_on_missing_read {
                    return Err(AbortReason::MissingKey);
                }
                Ok(())
            }
            Op::SecondaryRead { table, skey } => {
                if !self.tables[*table as usize].secondary.contains_key(skey)
                    && abort_on_missing_read
                {
                    return Err(AbortReason::MissingKey);
                }
                Ok(())
            }
            Op::Update { table, key, patch } => {
                let t = &mut self.tables[*table as usize];
                let Some(before) = t.rows.get(key).cloned() else {
                    return Err(AbortReason::MissingKey);
                };
                let mut after = before.clone();
                if patch.apply(&mut after).is_err() {
                    return Err(AbortReason::PatchFailed);
                }
                t.rows.insert(*key, after.clone());
                journal.push(Undo::RowRestore {
                    table: *table,
                    key: *key,
                    before: Some(before.clone()),
                });
                self.maintain_secondary(*table, *key, Some(&before), Some(&after), journal);
                Ok(())
            }
            Op::Insert { table, key, record } => {
                let t = &mut self.tables[*table as usize];
                if t.rows.contains_key(key) {
                    return Err(AbortReason::DuplicateKey);
                }
                let full = make_record(*key, record);
                t.rows.insert(*key, full.clone());
                journal.push(Undo::RowRestore {
                    table: *table,
                    key: *key,
                    before: None,
                });
                self.maintain_secondary(*table, *key, None, Some(&full), journal);
                Ok(())
            }
            Op::Delete { table, key } => {
                let t = &mut self.tables[*table as usize];
                let Some(before) = t.rows.remove(key) else {
                    return Err(AbortReason::MissingKey);
                };
                journal.push(Undo::RowRestore {
                    table: *table,
                    key: *key,
                    before: Some(before.clone()),
                });
                self.maintain_secondary(*table, *key, Some(&before), None, journal);
                Ok(())
            }
        }
    }

    /// Mirror of the engine's `maintain_secondary`: only acts when the
    /// secondary field actually changes; removal/insertion order and the
    /// insert-replaces semantics of the B+tree are preserved.
    fn maintain_secondary(
        &mut self,
        table: u32,
        key: i64,
        before: Option<&[u8]>,
        after: Option<&[u8]>,
        journal: &mut Vec<Undo>,
    ) {
        let t = &mut self.tables[table as usize];
        if t.secondary_offset.is_none() {
            return;
        }
        let old_skey = before.and_then(|r| t.secondary_key(r));
        let new_skey = after.and_then(|r| t.secondary_key(r));
        if old_skey == new_skey {
            return;
        }
        if let Some(skey) = old_skey {
            t.secondary.remove(&skey);
            journal.push(Undo::SecondaryReinsert {
                table,
                skey,
                pkey: key,
            });
        }
        if let Some(skey) = new_skey {
            t.secondary.insert(skey, key);
            journal.push(Undo::SecondaryRemove { table, skey });
        }
    }

    fn unwind(&mut self, journal: Vec<Undo>) {
        for entry in journal.into_iter().rev() {
            match entry {
                Undo::RowRestore { table, key, before } => {
                    let t = &mut self.tables[table as usize];
                    match before {
                        Some(rec) => t.rows.insert(key, rec),
                        None => t.rows.remove(&key),
                    };
                }
                Undo::SecondaryReinsert { table, skey, pkey } => {
                    self.tables[table as usize].secondary.insert(skey, pkey);
                }
                Undo::SecondaryRemove { table, skey } => {
                    self.tables[table as usize].secondary.remove(&skey);
                }
            }
        }
    }

    /// Order-independent state digest (FNV-1a over every table's sorted
    /// rows and secondary pairs): two runs of the same plan must produce
    /// identical digests — the byte-identical-repro check.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for t in &self.tables {
            eat(t.name.as_bytes());
            for (k, rec) in &t.rows {
                eat(&k.to_le_bytes());
                eat(rec);
            }
            for (sk, pk) in &t.secondary {
                eat(&sk.to_le_bytes());
                eat(&pk.to_le_bytes());
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_core::ops::{Action, Patch};

    fn db() -> RefDb {
        let mut rows = BTreeMap::new();
        rows.insert(1, make_record(1, &[10u8; 16]));
        rows.insert(2, make_record(2, &[20u8; 16]));
        let secondary = rows
            .iter()
            .map(|(k, r)| (i64::from_le_bytes(r[8..16].try_into().unwrap()), *k))
            .collect();
        RefDb {
            tables: vec![RefTable {
                name: "T".into(),
                secondary_offset: Some(8),
                rows,
                secondary,
            }],
        }
    }

    fn prog(ops: Vec<Op>, abort_on_missing_read: bool) -> TxnProgram {
        TxnProgram {
            name: "test",
            phases: vec![vec![Action::new(0, 0, ops)]],
            abort_on_missing_read,
        }
    }

    #[test]
    fn abort_unwinds_every_effect_including_secondary() {
        let mut d = db();
        let before = d.clone();
        // Insert a row (with a secondary entry), then hit a duplicate.
        let p = prog(
            vec![
                Op::Insert {
                    table: 0,
                    key: 3,
                    record: vec![30u8; 16],
                },
                Op::Update {
                    table: 0,
                    key: 1,
                    patch: Patch::Splice {
                        offset: 8,
                        bytes: vec![9; 8],
                    },
                },
                Op::Insert {
                    table: 0,
                    key: 2,
                    record: vec![0u8; 4],
                },
            ],
            true,
        );
        assert_eq!(d.replay(&p), Err(AbortReason::DuplicateKey));
        assert_eq!(d, before, "abort must leave no trace");
    }

    #[test]
    fn commit_applies_and_digest_tracks_state() {
        let mut d = db();
        let d0 = d.digest();
        let p = prog(vec![Op::Delete { table: 0, key: 2 }], true);
        assert_eq!(d.replay(&p), Ok(()));
        assert!(!d.tables[0].rows.contains_key(&2));
        assert_eq!(d.tables[0].secondary.len(), 1, "secondary entry removed");
        assert_ne!(d.digest(), d0);
    }

    #[test]
    fn missing_read_aborts_only_when_the_program_says_so() {
        let mut d = db();
        let strict = prog(vec![Op::Read { table: 0, key: 99 }], true);
        let lax = prog(vec![Op::Read { table: 0, key: 99 }], false);
        assert_eq!(d.replay(&strict), Err(AbortReason::MissingKey));
        assert_eq!(d.replay(&lax), Ok(()));
    }

    #[test]
    fn patch_out_of_bounds_mirrors_the_engine() {
        let mut d = db();
        let p = prog(
            vec![Op::Update {
                table: 0,
                key: 1,
                patch: Patch::Splice {
                    offset: 1000,
                    bytes: vec![1],
                },
            }],
            true,
        );
        assert_eq!(d.replay(&p), Err(AbortReason::PatchFailed));
    }
}
