//! Deterministic fault-injection and crash-torture framework with a
//! differential recovery oracle.
//!
//! The bionic DBMS argues for pushing database function into specialized
//! hardware; the one thing that must *never* regress while the engine is
//! rearranged around accelerators is recovery correctness. This crate
//! turns recovery testing into a seeded, reproducible search problem:
//!
//! * [`plan::FaultPlan`] — a one-line-serializable schedule of everything
//!   a torture run does: workload, batch shape, where the crash fuse
//!   blows, which post-crash corruptions hit the log, which dirty pages a
//!   background writer managed to write back.
//! * [`refmodel::RefDb`] — the differential oracle's reference model: an
//!   in-memory mirror with the engine's exact commit/abort semantics.
//! * [`harness::run_plan`] — drive the plan, crash, corrupt, recover, and
//!   check committed-durability, in-flight undo, and secondary-index
//!   consistency against the model. Plans may also arm the hardware-unit
//!   fault families (stall / transient CRC / SG-DRAM ECC rates), running
//!   the bionic configuration with the degraded-mode layer live;
//!   [`harness::run_plan_forced_degraded`] saturates every unit so each
//!   offloaded op class exercises its timeout → retry → software-fallback
//!   cycle under the same oracle.
//! * [`shrink::shrink`] — greedily minimize a failing plan to a one-line
//!   repro.
//!
//! The `chaos` binary runs long randomized seed sweeps; the torture test
//! suite (`tests/torture.rs`) pins a fixed 64-seed matrix in CI.

#![deny(missing_docs)]

pub mod harness;
pub mod plan;
pub mod refmodel;
pub mod shrink;

pub use harness::{
    fnv64, run_plan, run_plan_catching, run_plan_forced_degraded,
    run_plan_forced_degraded_catching, run_plan_forced_degraded_traced, run_plan_traced, RunReport,
    TortureTelemetry,
};
pub use plan::{FaultPlan, NumericField};
pub use refmodel::{RefDb, RefTable};
pub use shrink::shrink;
