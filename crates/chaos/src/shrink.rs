//! Greedy fault-plan shrinking: given a failing plan and a predicate that
//! re-runs it, strip the plan down to a minimal schedule that still fails.
//!
//! Because a [`FaultPlan`] is small and every field is independent-ish, a
//! round of greedy simplification passes run to fixpoint gets within one or
//! two knobs of minimal in practice — and every candidate is normalized
//! first, so the shrinker can never wander into physically-incoherent
//! territory that the harness would misjudge.

use crate::plan::FaultPlan;

/// Shrink `plan` against `still_fails` (returns `true` while the candidate
/// still reproduces the failure). The input plan must itself fail; the
/// result is the smallest plan found, which is guaranteed to still fail.
pub fn shrink<F: FnMut(&FaultPlan) -> bool>(plan: &FaultPlan, mut still_fails: F) -> FaultPlan {
    let mut best = plan.clone();
    best.normalize();
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if candidate != best && still_fails(&candidate) {
                best = candidate;
                improved = true;
                break; // restart the pass list from the simplest edits
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Candidate simplifications, cheapest/most-aggressive first. Each is
/// normalized so coherence holds no matter which field was touched.
///
/// Structured fields (the flip list, the crash fuse, the flush-tail flag)
/// get bespoke passes below; every *numeric* knob — including any fault
/// family added later — shrinks through the generic
/// [`FaultPlan::SHRINK_FIELDS`] table, so this file does not change when a
/// new family lands.
fn candidates(base: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();
    let mut push = |mut p: FaultPlan| {
        p.normalize();
        out.push(p);
    };

    // Drop the structured fault dimensions first.
    if !base.bit_flips.is_empty() {
        push(FaultPlan {
            bit_flips: Vec::new(),
            ..base.clone()
        });
        for i in 0..base.bit_flips.len() {
            let mut flips = base.bit_flips.clone();
            flips.remove(i);
            push(FaultPlan {
                bit_flips: flips,
                ..base.clone()
            });
        }
    }
    if base.flush_log_tail && base.flush_pool_pages == 0 {
        push(FaultPlan {
            flush_log_tail: false,
            ..base.clone()
        });
    }
    if let Some(n) = base.crash_after_appends {
        push(FaultPlan {
            crash_after_appends: None,
            ..base.clone()
        });
        if n > 1 {
            push(FaultPlan {
                crash_after_appends: Some(n / 2),
                ..base.clone()
            });
        }
    }
    // Every numeric knob: try its floor, the midpoint toward the floor,
    // and one step down. The table orders fault knobs before stream shape.
    for field in FaultPlan::SHRINK_FIELDS {
        let v = (field.get)(base);
        if v <= field.floor {
            continue;
        }
        let mut vals = vec![field.floor, field.floor + (v - field.floor) / 2, v - 1];
        vals.dedup();
        for val in vals {
            if val < v {
                let mut p = base.clone();
                (field.set)(&mut p, val);
                push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_minimal_failing_core() {
        // Synthetic bug: "fails whenever torn_tail_bytes >= 10 and
        // txns >= 5" — everything else is noise the shrinker must remove.
        let mut noisy = FaultPlan::from_seed(2);
        noisy.torn_tail_bytes = 170;
        noisy.txns = 120;
        noisy.group = 7;
        noisy.checkpoint_every = 25;
        noisy.crash_after_appends = Some(500);
        noisy.flush_pool_pages = 0;
        noisy.bit_flips = vec![(5, 1), (7, 2)];
        noisy.flush_log_tail = true;
        noisy.normalize();
        let fails = |p: &FaultPlan| p.torn_tail_bytes >= 10 && p.txns >= 5;
        assert!(fails(&noisy));
        let min = shrink(&noisy, fails);
        assert!(fails(&min), "the shrunk plan must still fail");
        assert_eq!(min.checkpoint_every, 0);
        assert!(min.bit_flips.is_empty());
        assert_eq!(min.crash_after_appends, None);
        assert!(!min.flush_log_tail);
        assert_eq!(min.group, 1);
        assert!(min.torn_tail_bytes < 20, "halved to just above threshold");
        assert!(min.txns < 10, "halved to just above threshold");
    }

    #[test]
    fn hardware_rates_shrink_through_the_generic_table() {
        // The hardware families have no bespoke pass in candidates();
        // minimizing them must work purely via FaultPlan::SHRINK_FIELDS.
        let mut noisy = FaultPlan::from_seed(6);
        noisy.hw_stall = 3_000;
        noisy.hw_transient = 2_000;
        noisy.hw_ecc = 1_500;
        noisy.normalize();
        let fails = |p: &FaultPlan| p.hw_transient >= 100;
        assert!(fails(&noisy));
        let min = shrink(&noisy, fails);
        assert_eq!(min.hw_stall, 0, "irrelevant family stripped");
        assert_eq!(min.hw_ecc, 0, "irrelevant family stripped");
        assert_eq!(min.hw_transient, 100, "driven exactly to the threshold");
        assert_eq!(min.txns, 1);
    }

    #[test]
    fn already_minimal_plan_is_a_fixpoint() {
        let mut minimal = FaultPlan::from_seed(4);
        minimal.txns = 1;
        minimal.group = 1;
        minimal.checkpoint_every = 0;
        minimal.crash_after_appends = None;
        minimal.flush_log_tail = false;
        minimal.flush_pool_pages = 0;
        minimal.torn_tail_bytes = 0;
        minimal.bit_flips.clear();
        minimal.hw_stall = 0;
        minimal.hw_transient = 0;
        minimal.hw_ecc = 0;
        minimal.normalize();
        let shrunk = shrink(&minimal, |_| true);
        assert_eq!(shrunk, minimal);
    }
}
