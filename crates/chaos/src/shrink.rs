//! Greedy fault-plan shrinking: given a failing plan and a predicate that
//! re-runs it, strip the plan down to a minimal schedule that still fails.
//!
//! Because a [`FaultPlan`] is small and every field is independent-ish, a
//! round of greedy simplification passes run to fixpoint gets within one or
//! two knobs of minimal in practice — and every candidate is normalized
//! first, so the shrinker can never wander into physically-incoherent
//! territory that the harness would misjudge.

use crate::plan::FaultPlan;

/// Shrink `plan` against `still_fails` (returns `true` while the candidate
/// still reproduces the failure). The input plan must itself fail; the
/// result is the smallest plan found, which is guaranteed to still fail.
pub fn shrink<F: FnMut(&FaultPlan) -> bool>(plan: &FaultPlan, mut still_fails: F) -> FaultPlan {
    let mut best = plan.clone();
    best.normalize();
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if candidate != best && still_fails(&candidate) {
                best = candidate;
                improved = true;
                break; // restart the pass list from the simplest edits
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Candidate simplifications, cheapest/most-aggressive first. Each is
/// normalized so coherence holds no matter which field was touched.
fn candidates(base: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();
    let mut push = |mut p: FaultPlan| {
        p.normalize();
        out.push(p);
    };

    // Drop whole fault dimensions first.
    if base.checkpoint_every != 0 {
        push(FaultPlan {
            checkpoint_every: 0,
            ..base.clone()
        });
    }
    if !base.bit_flips.is_empty() {
        push(FaultPlan {
            bit_flips: Vec::new(),
            ..base.clone()
        });
        for i in 0..base.bit_flips.len() {
            let mut flips = base.bit_flips.clone();
            flips.remove(i);
            push(FaultPlan {
                bit_flips: flips,
                ..base.clone()
            });
        }
    }
    if base.torn_tail_bytes != 0 {
        push(FaultPlan {
            torn_tail_bytes: 0,
            ..base.clone()
        });
        push(FaultPlan {
            torn_tail_bytes: base.torn_tail_bytes / 2,
            ..base.clone()
        });
    }
    if base.flush_pool_pages != 0 {
        push(FaultPlan {
            flush_pool_pages: 0,
            ..base.clone()
        });
        push(FaultPlan {
            flush_pool_pages: base.flush_pool_pages / 2,
            ..base.clone()
        });
    }
    if base.flush_log_tail && base.flush_pool_pages == 0 {
        push(FaultPlan {
            flush_log_tail: false,
            ..base.clone()
        });
    }
    if let Some(n) = base.crash_after_appends {
        push(FaultPlan {
            crash_after_appends: None,
            ..base.clone()
        });
        if n > 1 {
            push(FaultPlan {
                crash_after_appends: Some(n / 2),
                ..base.clone()
            });
        }
    }
    // Then shrink the stream itself.
    if base.txns > 1 {
        push(FaultPlan {
            txns: base.txns / 2,
            ..base.clone()
        });
        push(FaultPlan {
            txns: base.txns - 1,
            ..base.clone()
        });
    }
    if base.group > 1 {
        push(FaultPlan {
            group: 1,
            ..base.clone()
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_minimal_failing_core() {
        // Synthetic bug: "fails whenever torn_tail_bytes >= 10 and
        // txns >= 5" — everything else is noise the shrinker must remove.
        let mut noisy = FaultPlan::from_seed(2);
        noisy.torn_tail_bytes = 170;
        noisy.txns = 120;
        noisy.group = 7;
        noisy.checkpoint_every = 25;
        noisy.crash_after_appends = Some(500);
        noisy.flush_pool_pages = 0;
        noisy.bit_flips = vec![(5, 1), (7, 2)];
        noisy.flush_log_tail = true;
        noisy.normalize();
        let fails = |p: &FaultPlan| p.torn_tail_bytes >= 10 && p.txns >= 5;
        assert!(fails(&noisy));
        let min = shrink(&noisy, fails);
        assert!(fails(&min), "the shrunk plan must still fail");
        assert_eq!(min.checkpoint_every, 0);
        assert!(min.bit_flips.is_empty());
        assert_eq!(min.crash_after_appends, None);
        assert!(!min.flush_log_tail);
        assert_eq!(min.group, 1);
        assert!(min.torn_tail_bytes < 20, "halved to just above threshold");
        assert!(min.txns < 10, "halved to just above threshold");
    }

    #[test]
    fn already_minimal_plan_is_a_fixpoint() {
        let mut minimal = FaultPlan::from_seed(4);
        minimal.txns = 1;
        minimal.group = 1;
        minimal.checkpoint_every = 0;
        minimal.crash_after_appends = None;
        minimal.flush_log_tail = false;
        minimal.flush_pool_pages = 0;
        minimal.torn_tail_bytes = 0;
        minimal.bit_flips.clear();
        minimal.normalize();
        let shrunk = shrink(&minimal, |_| true);
        assert_eq!(shrunk, minimal);
    }
}
