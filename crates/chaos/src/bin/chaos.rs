//! `chaos` — long-running randomized crash-torture driver.
//!
//! ```text
//! chaos [--seeds N] [--start-seed S] [--plan FILE] [--shrink] [--out DIR]
//!       [--force-degraded]
//! ```
//!
//! * `--seeds N` — run N consecutive seeds (default 64)
//! * `--start-seed S` — first seed of the sweep (default 0)
//! * `--plan FILE` — instead of a sweep, re-run serialized plans from FILE
//!   (one `chaosplan v1 ...` line each) — the byte-identical repro path
//! * `--shrink` — on failure, minimize the plan before reporting
//! * `--out DIR` — where failing plans are written (default `target/chaos`)
//! * `--force-degraded` — saturate every hardware unit so each offloaded
//!   op class goes timeout → retry → software fallback; the recovery
//!   oracle must hold all the same
//!
//! Exit status is 0 iff every run's oracle held.

use bionic_chaos::{
    run_plan_catching, run_plan_forced_degraded_catching, run_plan_forced_degraded_traced,
    run_plan_traced, shrink, FaultPlan, RunReport, TortureTelemetry,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    start_seed: u64,
    plan_file: Option<PathBuf>,
    do_shrink: bool,
    out_dir: PathBuf,
    force_degraded: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 64,
        start_seed: 0,
        plan_file: None,
        do_shrink: false,
        out_dir: PathBuf::from("target/chaos"),
        force_degraded: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--start-seed" => {
                args.start_seed = value("--start-seed")?.parse().map_err(|e| format!("{e}"))?
            }
            "--plan" => args.plan_file = Some(PathBuf::from(value("--plan")?)),
            "--shrink" => args.do_shrink = true,
            "--out" => args.out_dir = PathBuf::from(value("--out")?),
            "--force-degraded" => args.force_degraded = true,
            "--help" | "-h" => {
                println!(
                    "chaos [--seeds N] [--start-seed S] [--plan FILE] [--shrink] [--out DIR] \
                     [--force-degraded]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::from(2);
        }
    };

    let plans: Vec<FaultPlan> = match &args.plan_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("chaos: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let mut plans = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                match FaultPlan::parse(line) {
                    Some(p) => plans.push(p),
                    None => {
                        eprintln!(
                            "chaos: {}:{}: malformed plan line",
                            path.display(),
                            lineno + 1
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            plans
        }
        None => (args.start_seed..args.start_seed + args.seeds)
            .map(FaultPlan::from_seed)
            .collect(),
    };

    let run_catching: fn(&FaultPlan) -> Result<RunReport, String> = if args.force_degraded {
        run_plan_forced_degraded_catching
    } else {
        run_plan_catching
    };
    let run_traced: fn(&FaultPlan, &mut Option<TortureTelemetry>) -> Result<RunReport, String> =
        if args.force_degraded {
            run_plan_forced_degraded_traced
        } else {
            run_plan_traced
        };

    let mut failures = 0u32;
    for plan in &plans {
        match run_catching(plan) {
            Ok(report) => {
                println!(
                    "ok   seed={:<6} {:<4} txns={:<3} committed={:<3} durable={:<3} \
                     interrupted={} torn_skipped={:<3} fallbacks={:<4} state={:016x}",
                    plan.seed,
                    plan.workload.label(),
                    report.submitted,
                    report.committed,
                    report.durable_committed,
                    u8::from(report.interrupted),
                    report.torn_bytes_skipped,
                    report.hw_fallbacks.iter().sum::<u64>(),
                    report.state_digest,
                );
            }
            Err(msg) => {
                failures += 1;
                eprintln!("FAIL seed={} — {msg}", plan.seed);
                eprintln!("     plan: {}", plan.serialize());
                let reported = if args.do_shrink {
                    eprintln!("     shrinking...");
                    let min = shrink(plan, |candidate| run_catching(candidate).is_err());
                    eprintln!("     minimal repro: {}", min.serialize());
                    min
                } else {
                    plan.clone()
                };
                // Re-run the reported (shrunk) plan with telemetry on: the
                // counter snapshot goes to the console, the sim-time trace
                // of everything that ran before the crash goes next to the
                // plan file.
                let mut tel = None;
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_traced(&reported, &mut tel)
                }));
                if let Some(t) = &tel {
                    eprintln!("     {}", t.counter_line());
                }
                if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
                    eprintln!("chaos: cannot create {}: {e}", args.out_dir.display());
                } else {
                    let file = args.out_dir.join(format!("fail-seed-{}.plan", plan.seed));
                    let mut body = String::new();
                    body.push_str("# original failing plan\n");
                    body.push_str(&plan.serialize());
                    body.push('\n');
                    if args.do_shrink {
                        body.push_str("# shrunk minimal repro\n");
                        body.push_str(&reported.serialize());
                        body.push('\n');
                    }
                    if let Some(t) = &tel {
                        body.push_str(&format!("# {}\n", t.counter_line()));
                    }
                    if let Err(e) = std::fs::write(&file, body) {
                        eprintln!("chaos: cannot write {}: {e}", file.display());
                    } else {
                        eprintln!("     plan written to {}", file.display());
                        let forced = if args.force_degraded {
                            " --force-degraded"
                        } else {
                            ""
                        };
                        eprintln!(
                            "     reproduce with: cargo run -p bionic-chaos --bin chaos -- \
                             --plan {}{forced}",
                            file.display()
                        );
                    }
                    if let Some(t) = tel {
                        let trace_file = args
                            .out_dir
                            .join(format!("fail-seed-{}.trace.json", plan.seed));
                        match std::fs::write(&trace_file, &t.trace_json) {
                            Ok(()) => eprintln!(
                                "     pre-crash trace written to {} (open in Perfetto)",
                                trace_file.display()
                            ),
                            Err(e) => {
                                eprintln!("chaos: cannot write {}: {e}", trace_file.display())
                            }
                        }
                    }
                }
            }
        }
    }

    println!("chaos: {} plans, {} failures", plans.len(), failures);
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
