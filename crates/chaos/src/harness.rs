//! The crash-torture harness: run a [`FaultPlan`] end to end and check the
//! survived state against the differential oracle.
//!
//! One run is: load the workload, snapshot a pristine [`RefDb`], drive the
//! transaction stream through `submit_batch` with the crash fuse armed,
//! then crash — apply the plan's post-crash faults to the surviving log
//! image — restart, recover, and verify:
//!
//! 1. **Pre-crash differential**: every completed transaction's
//!    commit/abort decision (and abort reason) matches a replay through the
//!    reference model.
//! 2. **Durable-commit set**: scanning the faulted log image with the
//!    validating record iterator yields exactly the transactions recovery
//!    must preserve; checkpoint-covered commits are durable via the disk
//!    image even when the log no longer mentions them.
//! 3. **Committed durability + in-flight undo**: the recovered engine's
//!    tables equal a pristine reference model that replayed *only* the
//!    durably-committed programs, in order — so every durable commit
//!    survived and every in-flight or torn-commit transaction was fully
//!    undone.
//! 4. **Index consistency**: every recovered table passes the engine's own
//!    integrity check, and secondary indexes match the reference both ways.
//! 5. **Loser hygiene**: recovery's loser set is disjoint from the durable
//!    commits, and its winner set is exactly the log-scan commit set.
//!
//! Every step is deterministic from the plan, so the [`RunReport`] digests
//! are byte-identical across reruns — the property the torture suite
//! asserts and the shrinker relies on.

use crate::plan::FaultPlan;
use crate::refmodel::RefDb;
use bionic_core::config::EngineConfig;
use bionic_core::degrade::UNIT_COUNT;
use bionic_core::ops::TxnProgram;
use bionic_core::{Engine, TxnOutcome};
use bionic_sim::fault::{FaultRates, HwFaultConfig};
use bionic_sim::rng::SplitMix64;
use bionic_sim::time::SimTime;
use bionic_wal::manager::LogIter;
use bionic_wal::record::LogBody;
use bionic_wal::TxnId;
use bionic_workloads::AnyWorkload;
use std::collections::BTreeSet;

/// What a successful torture run reports (all fields deterministic from
/// the plan; reruns must match exactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The (normalized) plan that ran.
    pub plan: FaultPlan,
    /// Transactions the engine accepted before the crash.
    pub submitted: u64,
    /// ... of which committed.
    pub committed: u64,
    /// Committed transactions that wrote (only these leave a Commit record
    /// in the log and carry a durability obligation; read-only commits
    /// have no state to preserve).
    pub committed_writers: u64,
    /// ... of which aborted.
    pub aborted: u64,
    /// Did the crash fuse blow mid-transaction?
    pub interrupted: bool,
    /// Transactions the oracle holds durable after the faults.
    pub durable_committed: u64,
    /// Torn bytes recovery reported skipping off the log tail.
    pub torn_bytes_skipped: u64,
    /// FNV-1a digest of the faulted log image as recovery saw it.
    pub log_digest: u64,
    /// FNV-1a digest of the post-recovery database state.
    pub state_digest: u64,
    /// Per-hardware-unit software fallbacks taken before the crash, in
    /// telemetry unit order (tree-probe, log-insert, queue, overlay,
    /// scanner); all zero when the plan leaves the units healthy.
    pub hw_fallbacks: [u64; UNIT_COUNT],
    /// Total hardware retries across all units (the attempts that backed
    /// off and tried again before succeeding or falling back).
    pub hw_retries: u64,
}

/// Telemetry captured from a traced torture run, snapshotted at the crash
/// point (so it is available even when the oracle then fails — the whole
/// point of attaching a trace to a failing plan).
#[derive(Debug, Clone)]
pub struct TortureTelemetry {
    /// Transactions submitted before the crash.
    pub submitted: u64,
    /// ... committed.
    pub committed: u64,
    /// ... aborted.
    pub aborted: u64,
    /// ... left unresolved by the blown fuse.
    pub interrupted: u64,
    /// WAL bytes appended during the run.
    pub wal_bytes: u64,
    /// Torn bytes the traced engine's recovery-time scan dropped
    /// (non-zero only when the run replayed a faulted image at load).
    pub torn_bytes_dropped: u64,
    /// Chrome trace-event JSON of the pre-crash execution.
    pub trace_json: String,
    /// Flat counter/gauge snapshot.
    pub metrics_csv: String,
}

impl TortureTelemetry {
    /// The one-glance counter line the `chaos` binary prints next to a
    /// failing plan.
    pub fn counter_line(&self) -> String {
        format!(
            "txns: {} submitted, {} committed, {} aborted, {} interrupted; \
             wal_bytes={} torn_bytes_dropped={}",
            self.submitted,
            self.committed,
            self.aborted,
            self.interrupted,
            self.wal_bytes,
            self.torn_bytes_dropped,
        )
    }
}

/// Does this program contain any state-mutating op? Only writers append a
/// Commit record (the engine skips logging for read-only transactions), so
/// only writers enter the durable-commit oracle.
fn writes(program: &TxnProgram) -> bool {
    use bionic_core::ops::Op;
    program.phases.iter().flatten().any(|action| {
        action.ops.iter().any(|op| {
            matches!(
                op,
                Op::Update { .. } | Op::Insert { .. } | Op::Delete { .. }
            )
        })
    })
}

/// FNV-1a 64-bit over a byte slice (the repro-digest primitive).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run one plan; `Err` is an oracle violation (a recovery bug, or an
/// engine/model divergence), with enough context to debug from.
pub fn run_plan(plan: &FaultPlan) -> Result<RunReport, String> {
    run_plan_impl(plan, None, false)
}

/// [`run_plan`] with the telemetry recorder on: `tel` receives a counter
/// snapshot plus the pre-crash Chrome trace, captured at the crash point so
/// it survives oracle failures. This is how a shrunk failing plan gets a
/// trace attached.
pub fn run_plan_traced(
    plan: &FaultPlan,
    tel: &mut Option<TortureTelemetry>,
) -> Result<RunReport, String> {
    run_plan_impl(plan, Some(tel), false)
}

/// [`run_plan`] with every hardware unit saturated regardless of the
/// plan's own rates ([`HwFaultConfig::saturated`]): every offloaded op
/// class goes through timeout → retry → software fallback, the circuit
/// breakers quarantine the units, and the full differential oracle must
/// still hold — fallback is a pricing decision, never a functional one.
pub fn run_plan_forced_degraded(plan: &FaultPlan) -> Result<RunReport, String> {
    run_plan_impl(plan, None, true)
}

/// [`run_plan_forced_degraded`] with the telemetry recorder on (see
/// [`run_plan_traced`]).
pub fn run_plan_forced_degraded_traced(
    plan: &FaultPlan,
    tel: &mut Option<TortureTelemetry>,
) -> Result<RunReport, String> {
    run_plan_impl(plan, Some(tel), true)
}

fn run_plan_impl(
    plan: &FaultPlan,
    tel_out: Option<&mut Option<TortureTelemetry>>,
    force_degraded: bool,
) -> Result<RunReport, String> {
    let mut plan = plan.clone();
    plan.normalize();

    // Healthy-unit plans run the plain software configuration — exactly
    // the pre-hardware-fault harness. Armed (or forced) plans run the full
    // bionic configuration so every offload path is in play, with the
    // degraded-mode layer wired to the plan's rates. Offloads and their
    // fallbacks are pricing-only, so every functional oracle below is
    // config-independent.
    let rates = FaultRates {
        stall_bp: plan.hw_stall,
        transient_bp: plan.hw_transient,
        ecc_bp: plan.hw_ecc,
    };
    let cfg = if force_degraded || !rates.is_zero() {
        let hw = if force_degraded {
            HwFaultConfig::saturated()
        } else {
            HwFaultConfig::from_rates(rates)
        };
        EngineConfig::bionic()
            .with_agents(8)
            .with_seed(plan.seed)
            .with_hw_faults(hw)
    } else {
        EngineConfig::software().with_agents(8).with_seed(plan.seed)
    };
    let mut engine = Engine::new(cfg.clone());
    let workload_seed = SplitMix64::new(plan.seed ^ 0x5EED_F00D_0000_0001).next_u64();
    let mut workload = AnyWorkload::load_small(&mut engine, plan.workload, workload_seed);
    if tel_out.is_some() {
        engine.enable_telemetry(1 << 18);
    }
    let baseline = RefDb::snapshot(&mut engine);

    if let Some(appends) = plan.crash_after_appends {
        engine.crash_at(appends);
    }

    // ---- drive the stream in submit_batch groups ------------------------
    let mut recorded: Vec<(TxnId, TxnProgram, TxnOutcome)> = Vec::new();
    let mut ckpt_watermark: TxnId = engine.next_txn_id();
    let inter = SimTime::from_us(5.0);
    let mut at = SimTime::ZERO;
    let mut submitted = 0u32;
    let mut since_ckpt = 0u32;
    while submitted < plan.txns {
        let n = plan.group.min(plan.txns - submitted) as usize;
        let programs: Vec<TxnProgram> = (0..n).map(|_| workload.next_program().1).collect();
        let id0 = engine.next_txn_id();
        let outcomes = engine.submit_batch(&programs, at, inter);
        at = at + inter * n as u64 + SimTime::from_us(50.0);
        for (i, outcome) in outcomes.iter().enumerate() {
            recorded.push((id0 + i as TxnId, programs[i].clone(), *outcome));
        }
        submitted += n as u32;
        if engine.fuse_blown() {
            break;
        }
        since_ckpt += n as u32;
        if plan.checkpoint_every > 0 && since_ckpt >= plan.checkpoint_every {
            since_ckpt = 0;
            engine.checkpoint(at);
            // Everything committed so far is now durable via the disk
            // image, independent of what later befalls the log.
            ckpt_watermark = engine.next_txn_id();
        }
    }
    let interrupted = engine.fuse_blown();

    // Snapshot the degraded-mode layer before the crash consumes the
    // engine: the report carries how often each unit fell back to software
    // (all zero on the healthy software configuration).
    let mut hw_fallbacks = [0u64; UNIT_COUNT];
    let mut hw_retries = 0u64;
    if let Some(report) = engine.fault_report() {
        for (i, unit) in report.iter().enumerate() {
            hw_fallbacks[i] = unit.stats.fallbacks;
            hw_retries += unit.stats.retries;
        }
    }

    // Snapshot telemetry at the crash point, before any oracle can bail:
    // a failing plan's trace must cover everything that ran.
    if let Some(out) = tel_out {
        engine.collect_metrics();
        let m = engine.tel.metrics();
        let submitted = m.counter_value("engine", "submitted");
        let committed = m.counter_value("engine", "committed");
        let aborted = m.counter_value("engine", "aborted");
        *out = Some(TortureTelemetry {
            submitted,
            committed,
            aborted,
            interrupted: submitted - committed - aborted,
            wal_bytes: m.counter_value("wal", "tail_lsn"),
            torn_bytes_dropped: m.counter_value("wal", "torn_bytes_dropped"),
            trace_json: engine.tel.export_chrome_trace(),
            metrics_csv: m.to_csv(),
        });
    }

    // ---- oracle 1: pre-crash differential -------------------------------
    let mut model = baseline.clone();
    for (id, program, outcome) in &recorded {
        match outcome {
            TxnOutcome::Committed { .. } => {
                if let Err(reason) = model.replay(program) {
                    return Err(format!(
                        "txn {id} ({}) committed in the engine but the reference \
                         model aborts it with {reason:?}",
                        program.name
                    ));
                }
            }
            TxnOutcome::Aborted { reason, .. } => match model.replay(program) {
                Err(model_reason) if model_reason == *reason => {}
                Err(model_reason) => {
                    return Err(format!(
                        "txn {id} ({}) aborted with {reason:?} but the reference \
                         model says {model_reason:?}",
                        program.name
                    ));
                }
                Ok(()) => {
                    return Err(format!(
                        "txn {id} ({}) aborted with {reason:?} but the reference \
                         model commits it",
                        program.name
                    ));
                }
            },
            // The crash left this one unresolved; recovery decides below.
            TxnOutcome::Interrupted => {}
        }
    }
    let committed = recorded.iter().filter(|(_, _, o)| o.is_committed()).count() as u64;
    let aborted = recorded
        .iter()
        .filter(|(_, _, o)| matches!(o, TxnOutcome::Aborted { .. }))
        .count() as u64;
    if engine.stats.committed != committed || engine.stats.aborted != aborted {
        return Err(format!(
            "stats drift: engine says {}c/{}a, outcomes say {committed}c/{aborted}a",
            engine.stats.committed, engine.stats.aborted
        ));
    }

    // ---- crash + fault injection ----------------------------------------
    if plan.flush_pool_pages > 0 {
        // Write-ahead rule: the covering log must be stable before any
        // page write-back (normalize() guarantees no log faults here).
        engine.os_flush_log();
        engine.flush_pool_pages(plan.flush_pool_pages as usize);
    } else if plan.flush_log_tail {
        engine.os_flush_log();
    }
    let mut image = engine.crash();
    {
        let log = image.log_mut();
        let tear = (plan.torn_tail_bytes as usize).min(log.len());
        log.truncate(log.len() - tear);
        for &(offset, mask) in &plan.bit_flips {
            if !log.is_empty() {
                let i = (offset % log.len() as u64) as usize;
                log[i] ^= mask;
            }
        }
    }
    let faulted_log = image.log_bytes().to_vec();
    let log_digest = fnv64(&faulted_log);

    // ---- oracle 2: the durable-commit set -------------------------------
    // Exactly what recovery will see: walk the faulted image with the
    // validating iterator (stops at the first torn/corrupt record).
    let mut log_commits: BTreeSet<TxnId> = BTreeSet::new();
    for rec in LogIter::over(&faulted_log, 0) {
        if matches!(rec.body, LogBody::Commit) {
            log_commits.insert(rec.txn);
        }
    }
    for id in &log_commits {
        let known = recorded.iter().any(|(rid, _, o)| {
            rid == id && matches!(o, TxnOutcome::Committed { .. } | TxnOutcome::Interrupted)
        });
        if !known {
            return Err(format!(
                "log image has a Commit record for txn {id}, which the engine \
                 never reported committed or interrupted"
            ));
        }
    }
    let durable: Vec<(TxnId, &TxnProgram)> = recorded
        .iter()
        .filter(|(id, program, outcome)| match outcome {
            // Read-only commits leave no log trace and no state; writers
            // are durable if checkpoint-covered (disk image) or if their
            // Commit record survives in the log.
            TxnOutcome::Committed { .. } => {
                writes(program) && (*id < ckpt_watermark || log_commits.contains(id))
            }
            // Torn-commit window: the engine died before acking, but the
            // Commit record reached stable storage — recovery keeps it.
            TxnOutcome::Interrupted => log_commits.contains(id),
            TxnOutcome::Aborted { .. } => false,
        })
        .map(|(id, program, _)| (*id, program))
        .collect();

    // ---- restart + recover ----------------------------------------------
    let (mut engine2, recovery) = Engine::restart(image, cfg);

    // ---- oracle 5: winner/loser hygiene ---------------------------------
    let winners: BTreeSet<TxnId> = recovery.winners.iter().copied().collect();
    if winners != log_commits {
        return Err(format!(
            "recovery winners {winners:?} != log-scan commit set {log_commits:?}"
        ));
    }
    let durable_ids: BTreeSet<TxnId> = durable.iter().map(|(id, _)| *id).collect();
    for loser in &recovery.losers {
        if durable_ids.contains(loser) {
            return Err(format!(
                "txn {loser} is durably committed yet recovery undid it as a loser"
            ));
        }
    }

    // ---- oracle 3: replay the durable subset through a pristine model ---
    let mut model2 = baseline.clone();
    for (id, program) in &durable {
        if let Err(reason) = model2.replay(program) {
            return Err(format!(
                "durable txn {id} ({}) fails to replay in the reference model: \
                 {reason:?}",
                program.name
            ));
        }
    }

    // ---- oracle 3+4: recovered state == reference state -----------------
    for t in 0..engine2.table_count() as u32 {
        let name = engine2.table_name(t).to_string();
        engine2
            .verify_table_integrity(t)
            .map_err(|e| format!("post-recovery integrity: {e}"))?;
        let got = engine2.scan_table(t);
        let want: Vec<(i64, Vec<u8>)> = model2.tables[t as usize]
            .rows
            .iter()
            .map(|(k, r)| (*k, r.clone()))
            .collect();
        if got != want {
            let first_bad = got
                .iter()
                .zip(&want)
                .find(|(g, w)| g != w)
                .map(|(g, w)| format!("first divergence: got key {}, want key {}", g.0, w.0))
                .unwrap_or_else(|| "divergence at the tail".into());
            return Err(format!(
                "{name}: recovered {} rows, reference has {} — {first_bad}",
                got.len(),
                want.len()
            ));
        }
        if engine2.secondary_offset(t).is_some() {
            let got_sec = engine2.scan_secondary(t);
            let want_sec: Vec<(i64, i64)> = model2.tables[t as usize]
                .secondary
                .iter()
                .map(|(s, p)| (*s, *p))
                .collect();
            if got_sec != want_sec {
                return Err(format!(
                    "{name}: recovered secondary has {} entries, reference {}",
                    got_sec.len(),
                    want_sec.len()
                ));
            }
        }
    }

    let committed_writers = recorded
        .iter()
        .filter(|(_, program, o)| o.is_committed() && writes(program))
        .count() as u64;
    Ok(RunReport {
        submitted: recorded.len() as u64,
        committed,
        committed_writers,
        aborted,
        interrupted,
        durable_committed: durable.len() as u64,
        torn_bytes_skipped: recovery.torn_bytes_skipped,
        log_digest,
        state_digest: model2.digest(),
        hw_fallbacks,
        hw_retries,
        plan,
    })
}

/// [`run_plan`], but panics inside the engine (slotted-page assertions,
/// index invariants, ...) are caught and reported as failures too — a
/// crash-torture harness must treat "the engine died" as a finding, not as
/// a test-infrastructure error.
pub fn run_plan_catching(plan: &FaultPlan) -> Result<RunReport, String> {
    run_catching(plan, false)
}

/// [`run_plan_forced_degraded`] with panic catching (see
/// [`run_plan_catching`]).
pub fn run_plan_forced_degraded_catching(plan: &FaultPlan) -> Result<RunReport, String> {
    run_catching(plan, true)
}

fn run_catching(plan: &FaultPlan, force_degraded: bool) -> Result<RunReport, String> {
    let plan = plan.clone();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_plan_impl(&plan, None, force_degraded)
    })) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Err(format!("panic during torture run: {msg}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_workloads::WorkloadKind;

    fn quiet_plan(kind: WorkloadKind) -> FaultPlan {
        FaultPlan {
            seed: 11,
            workload: kind,
            txns: 30,
            group: 4,
            crash_after_appends: None,
            flush_log_tail: false,
            flush_pool_pages: 0,
            torn_tail_bytes: 0,
            bit_flips: Vec::new(),
            checkpoint_every: 0,
            hw_stall: 0,
            hw_transient: 0,
            hw_ecc: 0,
            net_drop: 0,
            net_dup: 0,
            net_delay: 0,
            net_part: 0,
        }
    }

    #[test]
    fn clean_shutdown_keeps_every_commit() {
        for kind in [WorkloadKind::Tatp, WorkloadKind::Tpcc] {
            let report = run_plan(&quiet_plan(kind)).expect("oracle holds");
            assert!(!report.interrupted);
            assert_eq!(report.submitted, 30);
            assert_eq!(
                report.durable_committed, report.committed_writers,
                "no faults: every writing commit is durable ({kind:?})"
            );
        }
    }

    #[test]
    fn mid_transaction_crash_is_detected_and_survived() {
        let plan = FaultPlan {
            crash_after_appends: Some(40),
            ..quiet_plan(WorkloadKind::Tpcc)
        };
        let report = run_plan(&plan).expect("oracle holds");
        assert!(report.interrupted, "40 appends land mid-stream");
        assert!(report.submitted < 30, "the batch loop stopped early");
    }

    #[test]
    fn torn_tail_loses_exactly_the_unflushed_suffix() {
        let plan = FaultPlan {
            torn_tail_bytes: 64,
            ..quiet_plan(WorkloadKind::Tatp)
        };
        let report = run_plan(&plan).expect("oracle holds");
        // Tearing 64 bytes lands mid-record; recovery must report skipping
        // the ragged remainder.
        assert!(report.durable_committed <= report.committed);
    }

    #[test]
    fn reports_are_rerun_identical() {
        let plan = FaultPlan::from_seed(5);
        let a = run_plan(&plan).expect("oracle holds");
        let b = run_plan(&plan).expect("oracle holds");
        assert_eq!(a, b, "byte-identical repro");
    }

    #[test]
    fn healthy_plan_reports_no_hardware_activity() {
        let report = run_plan(&quiet_plan(WorkloadKind::Tatp)).expect("oracle holds");
        assert_eq!(report.hw_fallbacks, [0; UNIT_COUNT]);
        assert_eq!(report.hw_retries, 0);
    }

    #[test]
    fn forced_degraded_run_falls_back_yet_commits_identically() {
        let plan = quiet_plan(WorkloadKind::Tatp);
        let healthy = run_plan(&plan).expect("oracle holds");
        let degraded = run_plan_forced_degraded(&plan).expect("oracle holds under saturation");
        // Pricing-only: the commit/abort stream and the recovered state
        // are byte-identical to the healthy run.
        assert_eq!(healthy.committed, degraded.committed);
        assert_eq!(healthy.aborted, degraded.aborted);
        assert_eq!(healthy.durable_committed, degraded.durable_committed);
        assert_eq!(healthy.state_digest, degraded.state_digest);
        // ...but the OLTP offloads really did exhaust retries and fall
        // back (the scanner unit idles: torture workloads run no scans).
        for (i, &n) in degraded.hw_fallbacks.iter().enumerate().take(4) {
            assert!(n > 0, "unit {i} never fell back");
        }
        assert!(degraded.hw_retries > 0);
    }

    #[test]
    fn armed_plan_rates_reach_the_degraded_layer() {
        let plan = FaultPlan {
            hw_transient: 2_500,
            ..quiet_plan(WorkloadKind::Tpcc)
        };
        let report = run_plan(&plan).expect("oracle holds");
        assert!(
            report.hw_retries > 0,
            "a 25%-per-attempt transient rate must trigger retries"
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_snapshots_counters() {
        let plan = FaultPlan {
            crash_after_appends: Some(40),
            ..quiet_plan(WorkloadKind::Tatp)
        };
        let plain = run_plan(&plan).expect("oracle holds");
        let mut tel = None;
        let traced = run_plan_traced(&plan, &mut tel).expect("oracle holds");
        // Tracing is pure observation: identical report, digests included.
        assert_eq!(plain, traced);
        let tel = tel.expect("telemetry captured");
        assert_eq!(tel.submitted, traced.submitted);
        assert_eq!(tel.committed, traced.committed);
        assert_eq!(tel.aborted, traced.aborted);
        assert!(tel.interrupted <= 1, "at most the fuse victim");
        assert!(tel.wal_bytes > 0);
        assert!(!tel.trace_json.is_empty());
        assert!(tel.metrics_csv.contains("engine,submitted,"));
        assert!(tel.counter_line().contains("submitted"));
    }
}
