//! Fault plans: the seeded, fully serializable schedule of one torture run.
//!
//! A [`FaultPlan`] pins down *everything* a crash-torture run does — the
//! workload, the transaction count, the batch grouping, where the crash
//! fuse blows, which post-crash corruptions hit the durable log, which
//! buffer-pool pages get written back — so a failing run reproduces
//! byte-identically from its one-line serialization.
//!
//! ## Physical coherence
//!
//! Not every knob combination is a fault a correct system can experience,
//! and [`FaultPlan::normalize`] enforces the coupling a real machine has:
//!
//! * Writing back dirty pages implies the covering log is stable first
//!   (the write-ahead rule), so `flush_pool_pages > 0` forces
//!   `flush_log_tail = true` and forbids tearing or flipping the log —
//!   losing acknowledged log bytes *under* surviving page writes would be
//!   media failure, which ARIES does not claim to survive.
//! * Torn tails and bit flips model the OS/device losing or garbling the
//!   unsynced suffix at crash time; they combine freely with checkpoints
//!   and with log-tail flushing, because pages carrying the affected
//!   transactions were never written back.

use bionic_sim::rng::SplitMix64;
use bionic_workloads::WorkloadKind;

/// One deterministic torture schedule. See the module docs for the
/// coherence rules between fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed: workload population, transaction stream, and every
    /// fault below derive from it.
    pub seed: u64,
    /// Which benchmark drives the run.
    pub workload: WorkloadKind,
    /// Transactions to submit (the crash fuse usually cuts the run short).
    pub txns: u32,
    /// Batch size handed to `submit_batch` (exercises the PALM path).
    pub group: u32,
    /// Blow the crash fuse after this many priced log appends
    /// ([`bionic_core::engine::Engine::crash_at`]); `None` crashes at
    /// quiescence, after the full stream ran.
    pub crash_after_appends: Option<u64>,
    /// Model the OS page cache pushing the buffered log tail to disk at
    /// crash time (the unsynced suffix survives).
    pub flush_log_tail: bool,
    /// Write back up to this many dirty buffer-pool pages before the crash
    /// (a background writer racing the failure).
    pub flush_pool_pages: u32,
    /// Tear this many bytes off the end of the surviving log image.
    pub torn_tail_bytes: u32,
    /// Bit flips applied to the surviving log image: `(offset, mask)`,
    /// offset taken modulo the image length, mask XORed in (never 0).
    pub bit_flips: Vec<(u64, u8)>,
    /// Take a sharp checkpoint every this many transactions (0 = never).
    pub checkpoint_every: u32,
    /// Per-attempt hardware-unit stall probability in basis points of 1%
    /// (a hang the watchdog must time out; see [`bionic_sim::fault`]).
    /// All three rates 0 leaves the degraded-mode layer unarmed and the
    /// run on the plain software configuration.
    pub hw_stall: u32,
    /// Per-attempt transient CRC-detected transfer-error probability (bp).
    pub hw_transient: u32,
    /// Per-attempt SG-DRAM uncorrectable-ECC word probability (bp).
    pub hw_ecc: u32,
    /// Per-message network drop probability in basis points (cluster runs;
    /// see `bionic-cluster`). All four network rates 0 leaves the network
    /// model unarmed: zero RNG draws, byte-identical single-engine runs.
    pub net_drop: u32,
    /// Per-message duplicate-delivery probability (bp).
    pub net_dup: u32,
    /// Per-message extra-delay probability (bp).
    pub net_delay: u32,
    /// Per-message link-partition probability (bp): the sending link goes
    /// down for a seeded interval, dropping everything queued across it.
    pub net_part: u32,
}

/// One shrinkable numeric knob on a [`FaultPlan`]. The shrinker walks
/// [`FaultPlan::SHRINK_FIELDS`] generically, so a new fault family gets
/// minimization by adding a row to that table — `shrink.rs` stays
/// untouched.
pub struct NumericField {
    /// Knob name (diagnostics only).
    pub name: &'static str,
    /// Shrinking stops at this value (1 for stream-shape knobs, else 0).
    pub floor: u64,
    /// Read the knob.
    pub get: fn(&FaultPlan) -> u64,
    /// Write the knob back; [`FaultPlan::normalize`] runs afterwards.
    pub set: fn(&mut FaultPlan, u64),
}

impl FaultPlan {
    /// The shrinkable numeric knobs, most-disposable first: fault-family
    /// knobs before stream shape, so a minimal repro keeps the workload
    /// intact until the faults themselves stop mattering.
    pub const SHRINK_FIELDS: &'static [NumericField] = &[
        NumericField {
            name: "ckpt",
            floor: 0,
            get: |p| p.checkpoint_every as u64,
            set: |p, v| p.checkpoint_every = v as u32,
        },
        NumericField {
            name: "torn",
            floor: 0,
            get: |p| p.torn_tail_bytes as u64,
            set: |p, v| p.torn_tail_bytes = v as u32,
        },
        NumericField {
            name: "flush_pages",
            floor: 0,
            get: |p| p.flush_pool_pages as u64,
            set: |p, v| p.flush_pool_pages = v as u32,
        },
        NumericField {
            name: "stall",
            floor: 0,
            get: |p| p.hw_stall as u64,
            set: |p, v| p.hw_stall = v as u32,
        },
        NumericField {
            name: "transient",
            floor: 0,
            get: |p| p.hw_transient as u64,
            set: |p, v| p.hw_transient = v as u32,
        },
        NumericField {
            name: "ecc",
            floor: 0,
            get: |p| p.hw_ecc as u64,
            set: |p, v| p.hw_ecc = v as u32,
        },
        NumericField {
            name: "net_drop",
            floor: 0,
            get: |p| p.net_drop as u64,
            set: |p, v| p.net_drop = v as u32,
        },
        NumericField {
            name: "net_dup",
            floor: 0,
            get: |p| p.net_dup as u64,
            set: |p, v| p.net_dup = v as u32,
        },
        NumericField {
            name: "net_delay",
            floor: 0,
            get: |p| p.net_delay as u64,
            set: |p, v| p.net_delay = v as u32,
        },
        NumericField {
            name: "net_part",
            floor: 0,
            get: |p| p.net_part as u64,
            set: |p, v| p.net_part = v as u32,
        },
        NumericField {
            name: "txns",
            floor: 1,
            get: |p| p.txns as u64,
            set: |p, v| p.txns = v as u32,
        },
        NumericField {
            name: "group",
            floor: 1,
            get: |p| p.group as u64,
            set: |p, v| p.group = v as u32,
        },
    ];

    /// Derive a plan from a seed. Even seeds run TATP, odd seeds TPC-C, so
    /// any contiguous seed range alternates workloads; everything else
    /// comes from split SplitMix64 substreams of the seed.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let workload = if seed.is_multiple_of(2) {
            WorkloadKind::Tatp
        } else {
            WorkloadKind::Tpcc
        };
        let mut shape = rng.split();
        let mut crash = rng.split();
        let mut faults = rng.split();
        // Split AFTER the original three so pre-hardware fields keep the
        // exact values they had before the hardware families existed.
        let mut hw = rng.split();

        let txns = 40 + shape.below(120) as u32;
        let group = 1 + shape.below(8) as u32;
        let checkpoint_every = if shape.chance(0.4) {
            10 + shape.below(40) as u32
        } else {
            0
        };
        let crash_after_appends = if crash.chance(0.85) {
            Some(1 + crash.below(600))
        } else {
            None
        };

        // Half the seeds leave the hardware units healthy; the rest arm
        // the degraded-mode layer, mostly at light per-attempt rates, with
        // an occasional near-saturated family so the fixed matrix also
        // exercises retry exhaustion and breaker quarantine.
        fn hw_rate(hw: &mut SplitMix64) -> u32 {
            if hw.chance(0.15) {
                4_000 + hw.below(6_000) as u32
            } else {
                hw.below(400) as u32
            }
        }
        let (hw_stall, hw_transient, hw_ecc) = if hw.chance(0.5) {
            (hw_rate(&mut hw), hw_rate(&mut hw), hw_rate(&mut hw))
        } else {
            (0, 0, 0)
        };

        let mut plan = FaultPlan {
            seed,
            workload,
            txns,
            group,
            crash_after_appends,
            flush_log_tail: false,
            flush_pool_pages: 0,
            torn_tail_bytes: 0,
            bit_flips: Vec::new(),
            checkpoint_every,
            hw_stall,
            hw_transient,
            hw_ecc,
            net_drop: 0,
            net_dup: 0,
            net_delay: 0,
            net_part: 0,
        };
        if faults.chance(0.4) {
            // Page-flush family: a background writer raced the crash.
            plan.flush_pool_pages = 1 + faults.below(16) as u32;
            plan.flush_log_tail = true;
        } else {
            // Log-corruption family: the unsynced tail is lost or garbled.
            plan.flush_log_tail = faults.chance(0.5);
            if faults.chance(0.7) {
                plan.torn_tail_bytes = faults.below(200) as u32;
            }
            for _ in 0..faults.below(3) {
                let offset = faults.below(1 << 20);
                let mask = (faults.below(255) + 1) as u8;
                plan.bit_flips.push((offset, mask));
            }
        }
        plan.normalize();
        plan
    }

    /// [`FaultPlan::from_seed`] plus seeded network-fault knobs, for
    /// cluster torture runs. The network rates come from a substream split
    /// *after* every single-engine stream, so a clustered plan's workload,
    /// crash point, and hardware faults are identical to the plain plan of
    /// the same seed — the network layer is strictly additive. Roughly a
    /// third of seeds leave the network healthy so the matrix keeps
    /// exercising the fault-free commit path.
    pub fn from_seed_clustered(seed: u64) -> FaultPlan {
        let mut plan = Self::from_seed(seed);
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let _shape = rng.split();
        let _crash = rng.split();
        let _faults = rng.split();
        let _hw = rng.split();
        let mut net = rng.split();
        if net.chance(0.66) {
            fn net_rate(net: &mut SplitMix64) -> u32 {
                if net.chance(0.2) {
                    2_000 + net.below(4_000) as u32
                } else {
                    net.below(600) as u32
                }
            }
            plan.net_drop = net_rate(&mut net);
            plan.net_dup = net_rate(&mut net);
            plan.net_delay = net_rate(&mut net);
            plan.net_part = if net.chance(0.5) {
                net.below(800) as u32
            } else {
                0
            };
        }
        plan.normalize();
        plan
    }

    /// Enforce the physical-coherence rules (see module docs). Idempotent;
    /// called by [`FaultPlan::from_seed`], [`FaultPlan::parse`], and after
    /// every shrinking step.
    pub fn normalize(&mut self) {
        self.txns = self.txns.max(1);
        self.group = self.group.max(1);
        self.bit_flips.retain(|&(_, mask)| mask != 0);
        // 10_000 bp = a fault on every attempt; anything above is the same
        // physical situation, so clamp for a canonical serialization.
        self.hw_stall = self.hw_stall.min(10_000);
        self.hw_transient = self.hw_transient.min(10_000);
        self.hw_ecc = self.hw_ecc.min(10_000);
        self.net_drop = self.net_drop.min(10_000);
        self.net_dup = self.net_dup.min(10_000);
        self.net_delay = self.net_delay.min(10_000);
        self.net_part = self.net_part.min(10_000);
        if self.flush_pool_pages > 0 {
            // Write-ahead rule: page write-back implies a stable log, and
            // the stable log cannot then lose bytes.
            self.flush_log_tail = true;
            self.torn_tail_bytes = 0;
            self.bit_flips.clear();
        }
    }

    /// One-line text serialization — the artifact a failing run prints, and
    /// the only thing needed to reproduce it.
    pub fn serialize(&self) -> String {
        let crash = match self.crash_after_appends {
            Some(n) => n.to_string(),
            None => "-".into(),
        };
        let flips = if self.bit_flips.is_empty() {
            "-".into()
        } else {
            self.bit_flips
                .iter()
                .map(|(o, m)| format!("{o}:{m}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "chaosplan v1 seed={} workload={} txns={} group={} crash={} \
             flush_log={} flush_pages={} torn={} ckpt={} flips={} \
             stall={} transient={} ecc={} \
             net_drop={} net_dup={} net_delay={} net_part={}",
            self.seed,
            self.workload.label(),
            self.txns,
            self.group,
            crash,
            u8::from(self.flush_log_tail),
            self.flush_pool_pages,
            self.torn_tail_bytes,
            self.checkpoint_every,
            flips,
            self.hw_stall,
            self.hw_transient,
            self.hw_ecc,
            self.net_drop,
            self.net_dup,
            self.net_delay,
            self.net_part,
        )
    }

    /// Parse a [`FaultPlan::serialize`] line back. Returns `None` on any
    /// malformed field (never panics: plan files are external input).
    pub fn parse(line: &str) -> Option<FaultPlan> {
        let mut fields = line.split_whitespace();
        if fields.next()? != "chaosplan" || fields.next()? != "v1" {
            return None;
        }
        let mut plan = FaultPlan {
            seed: 0,
            workload: WorkloadKind::Tatp,
            txns: 1,
            group: 1,
            crash_after_appends: None,
            flush_log_tail: false,
            flush_pool_pages: 0,
            torn_tail_bytes: 0,
            bit_flips: Vec::new(),
            checkpoint_every: 0,
            hw_stall: 0,
            hw_transient: 0,
            hw_ecc: 0,
            net_drop: 0,
            net_dup: 0,
            net_delay: 0,
            net_part: 0,
        };
        for field in fields {
            let (key, value) = field.split_once('=')?;
            match key {
                "seed" => plan.seed = value.parse().ok()?,
                "workload" => plan.workload = WorkloadKind::parse(value)?,
                "txns" => plan.txns = value.parse().ok()?,
                "group" => plan.group = value.parse().ok()?,
                "crash" => {
                    plan.crash_after_appends = if value == "-" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    }
                }
                "flush_log" => plan.flush_log_tail = value.parse::<u8>().ok()? != 0,
                "flush_pages" => plan.flush_pool_pages = value.parse().ok()?,
                "torn" => plan.torn_tail_bytes = value.parse().ok()?,
                "ckpt" => plan.checkpoint_every = value.parse().ok()?,
                // Hardware-fault keys default to 0, so plan lines written
                // before these families existed still parse.
                "stall" => plan.hw_stall = value.parse().ok()?,
                "transient" => plan.hw_transient = value.parse().ok()?,
                "ecc" => plan.hw_ecc = value.parse().ok()?,
                // Network keys also default to 0 (pre-cluster plan lines).
                "net_drop" => plan.net_drop = value.parse().ok()?,
                "net_dup" => plan.net_dup = value.parse().ok()?,
                "net_delay" => plan.net_delay = value.parse().ok()?,
                "net_part" => plan.net_part = value.parse().ok()?,
                "flips" => {
                    if value != "-" {
                        for pair in value.split(',') {
                            let (o, m) = pair.split_once(':')?;
                            plan.bit_flips.push((o.parse().ok()?, m.parse().ok()?));
                        }
                    }
                }
                _ => return None,
            }
        }
        plan.normalize();
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_alternates_workloads() {
        for seed in 0..32 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            let expect = if seed % 2 == 0 {
                WorkloadKind::Tatp
            } else {
                WorkloadKind::Tpcc
            };
            assert_eq!(a.workload, expect);
        }
    }

    #[test]
    fn serialization_round_trips() {
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed);
            let line = plan.serialize();
            assert_eq!(FaultPlan::parse(&line), Some(plan), "{line}");
            let clustered = FaultPlan::from_seed_clustered(seed);
            let line = clustered.serialize();
            assert_eq!(FaultPlan::parse(&line), Some(clustered), "{line}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(FaultPlan::parse(""), None);
        assert_eq!(FaultPlan::parse("chaosplan v2 seed=1"), None);
        assert_eq!(FaultPlan::parse("chaosplan v1 seed=x"), None);
        assert_eq!(FaultPlan::parse("chaosplan v1 bogus=1"), None);
        assert_eq!(FaultPlan::parse("chaosplan v1 flips=3"), None);
    }

    #[test]
    fn normalize_enforces_the_write_ahead_coupling() {
        let mut plan = FaultPlan::from_seed(0);
        plan.flush_pool_pages = 4;
        plan.flush_log_tail = false;
        plan.torn_tail_bytes = 99;
        plan.bit_flips = vec![(10, 3)];
        plan.normalize();
        assert!(plan.flush_log_tail);
        assert_eq!(plan.torn_tail_bytes, 0);
        assert!(plan.bit_flips.is_empty());
    }

    #[test]
    fn seeds_cover_both_fault_families() {
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::from_seed).collect();
        assert!(plans.iter().any(|p| p.flush_pool_pages > 0), "page family");
        assert!(plans.iter().any(|p| p.torn_tail_bytes > 0), "torn tails");
        assert!(plans.iter().any(|p| !p.bit_flips.is_empty()), "bit flips");
        assert!(plans.iter().any(|p| p.checkpoint_every > 0), "checkpoints");
        assert!(
            plans.iter().any(|p| p.crash_after_appends.is_none()),
            "quiescent crashes"
        );
    }

    #[test]
    fn seeds_cover_every_hardware_fault_family_and_leave_half_unarmed() {
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::from_seed).collect();
        assert!(plans.iter().any(|p| p.hw_stall > 0), "stall family");
        assert!(plans.iter().any(|p| p.hw_transient > 0), "transient family");
        assert!(plans.iter().any(|p| p.hw_ecc > 0), "ecc family");
        let unarmed = plans
            .iter()
            .filter(|p| p.hw_stall == 0 && p.hw_transient == 0 && p.hw_ecc == 0)
            .count();
        assert!(
            (16..=48).contains(&unarmed),
            "~half the matrix must stay on the healthy path, got {unarmed}/64"
        );
    }

    #[test]
    fn pre_hardware_plan_lines_still_parse_with_units_healthy() {
        let line = "chaosplan v1 seed=7 workload=tpcc txns=50 group=2 crash=120 \
                    flush_log=1 flush_pages=0 torn=33 ckpt=0 flips=10:3";
        let plan = FaultPlan::parse(line).expect("old line parses");
        assert_eq!((plan.hw_stall, plan.hw_transient, plan.hw_ecc), (0, 0, 0));
        assert_eq!(plan.torn_tail_bytes, 33);
    }

    #[test]
    fn normalize_clamps_hardware_rates_at_saturation() {
        let mut plan = FaultPlan::from_seed(0);
        plan.hw_stall = 60_000;
        plan.hw_transient = 10_001;
        plan.normalize();
        assert_eq!(plan.hw_stall, 10_000);
        assert_eq!(plan.hw_transient, 10_000);
    }

    #[test]
    fn clustered_seeds_share_the_single_engine_stream_and_cover_network_faults() {
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::from_seed_clustered).collect();
        for (seed, p) in plans.iter().enumerate() {
            // The clustered plan must be the plain plan plus network knobs.
            let mut stripped = p.clone();
            stripped.net_drop = 0;
            stripped.net_dup = 0;
            stripped.net_delay = 0;
            stripped.net_part = 0;
            assert_eq!(stripped, FaultPlan::from_seed(seed as u64), "seed {seed}");
        }
        assert!(plans.iter().any(|p| p.net_drop > 0), "drop family");
        assert!(plans.iter().any(|p| p.net_dup > 0), "dup family");
        assert!(plans.iter().any(|p| p.net_delay > 0), "delay family");
        assert!(plans.iter().any(|p| p.net_part > 0), "partition family");
        let healthy = plans
            .iter()
            .filter(|p| p.net_drop == 0 && p.net_dup == 0 && p.net_delay == 0 && p.net_part == 0)
            .count();
        assert!(
            (8..=40).contains(&healthy),
            "a fair share of the matrix must keep the network healthy, got {healthy}/64"
        );
    }

    #[test]
    fn pre_cluster_plan_lines_still_parse_with_network_healthy() {
        let line = "chaosplan v1 seed=7 workload=tpcc txns=50 group=2 crash=120 \
                    flush_log=1 flush_pages=0 torn=33 ckpt=0 flips=10:3 \
                    stall=100 transient=0 ecc=0";
        let plan = FaultPlan::parse(line).expect("pre-cluster line parses");
        assert_eq!(
            (plan.net_drop, plan.net_dup, plan.net_delay, plan.net_part),
            (0, 0, 0, 0)
        );
        assert_eq!(plan.hw_stall, 100);
    }

    #[test]
    fn normalize_clamps_network_rates_at_saturation() {
        let mut plan = FaultPlan::from_seed(0);
        plan.net_drop = 99_999;
        plan.net_part = 10_001;
        plan.normalize();
        assert_eq!(plan.net_drop, 10_000);
        assert_eq!(plan.net_part, 10_000);
    }

    #[test]
    fn shrink_table_reaches_every_numeric_knob() {
        // Writing floor through every table row must produce a plan whose
        // every numeric knob is at its floor — i.e. the table is complete
        // enough that the shrinker can fully strip a plan.
        let mut plan = FaultPlan::from_seed(1);
        plan.torn_tail_bytes = 99;
        plan.hw_stall = 500;
        plan.hw_transient = 500;
        plan.hw_ecc = 500;
        plan.net_drop = 500;
        plan.net_dup = 500;
        plan.net_delay = 500;
        plan.net_part = 500;
        plan.flush_pool_pages = 3;
        for field in FaultPlan::SHRINK_FIELDS {
            (field.set)(&mut plan, field.floor);
            plan.normalize();
            assert_eq!((field.get)(&plan), field.floor, "{}", field.name);
        }
        assert_eq!(plan.checkpoint_every, 0);
        assert_eq!(plan.torn_tail_bytes, 0);
        assert_eq!(plan.flush_pool_pages, 0);
        assert_eq!((plan.hw_stall, plan.hw_transient, plan.hw_ecc), (0, 0, 0));
        assert_eq!(
            (plan.net_drop, plan.net_dup, plan.net_delay, plan.net_part),
            (0, 0, 0, 0)
        );
        assert_eq!((plan.txns, plan.group), (1, 1));
    }
}
