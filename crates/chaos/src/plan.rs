//! Fault plans: the seeded, fully serializable schedule of one torture run.
//!
//! A [`FaultPlan`] pins down *everything* a crash-torture run does — the
//! workload, the transaction count, the batch grouping, where the crash
//! fuse blows, which post-crash corruptions hit the durable log, which
//! buffer-pool pages get written back — so a failing run reproduces
//! byte-identically from its one-line serialization.
//!
//! ## Physical coherence
//!
//! Not every knob combination is a fault a correct system can experience,
//! and [`FaultPlan::normalize`] enforces the coupling a real machine has:
//!
//! * Writing back dirty pages implies the covering log is stable first
//!   (the write-ahead rule), so `flush_pool_pages > 0` forces
//!   `flush_log_tail = true` and forbids tearing or flipping the log —
//!   losing acknowledged log bytes *under* surviving page writes would be
//!   media failure, which ARIES does not claim to survive.
//! * Torn tails and bit flips model the OS/device losing or garbling the
//!   unsynced suffix at crash time; they combine freely with checkpoints
//!   and with log-tail flushing, because pages carrying the affected
//!   transactions were never written back.

use bionic_sim::rng::SplitMix64;
use bionic_workloads::WorkloadKind;

/// One deterministic torture schedule. See the module docs for the
/// coherence rules between fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed: workload population, transaction stream, and every
    /// fault below derive from it.
    pub seed: u64,
    /// Which benchmark drives the run.
    pub workload: WorkloadKind,
    /// Transactions to submit (the crash fuse usually cuts the run short).
    pub txns: u32,
    /// Batch size handed to `submit_batch` (exercises the PALM path).
    pub group: u32,
    /// Blow the crash fuse after this many priced log appends
    /// ([`bionic_core::engine::Engine::crash_at`]); `None` crashes at
    /// quiescence, after the full stream ran.
    pub crash_after_appends: Option<u64>,
    /// Model the OS page cache pushing the buffered log tail to disk at
    /// crash time (the unsynced suffix survives).
    pub flush_log_tail: bool,
    /// Write back up to this many dirty buffer-pool pages before the crash
    /// (a background writer racing the failure).
    pub flush_pool_pages: u32,
    /// Tear this many bytes off the end of the surviving log image.
    pub torn_tail_bytes: u32,
    /// Bit flips applied to the surviving log image: `(offset, mask)`,
    /// offset taken modulo the image length, mask XORed in (never 0).
    pub bit_flips: Vec<(u64, u8)>,
    /// Take a sharp checkpoint every this many transactions (0 = never).
    pub checkpoint_every: u32,
}

impl FaultPlan {
    /// Derive a plan from a seed. Even seeds run TATP, odd seeds TPC-C, so
    /// any contiguous seed range alternates workloads; everything else
    /// comes from split SplitMix64 substreams of the seed.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let workload = if seed.is_multiple_of(2) {
            WorkloadKind::Tatp
        } else {
            WorkloadKind::Tpcc
        };
        let mut shape = rng.split();
        let mut crash = rng.split();
        let mut faults = rng.split();

        let txns = 40 + shape.below(120) as u32;
        let group = 1 + shape.below(8) as u32;
        let checkpoint_every = if shape.chance(0.4) {
            10 + shape.below(40) as u32
        } else {
            0
        };
        let crash_after_appends = if crash.chance(0.85) {
            Some(1 + crash.below(600))
        } else {
            None
        };

        let mut plan = FaultPlan {
            seed,
            workload,
            txns,
            group,
            crash_after_appends,
            flush_log_tail: false,
            flush_pool_pages: 0,
            torn_tail_bytes: 0,
            bit_flips: Vec::new(),
            checkpoint_every,
        };
        if faults.chance(0.4) {
            // Page-flush family: a background writer raced the crash.
            plan.flush_pool_pages = 1 + faults.below(16) as u32;
            plan.flush_log_tail = true;
        } else {
            // Log-corruption family: the unsynced tail is lost or garbled.
            plan.flush_log_tail = faults.chance(0.5);
            if faults.chance(0.7) {
                plan.torn_tail_bytes = faults.below(200) as u32;
            }
            for _ in 0..faults.below(3) {
                let offset = faults.below(1 << 20);
                let mask = (faults.below(255) + 1) as u8;
                plan.bit_flips.push((offset, mask));
            }
        }
        plan.normalize();
        plan
    }

    /// Enforce the physical-coherence rules (see module docs). Idempotent;
    /// called by [`FaultPlan::from_seed`], [`FaultPlan::parse`], and after
    /// every shrinking step.
    pub fn normalize(&mut self) {
        self.txns = self.txns.max(1);
        self.group = self.group.max(1);
        self.bit_flips.retain(|&(_, mask)| mask != 0);
        if self.flush_pool_pages > 0 {
            // Write-ahead rule: page write-back implies a stable log, and
            // the stable log cannot then lose bytes.
            self.flush_log_tail = true;
            self.torn_tail_bytes = 0;
            self.bit_flips.clear();
        }
    }

    /// One-line text serialization — the artifact a failing run prints, and
    /// the only thing needed to reproduce it.
    pub fn serialize(&self) -> String {
        let crash = match self.crash_after_appends {
            Some(n) => n.to_string(),
            None => "-".into(),
        };
        let flips = if self.bit_flips.is_empty() {
            "-".into()
        } else {
            self.bit_flips
                .iter()
                .map(|(o, m)| format!("{o}:{m}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "chaosplan v1 seed={} workload={} txns={} group={} crash={} \
             flush_log={} flush_pages={} torn={} ckpt={} flips={}",
            self.seed,
            self.workload.label(),
            self.txns,
            self.group,
            crash,
            u8::from(self.flush_log_tail),
            self.flush_pool_pages,
            self.torn_tail_bytes,
            self.checkpoint_every,
            flips,
        )
    }

    /// Parse a [`FaultPlan::serialize`] line back. Returns `None` on any
    /// malformed field (never panics: plan files are external input).
    pub fn parse(line: &str) -> Option<FaultPlan> {
        let mut fields = line.split_whitespace();
        if fields.next()? != "chaosplan" || fields.next()? != "v1" {
            return None;
        }
        let mut plan = FaultPlan {
            seed: 0,
            workload: WorkloadKind::Tatp,
            txns: 1,
            group: 1,
            crash_after_appends: None,
            flush_log_tail: false,
            flush_pool_pages: 0,
            torn_tail_bytes: 0,
            bit_flips: Vec::new(),
            checkpoint_every: 0,
        };
        for field in fields {
            let (key, value) = field.split_once('=')?;
            match key {
                "seed" => plan.seed = value.parse().ok()?,
                "workload" => plan.workload = WorkloadKind::parse(value)?,
                "txns" => plan.txns = value.parse().ok()?,
                "group" => plan.group = value.parse().ok()?,
                "crash" => {
                    plan.crash_after_appends = if value == "-" {
                        None
                    } else {
                        Some(value.parse().ok()?)
                    }
                }
                "flush_log" => plan.flush_log_tail = value.parse::<u8>().ok()? != 0,
                "flush_pages" => plan.flush_pool_pages = value.parse().ok()?,
                "torn" => plan.torn_tail_bytes = value.parse().ok()?,
                "ckpt" => plan.checkpoint_every = value.parse().ok()?,
                "flips" => {
                    if value != "-" {
                        for pair in value.split(',') {
                            let (o, m) = pair.split_once(':')?;
                            plan.bit_flips.push((o.parse().ok()?, m.parse().ok()?));
                        }
                    }
                }
                _ => return None,
            }
        }
        plan.normalize();
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_alternates_workloads() {
        for seed in 0..32 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            let expect = if seed % 2 == 0 {
                WorkloadKind::Tatp
            } else {
                WorkloadKind::Tpcc
            };
            assert_eq!(a.workload, expect);
        }
    }

    #[test]
    fn serialization_round_trips() {
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed);
            let line = plan.serialize();
            assert_eq!(FaultPlan::parse(&line), Some(plan), "{line}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(FaultPlan::parse(""), None);
        assert_eq!(FaultPlan::parse("chaosplan v2 seed=1"), None);
        assert_eq!(FaultPlan::parse("chaosplan v1 seed=x"), None);
        assert_eq!(FaultPlan::parse("chaosplan v1 bogus=1"), None);
        assert_eq!(FaultPlan::parse("chaosplan v1 flips=3"), None);
    }

    #[test]
    fn normalize_enforces_the_write_ahead_coupling() {
        let mut plan = FaultPlan::from_seed(0);
        plan.flush_pool_pages = 4;
        plan.flush_log_tail = false;
        plan.torn_tail_bytes = 99;
        plan.bit_flips = vec![(10, 3)];
        plan.normalize();
        assert!(plan.flush_log_tail);
        assert_eq!(plan.torn_tail_bytes, 0);
        assert!(plan.bit_flips.is_empty());
    }

    #[test]
    fn seeds_cover_both_fault_families() {
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::from_seed).collect();
        assert!(plans.iter().any(|p| p.flush_pool_pages > 0), "page family");
        assert!(plans.iter().any(|p| p.torn_tail_bytes > 0), "torn tails");
        assert!(plans.iter().any(|p| !p.bit_flips.is_empty()), "bit flips");
        assert!(plans.iter().any(|p| p.checkpoint_every > 0), "checkpoints");
        assert!(
            plans.iter().any(|p| p.crash_after_appends.is_none()),
            "quiescent crashes"
        );
    }
}
