//! Queue operation cost models — software vs. hardware (§5.5).
//!
//! "The queues in DORA usually see only light contention at worst, but they
//! still have significant management overhead (which is part of the Dora and
//! front-end components in Figure 3)." The software model prices that
//! overhead: tens of instructions plus the cache-coherence traffic of
//! handing a line from producer to consumer (cross-socket hand-offs pay the
//! interconnect hop). The hardware model is the paper's QOLB-flavoured \[8\]
//! alternative: a doorbell write on the producer side with queue state
//! managed on the fabric, shrinking overhead to a store plus a few cycles.

use bionic_sim::energy::Energy;
use bionic_sim::fpga::{FpgaFabric, FpgaUnit, OutOfArea};
use bionic_sim::time::SimTime;

/// Cost of one queue operation.
#[derive(Debug, Clone, Copy)]
pub struct QueueOpCost {
    /// Core-occupancy time.
    pub cpu_busy: SimTime,
    /// Off-core energy (fabric) — CPU energy derives from `cpu_busy`.
    pub energy: Energy,
}

/// Software queue cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct SwQueueParams {
    /// Instructions per enqueue (pointer juggle, bounds, fences).
    pub enqueue_instr: u64,
    /// Instructions per dequeue.
    pub dequeue_instr: u64,
    /// Instruction slot time (1 / (freq × IPC)).
    pub instr_time: SimTime,
    /// Cache lines that bounce producer→consumer per hand-off.
    pub lines_per_handoff: u64,
    /// Latency of a line transfer within a socket (shared LLC).
    pub line_transfer_same_socket: SimTime,
    /// Latency of a line transfer across sockets.
    pub line_transfer_cross_socket: SimTime,
}

impl Default for SwQueueParams {
    fn default() -> Self {
        SwQueueParams {
            enqueue_instr: 45,
            dequeue_instr: 45,
            instr_time: SimTime::from_ps(400),
            lines_per_handoff: 1,
            line_transfer_same_socket: SimTime::from_ns(16.0),
            line_transfer_cross_socket: SimTime::from_ns(120.0),
        }
    }
}

/// The software queue cost model.
#[derive(Debug, Clone, Default)]
pub struct SwQueueTiming {
    params: SwQueueParams,
    ops: u64,
}

impl SwQueueTiming {
    /// Create with explicit parameters.
    pub fn new(params: SwQueueParams) -> Self {
        SwQueueTiming { params, ops: 0 }
    }

    /// Cost of an enqueue whose consumer runs on another core.
    pub fn enqueue(&mut self, cross_socket: bool) -> QueueOpCost {
        self.ops += 1;
        let transfer = if cross_socket {
            self.params.line_transfer_cross_socket
        } else {
            self.params.line_transfer_same_socket
        };
        QueueOpCost {
            cpu_busy: self.params.instr_time * self.params.enqueue_instr
                + transfer * self.params.lines_per_handoff,
            energy: Energy::ZERO,
        }
    }

    /// Cost of a dequeue (consumer side pulls the lines back).
    pub fn dequeue(&mut self, cross_socket: bool) -> QueueOpCost {
        self.ops += 1;
        let transfer = if cross_socket {
            self.params.line_transfer_cross_socket
        } else {
            self.params.line_transfer_same_socket
        };
        QueueOpCost {
            cpu_busy: self.params.instr_time * self.params.dequeue_instr
                + transfer * self.params.lines_per_handoff,
            energy: Energy::ZERO,
        }
    }

    /// Operations costed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Configuration of the hardware queuing engine.
#[derive(Debug, Clone)]
pub struct HwQueueConfig {
    /// Producer-side doorbell store cost.
    pub doorbell_cost: SimTime,
    /// Consumer-side receive cost (the line arrives pushed, QOLB-style).
    pub receive_cost: SimTime,
    /// Fabric cycles per queue operation.
    pub cycles_per_op: u64,
    /// Fabric energy per queue operation.
    pub energy_per_op: Energy,
    /// Fabric area.
    pub area_slices: u64,
}

impl Default for HwQueueConfig {
    fn default() -> Self {
        HwQueueConfig {
            doorbell_cost: SimTime::from_ns(6.0),
            receive_cost: SimTime::from_ns(10.0),
            cycles_per_op: 1,
            energy_per_op: Energy::from_pj(60.0),
            area_slices: 5_000,
        }
    }
}

/// The hardware queue engine cost model.
#[derive(Debug)]
pub struct HwQueueTiming {
    cfg: HwQueueConfig,
    unit: FpgaUnit,
}

impl HwQueueTiming {
    /// Place the engine on a fabric.
    pub fn place(fabric: &mut FpgaFabric, cfg: HwQueueConfig) -> Result<Self, OutOfArea> {
        let unit = fabric.place(
            "queue-engine",
            cfg.cycles_per_op,
            64,
            cfg.energy_per_op,
            cfg.area_slices,
        )?;
        Ok(HwQueueTiming { cfg, unit })
    }

    /// Place with defaults.
    pub fn hc2(fabric: &mut FpgaFabric) -> Result<Self, OutOfArea> {
        Self::place(fabric, HwQueueConfig::default())
    }

    /// Cost of an enqueue: a doorbell store; queue state never bounces
    /// between cores, so socket placement is irrelevant.
    pub fn enqueue(&mut self, now: SimTime) -> QueueOpCost {
        let (_, e) = self.unit.submit(now);
        QueueOpCost {
            cpu_busy: self.cfg.doorbell_cost,
            energy: e,
        }
    }

    /// Cost of a dequeue: the engine pushed the line ahead of time.
    pub fn dequeue(&mut self, now: SimTime) -> QueueOpCost {
        let (_, e) = self.unit.submit(now);
        QueueOpCost {
            cpu_busy: self.cfg.receive_cost,
            energy: e,
        }
    }

    /// Operations processed by the fabric unit.
    pub fn ops(&self) -> u64 {
        self.unit.ops()
    }

    /// Fabric-side service time of one queue operation — the busy interval
    /// telemetry attributes to the queue engine per enqueue/dequeue.
    pub fn op_latency(&self) -> SimTime {
        self.unit.op_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_costs_scale_with_socket_distance() {
        let mut sw = SwQueueTiming::default();
        let near = sw.enqueue(false).cpu_busy;
        let far = sw.enqueue(true).cpu_busy;
        // 1 line * (120 - 16)ns = 104ns extra.
        assert!((far.as_ns() - near.as_ns() - 104.0).abs() < 1.0);
        assert_eq!(sw.ops(), 2);
    }

    #[test]
    fn hardware_is_an_order_of_magnitude_cheaper() {
        let mut fabric = FpgaFabric::hc2();
        let mut hw = HwQueueTiming::hc2(&mut fabric).unwrap();
        let mut sw = SwQueueTiming::default();
        let hw_roundtrip = hw.enqueue(SimTime::ZERO).cpu_busy + hw.dequeue(SimTime::ZERO).cpu_busy;
        let sw_roundtrip = sw.enqueue(true).cpu_busy + sw.dequeue(true).cpu_busy;
        let ratio = sw_roundtrip.as_ns() / hw_roundtrip.as_ns();
        assert!(ratio > 10.0, "ratio={ratio}");
    }

    #[test]
    fn hardware_cost_is_placement_independent() {
        let mut fabric = FpgaFabric::hc2();
        let mut hw = HwQueueTiming::hc2(&mut fabric).unwrap();
        let a = hw.enqueue(SimTime::ZERO).cpu_busy;
        let b = hw.enqueue(SimTime::ZERO).cpu_busy;
        assert_eq!(a, b);
        assert_eq!(hw.ops(), 2);
    }
}
