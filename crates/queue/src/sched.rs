//! Agent scheduling and convoys — the part hardware does NOT solve.
//!
//! §5.5 is careful: "many of the challenges associated with queues are
//! fundamentally hard; while hardware will undoubtedly reduce overheads, it
//! will not magically solve the scheduling problem. … knowing when to
//! deschedule an idle agent thread with an empty input queue (a wrong choice
//! can hold up an entire chain of queues, leading to convoys)."
//!
//! This module simulates exactly that trade-off: a chain of agents (the
//! multi-partition path of a DORA transaction) where each idle agent either
//! spins (instant hand-off, wasted cycles) or parks (saved cycles, wake
//! latency on the next arrival) — and a wake at stage *k* delays every
//! downstream stage, which is the convoy.

use bionic_sim::stats::Histogram;
use bionic_sim::time::SimTime;

/// What an idle agent does with an empty input queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParkPolicy {
    /// Spin forever: zero wake latency, cores burn while idle.
    Spin,
    /// Park as soon as the queue is empty.
    ParkImmediately,
    /// Spin for the given grace period, then park.
    ParkAfter(SimTime),
}

/// One agent stage in the chain.
#[derive(Debug, Clone)]
struct Agent {
    free_at: SimTime,
    policy: ParkPolicy,
    wake_latency: SimTime,
    service: SimTime,
    wakes: u64,
    busy: SimTime,
    spin_waste: SimTime,
}

impl Agent {
    /// Process an item arriving at `arrive`; returns its completion time.
    fn process(&mut self, arrive: SimTime) -> SimTime {
        let mut start = arrive.max(self.free_at);
        if arrive > self.free_at {
            // The agent was idle from free_at to arrive.
            let idle = arrive - self.free_at;
            match self.policy {
                ParkPolicy::Spin => self.spin_waste += idle,
                ParkPolicy::ParkImmediately => {
                    self.wakes += 1;
                    start += self.wake_latency;
                }
                ParkPolicy::ParkAfter(grace) => {
                    if idle > grace {
                        self.wakes += 1;
                        self.spin_waste += grace;
                        start += self.wake_latency;
                    } else {
                        self.spin_waste += idle;
                    }
                }
            }
        }
        let done = start + self.service;
        self.free_at = done;
        self.busy += self.service;
        done
    }
}

/// Results of a chain simulation.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// Items pushed through the chain.
    pub items: u64,
    /// End-to-end latency distribution.
    pub latency: Histogram,
    /// Completed items per simulated second.
    pub throughput_per_sec: f64,
    /// Total wake-ups across all agents.
    pub wakes: u64,
    /// Core time wasted spinning on empty queues.
    pub spin_waste: SimTime,
    /// Core time doing useful work.
    pub useful_busy: SimTime,
    /// Useful busy time per stage, in chain order — the per-agent
    /// utilization series telemetry exports.
    pub stage_busy: Vec<SimTime>,
}

/// Simulate `items` arrivals (spaced `inter_arrival`, with every
/// `burst_period`-th gap stretched by `burst_gap` to create idle spells)
/// flowing through a chain of `stages` agents, each with `service` work per
/// item, under the given parking policy.
#[allow(clippy::too_many_arguments)] // a simulation's knobs ARE its signature
pub fn simulate_chain(
    stages: usize,
    items: u64,
    inter_arrival: SimTime,
    burst_period: u64,
    burst_gap: SimTime,
    service: SimTime,
    wake_latency: SimTime,
    policy: ParkPolicy,
) -> ChainReport {
    assert!(stages >= 1);
    let mut agents: Vec<Agent> = (0..stages)
        .map(|_| Agent {
            free_at: SimTime::ZERO,
            policy,
            wake_latency,
            service,
            wakes: 0,
            busy: SimTime::ZERO,
            spin_waste: SimTime::ZERO,
        })
        .collect();

    let mut latency = Histogram::new();
    let mut arrive = SimTime::ZERO;
    let mut last_done = SimTime::ZERO;
    for i in 0..items {
        let mut t = arrive;
        for agent in agents.iter_mut() {
            t = agent.process(t);
        }
        latency.record(t - arrive);
        last_done = last_done.max(t);
        arrive += inter_arrival;
        if burst_period > 0 && (i + 1) % burst_period == 0 {
            arrive += burst_gap;
        }
    }
    ChainReport {
        items,
        throughput_per_sec: items as f64 / last_done.as_secs(),
        wakes: agents.iter().map(|a| a.wakes).sum(),
        spin_waste: agents.iter().map(|a| a.spin_waste).sum(),
        useful_busy: agents.iter().map(|a| a.busy).sum(),
        stage_busy: agents.iter().map(|a| a.busy).collect(),
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: ParkPolicy) -> ChainReport {
        simulate_chain(
            4,                       // DORA chain of 4 partitions
            10_000,                  // items
            SimTime::from_us(1.0),   // 1M items/s offered
            10,                      // every 10th item...
            SimTime::from_us(50.0),  // ...is followed by a 50us lull
            SimTime::from_ns(500.0), // work per stage
            SimTime::from_us(8.0),   // OS futex-style wake
            policy,
        )
    }

    #[test]
    fn spinning_has_no_wakes_but_wastes_cycles() {
        let r = run(ParkPolicy::Spin);
        assert_eq!(r.wakes, 0);
        assert!(r.spin_waste > r.useful_busy, "idle chain burns cores");
    }

    #[test]
    fn eager_parking_creates_convoys() {
        // Every post-lull item pays a wake at EVERY stage: the convoy.
        let spin = run(ParkPolicy::Spin);
        let eager = run(ParkPolicy::ParkImmediately);
        assert!(eager.wakes > 3000, "wakes={}", eager.wakes);
        let spin_p99 = spin.latency.quantile(0.99);
        let eager_p99 = eager.latency.quantile(0.99);
        assert!(
            eager_p99.as_us() > spin_p99.as_us() + 25.0,
            "spin p99={spin_p99} eager p99={eager_p99}"
        );
    }

    #[test]
    fn grace_period_balances_the_tradeoff() {
        // Short (2us) wakes so eager's mid-stream parking isn't masked by
        // backlog absorption: eager parks in every sub-microsecond gap,
        // patient (20us grace) parks only at the genuine 50us lulls, spin
        // never parks but burns the most idle cycles.
        let with_policy = |policy| {
            simulate_chain(
                4,
                10_000,
                SimTime::from_us(1.0),
                10,
                SimTime::from_us(50.0),
                SimTime::from_ns(500.0),
                SimTime::from_us(2.0),
                policy,
            )
        };
        let eager = with_policy(ParkPolicy::ParkImmediately);
        let spin = with_policy(ParkPolicy::Spin);
        let patient = with_policy(ParkPolicy::ParkAfter(SimTime::from_us(20.0)));
        assert!(
            eager.wakes as f64 > 1.5 * patient.wakes as f64,
            "eager={} patient={}",
            eager.wakes,
            patient.wakes
        );
        assert!(patient.spin_waste < spin.spin_waste);
        assert_eq!(spin.wakes, 0);
    }

    #[test]
    fn wake_latency_scaling_shows_hardware_does_not_fix_scheduling() {
        // Even with a 10x faster (hardware-assisted) wake, eager parking
        // still shows convoy latency: the scheduling decision dominates.
        let slow_wake = run(ParkPolicy::ParkImmediately);
        let fast = simulate_chain(
            4,
            10_000,
            SimTime::from_us(1.0),
            10,
            SimTime::from_us(50.0),
            SimTime::from_ns(500.0),
            SimTime::from_ns(800.0), // 10x faster wake
            ParkPolicy::ParkImmediately,
        );
        assert!(fast.wakes > 1000 && slow_wake.wakes > 1000);
        let fast_p99 = fast.latency.quantile(0.99);
        let spin_p99 = run(ParkPolicy::Spin).latency.quantile(0.99);
        assert!(
            fast_p99 > spin_p99,
            "faster wakes shrink but do not eliminate the convoy: fast={fast_p99} spin={spin_p99}"
        );
    }

    #[test]
    fn single_stage_sanity() {
        let r = simulate_chain(
            1,
            100,
            SimTime::from_us(1.0),
            0,
            SimTime::ZERO,
            SimTime::from_ns(100.0),
            SimTime::ZERO,
            ParkPolicy::Spin,
        );
        assert_eq!(r.items, 100);
        // Uncontended: latency == service.
        assert_eq!(r.latency.max().as_ns(), 100.0);
        assert_eq!(r.stage_busy.len(), 1);
        assert_eq!(r.stage_busy[0], r.useful_busy);
    }
}
