//! A real multi-producer queue for use outside the simulator.
//!
//! The discrete-event engine models queue *costs*; this module provides the
//! genuinely concurrent counterpart a downstream user would deploy — a thin
//! instrumented wrapper over `crossbeam`'s lock-free `SegQueue` — so the
//! library's DORA machinery is usable with real threads as well as simulated
//! agents.

use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicU64, Ordering};

/// An MPMC lock-free FIFO with enqueue/dequeue counters.
#[derive(Debug, Default)]
pub struct ConcurrentQueue<T> {
    inner: SegQueue<T>,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
}

impl<T> ConcurrentQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        ConcurrentQueue {
            inner: SegQueue::new(),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
        }
    }

    /// Append an item (wait-free).
    pub fn enqueue(&self, item: T) {
        self.inner.push(item);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Remove the oldest item, if any.
    pub fn dequeue(&self) -> Option<T> {
        let item = self.inner.pop();
        if item.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        item
    }

    /// Approximate depth.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the queue (approximately) empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `(enqueued, dequeued)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.enqueued.load(Ordering::Relaxed),
            self.dequeued.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_threaded_fifo() {
        let q = ConcurrentQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.counters(), (2, 2));
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(ConcurrentQueue::new());
        let producers = 4;
        let per_producer = 10_000u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per_producer {
                        q.enqueue(p as u64 * per_producer + i);
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let total = producers as u64 * per_producer;
                let mut seen = Vec::with_capacity(total as usize);
                while seen.len() < total as usize {
                    if let Some(v) = q.dequeue() {
                        seen.push(v);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = consumer.join().unwrap();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..producers as u64 * per_producer).collect();
        assert_eq!(seen, expect, "every item delivered exactly once");
        // Per-producer FIFO order is guaranteed by SegQueue; totals match.
        assert_eq!(q.counters(), (40_000, 40_000));
    }

    #[test]
    fn producer_order_is_preserved_per_thread() {
        let q = Arc::new(ConcurrentQueue::new());
        let writer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..5000u64 {
                    q.enqueue(i);
                }
            })
        };
        writer.join().unwrap();
        let mut last = None;
        while let Some(v) = q.dequeue() {
            if let Some(l) = last {
                assert!(v > l);
            }
            last = Some(v);
        }
        assert_eq!(last, Some(4999));
    }
}
