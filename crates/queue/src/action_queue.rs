//! The DORA action queue.
//!
//! DORA "structures the access patterns of threads so that at most one
//! thread touches any particular datum" by routing *actions* through
//! per-partition queues. Inside the discrete-event engine each queue has a
//! single logical consumer (the partition's agent), so the functional
//! structure is a plain FIFO with depth/occupancy statistics — the
//! interesting part, what en/dequeues *cost*, lives in [`crate::timing`].

use std::collections::VecDeque;

/// Occupancy statistics of a queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total enqueues.
    pub enqueued: u64,
    /// Total dequeues.
    pub dequeued: u64,
    /// High-water mark of queue depth.
    pub max_depth: usize,
}

/// A FIFO action queue with statistics.
#[derive(Debug, Clone)]
pub struct ActionQueue<T> {
    items: VecDeque<T>,
    stats: QueueStats,
}

impl<T> ActionQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        ActionQueue {
            items: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// Append an item.
    pub fn enqueue(&mut self, item: T) {
        self.items.push_back(item);
        self.stats.enqueued += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.items.len());
    }

    /// Remove the oldest item.
    pub fn dequeue(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.stats.dequeued += 1;
        }
        item
    }

    /// Peek at the oldest item.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<T> Default for ActionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = ActionQueue::new();
        for i in 0..10 {
            q.enqueue(i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.dequeue()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_track_depth_and_counts() {
        let mut q = ActionQueue::new();
        q.enqueue("a");
        q.enqueue("b");
        q.dequeue();
        q.enqueue("c");
        let s = q.stats();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.max_depth, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek(), Some(&"b"));
    }

    #[test]
    fn dequeue_of_empty_is_none_and_uncounted() {
        let mut q: ActionQueue<u8> = ActionQueue::new();
        assert!(q.dequeue().is_none());
        assert_eq!(q.stats().dequeued, 0);
        assert!(q.is_empty());
    }
}
