//! # bionic-queue — DORA's queues and the hardware queuing engine (§5.5)
//!
//! DORA "uses queues extensively, to impose regularity on access patterns,
//! eliminate contention hotspots, and hide latencies due to partition
//! crossing and log synchronization." This crate supplies:
//!
//! * [`action_queue::ActionQueue`] — the per-partition FIFO the simulated
//!   engine routes actions through;
//! * [`concurrent::ConcurrentQueue`] — a real lock-free MPMC queue for
//!   multi-threaded deployments;
//! * [`timing`] — what en/dequeues cost: software cache-line hand-offs
//!   (cross-socket pays the interconnect) vs. the QOLB-style \[8\] hardware
//!   queue engine;
//! * [`sched`] — the agent parking/convoy simulation behind the paper's
//!   caveat that "hardware … will not magically solve the scheduling
//!   problem".

#![deny(missing_docs)]

pub mod action_queue;
pub mod concurrent;
pub mod sched;
pub mod timing;

pub use action_queue::{ActionQueue, QueueStats};
pub use concurrent::ConcurrentQueue;
pub use sched::{simulate_chain, ChainReport, ParkPolicy};
pub use timing::{HwQueueConfig, HwQueueTiming, QueueOpCost, SwQueueParams, SwQueueTiming};
