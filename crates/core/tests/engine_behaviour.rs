//! Engine-level behavioural tests: functional correctness (visibility,
//! rollback, recovery) and model-level sanity (breakdown shares, energy,
//! throughput) across software, bionic, and conventional configurations.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_core::ops::{Action, Op, Patch, TxnProgram};
use bionic_core::{AbortReason, Category, TxnOutcome};
use bionic_sim::time::SimTime;

fn loaded_engine(cfg: EngineConfig, rows: i64) -> (Engine, u32) {
    let mut e = Engine::new(cfg);
    let t = e.create_table("accounts");
    for k in 0..rows {
        let mut body = vec![0u8; 92];
        body[..8].copy_from_slice(&(k * 100).to_le_bytes());
        e.load(t, k, &body);
    }
    e.finish_load();
    (e, t)
}

fn balance_patch(delta: i64) -> Patch {
    // Record = key(8) || balance(8) || padding: balance at offset 8.
    Patch::AddI64 { offset: 8, delta }
}

fn read_balance(e: &mut Engine, t: u32, k: i64) -> i64 {
    let rec = e.read_row(t, k).expect("row exists");
    i64::from_le_bytes(rec[8..16].try_into().unwrap())
}

fn update_txn(t: u32, k: i64, delta: i64) -> TxnProgram {
    TxnProgram::single_phase(
        "update",
        vec![Action::new(
            t,
            k,
            vec![Op::Update {
                table: t,
                key: k,
                patch: balance_patch(delta),
            }],
        )],
    )
}

fn all_configs() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
        ("conventional", EngineConfig::conventional()),
    ]
}

#[test]
fn committed_updates_are_visible_in_every_config() {
    for (name, cfg) in all_configs() {
        let (mut e, t) = loaded_engine(cfg, 100);
        assert_eq!(read_balance(&mut e, t, 5), 500, "{name}");
        let out = e.submit(&update_txn(t, 5, -70), SimTime::ZERO);
        assert!(out.is_committed(), "{name}");
        assert_eq!(read_balance(&mut e, t, 5), 430, "{name}");
        assert_eq!(e.stats.committed, 1, "{name}");
    }
}

#[test]
fn missing_key_update_aborts_and_leaves_no_trace() {
    for (name, cfg) in all_configs() {
        let (mut e, t) = loaded_engine(cfg, 10);
        let out = e.submit(&update_txn(t, 9999, 1), SimTime::ZERO);
        assert_eq!(
            out,
            TxnOutcome::Aborted {
                reason: AbortReason::MissingKey,
                latency: out.latency()
            },
            "{name}"
        );
        assert_eq!(e.stats.aborted, 1, "{name}");
        assert_eq!(e.row_count(t), 10, "{name}");
    }
}

#[test]
fn multi_op_abort_rolls_back_earlier_writes() {
    for (name, cfg) in all_configs() {
        let (mut e, t) = loaded_engine(cfg, 10);
        // First op succeeds, second targets a missing key: whole txn undone.
        let prog = TxnProgram::single_phase(
            "transfer-to-nowhere",
            vec![Action::new(
                t,
                1,
                vec![
                    Op::Update {
                        table: t,
                        key: 1,
                        patch: balance_patch(-50),
                    },
                    Op::Update {
                        table: t,
                        key: 777,
                        patch: balance_patch(50),
                    },
                ],
            )],
        );
        let out = e.submit(&prog, SimTime::ZERO);
        assert!(!out.is_committed(), "{name}");
        assert_eq!(read_balance(&mut e, t, 1), 100, "{name}: first op undone");
    }
}

#[test]
fn insert_then_read_then_delete() {
    for (name, cfg) in all_configs() {
        let (mut e, t) = loaded_engine(cfg, 10);
        let ins = TxnProgram::single_phase(
            "insert",
            vec![Action::new(
                t,
                500,
                vec![Op::Insert {
                    table: t,
                    key: 500,
                    record: vec![7u8; 40],
                }],
            )],
        );
        assert!(e.submit(&ins, SimTime::ZERO).is_committed(), "{name}");
        assert_eq!(e.row_count(t), 11, "{name}");
        assert!(e.read_row(t, 500).is_some(), "{name}");

        // Duplicate insert aborts and removes nothing.
        let out = e.submit(&ins, SimTime::from_us(100.0));
        assert_eq!(
            out,
            TxnOutcome::Aborted {
                reason: AbortReason::DuplicateKey,
                latency: out.latency()
            },
            "{name}"
        );
        assert_eq!(e.row_count(t), 11, "{name}");

        let del = TxnProgram::single_phase(
            "delete",
            vec![Action::new(t, 500, vec![Op::Delete { table: t, key: 500 }])],
        );
        assert!(e.submit(&del, SimTime::from_us(200.0)).is_committed());
        assert_eq!(e.row_count(t), 10, "{name}");
        assert!(e.read_row(t, 500).is_none(), "{name}");
    }
}

#[test]
fn aborted_insert_is_fully_undone() {
    for (name, cfg) in all_configs() {
        let (mut e, t) = loaded_engine(cfg, 10);
        let prog = TxnProgram::single_phase(
            "insert-then-fail",
            vec![Action::new(
                t,
                600,
                vec![
                    Op::Insert {
                        table: t,
                        key: 600,
                        record: vec![1u8; 16],
                    },
                    Op::Delete { table: t, key: 999 }, // missing: abort
                ],
            )],
        );
        assert!(!e.submit(&prog, SimTime::ZERO).is_committed(), "{name}");
        assert!(e.read_row(t, 600).is_none(), "{name}");
        assert_eq!(e.row_count(t), 10, "{name}");
    }
}

#[test]
fn range_reads_commit() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 1000);
    let prog = TxnProgram::single_phase(
        "range",
        vec![Action::new(
            t,
            100,
            vec![Op::ReadRange {
                table: t,
                lo: 100,
                hi: 200,
                limit: 50,
            }],
        )],
    );
    assert!(e.submit(&prog, SimTime::ZERO).is_committed());
    // Range work must show up as btree + record time.
    assert!(e.breakdown.get(Category::Btree) > SimTime::ZERO);
}

#[test]
fn crash_and_recover_preserves_committed_state() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 50);
    assert!(e
        .submit(&update_txn(t, 3, 11), SimTime::ZERO)
        .is_committed());
    assert!(e
        .submit(&update_txn(t, 4, -22), SimTime::from_us(50.0))
        .is_committed());
    let ins = TxnProgram::single_phase(
        "ins",
        vec![Action::new(
            t,
            777,
            vec![Op::Insert {
                table: t,
                key: 777,
                record: vec![9u8; 24],
            }],
        )],
    );
    assert!(e.submit(&ins, SimTime::from_us(100.0)).is_committed());

    let image = e.crash();
    let (mut e2, outcome) = Engine::restart(image, EngineConfig::software());
    assert!(outcome.losers.is_empty());
    assert!(outcome.redone > 0, "dirty pages were never flushed");
    assert_eq!(read_balance(&mut e2, 0, 3), 311);
    assert_eq!(read_balance(&mut e2, 0, 4), 378);
    assert!(e2.read_row(0, 777).is_some());
    assert_eq!(e2.row_count(0), 51);
    // The recovered engine keeps working.
    assert!(e2
        .submit(&update_txn(0, 3, 1), SimTime::ZERO)
        .is_committed());
    assert_eq!(read_balance(&mut e2, 0, 3), 312);
}

#[test]
fn update_workload_breakdown_has_log_and_btree_time() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 10_000);
    let mut at = SimTime::ZERO;
    for i in 0..500 {
        e.submit(&update_txn(t, (i * 13) % 10_000, 1), at);
        at += SimTime::from_us(2.0);
    }
    let b = &e.breakdown;
    assert!(b.fraction(Category::Log) > 0.02, "log share too small");
    assert!(b.fraction(Category::Btree) > 0.05, "btree share too small");
    assert!(b.fraction(Category::Lock) == 0.0, "DORA has no locks");
    assert!(b.fraction(Category::Dora) > 0.0);
}

#[test]
fn read_only_workload_has_negligible_log_share() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 10_000);
    let mut at = SimTime::ZERO;
    for i in 0..500 {
        let prog = TxnProgram::single_phase(
            "ro",
            vec![Action::new(t, i, vec![Op::Read { table: t, key: i }])],
        );
        e.submit(&prog, at);
        at += SimTime::from_us(2.0);
    }
    assert!(e.breakdown.fraction(Category::Log) < 0.01);
    assert!(e.stats.committed == 500);
}

#[test]
fn conventional_engine_pays_for_locks() {
    let (mut e, t) = loaded_engine(EngineConfig::conventional(), 1000);
    let mut at = SimTime::ZERO;
    for i in 0..200 {
        e.submit(&update_txn(t, i % 1000, 1), at);
        at += SimTime::from_us(2.0);
    }
    assert!(
        e.breakdown.fraction(Category::Lock) > 0.03,
        "lock share: {}",
        e.breakdown.fraction(Category::Lock)
    );
}

#[test]
fn bionic_engine_uses_less_energy_per_txn() {
    // The §1 headline: "effective hardware support need not always increase
    // raw performance; the true goal is to reduce net energy use."
    let n = 400;
    let mut joules = Vec::new();
    for cfg in [EngineConfig::software(), EngineConfig::bionic()] {
        let (mut e, t) = loaded_engine(cfg, 10_000);
        let mut at = SimTime::ZERO;
        for i in 0..n {
            e.submit(&update_txn(t, (i * 31) % 10_000, 1), at);
            at += SimTime::from_us(3.0);
        }
        assert_eq!(e.stats.committed, n as u64);
        joules.push(e.platform.energy.total().as_j() / n as f64);
    }
    let (sw, hw) = (joules[0], joules[1]);
    assert!(
        hw < 0.6 * sw,
        "bionic must cut joules/txn substantially: sw={sw:.3e} hw={hw:.3e}"
    );
}

#[test]
fn bionic_latency_is_not_better_but_agents_are_freer() {
    // §3: asynchronous offload trades per-request latency for freed cores.
    let (mut sw, t) = loaded_engine(EngineConfig::software(), 10_000);
    let (mut hw, _) = loaded_engine(EngineConfig::bionic(), 10_000);
    let out_sw = sw.submit(&update_txn(t, 5, 1), SimTime::ZERO);
    let out_hw = hw.submit(&update_txn(t, 5, 1), SimTime::ZERO);
    assert!(
        out_hw.latency() >= out_sw.latency(),
        "hw latency {} should not beat sw {}",
        out_hw.latency(),
        out_sw.latency()
    );
    // But the bionic engine burned far less agent CPU on it.
    assert!(hw.breakdown.total() < sw.breakdown.total());
}

#[test]
fn overlay_merges_trigger_on_write_volume() {
    let mut cfg = EngineConfig::bionic();
    cfg.merge_threshold = 200;
    let (mut e, t) = loaded_engine(cfg, 1000);
    let mut at = SimTime::ZERO;
    for i in 0..600 {
        e.submit(&update_txn(t, i % 1000, 1), at);
        at += SimTime::from_us(3.0);
    }
    assert!(e.stats.merges >= 2, "merges={}", e.stats.merges);
    // Data still correct after merges.
    assert_eq!(read_balance(&mut e, t, 0), 1);
}

#[test]
fn tight_overlay_budget_causes_probe_misses() {
    let mut cfg = EngineConfig::bionic();
    cfg.overlay_budget = 1 << 14; // far smaller than 10k rows of index
    let (mut e, t) = loaded_engine(cfg, 10_000);
    let mut at = SimTime::ZERO;
    for i in 0..300 {
        let prog = TxnProgram::single_phase(
            "ro",
            vec![Action::new(
                t,
                i * 7 % 10_000,
                vec![Op::Read {
                    table: t,
                    key: i * 7 % 10_000,
                }],
            )],
        );
        e.submit(&prog, at);
        at += SimTime::from_us(3.0);
    }
    assert!(
        e.stats.probe_misses > 30,
        "probe_misses={}",
        e.stats.probe_misses
    );
}

#[test]
fn multi_action_phases_join_at_rendezvous() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 1000);
    // A transfer touching two partitions in one phase, then a read phase.
    let prog = TxnProgram {
        name: "transfer",
        phases: vec![
            vec![
                Action::new(
                    t,
                    1,
                    vec![Op::Update {
                        table: t,
                        key: 1,
                        patch: balance_patch(-10),
                    }],
                ),
                Action::new(
                    t,
                    900,
                    vec![Op::Update {
                        table: t,
                        key: 900,
                        patch: balance_patch(10),
                    }],
                ),
            ],
            vec![Action::new(t, 1, vec![Op::Read { table: t, key: 1 }])],
        ],
        abort_on_missing_read: false,
    };
    assert!(e.submit(&prog, SimTime::ZERO).is_committed());
    assert_eq!(read_balance(&mut e, t, 1), 90);
    assert_eq!(read_balance(&mut e, t, 900), 90_010);
}

#[test]
fn secondary_reads_resolve_and_survive_crash() {
    // Secondary field: i64 at record offset 8 = key * 1000 + 7.
    let mut e = Engine::new(EngineConfig::software());
    let t = e.create_table_with_secondary("subs", 8);
    for k in 0..200i64 {
        let mut body = vec![0u8; 48];
        body[..8].copy_from_slice(&(k * 1000 + 7).to_le_bytes());
        e.load(t, k, &body);
    }
    e.finish_load();

    let by_nbr = |skey: i64| TxnProgram {
        name: "by-secondary",
        phases: vec![vec![Action::new(
            t,
            skey,
            vec![Op::SecondaryRead { table: t, skey }],
        )]],
        abort_on_missing_read: true,
    };
    assert!(e.submit(&by_nbr(42_007), SimTime::ZERO).is_committed());
    let miss = e.submit(&by_nbr(999), SimTime::from_us(10.0));
    assert!(!miss.is_committed(), "unknown secondary key aborts");

    // Insert a row; its secondary entry must be visible; abort must remove it.
    let mut body = vec![0u8; 48];
    body[..8].copy_from_slice(&777_000i64.to_le_bytes());
    let ins = TxnProgram::single_phase(
        "ins",
        vec![Action::new(
            t,
            500,
            vec![Op::Insert {
                table: t,
                key: 500,
                record: body.clone(),
            }],
        )],
    );
    assert!(e.submit(&ins, SimTime::from_us(20.0)).is_committed());
    assert!(e
        .submit(&by_nbr(777_000), SimTime::from_us(30.0))
        .is_committed());

    let failing_ins = TxnProgram::single_phase(
        "ins-fail",
        vec![Action::new(
            t,
            501,
            vec![
                Op::Insert {
                    table: t,
                    key: 501,
                    record: {
                        let mut b = vec![0u8; 48];
                        b[..8].copy_from_slice(&888_000i64.to_le_bytes());
                        b
                    },
                },
                Op::Delete {
                    table: t,
                    key: 99_999,
                }, // forces rollback
            ],
        )],
    );
    assert!(!e
        .submit(&failing_ins, SimTime::from_us(40.0))
        .is_committed());
    assert!(
        !e.submit(&by_nbr(888_000), SimTime::from_us(50.0))
            .is_committed(),
        "aborted insert's secondary entry must be gone"
    );

    // Crash: secondary index must rebuild from the heap.
    let image = e.crash();
    let (mut e, _) = Engine::restart(image, EngineConfig::software());
    assert!(e.submit(&by_nbr(42_007), SimTime::ZERO).is_committed());
    assert!(e
        .submit(&by_nbr(777_000), SimTime::from_us(10.0))
        .is_committed());
    assert!(!e
        .submit(&by_nbr(888_000), SimTime::from_us(20.0))
        .is_committed());
}

#[test]
fn secondary_key_updates_move_the_index_entry() {
    let mut e = Engine::new(EngineConfig::software());
    let t = e.create_table_with_secondary("subs", 8);
    let mut body = vec![0u8; 48];
    body[..8].copy_from_slice(&111i64.to_le_bytes());
    e.load(t, 1, &body);
    e.finish_load();

    // Update the secondary field 111 -> 222.
    let upd = TxnProgram::single_phase(
        "move-skey",
        vec![Action::new(
            t,
            1,
            vec![Op::Update {
                table: t,
                key: 1,
                patch: Patch::Splice {
                    offset: 8,
                    bytes: 222i64.to_le_bytes().to_vec(),
                },
            }],
        )],
    );
    assert!(e.submit(&upd, SimTime::ZERO).is_committed());
    let by = |skey: i64| TxnProgram {
        name: "by",
        phases: vec![vec![Action::new(
            t,
            skey,
            vec![Op::SecondaryRead { table: t, skey }],
        )]],
        abort_on_missing_read: true,
    };
    assert!(!e.submit(&by(111), SimTime::from_us(10.0)).is_committed());
    assert!(e.submit(&by(222), SimTime::from_us(20.0)).is_committed());
}

#[test]
fn sharp_checkpoint_bounds_redo_work() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 100);
    let mut at = SimTime::ZERO;
    for i in 0..200 {
        e.submit(&update_txn(t, i % 100, 1), at);
        at += SimTime::from_us(5.0);
    }
    let ck = e.checkpoint(at);
    assert!(e.log().last_checkpoint() == Some(ck));
    for i in 0..20 {
        e.submit(&update_txn(t, i % 100, 1), at);
        at += SimTime::from_us(5.0);
    }
    let with_ck = {
        let image = e.crash();
        let (mut e2, outcome) = Engine::restart(image, EngineConfig::software());
        // Key 0 was bumped at i=0 and i=100 pre-checkpoint and i=0 after.
        assert_eq!(read_balance(&mut e2, t, 0), 3);
        outcome.records_scanned
    };

    // Same run without the checkpoint scans the whole log.
    let (mut e, t) = loaded_engine(EngineConfig::software(), 100);
    let mut at = SimTime::ZERO;
    for i in 0..220 {
        e.submit(&update_txn(t, i % 100, 1), at);
        at += SimTime::from_us(5.0);
    }
    let image = e.crash();
    let (_, outcome) = Engine::restart(image, EngineConfig::software());
    assert!(
        with_ck < outcome.records_scanned / 2,
        "checkpoint must bound recovery: {} vs {}",
        with_ck,
        outcome.records_scanned
    );
}

#[test]
fn query_range_uses_the_result_cache_until_invalidated() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 1000);
    // Cold query computes and caches.
    let (rows, cached, _) = e.query_range(t, 100, 200, None, SimTime::ZERO);
    assert_eq!(rows, 100);
    assert!(!cached);
    // Warm query hits the CPU-side cache.
    let (rows, cached, _) = e.query_range(t, 100, 200, None, SimTime::from_us(10.0));
    assert_eq!(rows, 100);
    assert!(cached);
    // A committed write to the table invalidates the cached result.
    assert!(e
        .submit(&update_txn(t, 150, 1), SimTime::from_us(20.0))
        .is_committed());
    let (rows, cached, _) = e.query_range(t, 100, 200, None, SimTime::from_us(50.0));
    assert_eq!(rows, 100);
    assert!(!cached, "write must invalidate");
    let stats = e.result_cache_stats();
    assert_eq!(stats.hits, 1);
    assert!(stats.stale >= 1);
}

#[test]
fn historical_queries_patch_through_the_overlay() {
    let (mut e, t) = loaded_engine(EngineConfig::bionic(), 100);
    let v0 = e.current_version();
    // Delete key 50, insert key 1000.
    let del = TxnProgram::single_phase(
        "del",
        vec![Action::new(t, 50, vec![Op::Delete { table: t, key: 50 }])],
    );
    assert!(e.submit(&del, SimTime::ZERO).is_committed());
    let ins = TxnProgram::single_phase(
        "ins",
        vec![Action::new(
            t,
            1000,
            vec![Op::Insert {
                table: t,
                key: 1000,
                record: vec![0u8; 24],
            }],
        )],
    );
    assert!(e.submit(&ins, SimTime::from_us(50.0)).is_committed());

    // Latest view: 99 keys in [0,100), 1 in [1000,1001).
    let (now_rows, _, _) = e.query_range(t, 0, 2000, None, SimTime::from_us(100.0));
    assert_eq!(now_rows, 100);
    // As-of the pre-write version: the deleted key is back, the insert gone.
    let (old_rows, _, _) = e.query_range(t, 0, 2000, Some(v0), SimTime::from_us(120.0));
    assert_eq!(old_rows, 100); // 100 original keys
    let (old_mid, _, _) = e.query_range(t, 50, 51, Some(v0), SimTime::from_us(130.0));
    assert_eq!(old_mid, 1, "deleted key visible in history");
    let (new_mid, _, _) = e.query_range(t, 50, 51, None, SimTime::from_us(140.0));
    assert_eq!(new_mid, 0);
}

#[test]
fn throughput_saturates_with_offered_load() {
    let (mut e, t) = loaded_engine(EngineConfig::software(), 10_000);
    // Open-loop overload: arrivals far faster than service.
    let mut at = SimTime::ZERO;
    for i in 0..2000 {
        e.submit(&update_txn(t, (i * 17) % 10_000, 1), at);
        at += SimTime::from_ns(100.0);
    }
    let tput = e.stats.throughput_per_sec();
    assert!(tput > 10_000.0, "tput={tput}");
    // Under overload, p99 latency balloons past the uncontended latency.
    let p99 = e.stats.latency.quantile(0.99);
    let p50 = e.stats.latency.quantile(0.50);
    assert!(p99 > p50);
}

#[test]
fn telemetry_traces_every_layer_and_exports_cleanly() {
    let (mut e, t) = loaded_engine(EngineConfig::bionic().with_agents(4), 256);
    e.enable_telemetry(1 << 16);
    let mut at = SimTime::ZERO;
    for k in 0..64 {
        assert!(e.submit(&update_txn(t, k % 256, 1), at).is_committed());
        at += SimTime::from_us(2.0);
    }
    e.collect_metrics();

    // Spans landed on the dispatcher, at least one core, and every hardware
    // unit the bionic config exercises (probe, log insert, queue; overlay
    // fires on record writes).
    let events = e.tel.events();
    assert!(!events.is_empty());
    let busy_on = |track: usize| events.iter().any(|ev| ev.track == track);
    assert!(busy_on(e.tel.dispatch_track()), "dispatch traced");
    assert!((0..4).any(|a| busy_on(e.tel.core_track(a))), "cores traced");
    assert!(busy_on(e.tel.unit_track(0)), "tree-probe traced");
    assert!(busy_on(e.tel.unit_track(1)), "log-insert traced");
    assert!(busy_on(e.tel.unit_track(2)), "queue traced");
    assert!(busy_on(e.tel.unit_track(3)), "overlay traced");
    // Every span carries its transaction id.
    assert!(events.iter().all(|ev| ev.txn >= 1));

    // The Chrome trace passes the schema validator, and the utilization
    // report covers all five §5 units — including the idle scanner.
    let json = e.tel.export_chrome_trace();
    bionic_telemetry::validate_chrome_trace(&json).expect("schema-valid trace");
    let rows = e.tel.utilization_rows(SimTime::from_us(50.0));
    for unit in bionic_telemetry::UNIT_NAMES {
        assert!(
            rows.iter().any(|r| r.track == format!("fpga/{unit}")),
            "utilization row for {unit}"
        );
    }

    // Counters reflect the run.
    let m = e.tel.metrics();
    assert_eq!(m.counter_value("engine", "submitted"), 64);
    assert_eq!(m.counter_value("engine", "committed"), 64);
    assert!(m.counter_value("wal", "appends") > 0);
    assert!(m.counter_value("link/pcie", "bytes") > 0);
}

#[test]
fn disabled_telemetry_records_nothing_and_changes_nothing() {
    let run = |trace: bool| {
        let (mut e, t) = loaded_engine(EngineConfig::bionic().with_agents(4), 64);
        if trace {
            e.enable_telemetry(1 << 14);
        }
        let mut at = SimTime::ZERO;
        let mut latencies = Vec::new();
        for k in 0..32 {
            latencies.push(e.submit(&update_txn(t, k % 64, 1), at).latency());
            at += SimTime::from_us(2.0);
        }
        (latencies, e.tel.events().len())
    };
    let (lat_off, n_off) = run(false);
    let (lat_on, n_on) = run(true);
    assert_eq!(n_off, 0, "disabled sink stays empty");
    assert!(n_on > 0);
    // Tracing is pure observation: identical simulated timings.
    assert_eq!(lat_off, lat_on);
}

// ---- degraded-mode layer (hardware faults, watchdogs, fallbacks) ---------

fn run_updates(e: &mut Engine, t: u32, n: i64) -> SimTime {
    let mut at = SimTime::ZERO;
    for k in 0..n {
        assert!(e.submit(&update_txn(t, k % 100, 1), at).is_committed());
        at += SimTime::from_us(2.0);
    }
    e.stats.last_completion
}

#[test]
fn armed_zero_rate_fault_layer_is_invisible() {
    use bionic_sim::fault::HwFaultConfig;
    // Arming the layer with all rates at zero must cost nothing: no RNG
    // draws, no timing perturbation — byte-identical to an unarmed engine.
    let (mut plain, tp) = loaded_engine(EngineConfig::bionic(), 100);
    let (mut armed, ta) = loaded_engine(
        EngineConfig::bionic().with_hw_faults(HwFaultConfig::uniform(0)),
        100,
    );
    let done_plain = run_updates(&mut plain, tp, 200);
    let done_armed = run_updates(&mut armed, ta, 200);
    assert_eq!(done_plain, done_armed, "zero-rate layer perturbed timing");
    assert_eq!(
        plain.platform.energy.total().as_j(),
        armed.platform.energy.total().as_j()
    );
    let report = armed.fault_report().expect("layer is armed");
    assert!(report.iter().all(|r| r.stats.fallbacks == 0));
    assert!(report.iter().any(|r| r.stats.ops > 0), "gates consulted");
}

#[test]
fn saturated_faults_fall_back_everywhere_but_change_no_results() {
    use bionic_sim::fault::HwFaultConfig;
    let (mut clean, tc) = loaded_engine(EngineConfig::bionic(), 100);
    let (mut broken, tb) = loaded_engine(
        EngineConfig::bionic().with_hw_faults(HwFaultConfig::saturated()),
        100,
    );
    let done_clean = run_updates(&mut clean, tc, 200);
    let done_broken = run_updates(&mut broken, tb, 200);
    // Every transaction committed (asserted in run_updates) and the final
    // state is identical: fallbacks are pricing-only.
    assert_eq!(clean.scan_table(tc), broken.scan_table(tb));
    // But the brownout is real: watchdogs and retries cost time.
    assert!(
        done_broken > done_clean,
        "saturated faults should slow the run ({done_broken} vs {done_clean})"
    );
    let report = broken.fault_report().expect("layer armed");
    for r in &report {
        if r.unit == "scanner" {
            continue; // no scans in this workload
        }
        assert!(r.stats.ops > 0, "{} never consulted", r.unit);
        assert!(r.stats.fallbacks > 0, "{} never fell back", r.unit);
        assert!(r.breaker_opens > 0, "{} breaker never opened", r.unit);
        assert!(
            r.time_degraded > SimTime::ZERO,
            "{} accrued no degraded time",
            r.unit
        );
    }
    // All three fault families were exercised across the units.
    let stalls: u64 = report.iter().map(|r| r.stats.stalls).sum();
    let crc: u64 = report.iter().map(|r| r.stats.crc_errors).sum();
    let ecc: u64 = report.iter().map(|r| r.stats.ecc_errors).sum();
    assert!(stalls > 0 && crc > 0 && ecc > 0, "{stalls}/{crc}/{ecc}");
}

#[test]
fn fault_counters_flow_into_the_metrics_registry() {
    use bionic_sim::fault::HwFaultConfig;
    let (mut e, t) = loaded_engine(
        EngineConfig::bionic().with_hw_faults(HwFaultConfig::uniform(2_000)),
        100,
    );
    run_updates(&mut e, t, 100);
    e.collect_metrics();
    let m = e.tel.metrics_mut();
    assert!(m.counter_value("fault/tree-probe", "ops") > 0);
    assert!(m.counter_value("fault/log-insert", "ops") > 0);
    let total_faults: u64 = ["tree-probe", "log-insert", "queue", "overlay"]
        .iter()
        .map(|u| {
            let s = format!("fault/{u}");
            m.counter_value(&s, "stalls")
                + m.counter_value(&s, "crc_errors")
                + m.counter_value(&s, "ecc_errors")
        })
        .sum();
    assert!(
        total_faults > 0,
        "2000bp over 100 txns must fault sometimes"
    );
}

// ---- two-phase commit branches ---------------------------------------------

#[test]
fn prepared_branch_commits_on_coordinator_decision() {
    for (name, cfg) in all_configs() {
        let (mut e, t) = loaded_engine(cfg, 100);
        let out = e.submit_prepared(
            &update_txn(t, 5, -70),
            SimTime::ZERO,
            0x8000_0000_0000_0001,
            0,
        );
        let bionic_core::PrepareOutcome::Prepared { txn, .. } = out else {
            panic!("{name}: expected Prepared, got {out:?}");
        };
        assert_eq!(e.stats.committed, 0, "{name}: prepared is not committed");
        assert_eq!(e.prepared_branches(), vec![txn], "{name}");
        let res = e.resolve_prepared(txn, true, SimTime::from_us(50.0));
        assert!(res.is_committed(), "{name}");
        assert_eq!(read_balance(&mut e, t, 5), 430, "{name}");
        assert_eq!(e.stats.committed, 1, "{name}");
        assert!(e.prepared_branches().is_empty(), "{name}");
    }
}

#[test]
fn prepared_branch_rolls_back_on_coordinator_abort() {
    for (name, cfg) in all_configs() {
        let (mut e, t) = loaded_engine(cfg, 100);
        let out = e.submit_prepared(
            &update_txn(t, 5, -70),
            SimTime::ZERO,
            0x8000_0000_0000_0002,
            1,
        );
        let bionic_core::PrepareOutcome::Prepared { txn, .. } = out else {
            panic!("{name}: expected Prepared, got {out:?}");
        };
        let res = e.resolve_prepared(txn, false, SimTime::from_us(50.0));
        assert_eq!(
            res,
            TxnOutcome::Aborted {
                reason: AbortReason::Coordinator,
                latency: res.latency()
            },
            "{name}"
        );
        assert_eq!(read_balance(&mut e, t, 5), 500, "{name}: branch undone");
        assert_eq!(e.stats.aborted, 1, "{name}");
    }
}

#[test]
fn local_failure_votes_no_and_rolls_back() {
    let (mut e, t) = loaded_engine(EngineConfig::bionic(), 10);
    let out = e.submit_prepared(
        &update_txn(t, 9999, 1),
        SimTime::ZERO,
        0x8000_0000_0000_0003,
        0,
    );
    assert!(
        matches!(
            out,
            bionic_core::PrepareOutcome::Aborted {
                reason: AbortReason::MissingKey,
                ..
            }
        ),
        "{out:?}"
    );
    assert!(e.prepared_branches().is_empty());
    assert_eq!(e.stats.aborted, 1);
}

#[test]
fn crashed_prepared_branch_is_in_doubt_and_resolves_both_ways() {
    for decision in [false, true] {
        let cfg = EngineConfig::bionic();
        let (mut e, t) = loaded_engine(cfg.clone(), 100);
        let gtxn = 0x8000_0000_0000_0011u64;
        let out = e.submit_prepared(&update_txn(t, 7, -25), SimTime::ZERO, gtxn, 2);
        assert!(out.is_prepared(), "{out:?}");
        // Crash before the decision arrives: the branch is in doubt.
        let image = e.crash();
        let (mut e2, rec) = Engine::restart_resolving(image, cfg, |_txn, g, coord| {
            assert_eq!((g, coord), (gtxn, 2));
            decision
        });
        assert_eq!(rec.in_doubt.len(), 1, "decision={decision}");
        if decision {
            assert_eq!(rec.resolved_committed, 1);
            assert_eq!(read_balance(&mut e2, t, 7), 675, "effects kept");
        } else {
            assert_eq!(rec.resolved_aborted, 1);
            assert_eq!(read_balance(&mut e2, t, 7), 700, "effects undone");
        }
        // Either way the branch is closed: a second restart is clean.
        let (mut e3, rec2) = Engine::restart(e2.crash(), EngineConfig::bionic());
        assert!(rec2.in_doubt.is_empty(), "decision={decision}");
        let expect = if decision { 675 } else { 700 };
        assert_eq!(read_balance(&mut e3, t, 7), expect);
    }
}

#[test]
fn plain_restart_presumes_abort_for_in_doubt_branches() {
    let cfg = EngineConfig::software();
    let (mut e, t) = loaded_engine(cfg.clone(), 50);
    let out = e.submit_prepared(
        &update_txn(t, 3, 40),
        SimTime::ZERO,
        0x8000_0000_0000_0021,
        0,
    );
    assert!(out.is_prepared());
    let (mut e2, rec) = Engine::restart(e.crash(), cfg);
    assert_eq!(rec.resolved_aborted, 1);
    assert_eq!(read_balance(&mut e2, t, 3), 300, "presumed abort");
}
