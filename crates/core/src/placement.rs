//! Adaptive hardware/software placement: the telemetry→scheduling loop.
//!
//! Everything before this module placed work statically: an op class ran
//! in hardware because [`crate::config::Offloads`] said so at construction,
//! and the only runtime reroute was the failure-driven circuit breaker in
//! [`crate::degrade`]. The paper's bionic premise, though, is that the
//! *right* substrate depends on what the machine is doing right now —
//! Polynesia and the Boroumand HW/SW-cooperation line (PAPERS.md) both
//! argue placement must respond to load. Two concrete pathologies in this
//! repo's own sweeps motivate the loop:
//!
//! * **E13's high-pressure band**: when the enhanced scanner offers most
//!   of SG-DRAM's bandwidth, every hardware tree probe queues behind scan
//!   grants in the arbiter and transaction p99 inflates by orders of
//!   magnitude — while the *software* descent, which never touches the
//!   shared fabric, would have answered in microseconds.
//! * **E14's mid-band valley**: at moderate fault rates the breaker flaps
//!   (open → half-open → re-open), so a steady trickle of ops pays full
//!   watchdog-timeout + retry-backoff chains just before each re-open.
//!
//! [`PlacementController`] closes the loop. On a fixed sim-time window
//! grid it reads the cumulative counters the engine already maintains
//! (arbiter per-client queueing and grant bytes, per-unit degrade stats,
//! breaker opens, commit counts — the same feed
//! `telemetry::SnapshotHub` samples), diffs them into per-window deltas,
//! and decides per functional unit whether the next window's ops run in
//! hardware or are *shed* to the existing software paths:
//!
//! * **Contention shedding** ([`PlacementConfig::shed_units`] — by
//!   default the tree-probe and overlay units, the OLTP paths that book
//!   SG-DRAM grants): trip when the OLTP
//!   client's arbitration delay in a window exceeds
//!   [`PlacementConfig::shed_trip_pct`] of the window *and* the scanner is
//!   actively drawing SG bandwidth, for
//!   [`PlacementConfig::shed_trip_windows`] consecutive windows. Restore
//!   only once the scanner has gone quiet for
//!   [`PlacementConfig::shed_clear_windows`] consecutive windows — the
//!   clear signal is deliberately the *rival's* activity, not our own
//!   queueing, because shedding removes the very delay that tripped it
//!   (clearing on our own silence would oscillate).
//! * **Pre-emptive brownout** (any unit allowed by
//!   [`PlacementConfig::brownout_units`]): trip when a window shows
//!   breaker opens, or retries + fallbacks above
//!   [`PlacementConfig::fault_trip_pct`] of the unit's ops, for
//!   [`PlacementConfig::fault_trip_windows`] consecutive windows. The unit
//!   is then pinned to software for [`PlacementConfig::hold_windows`]
//!   windows — no watchdog expiries, no backoff chains — and released for
//!   a fresh hardware probe afterwards (the controller's own half-open
//!   analogue). By default only the tree probe is eligible: its software
//!   descent is the one reroute that is competitive on both latency and
//!   energy, so the brownout is free; every other unit's software path
//!   costs more CPU energy than its hardware service (the scanner ~5×,
//!   E14's software floor), so pinning them would trade the paper's
//!   joules/txn headline for latency and is left as an explicit opt-in.
//!
//! Determinism contract: decisions are a pure function of the observed
//! counter sequence — integer arithmetic only (picoseconds, bytes, op
//! counts; no floats, no RNG, no wall clock), observations happen only
//! when simulated time crosses a grid boundary, and a decision holds
//! unchanged for at least one full window (hysteresis streaks + hold
//! periods mean no unit ever flaps within a window). Placement never
//! touches functional results — like the fault layer, it reroutes
//! *pricing* between the hardware models and the always-maintained
//! software structures — so an adaptive run commits byte-identically to
//! its static twin, and a `None` config (the default) leaves every priced
//! path untouched.

use bionic_sim::time::SimTime;

/// Number of offloadable units (mirrors
/// [`bionic_telemetry::UNIT_NAMES`] and [`crate::degrade::UNIT_COUNT`]).
pub const UNIT_COUNT: usize = 5;
/// Tree-probe unit index in [`bionic_telemetry::UNIT_NAMES`] order.
pub const UNIT_PROBE: usize = 0;
/// Log-insert unit index.
pub const UNIT_LOG: usize = 1;
/// DORA queue unit index.
pub const UNIT_QUEUE: usize = 2;
/// Overlay-manager unit index.
pub const UNIT_OVERLAY: usize = 3;
/// Enhanced-scanner unit index.
pub const UNIT_SCAN: usize = 4;

/// Tuning for the adaptive placement controller. Attach with
/// [`crate::config::EngineConfig::with_placement`]; the default values are
/// the calibrated operating point experiment E15 evaluates.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConfig {
    /// Decision window: the fixed sim-time grid on which observations are
    /// taken and decisions may change.
    pub window: SimTime,
    /// Contention trip: shed probes when the OLTP client's arbitration
    /// delay within a window reaches this percentage of the window's span
    /// (may exceed 100 — queueing sums across concurrent requests).
    pub shed_trip_pct: u32,
    /// Consecutive over-trip windows required before shedding.
    pub shed_trip_windows: u32,
    /// Consecutive scanner-quiet windows required before restoring probes
    /// to hardware.
    pub shed_clear_windows: u32,
    /// Scanner activity floor, bytes of SG grant per microsecond of
    /// window: below this the scanner counts as quiet (4 000 B/µs is 5 %
    /// of the 80 GB/s SG-DRAM path).
    pub olap_floor_bytes_per_us: u64,
    /// Fault trip: a unit's window is "bad" when `retries + fallbacks`
    /// reach this percentage of its ops (or its breaker opened).
    pub fault_trip_pct: u32,
    /// Consecutive bad windows required before browning a unit out.
    pub fault_trip_windows: u32,
    /// Windows a browned-out unit stays pinned to software before the
    /// controller re-probes hardware.
    pub hold_windows: u32,
    /// Which units the contention rule sheds. Probe and overlay by
    /// default: they are the OLTP-side units whose hardware paths book
    /// SG-DRAM grants and therefore queue behind an active scanner (the
    /// log and queue engines never touch the shared fabric).
    pub shed_units: [bool; UNIT_COUNT],
    /// Which units the fault rule may brown out. Only the tree probe by
    /// default: it is the one unit whose software path is competitive on
    /// both latency and energy (~201 nJ software descent vs ~145 nJ
    /// hardware probe, E4), so pinning it to software under flapping is
    /// free. The log/queue/overlay software reroutes cost measurably more
    /// CPU energy than their hardware service — that is why they were
    /// offloaded — and the scanner's software path forfeits the ~5×
    /// energy advantage outright; all four keep their per-op breaker
    /// fallback and stay available here as an explicit opt-in.
    pub brownout_units: [bool; UNIT_COUNT],
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            window: SimTime::from_us(100.0),
            shed_trip_pct: 100,
            shed_trip_windows: 3,
            shed_clear_windows: 3,
            olap_floor_bytes_per_us: 4_000,
            fault_trip_pct: 8,
            fault_trip_windows: 2,
            hold_windows: 16,
            shed_units: [true, false, false, true, false],
            brownout_units: [true, false, false, false, false],
        }
    }
}

impl PlacementConfig {
    /// A configuration whose thresholds can never be met: the controller
    /// observes but never reroutes. Used by the byte-identity tests to
    /// show the observation path itself does not perturb pricing.
    pub fn never_trips() -> Self {
        PlacementConfig {
            shed_trip_pct: u32::MAX,
            fault_trip_pct: u32::MAX,
            // A breaker open always marks a window bad regardless of
            // `fault_trip_pct`; an unreachable streak keeps it inert.
            fault_trip_windows: u32::MAX,
            shed_trip_windows: u32::MAX,
            ..Self::default()
        }
    }
}

/// Cumulative counter snapshot the controller diffs per window. All
/// fields are monotone totals since engine construction; the engine
/// gathers them in [`crate::engine::Engine::placement_tick`] from ledgers
/// it already maintains (no new accounting on the hot path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementSignals {
    /// Total OLTP-client arbitration delay, picoseconds (SG-DRAM + link).
    pub oltp_queued_ps: u64,
    /// Total OLTP-client requests that observed a nonzero queueing delay.
    pub oltp_wait_events: u64,
    /// Total SG-DRAM bytes granted to the scan (OLAP) client.
    pub sg_olap_bytes: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Per-unit ops that consulted the degrade layer.
    pub unit_ops: [u64; UNIT_COUNT],
    /// Per-unit retried hardware attempts.
    pub unit_retries: [u64; UNIT_COUNT],
    /// Per-unit software fallbacks.
    pub unit_fallbacks: [u64; UNIT_COUNT],
    /// Per-unit breaker Closed→Open transitions.
    pub breaker_opens: [u64; UNIT_COUNT],
}

/// Why a unit's placement changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementReason {
    /// Shed: the arbiter showed sustained OLTP queueing under an active
    /// scanner.
    Contention,
    /// Shed: the unit's fault rate (retries/fallbacks/breaker opens)
    /// stayed above the trip threshold.
    Faults,
    /// Restored to hardware (clear streak satisfied or hold expired).
    Restored,
}

impl PlacementReason {
    /// Stable label for trace marks and CSV cells.
    pub fn label(self) -> &'static str {
        match self {
            PlacementReason::Contention => "contention",
            PlacementReason::Faults => "faults",
            PlacementReason::Restored => "restored",
        }
    }
}

/// One effective placement transition (logged only when a unit's
/// hardware/software routing actually changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementDecision {
    /// End of the observation window that produced the decision.
    pub at: SimTime,
    /// Observation index (monotone per controller).
    pub window: u64,
    /// Unit index ([`bionic_telemetry::UNIT_NAMES`] order).
    pub unit: usize,
    /// `true` = unit now runs in software; `false` = restored to hardware.
    pub forced_sw: bool,
    /// What tripped the change.
    pub reason: PlacementReason,
}

/// Bound on the retained decision log (transitions keep being *counted*
/// past it; a controller oscillating this often is a tuning bug the tests
/// would catch long before memory does).
const DECISION_LOG_CAP: usize = 16_384;

/// Controller summary for reports and experiment CSV rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementReport {
    /// Observations taken (grid crossings).
    pub windows: u64,
    /// Observations during which probes were contention-shed.
    pub shed_windows: u64,
    /// Unit-window count of fault brownout (summed over units).
    pub brownout_windows: u64,
    /// Effective placement transitions.
    pub transitions: u64,
    /// Units currently routed to software.
    pub forced_sw: [bool; UNIT_COUNT],
}

/// The deterministic windowed placement controller. See the module docs
/// for the decision rules and the determinism contract.
#[derive(Debug, Clone)]
pub struct PlacementController {
    cfg: PlacementConfig,
    initialized: bool,
    cursor: SimTime,
    prev: PlacementSignals,
    windows: u64,
    // Contention shedding (probe unit only).
    shed: bool,
    trip_streak: u32,
    clear_streak: u32,
    shed_windows: u64,
    // Fault brownout (per unit).
    hold_left: [u32; UNIT_COUNT],
    fault_streak: [u32; UNIT_COUNT],
    brownout_windows: u64,
    // Decision log.
    decisions: Vec<PlacementDecision>,
    transitions: u64,
    announced: usize,
}

impl PlacementController {
    /// A controller in its initial (everything-in-hardware) state.
    pub fn new(cfg: PlacementConfig) -> Self {
        assert!(!cfg.window.is_zero(), "placement window must be positive");
        PlacementController {
            cfg,
            initialized: false,
            cursor: SimTime::ZERO,
            prev: PlacementSignals::default(),
            windows: 0,
            shed: false,
            trip_streak: 0,
            clear_streak: 0,
            shed_windows: 0,
            hold_left: [0; UNIT_COUNT],
            fault_streak: [0; UNIT_COUNT],
            brownout_windows: 0,
            decisions: Vec::new(),
            transitions: 0,
            announced: 0,
        }
    }

    /// The attached configuration.
    pub fn config(&self) -> &PlacementConfig {
        &self.cfg
    }

    /// Does simulated time `now` warrant an observation? (Also true once
    /// before the first observation, which only baselines the counters.)
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        !self.initialized || now >= self.cursor + self.cfg.window
    }

    /// May `unit` run in hardware right now? This is the hot-path query:
    /// two array reads, no branches into the decision machinery.
    #[inline]
    pub fn allows_hw(&self, unit: usize) -> bool {
        !(self.hold_left[unit] > 0 || (self.shed && self.cfg.shed_units[unit]))
    }

    fn forced(&self, unit: usize) -> bool {
        !self.allows_hw(unit)
    }

    /// Ingest one cumulative counter snapshot at sim time `now`. The first
    /// call baselines `prev` without deciding anything; later calls that
    /// have crossed a grid boundary diff the counters over the crossed
    /// span, run the decision rules once, and advance the cursor to the
    /// last boundary at or before `now`. Calls between boundaries are
    /// no-ops, so decisions can only change on the grid.
    pub fn observe(&mut self, now: SimTime, s: PlacementSignals) {
        if !self.initialized {
            self.initialized = true;
            self.cursor = now;
            self.prev = s;
            return;
        }
        if now < self.cursor + self.cfg.window {
            return;
        }
        let crossed = (now - self.cursor).as_ps() / self.cfg.window.as_ps();
        let span = self.cfg.window * crossed;
        let end = self.cursor + span;
        let before: [bool; UNIT_COUNT] = std::array::from_fn(|u| self.forced(u));

        let span_ps = span.as_ps().max(1);
        let queued_delta = s.oltp_queued_ps - self.prev.oltp_queued_ps;
        let olap_delta = s.sg_olap_bytes - self.prev.sg_olap_bytes;
        let hot = queued_delta.saturating_mul(100)
            >= span_ps.saturating_mul(self.cfg.shed_trip_pct as u64);
        let olap_active =
            olap_delta >= (span_ps / 1_000_000).max(1) * self.cfg.olap_floor_bytes_per_us;

        // Contention rule (the `shed_units` set). Trip on sustained OLTP
        // queueing while the scanner draws; clear on a sustained quiet
        // scanner.
        if self.shed {
            if olap_active {
                self.clear_streak = 0;
            } else {
                self.clear_streak += 1;
                if self.clear_streak >= self.cfg.shed_clear_windows {
                    self.shed = false;
                    self.clear_streak = 0;
                }
            }
        } else if hot && olap_active {
            self.trip_streak = self.trip_streak.saturating_add(1);
            if self.trip_streak >= self.cfg.shed_trip_windows {
                self.shed = true;
                self.trip_streak = 0;
                self.clear_streak = 0;
            }
        } else {
            self.trip_streak = 0;
        }

        // Fault rule, per unit. A browned-out unit ticks its hold down
        // (its own counters are silent while pinned — no hardware
        // attempts); a live unit accumulates bad-window streaks.
        for u in 0..UNIT_COUNT {
            if !self.cfg.brownout_units[u] {
                continue;
            }
            if self.hold_left[u] > 0 {
                self.hold_left[u] -= 1;
                continue;
            }
            let ops = s.unit_ops[u] - self.prev.unit_ops[u];
            let faults = (s.unit_retries[u] - self.prev.unit_retries[u])
                + (s.unit_fallbacks[u] - self.prev.unit_fallbacks[u]);
            let opened = s.breaker_opens[u] > self.prev.breaker_opens[u];
            let bad = opened
                || (ops > 0
                    && faults.saturating_mul(100)
                        >= ops.saturating_mul(self.cfg.fault_trip_pct as u64));
            if bad {
                self.fault_streak[u] = self.fault_streak[u].saturating_add(1);
                if self.fault_streak[u] >= self.cfg.fault_trip_windows {
                    self.hold_left[u] = self.cfg.hold_windows;
                    self.fault_streak[u] = 0;
                }
            } else {
                self.fault_streak[u] = 0;
            }
        }

        self.windows += 1;
        if self.shed {
            self.shed_windows += 1;
        }
        self.brownout_windows += self.hold_left.iter().filter(|&&h| h > 0).count() as u64;

        for (u, &was) in before.iter().enumerate() {
            let after = self.forced(u);
            if after != was {
                self.transitions += 1;
                if self.decisions.len() < DECISION_LOG_CAP {
                    let reason = if !after {
                        PlacementReason::Restored
                    } else if self.hold_left[u] > 0 {
                        PlacementReason::Faults
                    } else {
                        PlacementReason::Contention
                    };
                    self.decisions.push(PlacementDecision {
                        at: end,
                        window: self.windows,
                        unit: u,
                        forced_sw: after,
                        reason,
                    });
                }
            }
        }

        self.cursor = end;
        self.prev = s;
    }

    /// The retained transition log, oldest first.
    pub fn decisions(&self) -> &[PlacementDecision] {
        &self.decisions
    }

    /// Pop the next not-yet-announced transition (the engine drains these
    /// into trace marks right after each observation).
    pub fn take_unannounced(&mut self) -> Option<PlacementDecision> {
        let d = self.decisions.get(self.announced).copied();
        if d.is_some() {
            self.announced += 1;
        }
        d
    }

    /// Summarize for reports and experiment rows.
    pub fn report(&self) -> PlacementReport {
        PlacementReport {
            windows: self.windows,
            shed_windows: self.shed_windows,
            brownout_windows: self.brownout_windows,
            transitions: self.transitions,
            forced_sw: std::array::from_fn(|u| self.forced(u)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: f64) -> SimTime {
        SimTime::from_us(n)
    }

    fn ctl() -> PlacementController {
        PlacementController::new(PlacementConfig::default())
    }

    /// Signals showing heavy OLTP queueing under an active scanner.
    fn contended(k: u64) -> PlacementSignals {
        PlacementSignals {
            oltp_queued_ps: k * 200_000_000, // 200 µs queueing per window
            sg_olap_bytes: k * 2_000_000,    // 20 000 B/µs of scan draw
            committed: k * 50,
            ..Default::default()
        }
    }

    /// Signals with a quiet scanner and no queueing past window `k0`.
    fn quiet_after(k: u64, k0: u64) -> PlacementSignals {
        PlacementSignals {
            oltp_queued_ps: k0.min(k) * 200_000_000,
            sg_olap_bytes: k0.min(k) * 2_000_000,
            committed: k * 50,
            ..Default::default()
        }
    }

    #[test]
    fn sheds_after_trip_streak_and_restores_after_quiet_streak() {
        let mut c = ctl();
        c.observe(SimTime::ZERO, contended(0));
        assert!(c.allows_hw(UNIT_PROBE));
        // Windows 1–2: hot streak builds, still hardware.
        for k in 1..=2 {
            c.observe(us(k as f64 * 100.0), contended(k));
            assert!(c.allows_hw(UNIT_PROBE), "window {k} below trip streak");
        }
        // Window 3: third consecutive hot window — trips.
        c.observe(us(300.0), contended(3));
        assert!(!c.allows_hw(UNIT_PROBE));
        // Scanner goes quiet: restore only after 3 consecutive quiet
        // windows.
        for k in 4..=5 {
            c.observe(us(k as f64 * 100.0), quiet_after(k, 3));
            assert!(!c.allows_hw(UNIT_PROBE), "window {k} still held");
        }
        c.observe(us(600.0), quiet_after(6, 3));
        assert!(c.allows_hw(UNIT_PROBE));
        let r = c.report();
        // Probe and overlay shed together (the default shed set), then
        // both restore: four effective transitions.
        assert_eq!(r.transitions, 4);
        assert_eq!(r.shed_windows, 3); // windows 3,4,5 ended shed
        assert_eq!(c.decisions().len(), 4);
        assert_eq!(c.decisions()[0].reason, PlacementReason::Contention);
        assert_eq!(c.decisions()[3].reason, PlacementReason::Restored);
    }

    #[test]
    fn decisions_only_change_on_grid_boundaries() {
        let mut c = ctl();
        c.observe(SimTime::ZERO, contended(0));
        c.observe(us(100.0), contended(1));
        // Mid-window observations are no-ops regardless of signals.
        let before = c.report();
        c.observe(us(150.0), contended(100));
        c.observe(us(199.0), contended(200));
        assert_eq!(c.report(), before);
        assert!(c.allows_hw(UNIT_PROBE));
    }

    #[test]
    fn flapping_unit_browns_out_for_hold_then_reprobes() {
        // Opt the log unit in (the default set browns out only the probe).
        let mut c = PlacementController::new(PlacementConfig {
            brownout_units: [true, true, false, false, false],
            ..PlacementConfig::default()
        });
        let mut s = PlacementSignals::default();
        c.observe(SimTime::ZERO, s);
        // Two consecutive windows with breaker opens on the log unit.
        for k in 1..=2u64 {
            s.unit_ops[UNIT_LOG] += 100;
            s.breaker_opens[UNIT_LOG] += 1;
            c.observe(us(k as f64 * 100.0), s);
        }
        assert!(!c.allows_hw(UNIT_LOG));
        assert!(c.allows_hw(UNIT_PROBE), "other units untouched");
        // Pinned for hold_windows observations (counters silent), then
        // released.
        let hold = c.config().hold_windows as u64;
        for k in 3..(3 + hold) {
            assert!(!c.allows_hw(UNIT_LOG), "window {k} inside hold");
            c.observe(us(k as f64 * 100.0), s);
        }
        assert!(c.allows_hw(UNIT_LOG));
        let r = c.report();
        assert_eq!(r.brownout_windows, hold);
        assert_eq!(r.transitions, 2);
    }

    #[test]
    fn scanner_is_excluded_from_brownout_by_default() {
        let mut c = ctl();
        let mut s = PlacementSignals::default();
        c.observe(SimTime::ZERO, s);
        for k in 1..=4u64 {
            s.unit_ops[UNIT_SCAN] += 10;
            s.unit_retries[UNIT_SCAN] += 10;
            s.breaker_opens[UNIT_SCAN] += 1;
            c.observe(us(k as f64 * 100.0), s);
        }
        assert!(c.allows_hw(UNIT_SCAN));
    }

    #[test]
    fn retry_share_trips_without_breaker_opens() {
        let mut c = ctl();
        let mut s = PlacementSignals::default();
        c.observe(SimTime::ZERO, s);
        for k in 1..=2u64 {
            s.unit_ops[UNIT_PROBE] += 100;
            s.unit_retries[UNIT_PROBE] += 10; // 10 % ≥ fault_trip_pct 8 %
            c.observe(us(k as f64 * 100.0), s);
        }
        assert!(!c.allows_hw(UNIT_PROBE));
        assert_eq!(c.decisions()[0].reason, PlacementReason::Faults);
    }

    #[test]
    fn never_trips_config_stays_in_hardware() {
        let mut c = PlacementController::new(PlacementConfig::never_trips());
        let mut s = contended(0);
        c.observe(SimTime::ZERO, s);
        for k in 1..=50u64 {
            s = contended(k);
            s.unit_ops[UNIT_LOG] += 100;
            s.unit_retries[UNIT_LOG] += 100;
            c.observe(us(k as f64 * 100.0), s);
        }
        let r = c.report();
        assert_eq!(r.transitions, 0);
        assert!(r.forced_sw.iter().all(|&f| !f));
        assert_eq!(r.windows, 50);
    }

    #[test]
    fn idle_gaps_collapse_into_one_observation() {
        let mut c = ctl();
        c.observe(SimTime::ZERO, contended(0));
        // 10 windows pass with no tick; the next observation covers the
        // whole span as one window (deltas diluted over the span).
        c.observe(us(1000.0), contended(1));
        let r = c.report();
        assert_eq!(r.windows, 1);
        // 200 µs queueing over a 1 ms span is 20 % < the 100 % trip.
        assert!(c.allows_hw(UNIT_PROBE));
    }
}
