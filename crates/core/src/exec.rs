//! Transaction execution: the timed, instrumented heart of the engine.
//!
//! Every operation does two things: it *really happens* (records change,
//! the log grows) and it is *priced* — CPU instructions and memory stalls
//! through the platform's cost models, charged to a Figure-3 category, with
//! offloaded work routed through the FPGA unit models instead. Agent
//! occupancy flows through per-partition FIFO servers, so saturation and
//! queueing emerge naturally; asynchronous hardware work extends a
//! transaction's latency without occupying its agent — §3's thesis that
//! "throughput will improve, even if individual requests take just as long
//! to complete".

use crate::breakdown::Category;
use crate::config::ExecModel;
use crate::engine::{Engine, LogPath};
use crate::ops::{Action, Op, TxnProgram};
use bionic_btree::probe::ProbeOutcome;
use bionic_btree::tree::Footprint;
use bionic_sim::arbiter::BwClient;
use bionic_sim::energy::EnergyDomain;
use bionic_sim::mem::AccessClass;
use bionic_sim::stats::Summary;
use bionic_sim::time::SimTime;
use bionic_storage::page::RecordId;
use bionic_storage::slotted::SlottedPage;
use bionic_telemetry::attrib::{SEG_ARBITER_WAIT, SEG_COMMIT, SEG_FALLBACK, SEG_PROBE, SEG_RETRY};
use bionic_wal::record::{LogBodyRef, Lsn, TxnId};
use bionic_wal::timing::LogInsertModel;

/// Why a transaction rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A required key was absent.
    MissingKey,
    /// An insert hit an existing key.
    DuplicateKey,
    /// An update patch did not fit the record.
    PatchFailed,
    /// A two-phase-commit coordinator decided abort for this prepared
    /// branch (timeout, peer veto, or presumed abort after a crash).
    Coordinator,
}

/// Result of one transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxnOutcome {
    /// Committed and durable.
    Committed {
        /// Arrival → durable latency.
        latency: SimTime,
    },
    /// Rolled back.
    Aborted {
        /// Why.
        reason: AbortReason,
        /// Arrival → rollback-complete latency.
        latency: SimTime,
    },
    /// The crash fuse blew mid-execution ([`Engine::crash_at`]): the
    /// transaction neither committed nor rolled back — exactly the state a
    /// real crash leaves, for recovery to resolve. No latency is defined
    /// (the process "died").
    Interrupted,
}

impl TxnOutcome {
    /// Did the transaction commit?
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// Was the transaction cut short by a blown crash fuse?
    pub fn is_interrupted(&self) -> bool {
        matches!(self, TxnOutcome::Interrupted)
    }

    /// End-to-end latency ([`SimTime::ZERO`] for interrupted transactions).
    pub fn latency(&self) -> SimTime {
        match self {
            TxnOutcome::Committed { latency } | TxnOutcome::Aborted { latency, .. } => *latency,
            TxnOutcome::Interrupted => SimTime::ZERO,
        }
    }
}

/// Result of [`Engine::submit_prepared`]: the first phase of two-phase
/// commit for one local branch of a global transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrepareOutcome {
    /// Vote YES: the branch executed and its Prepare record is durable.
    /// The engine holds the branch open until [`Engine::resolve_prepared`]
    /// delivers the coordinator's decision.
    Prepared {
        /// Local transaction id (the resolve handle).
        txn: TxnId,
        /// Arrival → durable-vote latency.
        latency: SimTime,
    },
    /// Vote NO: the branch aborted locally and already rolled back; the
    /// coordinator must abort the global transaction.
    Aborted {
        /// Why.
        reason: AbortReason,
        /// Arrival → rollback-complete latency.
        latency: SimTime,
    },
    /// The crash fuse blew mid-execution; the branch is in whatever state
    /// the log says (possibly in doubt if the Prepare record made it out).
    Interrupted,
}

impl PrepareOutcome {
    /// Did the branch vote YES?
    pub fn is_prepared(&self) -> bool {
        matches!(self, PrepareOutcome::Prepared { .. })
    }
}

/// A branch that voted YES and awaits the coordinator's decision: the
/// volatile state [`Engine::resolve_prepared`] needs to finish the job.
/// (After a crash none of this survives — recovery re-derives in-doubt
/// branches from Prepare records instead.)
#[derive(Debug)]
pub(crate) struct PreparedTxn {
    undo: Vec<IndexUndo>,
    agent: usize,
    locks_taken: u64,
    wrote: bool,
}

/// Internal result of the unified submit path.
enum SubmitResult {
    Done(TxnOutcome),
    Prepared { txn: TxnId, latency: SimTime },
}

/// Volatile-index compensation for runtime aborts (the WAL undoes heap
/// state; in-memory indexes and overlays are fixed by replaying these).
#[derive(Debug)]
enum IndexUndo {
    Remove { table: u32, key: i64 },
    Reinsert { table: u32, key: i64, rid: u64 },
    SecondaryRemove { table: u32, skey: i64 },
    SecondaryReinsert { table: u32, skey: i64, pkey: i64 },
}

/// Reusable scratch buffers for the transaction hot path. One instance
/// lives on the [`Engine`]; [`Engine::submit`] and the batch planner check
/// buffers out with `mem::take`, use them, and put them back, so the
/// steady-state loop allocates nothing per transaction — buffers grow to
/// the workload's high-water mark once and stay there.
#[derive(Debug, Default)]
pub(crate) struct ExecScratch {
    undo: Vec<IndexUndo>,
    written_tables: Vec<u32>,
    op_marks: Vec<(&'static str, &'static str, SimTime, SimTime)>,
    completions: Vec<SimTime>,
    rec_before: Vec<u8>,
    rec_after: Vec<u8>,
    range_rids: Vec<u64>,
    /// Batch-planner groups, kept sorted by table id so iteration matches
    /// the `BTreeMap` order the planner used before buffer reuse.
    plan_groups: Vec<(u32, Vec<i64>)>,
}

/// Cost of one op: agent-occupying CPU time plus asynchronous tail.
#[derive(Debug, Clone, Copy, Default)]
struct OpCost {
    cpu: SimTime,
    asy: SimTime,
}

impl OpCost {
    fn add(&mut self, other: OpCost) {
        debug_assert!(other.cpu.as_secs() < 60.0, "absurd op cpu {:?}", other.cpu);
        debug_assert!(other.asy.as_secs() < 60.0, "absurd op asy {:?}", other.asy);
        self.cpu += other.cpu;
        self.asy += other.asy;
    }
}

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

// §5 unit indices into [`bionic_telemetry::UNIT_NAMES`].
const U_PROBE: usize = 0;
const U_LOG: usize = 1;
const U_QUEUE: usize = 2;
const U_OVERLAY: usize = 3;
pub(crate) const U_SCAN: usize = 4;

/// Trace label for one op (span names must be `&'static str`).
fn op_span(op: &Op) -> (&'static str, &'static str) {
    match op {
        Op::Read { .. } => ("read", Category::Btree.label()),
        Op::ReadRange { .. } => ("range-read", Category::Btree.label()),
        Op::Update { .. } => ("update", Category::Btree.label()),
        Op::Insert { .. } => ("insert", Category::Btree.label()),
        Op::Delete { .. } => ("delete", Category::Btree.label()),
        Op::Compute { .. } => ("compute", Category::Other.label()),
        Op::SecondaryRead { .. } => ("secondary-read", Category::Btree.label()),
    }
}

/// Amortized probe pricing for an in-flight [`Engine::submit_batch`].
///
/// Planning runs the batch's same-table point probes through
/// [`bionic_btree::tree::BTree::batch_get`] once (PALM \[12\]: sorted keys
/// share their descent prefix), then hands each executed probe an equal
/// integer share of the aggregate footprint. Shares conserve the aggregate
/// exactly — division floors and the final consumer takes the remainder —
/// so total charged work is independent of consumption order and fully
/// deterministic.
#[derive(Debug, Default)]
pub(crate) struct BatchPlan {
    shares: std::collections::HashMap<u32, PlanShare>,
}

#[derive(Debug)]
struct PlanShare {
    remaining: u32,
    fp: Footprint,
}

impl BatchPlan {
    fn insert(&mut self, table: u32, remaining: u32, fp: Footprint) {
        self.shares.insert(table, PlanShare { remaining, fp });
    }

    pub(crate) fn clear(&mut self) {
        self.shares.clear();
    }

    /// Take one probe's share of `table`'s planned footprint, if any.
    fn consume(&mut self, table: u32) -> Option<Footprint> {
        let entry = self.shares.get_mut(&table)?;
        let n = entry.remaining;
        let share = if n <= 1 {
            std::mem::take(&mut entry.fp)
        } else {
            let s = Footprint {
                inner_visited: entry.fp.inner_visited / n,
                leaves_visited: entry.fp.leaves_visited / n,
                comparisons: entry.fp.comparisons / n,
                splits: 0,
                merges: 0,
                borrows: 0,
            };
            entry.fp.inner_visited -= s.inner_visited;
            entry.fp.leaves_visited -= s.leaves_visited;
            entry.fp.comparisons -= s.comparisons;
            s
        };
        entry.remaining = n.saturating_sub(1);
        if entry.remaining == 0 {
            self.shares.remove(&table);
        }
        Some(share)
    }
}

impl Engine {
    // ---- charging helpers ----------------------------------------------

    /// Straight-line software work: instructions + memory accesses, charged
    /// to `cat`.
    fn sw_work(
        &mut self,
        cat: Category,
        instructions: u64,
        accesses: u64,
        class: AccessClass,
    ) -> SimTime {
        let t = self.platform.sw_step(instructions, accesses, class);
        self.breakdown.charge(cat, t);
        t
    }

    /// Memory-stall-only charge.
    fn mem_stall(&mut self, cat: Category, class: AccessClass, accesses: u64) -> SimTime {
        let t = self.platform.cpu_mem_access(class, accesses);
        self.breakdown.charge(cat, t);
        t
    }

    /// Charge raw CPU busy time (spinning, copying) to a category, with the
    /// corresponding core energy.
    fn cpu_time(&mut self, cat: Category, t: SimTime) -> SimTime {
        debug_assert!(
            t.as_secs() < 60.0,
            "absurd cpu_time charge: {t:?} to {cat:?}"
        );
        let instr_ps = self.platform.cpu.instr_time().as_ps().max(1);
        let instrs = (t.as_ps() / instr_ps).max(1);
        let e = self.platform.cpu.instr_energy() * instrs;
        self.platform.energy.charge(EnergyDomain::CpuCore, e);
        self.breakdown.charge(cat, t);
        t
    }

    /// Degraded-mode gate for one offloaded op on `unit`: consult the
    /// fault layer (when armed) and return `(delay, go)`. `delay` is the
    /// fault time the op absorbs as agent-occupying wait — watchdog
    /// expiries, CRC/ECC detection latency, retry backoff — charged to
    /// `Other` with *no* CPU energy (the core is stalled waiting, not
    /// computing; that is exactly why energy trends toward the software
    /// baseline under brownout while throughput degrades). `go` says
    /// whether the hardware path runs or this one op falls back to
    /// software. With the layer off this is `(ZERO, true)` and costs
    /// nothing: no RNG draw, no branch into the fault machinery.
    fn hw_gate(&mut self, unit: usize, cat: &'static str, now: SimTime) -> (SimTime, bool) {
        // Every caller is a hardware attempt: flag the transaction as
        // offloaded for the commit-time path classification.
        self.path_acc.offloaded = true;
        let Some(layer) = self.faults.as_mut() else {
            return (SimTime::ZERO, true);
        };
        let d = layer.unit_mut(unit).try_hw(now);
        if !d.delay.is_zero() {
            let mark = if d.hw { "hw-retry" } else { "hw-fallback" };
            self.tel.unit_busy(unit, mark, cat, now, now + d.delay);
            self.breakdown.charge(Category::Other, d.delay);
            // Watchdog/retry/backoff time is its own critical-path segment.
            self.path_acc.charge(SEG_RETRY, d.delay.as_ps());
            if d.hw {
                self.path_acc.retried = true;
            }
        }
        if !d.hw {
            self.path_acc.fell_back = true;
        }
        (d.delay, d.hw)
    }

    fn socket_of(&self, agent: usize) -> usize {
        agent / self.platform.cfg.cores_per_socket.max(1)
    }

    fn route(&self, action: &Action) -> usize {
        let h = (action.table as u64)
            .wrapping_mul(GOLDEN)
            .wrapping_add((action.route_key as u64).wrapping_mul(GOLDEN));
        ((h >> 32) % self.agents.len() as u64) as usize
    }

    // ---- index cost paths ------------------------------------------------

    /// Software probe cost from a footprint.
    fn sw_probe_cost(&mut self, fp: &Footprint) -> SimTime {
        // §5.3: "a few dozen machine instructions, mostly triplets of the
        // form load-compare-branch".
        let instr = 30 + 3 * fp.comparisons as u64;
        self.sw_work(Category::Btree, instr, 0, AccessClass::Hot)
            + self.mem_stall(Category::Btree, AccessClass::Index, fp.inner_visited as u64)
            + self.mem_stall(
                Category::Btree,
                AccessClass::PointerChase,
                fp.leaves_visited as u64,
            )
    }

    /// Probe cost, hardware or software. Returns `(cpu, async_tail)`.
    fn probe_cost(&mut self, table: u32, key: i64, fp: &Footprint, now: SimTime) -> OpCost {
        self.stats.probes += 1;
        self.stats.probe_nodes_visited += fp.nodes_visited() as u64;
        // Placement shedding routes the probe straight to the software
        // descent — no hardware attempt, so no fault-layer consultation
        // (and no RNG draw) either. Degraded mode then reroutes
        // individual faulting probes the same way.
        let hw_active = self.probe_hw.is_some() && self.placement_allows(U_PROBE);
        let (gate, go) = if hw_active {
            self.hw_gate(U_PROBE, Category::Btree.label(), now)
        } else {
            (SimTime::ZERO, true)
        };
        if !hw_active || !go {
            let sw = self.sw_probe_cost(fp);
            // Attribution: a refused hardware probe is fallback time; the
            // plain software descent (static or placement-shed) is probe
            // time.
            let seg = if hw_active { SEG_FALLBACK } else { SEG_PROBE };
            self.path_acc.charge(seg, sw.as_ps());
            let mut cpu = gate + sw;
            if self.cfg.exec == ExecModel::Conventional {
                // Latch coupling: ~10 instructions + contention at the root.
                cpu += self.sw_work(
                    Category::Btree,
                    10 * fp.nodes_visited() as u64,
                    fp.nodes_visited() as u64,
                    AccessClass::Hot,
                );
                let service = SimTime::from_ns(25.0);
                let wait = self.root_latches[table as usize].delay(now, service);
                // Wait + hold, spin-bounded (threads yield past ~5us).
                cpu += self.cpu_time(Category::Btree, wait.min(SimTime::from_us(5.0)) + service);
            }
            return OpCost {
                cpu,
                asy: SimTime::ZERO,
            };
        }
        // Hardware path: doorbell + PCIe request, pipelined probe, response.
        let cpu = gate + self.sw_work(Category::Btree, 40, 1, AccessClass::Hot);
        let levels = fp.nodes_visited().max(1);
        let miss =
            self.cfg.offloads.overlay && self.overlays[table as usize].probe_would_miss(&key);
        // Under the hybrid engine, the doorbell/response and the probe's
        // node reads contend with concurrent analytics on the link and on
        // SG-DRAM; when contention is off both delays are zero.
        let link_wait = self
            .platform
            .link_contention_delay(BwClient::Oltp, now + cpu, 64 + 16);
        let sg_wait =
            self.platform
                .sg_contention_delay(BwClient::Oltp, now + cpu, levels as u64 * 64);
        let wait = link_wait + sg_wait;
        if !wait.is_zero() {
            // The probe sat in the bandwidth arbiter before the doorbell:
            // surface it on the unit track and in the critical path.
            self.tel.unit_busy(
                U_PROBE,
                "arbiter-wait",
                Category::Btree.label(),
                now + cpu,
                now + cpu + wait,
            );
            self.path_acc.charge(SEG_ARBITER_WAIT, wait.as_ps());
        }
        let at_fpga = self.platform.pcie_send(now + cpu + link_wait + sg_wait, 64);
        let probe = self.probe_hw.as_mut().expect("checked above");
        let outcome = if miss {
            probe.submit_with_miss(at_fpga, (levels / 2).max(1), 1, &mut self.platform.sg_dram)
        } else {
            probe.submit(at_fpga, levels, 1, &mut self.platform.sg_dram)
        };
        self.platform.charge_fpga(outcome.energy());
        self.tel.unit_busy(
            U_PROBE,
            "probe",
            Category::Btree.label(),
            at_fpga,
            outcome.time(),
        );
        self.path_acc
            .charge(SEG_PROBE, outcome.time().saturating_sub(at_fpga).as_ps());
        let mut done = self.platform.pcie_send(outcome.time(), 16);
        let mut cpu_total = cpu;
        if let ProbeOutcome::Aborted { .. } = outcome {
            // §5.6: "the hardware operation aborts so that software can
            // trigger a data fetch and then retry."
            self.stats.probe_misses += 1;
            let fetch_cpu = self.sw_work(Category::Bpool, 300, 4, AccessClass::Hot);
            let fetched =
                self.platform
                    .sas_read(done + fetch_cpu, (key as u64 % 4096) * 8192, 8192);
            let at2 = self.platform.pcie_send(fetched, 64);
            let probe = self.probe_hw.as_mut().expect("checked above");
            let retry = probe.submit(at2, levels, 1, &mut self.platform.sg_dram);
            self.platform.charge_fpga(retry.energy());
            self.tel.unit_busy(
                U_PROBE,
                "probe-retry",
                Category::Btree.label(),
                at2,
                retry.time(),
            );
            self.path_acc
                .charge(SEG_PROBE, retry.time().saturating_sub(at2).as_ps());
            done = self.platform.pcie_send(retry.time(), 16);
            cpu_total += fetch_cpu;
        }
        OpCost {
            cpu: cpu_total,
            asy: done.saturating_sub(now + cpu_total),
        }
    }

    /// Index structural write cost: always software (§5.3 keeps SMOs
    /// there), plus an asynchronous FPGA-replica update when the probe
    /// engine is active.
    fn index_write_cost(&mut self, fp: &Footprint, now: SimTime) -> OpCost {
        let smo = (fp.splits + fp.merges + fp.borrows) as u64;
        let instr = 60 + 3 * fp.comparisons as u64 + 400 * smo;
        let mut cpu = self.sw_work(Category::Btree, instr, 0, AccessClass::Hot)
            + self.mem_stall(
                Category::Btree,
                AccessClass::Index,
                fp.nodes_visited() as u64 + smo,
            );
        let mut asy = SimTime::ZERO;
        if self.probe_hw.is_some() {
            // Ship the delta to the FPGA-resident index replica.
            cpu += self.sw_work(Category::Btree, 15, 0, AccessClass::Hot);
            let done = self.platform.pcie_send(now + cpu, 96 + 160 * smo);
            asy = done.saturating_sub(now + cpu);
        }
        OpCost { cpu, asy }
    }

    /// Record fetch cost (`bytes` of payload, `missed` = buffer-pool miss).
    fn record_read_cost(&mut self, bytes: usize, missed: bool, now: SimTime) -> OpCost {
        // While placement has the overlay shed, reads are served from the
        // host-side structures (which the engine maintains functionally in
        // every mode) and price through the buffer-pool path below —
        // keeping the OLTP read stream off the contended SG-DRAM port.
        if self.cfg.offloads.overlay && self.placement_allows(U_OVERLAY) {
            // Record lives in FPGA memory: one more SG round piggybacked on
            // the probe exchange.
            let cpu = self.sw_work(Category::Other, 20, 0, AccessClass::Hot);
            let rounds = bytes.div_ceil(64) as u64;
            let e = self.platform.sg_dram.charge_accesses(rounds * 8);
            self.platform.energy.charge(EnergyDomain::SgDram, e);
            let sg_wait = self
                .platform
                .sg_contention_delay(BwClient::Oltp, now + cpu, rounds * 64);
            let link_wait =
                self.platform
                    .link_contention_delay(BwClient::Oltp, now + cpu, bytes as u64);
            let wait = sg_wait + link_wait;
            if !wait.is_zero() {
                self.tel.unit_busy(
                    U_OVERLAY,
                    "arbiter-wait",
                    Category::Other.label(),
                    now + cpu,
                    now + cpu + wait,
                );
                self.path_acc.charge(SEG_ARBITER_WAIT, wait.as_ps());
            }
            let asy = SimTime::from_ns(400.0)
                + self.platform.pcie.wire_time(bytes as u64)
                + sg_wait
                + link_wait;
            return OpCost { cpu, asy };
        }
        let mut cpu = self.sw_work(Category::Bpool, 90, 3, AccessClass::Hot);
        let mut asy = SimTime::ZERO;
        if missed {
            // Synchronous page fetch from the SAS array.
            let done = self.platform.sas_read(now + cpu, 0, 8192);
            asy = done.saturating_sub(now + cpu);
            cpu += self.sw_work(Category::Bpool, 400, 8, AccessClass::Hot);
        }
        cpu += self.sw_work(
            Category::Other,
            (bytes as u64) / 8,
            (bytes as u64).div_ceil(64),
            AccessClass::PointerChase,
        );
        OpCost { cpu, asy }
    }

    /// Record write cost (patch + page write path).
    fn record_write_cost(&mut self, bytes: usize) -> SimTime {
        let pool_part = if self.cfg.offloads.overlay {
            self.sw_work(Category::Other, 25, 0, AccessClass::Hot)
        } else {
            self.sw_work(Category::Bpool, 110, 3, AccessClass::Hot)
        };
        pool_part
            + self.sw_work(
                Category::Other,
                (bytes as u64) / 8,
                (bytes as u64).div_ceil(64),
                AccessClass::PointerChase,
            )
    }

    /// Overlay delta-write cost (the FPGA overlay manager of Figure 4).
    fn overlay_write_cost(&mut self, now: SimTime) -> OpCost {
        if !self.placement_allows(U_OVERLAY) {
            // Placement-shed: price the delta through the buffer-pool
            // write path, exactly as a software-overlay configuration
            // would — no hardware attempt, no fault-layer consultation.
            // The functional overlay put at the call site is unaffected.
            let sw = self.sw_work(Category::Bpool, 110, 3, AccessClass::Hot);
            return OpCost {
                cpu: sw,
                asy: SimTime::ZERO,
            };
        }
        let (gate, go) = self.hw_gate(U_OVERLAY, Category::Bpool.label(), now);
        if !go {
            // Software fallback: the delta goes through the buffer-pool
            // write path instead — the same pool part
            // [`Engine::record_write_cost`] charges when the overlay is
            // off. The functional overlay put at the call site is
            // unaffected (pricing-only reroute).
            let sw = self.sw_work(Category::Bpool, 110, 3, AccessClass::Hot);
            self.path_acc.charge(SEG_FALLBACK, sw.as_ps());
            return OpCost {
                cpu: gate + sw,
                asy: SimTime::ZERO,
            };
        }
        let cpu = gate + self.sw_work(Category::Bpool, 30, 1, AccessClass::Hot);
        let link_wait = self
            .platform
            .link_contention_delay(BwClient::Oltp, now + cpu, 64);
        if !link_wait.is_zero() {
            self.tel.unit_busy(
                U_OVERLAY,
                "arbiter-wait",
                Category::Bpool.label(),
                now + cpu,
                now + cpu + link_wait,
            );
            self.path_acc.charge(SEG_ARBITER_WAIT, link_wait.as_ps());
        }
        let done = self.platform.pcie_send(now + cpu + link_wait, 64);
        self.tel.unit_busy(
            U_OVERLAY,
            "delta-write",
            Category::Bpool.label(),
            done,
            done + SimTime::from_ns(400.0),
        );
        OpCost {
            cpu,
            asy: (done + SimTime::from_ns(400.0)).saturating_sub(now + cpu),
        }
    }

    /// Append + price a log record. Returns `(cpu, buffered_at, lsn)`.
    ///
    /// This is also where the crash fuse ticks: every priced append counts
    /// down, and the fuse blows *after* the Nth append lands in the
    /// volatile log — the record exists in memory but nothing later (flush,
    /// rollback, further ops) will run, exactly like a process death
    /// between two store instructions.
    fn log_write(
        &mut self,
        txn: TxnId,
        body: LogBodyRef<'_>,
        agent: usize,
        now: SimTime,
    ) -> (SimTime, SimTime, Lsn) {
        let (lsn, bytes) = self.log.append_ref(txn, body);
        if let Some(f) = self.fuse.as_mut() {
            if !f.blown {
                f.remaining = f.remaining.saturating_sub(1);
                if f.remaining == 0 {
                    f.blown = true;
                }
            }
        }
        let is_hw = matches!(self.log_path, LogPath::Hardware(_));
        // Placement shedding sends the record straight to the software
        // buffer with no hardware attempt; degraded mode reroutes single
        // faulting inserts the same way after the gate says no.
        let hw_active = is_hw && self.placement_allows(U_LOG);
        let (gate, go) = if hw_active {
            self.hw_gate(U_LOG, Category::Log.label(), now)
        } else {
            (SimTime::ZERO, true)
        };
        let timing = if is_hw && !(hw_active && go) {
            // Fallback/shed: the record goes through the latch-serialized
            // software buffer (functional append already happened above —
            // only the insertion pricing reroutes).
            self.log_fallback.insert(now + gate, agent, bytes as u64)
        } else {
            self.log_path.insert(now + gate, agent, bytes as u64)
        };
        if hw_active && go {
            self.tel.unit_busy(
                U_LOG,
                "log-insert",
                Category::Log.label(),
                now + gate,
                timing.buffered_at,
            );
        }
        let insert_cpu = self.cpu_time(Category::Log, timing.cpu_busy);
        if hw_active && !go {
            // The log record rerouted through the latch-serialized software
            // buffer: its insert time is fallback, not log-engine service.
            self.path_acc.charge(SEG_FALLBACK, insert_cpu.as_ps());
        }
        let cpu = gate + insert_cpu;
        self.platform.charge_fpga(timing.energy);
        (cpu, timing.buffered_at, lsn)
    }

    fn stamp_page(&mut self, rid: RecordId, lsn: Lsn) {
        self.pool.with_page_mut(rid.page, |pg| {
            SlottedPage::attach(pg).set_lsn(lsn);
        });
    }

    /// Conventional-engine lock acquisition: hash + latch + queue checks
    /// (~300 instructions per Shore-class engines), plus contention on the
    /// central lock-manager latch.
    fn lock_cost(&mut self, now: SimTime) -> SimTime {
        let cpu = self.sw_work(Category::Lock, 300, 4, AccessClass::Hot);
        // Lock-table bucket latch + lock-state line transfer: at multi-core
        // contention levels the line rarely stays local (the effect DORA
        // removes by construction).
        let service = SimTime::from_ns(120.0);
        let wait = self.lock_latch.delay(now + cpu, service);
        cpu + self.cpu_time(Category::Lock, wait.min(SimTime::from_us(5.0)) + service)
    }

    // ---- op execution ----------------------------------------------------

    /// Probe functionally + price it. `use_plan` marks probes that were
    /// visible to [`Engine::submit_batch`] planning (the primary-key probe
    /// of Read/Update/Insert/Delete): those consume an amortized share of
    /// the batch footprint when one is available. Probes planning could not
    /// see — the primary hop of a secondary read, range descents — always
    /// price their live footprint.
    fn timed_probe(
        &mut self,
        table: u32,
        key: i64,
        now: SimTime,
        use_plan: bool,
    ) -> (Option<u64>, OpCost) {
        let (rid, live_fp) = self.tables[table as usize].index.get(&key);
        let fp = if use_plan {
            self.batch_plan.consume(table).unwrap_or(live_fp)
        } else {
            live_fp
        };
        let cost = self.probe_cost(table, key, &fp, now);
        (rid, cost)
    }

    /// Secondary-index probe: skey → primary key, priced like any probe.
    fn timed_secondary_probe(
        &mut self,
        table: u32,
        skey: i64,
        now: SimTime,
    ) -> (Option<i64>, OpCost) {
        debug_assert!(
            self.tables[table as usize].secondary_offset.is_some(),
            "secondary read on table without a secondary index"
        );
        let (pkey, fp) = self.tables[table as usize].secondary.get(&skey);
        let cost = self.probe_cost(table, skey, &fp, now);
        (pkey.map(|p| p as i64), cost)
    }

    /// Maintain the secondary index across a write. `before`/`after` are
    /// the record images (None = record absent on that side). Returns the
    /// maintenance cost; pushes compensations onto `undo`.
    fn maintain_secondary(
        &mut self,
        table: u32,
        key: i64,
        before: Option<&[u8]>,
        after: Option<&[u8]>,
        now: SimTime,
        undo: &mut Vec<IndexUndo>,
    ) -> OpCost {
        let mut cost = OpCost::default();
        let (old_skey, new_skey) = {
            let t = &self.tables[table as usize];
            if t.secondary_offset.is_none() {
                return cost;
            }
            (
                before.and_then(|r| t.secondary_key(r)),
                after.and_then(|r| t.secondary_key(r)),
            )
        };
        if old_skey == new_skey {
            return cost;
        }
        if let Some(skey) = old_skey {
            let (_, fp) = self.tables[table as usize].secondary.remove(&skey);
            let c = self.index_write_cost(&fp, now);
            cost.add(c);
            undo.push(IndexUndo::SecondaryReinsert {
                table,
                skey,
                pkey: key,
            });
        }
        if let Some(skey) = new_skey {
            let (_, fp) = self.tables[table as usize]
                .secondary
                .insert(skey, key as u64);
            let c = self.index_write_cost(&fp, now);
            cost.add(c);
            undo.push(IndexUndo::SecondaryRemove { table, skey });
        }
        cost
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_op(
        &mut self,
        txn: TxnId,
        op: &Op,
        agent: usize,
        now: SimTime,
        undo: &mut Vec<IndexUndo>,
        wrote: &mut bool,
        logged_begin: &mut bool,
        abort_on_missing_read: bool,
    ) -> (OpCost, Result<(), AbortReason>) {
        let mut cost = OpCost::default();
        if self.cfg.exec == ExecModel::Conventional {
            // Every op's target is locked before access.
            if !matches!(op, Op::Compute { .. }) {
                cost.cpu += self.lock_cost(now);
            }
        }
        let ensure_begin =
            |eng: &mut Engine, cost: &mut OpCost, logged_begin: &mut bool, t: SimTime| {
                if !*logged_begin {
                    let (cpu, _, _) = eng.log_write(txn, LogBodyRef::Begin, agent, t);
                    cost.cpu += cpu;
                    *logged_begin = true;
                }
            };
        let result = match op {
            Op::Compute { instructions } => {
                cost.cpu += self.sw_work(
                    Category::Other,
                    *instructions,
                    instructions / 10,
                    AccessClass::Hot,
                );
                Ok(())
            }
            Op::SecondaryRead { table, skey } => {
                let (pkey, c) = self.timed_secondary_probe(*table, *skey, now);
                cost.add(c);
                match pkey {
                    Some(pkey) => {
                        let (rid, c) = self.timed_probe(*table, pkey, now, false);
                        cost.add(c);
                        if let Some(rid) = rid {
                            let rid = RecordId::from_u64(rid);
                            let (len, hfp) = {
                                let t = &mut self.tables[*table as usize];
                                t.heap.record_len(&mut self.pool, rid)
                            };
                            let bytes = len.unwrap_or(0);
                            let c = self.record_read_cost(bytes, hfp.pool_misses > 0, now);
                            cost.add(c);
                        }
                        Ok(())
                    }
                    None if abort_on_missing_read => Err(AbortReason::MissingKey),
                    None => Ok(()),
                }
            }
            Op::Read { table, key } => {
                let (rid, c) = self.timed_probe(*table, *key, now, true);
                cost.add(c);
                match rid {
                    Some(rid) => {
                        let rid = RecordId::from_u64(rid);
                        let (len, hfp) = {
                            let t = &mut self.tables[*table as usize];
                            t.heap.record_len(&mut self.pool, rid)
                        };
                        let bytes = len.unwrap_or(0);
                        let c = self.record_read_cost(bytes, hfp.pool_misses > 0, now);
                        cost.add(c);
                        Ok(())
                    }
                    None if abort_on_missing_read => Err(AbortReason::MissingKey),
                    None => Ok(()),
                }
            }
            Op::ReadRange {
                table,
                lo,
                hi,
                limit,
            } => {
                let mut rids = std::mem::take(&mut self.scratch.range_rids);
                rids.clear();
                let fp = {
                    let t = &self.tables[*table as usize];
                    t.index.range(lo, hi, |_, v| {
                        if rids.len() < *limit {
                            rids.push(v);
                        }
                    })
                };
                // Descent priced like a probe; the leaf walk adds dependent
                // leaf fetches (hw: one SG round each; sw: pointer chases).
                let c = self.probe_cost(*table, *lo, &fp, now);
                cost.add(c);
                let extra_leaves = fp.leaves_visited.saturating_sub(1) as u64;
                if self.probe_hw.is_some() && self.placement_allows(U_PROBE) {
                    cost.asy += SimTime::from_ns(400.0) * extra_leaves;
                    let e = self.platform.sg_dram.charge_accesses(extra_leaves * 8);
                    self.platform.energy.charge(EnergyDomain::SgDram, e);
                    let sg_wait =
                        self.platform
                            .sg_contention_delay(BwClient::Oltp, now, extra_leaves * 64);
                    if !sg_wait.is_zero() {
                        self.tel.unit_busy(
                            U_PROBE,
                            "arbiter-wait",
                            Category::Btree.label(),
                            now,
                            now + sg_wait,
                        );
                        self.path_acc.charge(SEG_ARBITER_WAIT, sg_wait.as_ps());
                    }
                    cost.asy += sg_wait;
                } else {
                    cost.cpu +=
                        self.sw_work(Category::Btree, 4 * rids.len() as u64, 0, AccessClass::Hot);
                }
                for &rid in &rids {
                    let rid = RecordId::from_u64(rid);
                    let (len, hfp) = {
                        let t = &mut self.tables[*table as usize];
                        t.heap.record_len(&mut self.pool, rid)
                    };
                    let bytes = len.unwrap_or(0);
                    let c = self.record_read_cost(bytes, hfp.pool_misses > 0, now);
                    cost.add(c);
                }
                self.scratch.range_rids = rids;
                Ok(())
            }
            Op::Update { table, key, patch } => {
                let (rid, c) = self.timed_probe(*table, *key, now, true);
                cost.add(c);
                let Some(rid_u) = rid else {
                    return (cost, Err(AbortReason::MissingKey));
                };
                let rid = RecordId::from_u64(rid_u);
                let mut before = std::mem::take(&mut self.scratch.rec_before);
                let mut after = std::mem::take(&mut self.scratch.rec_after);
                let (blen, hfp) = {
                    let t = &mut self.tables[*table as usize];
                    t.heap.get_into(&mut self.pool, rid, &mut before)
                };
                let blen = blen.expect("index points at live record");
                let c = self.record_read_cost(blen, hfp.pool_misses > 0, now);
                cost.add(c);
                after.clear();
                after.extend_from_slice(&before);
                if patch.apply(&mut after).is_err() {
                    self.scratch.rec_before = before;
                    self.scratch.rec_after = after;
                    return (cost, Err(AbortReason::PatchFailed));
                }
                ensure_begin(self, &mut cost, logged_begin, now);
                let (new_rid, _) = {
                    let t = &mut self.tables[*table as usize];
                    t.heap
                        .update(&mut self.pool, rid, &after)
                        .expect("update fits (fixed-size records)")
                };
                cost.cpu += self.record_write_cost(after.len());
                if new_rid != rid {
                    // Record moved: log as delete+insert, repoint the index.
                    let (cpu, _, lsn1) = self.log_write(
                        txn,
                        LogBodyRef::Delete {
                            table: *table,
                            rid: rid_u,
                            before: &before,
                        },
                        agent,
                        now,
                    );
                    cost.cpu += cpu;
                    self.stamp_page(rid, lsn1);
                    let (cpu, _, lsn2) = self.log_write(
                        txn,
                        LogBodyRef::Insert {
                            table: *table,
                            rid: new_rid.to_u64(),
                            after: &after,
                        },
                        agent,
                        now,
                    );
                    cost.cpu += cpu;
                    self.stamp_page(new_rid, lsn2);
                    let (_, ifp) = self.tables[*table as usize]
                        .index
                        .insert(*key, new_rid.to_u64());
                    let c = self.index_write_cost(&ifp, now);
                    cost.add(c);
                    undo.push(IndexUndo::Reinsert {
                        table: *table,
                        key: *key,
                        rid: rid_u,
                    });
                } else {
                    let (cpu, _, lsn) = self.log_write(
                        txn,
                        LogBodyRef::Update {
                            table: *table,
                            rid: rid_u,
                            before: &before,
                            after: &after,
                        },
                        agent,
                        now,
                    );
                    cost.cpu += cpu;
                    self.stamp_page(rid, lsn);
                }
                if self.cfg.offloads.overlay {
                    let seq = self.write_seq;
                    self.write_seq += 1;
                    self.overlays[*table as usize].put(*key, new_rid.to_u64(), seq);
                    let c = self.overlay_write_cost(now);
                    cost.add(c);
                }
                let c =
                    self.maintain_secondary(*table, *key, Some(&before), Some(&after), now, undo);
                cost.add(c);
                self.scratch.rec_before = before;
                self.scratch.rec_after = after;
                *wrote = true;
                Ok(())
            }
            Op::Insert { table, key, record } => {
                let (existing, c) = self.timed_probe(*table, *key, now, true);
                cost.add(c);
                if existing.is_some() {
                    return (cost, Err(AbortReason::DuplicateKey));
                }
                ensure_begin(self, &mut cost, logged_begin, now);
                let mut full = std::mem::take(&mut self.scratch.rec_before);
                crate::table::make_record_into(*key, record, &mut full);
                let (rid, _) = {
                    let t = &mut self.tables[*table as usize];
                    t.heap.insert(&mut self.pool, &full).expect("insert fits")
                };
                cost.cpu += self.record_write_cost(full.len());
                let (cpu, _, lsn) = self.log_write(
                    txn,
                    LogBodyRef::Insert {
                        table: *table,
                        rid: rid.to_u64(),
                        after: &full,
                    },
                    agent,
                    now,
                );
                cost.cpu += cpu;
                self.stamp_page(rid, lsn);
                let (_, ifp) = self.tables[*table as usize]
                    .index
                    .insert(*key, rid.to_u64());
                let c = self.index_write_cost(&ifp, now);
                cost.add(c);
                if self.cfg.offloads.overlay {
                    let seq = self.write_seq;
                    self.write_seq += 1;
                    self.overlays[*table as usize].put(*key, rid.to_u64(), seq);
                    let c = self.overlay_write_cost(now);
                    cost.add(c);
                }
                undo.push(IndexUndo::Remove {
                    table: *table,
                    key: *key,
                });
                let c = self.maintain_secondary(*table, *key, None, Some(&full), now, undo);
                cost.add(c);
                self.scratch.rec_before = full;
                *wrote = true;
                Ok(())
            }
            Op::Delete { table, key } => {
                let (rid, c) = self.timed_probe(*table, *key, now, true);
                cost.add(c);
                let Some(rid_u) = rid else {
                    return (cost, Err(AbortReason::MissingKey));
                };
                let rid = RecordId::from_u64(rid_u);
                let mut before = std::mem::take(&mut self.scratch.rec_before);
                let (blen, hfp) = {
                    let t = &mut self.tables[*table as usize];
                    t.heap.get_into(&mut self.pool, rid, &mut before)
                };
                blen.expect("index points at live record");
                let c = self.record_read_cost(before.len(), hfp.pool_misses > 0, now);
                cost.add(c);
                ensure_begin(self, &mut cost, logged_begin, now);
                {
                    let t = &mut self.tables[*table as usize];
                    t.heap.delete(&mut self.pool, rid).expect("delete live");
                }
                cost.cpu += self.record_write_cost(0);
                let (cpu, _, lsn) = self.log_write(
                    txn,
                    LogBodyRef::Delete {
                        table: *table,
                        rid: rid_u,
                        before: &before,
                    },
                    agent,
                    now,
                );
                cost.cpu += cpu;
                self.stamp_page(rid, lsn);
                let (_, ifp) = self.tables[*table as usize].index.remove(key);
                let c = self.index_write_cost(&ifp, now);
                cost.add(c);
                if self.cfg.offloads.overlay {
                    let seq = self.write_seq;
                    self.write_seq += 1;
                    self.overlays[*table as usize].delete(*key, seq);
                    let c = self.overlay_write_cost(now);
                    cost.add(c);
                }
                undo.push(IndexUndo::Reinsert {
                    table: *table,
                    key: *key,
                    rid: rid_u,
                });
                let c = self.maintain_secondary(*table, *key, Some(&before), None, now, undo);
                cost.add(c);
                self.scratch.rec_before = before;
                *wrote = true;
                Ok(())
            }
        };
        (cost, result)
    }

    /// Roll a transaction back: WAL undo for heap state, reverse index
    /// compensation for volatile structures, CLR logging costs.
    fn rollback(
        &mut self,
        txn: TxnId,
        undo: &mut Vec<IndexUndo>,
        agent: usize,
        now: SimTime,
    ) -> SimTime {
        let mut cpu = self.sw_work(Category::Xct, 150, 3, AccessClass::Hot);
        let undone = bionic_wal::recovery::undo_txn(&mut self.log, &mut self.pool, txn);
        // Price each CLR like a small logged update.
        for _ in 0..undone {
            let is_hw = matches!(self.log_path, LogPath::Hardware(_));
            let hw_active = is_hw && self.placement_allows(U_LOG);
            let (gate, go) = if hw_active {
                self.hw_gate(U_LOG, Category::Log.label(), now + cpu)
            } else {
                (SimTime::ZERO, true)
            };
            cpu += gate;
            let timing = if is_hw && !(hw_active && go) {
                self.log_fallback.insert(now + cpu, agent, 120)
            } else {
                self.log_path.insert(now + cpu, agent, 120)
            };
            if hw_active && go {
                self.tel.unit_busy(
                    U_LOG,
                    "clr-insert",
                    Category::Log.label(),
                    now + cpu,
                    timing.buffered_at,
                );
            }
            cpu += self.cpu_time(Category::Log, timing.cpu_busy);
            self.platform.charge_fpga(timing.energy);
            cpu += self.sw_work(Category::Xct, 180, 4, AccessClass::PointerChase);
        }
        for u in undo.drain(..).rev() {
            match u {
                IndexUndo::Remove { table, key } => {
                    let (_, fp) = self.tables[table as usize].index.remove(&key);
                    let c = self.index_write_cost(&fp, now + cpu);
                    cpu += c.cpu;
                    if self.cfg.offloads.overlay {
                        let seq = self.write_seq;
                        self.write_seq += 1;
                        self.overlays[table as usize].delete(key, seq);
                    }
                }
                IndexUndo::Reinsert { table, key, rid } => {
                    let (_, fp) = self.tables[table as usize].index.insert(key, rid);
                    let c = self.index_write_cost(&fp, now + cpu);
                    cpu += c.cpu;
                    if self.cfg.offloads.overlay {
                        let seq = self.write_seq;
                        self.write_seq += 1;
                        self.overlays[table as usize].put(key, rid, seq);
                    }
                }
                IndexUndo::SecondaryRemove { table, skey } => {
                    let (_, fp) = self.tables[table as usize].secondary.remove(&skey);
                    let c = self.index_write_cost(&fp, now + cpu);
                    cpu += c.cpu;
                }
                IndexUndo::SecondaryReinsert { table, skey, pkey } => {
                    let (_, fp) = self.tables[table as usize]
                        .secondary
                        .insert(skey, pkey as u64);
                    let c = self.index_write_cost(&fp, now + cpu);
                    cpu += c.cpu;
                }
            }
        }
        cpu
    }

    /// The query-side read path of Figure 4: a range query over one table,
    /// optionally as of an earlier version (overlay mode patches history,
    /// §5.6), answered through the CPU-side result cache when possible.
    ///
    /// Returns `(row_count, served_from_cache, completion_time)`. Query
    /// execution stays in software ("query engine" sits in the GP-CPU box);
    /// only the data access is priced through the active substrate.
    pub fn query_range(
        &mut self,
        table: u32,
        lo: i64,
        hi: i64,
        asof: Option<u64>,
        now: SimTime,
    ) -> (usize, bool, SimTime) {
        let version = asof.unwrap_or(u64::MAX);
        let fingerprint = (table as u64)
            .wrapping_mul(GOLDEN)
            .wrapping_add((lo as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
            .wrapping_add((hi as u64).wrapping_mul(0x9E37_79B9))
            .wrapping_add(version);
        // Cache lookup: a hash probe plus a couple of line touches.
        let mut cpu = self.sw_work(Category::FrontEnd, 120, 3, AccessClass::Hot);
        if asof.is_none() {
            if let Some(hit) = self.result_cache.get(fingerprint) {
                let rows = u64::from_le_bytes(hit[..8].try_into().unwrap()) as usize;
                return (rows, true, now + cpu);
            }
        }
        // Execute: overlay patching when enabled, plain index otherwise.
        let mut rows = 0usize;
        if self.cfg.offloads.overlay {
            self.overlays[table as usize].range_asof(&lo, &hi, version, |_, _| rows += 1);
        } else {
            self.tables[table as usize]
                .index
                .range(&lo, &hi, |_, _| rows += 1);
        }
        // Price it like a range read + per-row merge work.
        let (_, fp) = self.tables[table as usize].index.get(&lo);
        let c = self.probe_cost(table, lo, &fp, now);
        cpu += c.cpu;
        cpu += self.sw_work(
            Category::Other,
            30 * rows as u64 + 200,
            rows as u64,
            AccessClass::Sequential,
        );
        let done = now + cpu + c.asy;
        if asof.is_none() {
            self.result_cache
                .put(fingerprint, (rows as u64).to_le_bytes().to_vec(), &[table]);
        }
        (rows, false, done)
    }

    /// Result-cache statistics (hits/misses/stale/evictions).
    pub fn result_cache_stats(&self) -> bionic_overlay::result_cache::CacheStats {
        self.result_cache.stats()
    }

    /// Latency summary of committed transactions (convenience).
    pub fn latency_summary(&self) -> Summary {
        self.stats.latency.summary()
    }

    /// Background overlay merges (§5.6's bulk merge back to disk).
    fn maybe_merge(&mut self, now: SimTime) {
        if !self.cfg.offloads.overlay {
            return;
        }
        for t in 0..self.tables.len() {
            let writes = self.overlays[t].delta_writes();
            if writes - self.merge_marks[t] >= self.cfg.merge_threshold {
                let up_to = self.write_seq;
                self.write_seq += 1;
                let report = self.overlays[t].merge(up_to);
                self.merge_marks[t] = self.overlays[t].delta_writes();
                // Bulk sequential write-back to the SAS array: background
                // I/O and fabric work, no agent time.
                self.platform
                    .sas_write(now, t as u64 * (1 << 30), report.bytes_written);
                self.platform
                    .charge_fpga(bionic_sim::energy::Energy::from_uj(
                        report.keys_merged as f64 * 0.05,
                    ));
                self.sw_work(Category::Other, 2_000, 40, AccessClass::Sequential);
                self.stats.merges += 1;
            }
        }
    }

    // ---- the main entry point ---------------------------------------------

    /// Execute one transaction arriving at `arrive`.
    pub fn submit(&mut self, program: &TxnProgram, arrive: SimTime) -> TxnOutcome {
        match self.submit_inner(program, arrive, None) {
            SubmitResult::Done(outcome) => outcome,
            SubmitResult::Prepared { .. } => unreachable!("prepare not requested"),
        }
    }

    /// Execute one local branch of a global transaction as 2PC phase one:
    /// run the program, then — instead of committing — force a durable
    /// [`bionic_wal::LogBody::Prepare`] vote and hold the branch open.
    /// A YES vote surrenders the right to unilaterally abort: the branch
    /// stays prepared until [`Engine::resolve_prepared`] delivers the
    /// coordinator's decision. Local failures (missing key, duplicate…)
    /// still abort-and-rollback immediately, which is a NO vote.
    pub fn submit_prepared(
        &mut self,
        program: &TxnProgram,
        arrive: SimTime,
        gtxn: u64,
        coord: u32,
    ) -> PrepareOutcome {
        match self.submit_inner(program, arrive, Some((gtxn, coord))) {
            SubmitResult::Prepared { txn, latency } => PrepareOutcome::Prepared { txn, latency },
            SubmitResult::Done(TxnOutcome::Aborted { reason, latency }) => {
                PrepareOutcome::Aborted { reason, latency }
            }
            SubmitResult::Done(TxnOutcome::Interrupted) => PrepareOutcome::Interrupted,
            SubmitResult::Done(TxnOutcome::Committed { .. }) => {
                unreachable!("a prepared branch never commits in phase one")
            }
        }
    }

    /// Deliver the coordinator's decision for a branch that voted YES.
    /// `commit == true` appends the Commit/End records (group-commit
    /// priced, like any local commit) and counts the branch as committed;
    /// `false` rolls it back through the ordinary undo path (CLRs and
    /// all) with [`AbortReason::Coordinator`]. `at` is when the decision
    /// message reaches this node.
    ///
    /// # Panics
    /// If `txn` is not a currently prepared branch.
    pub fn resolve_prepared(&mut self, txn: TxnId, commit: bool, at: SimTime) -> TxnOutcome {
        if self.fuse_blown() {
            return TxnOutcome::Interrupted;
        }
        let mut p = self
            .prepared
            .remove(&txn)
            .unwrap_or_else(|| panic!("resolve of unknown prepared txn {txn}"));
        let t = at;
        if commit {
            let mut commit_cpu = self.sw_work(Category::Xct, 200, 3, AccessClass::Hot);
            if self.cfg.exec == ExecModel::Conventional && p.locks_taken > 0 {
                commit_cpu += self.sw_work(
                    Category::Lock,
                    130 * p.locks_taken,
                    2 * p.locks_taken,
                    AccessClass::Hot,
                );
            }
            let done = if p.wrote {
                let (log_cpu, buffered, _) =
                    self.log_write(txn, LogBodyRef::Commit, p.agent, t + commit_cpu);
                if self.fuse_blown() {
                    return TxnOutcome::Interrupted;
                }
                commit_cpu += log_cpu;
                let bytes = self.log.unflushed_bytes().max(1);
                let (durable, e) = self.group_commit.durable_at(buffered, bytes);
                self.platform.energy.charge(EnergyDomain::Storage, e);
                self.log.flush();
                self.log.append_ref(txn, LogBodyRef::End);
                let (cstart, agent_done) = self.agents[p.agent].submit(t, commit_cpu);
                let track = self.tel.core_track(p.agent);
                self.tel
                    .span(track, "commit", Category::Log.label(), cstart, agent_done);
                agent_done.max(durable)
            } else {
                let (cstart, agent_done) = self.agents[p.agent].submit(t, commit_cpu);
                let track = self.tel.core_track(p.agent);
                self.tel
                    .span(track, "commit", Category::Xct.label(), cstart, agent_done);
                agent_done
            };
            self.stats.committed += 1;
            let latency = done - at;
            self.stats.latency.record(latency);
            self.stats.last_completion = self.stats.last_completion.max(done);
            self.maybe_merge(done);
            TxnOutcome::Committed { latency }
        } else {
            let rb_cpu = if p.wrote {
                // Undo chain tail is the Prepare record; the walk skips it
                // and compensates the data records like any runtime abort.
                self.rollback(txn, &mut p.undo, p.agent, t)
            } else {
                // Read-only branch: nothing logged, nothing to undo.
                self.sw_work(Category::Xct, 150, 3, AccessClass::Hot)
            };
            let (rstart, done) = self.agents[p.agent].submit(t, rb_cpu);
            let track = self.tel.core_track(p.agent);
            self.tel
                .span(track, "rollback", Category::Xct.label(), rstart, done);
            self.stats.aborted += 1;
            let latency = done - at;
            self.stats.last_completion = self.stats.last_completion.max(done);
            self.maybe_merge(done);
            TxnOutcome::Aborted {
                reason: AbortReason::Coordinator,
                latency,
            }
        }
    }

    /// Local transaction ids of branches currently held prepared.
    pub fn prepared_branches(&self) -> Vec<TxnId> {
        self.prepared.keys().copied().collect()
    }

    /// Durably record a coordinator-side commit decision for global
    /// transaction `gtxn` in this node's own WAL. Presumed abort makes
    /// this the *only* record a coordinator writes: no decision record
    /// means abort, so abort decisions cost nothing durable. The decision
    /// is an ordinary empty Begin/Commit/End transaction under the gtxn id
    /// (the `0x8000…` namespace keeps it disjoint from local ids), forced
    /// with a group-commit-priced flush. Returns the sim time at which the
    /// decision is stable, or `None` if the crash fuse blew mid-write — in
    /// which case recovery will answer from whatever prefix survived.
    pub fn log_decision(&mut self, gtxn: u64, at: SimTime) -> Option<SimTime> {
        if self.fuse_blown() {
            return None;
        }
        let mut cpu = self.sw_work(Category::Log, 200, 3, AccessClass::Hot);
        let (c1, _, _) = self.log_write(gtxn, LogBodyRef::Begin, 0, at + cpu);
        if self.fuse_blown() {
            return None;
        }
        cpu += c1;
        let (c2, buffered, _) = self.log_write(gtxn, LogBodyRef::Commit, 0, at + cpu);
        if self.fuse_blown() {
            return None;
        }
        cpu += c2;
        let bytes = self.log.unflushed_bytes().max(1);
        let (durable, e) = self.group_commit.durable_at(buffered, bytes);
        self.platform.energy.charge(EnergyDomain::Storage, e);
        self.log.flush();
        self.log.append_ref(gtxn, LogBodyRef::End);
        let (start, agent_done) = self.agents[0].submit(at, cpu);
        let track = self.tel.core_track(0);
        self.tel
            .span(track, "decide", Category::Log.label(), start, agent_done);
        Some(agent_done.max(durable))
    }

    fn submit_inner(
        &mut self,
        program: &TxnProgram,
        arrive: SimTime,
        prepare: Option<(u64, u32)>,
    ) -> SubmitResult {
        if self.fuse_blown() {
            // The "process" is already dead: nothing runs, nothing counts.
            return SubmitResult::Done(TxnOutcome::Interrupted);
        }
        // Adaptive placement observes on its window grid at arrival time —
        // before this transaction is priced, so the decision it runs under
        // depends only on prior windows (one branch when disarmed).
        self.placement_tick(arrive);
        self.stats.submitted += 1;
        let txn = self.next_txn;
        self.next_txn += 1;
        self.tel.set_txn(txn);
        self.path_acc.reset();
        // Per-txn energy delta for attribution: mark the ledger total now,
        // subtract at commit. Converted once to integer picojoules at
        // record time so shard merges stay exact.
        let energy_mark = if self.attrib.is_some() {
            self.platform.energy.total().as_j()
        } else {
            0.0
        };

        // Front-end: admission + routing on the dispatcher.
        let fe_cpu = self.sw_work(Category::FrontEnd, 300, 5, AccessClass::Hot);
        let (fe_start, t0) = self.router.submit(arrive, fe_cpu);
        let track = self.tel.dispatch_track();
        self.tel
            .span(track, "dispatch", Category::FrontEnd.label(), fe_start, t0);
        let mut t = t0 + self.sw_work(Category::Xct, 120, 2, AccessClass::Hot);

        let conventional_agent = if self.cfg.exec == ExecModel::Conventional {
            let a = self.rr_next % self.agents.len();
            self.rr_next += 1;
            Some(a)
        } else {
            None
        };

        // Check the scratch buffers out for this transaction — they return
        // to `self.scratch` before every exit path below.
        let mut undo = std::mem::take(&mut self.scratch.undo);
        let mut written_tables = std::mem::take(&mut self.scratch.written_tables);
        let mut op_marks = std::mem::take(&mut self.scratch.op_marks);
        let mut completions = std::mem::take(&mut self.scratch.completions);
        undo.clear();
        written_tables.clear();
        let mut wrote = false;
        let mut logged_begin = false;
        let mut abort: Option<AbortReason> = None;
        let mut interrupted = false;
        let mut last_agent = 0usize;
        let mut locks_taken = 0u64;

        'phases: for phase in &program.phases {
            completions.clear();
            for action in phase {
                let agent_idx = conventional_agent.unwrap_or_else(|| self.route(action));
                last_agent = agent_idx;
                let mut hand_off = SimTime::ZERO;
                if self.cfg.exec == ExecModel::Dora {
                    // Action creation + queue hand-off (Dora mechanics).
                    let create = self.sw_work(Category::Dora, 100, 2, AccessClass::Hot);
                    let cross = self.socket_of(agent_idx) != 0;
                    let queue_hw_active = self.queue_hw.is_some() && self.placement_allows(U_QUEUE);
                    let (gate, go) = if queue_hw_active {
                        self.hw_gate(U_QUEUE, Category::Dora.label(), t)
                    } else {
                        (SimTime::ZERO, true)
                    };
                    let tq = t + gate;
                    let (enq, deq, hw_op) = match self.queue_hw.as_mut() {
                        Some(hw) if queue_hw_active && go => {
                            let lat = hw.op_latency();
                            let e = hw.enqueue(tq);
                            let d = hw.dequeue(tq);
                            self.platform.charge_fpga(e.energy + d.energy);
                            (e.cpu_busy, d.cpu_busy, Some(lat))
                        }
                        _ => {
                            let e = self.queue_sw.enqueue(cross);
                            let d = self.queue_sw.dequeue(cross);
                            if queue_hw_active {
                                // Hardware queue refused this hand-off:
                                // software enqueue/dequeue is fallback time.
                                self.path_acc
                                    .charge(SEG_FALLBACK, (e.cpu_busy + d.cpu_busy).as_ps());
                            }
                            (e.cpu_busy, d.cpu_busy, None)
                        }
                    };
                    if let Some(lat) = hw_op {
                        // The fabric serves the enqueue/dequeue pair
                        // back-to-back; trace them as consecutive marks.
                        let dora = Category::Dora.label();
                        self.tel.unit_busy(U_QUEUE, "enqueue", dora, tq, tq + lat);
                        self.tel
                            .unit_busy(U_QUEUE, "dequeue", dora, tq + lat, tq + lat + lat);
                    }
                    self.cpu_time(Category::Dora, enq + deq);
                    hand_off = gate + create + enq + deq;
                } else {
                    locks_taken += action.ops.len() as u64;
                }
                // Execute the ops. CPU accumulates serially; asynchronous
                // tails of the ops in one action OVERLAP — the agent issues
                // every offload request of its action before waiting on the
                // rendezvous, exactly the latency-hiding §5 argues for.
                let mut cost = OpCost::default();
                let start_hint = t + hand_off;
                op_marks.clear();
                for op in &action.ops {
                    let was_write = op.is_write();
                    let cpu_before = cost.cpu;
                    let (c, res) = self.exec_op(
                        txn,
                        op,
                        agent_idx,
                        start_hint,
                        &mut undo,
                        &mut wrote,
                        &mut logged_begin,
                        program.abort_on_missing_read,
                    );
                    cost.cpu += c.cpu;
                    cost.asy = cost.asy.max(c.asy);
                    if self.tel.enabled() {
                        let (name, cat) = op_span(op);
                        op_marks.push((name, cat, cpu_before, cost.cpu));
                    }
                    if was_write && res.is_ok() {
                        if let Op::Update { table, .. }
                        | Op::Insert { table, .. }
                        | Op::Delete { table, .. } = op
                        {
                            if !written_tables.contains(table) {
                                written_tables.push(*table);
                            }
                        }
                    }
                    if let Err(reason) = res {
                        abort = Some(reason);
                        break;
                    }
                    // Crash fuse blown by one of this op's log appends: die
                    // here — no further ops, no rollback, no commit.
                    if self.fuse_blown() {
                        interrupted = true;
                        break;
                    }
                }
                let (astart, agent_done) = self.agents[agent_idx].submit(start_hint, cost.cpu);
                if self.tel.enabled() {
                    // Outer span = the action's agent occupancy; op marks
                    // nest inside it at their CPU offsets.
                    let track = self.tel.core_track(agent_idx);
                    self.tel.span(
                        track,
                        program.name,
                        Category::Xct.label(),
                        astart,
                        agent_done,
                    );
                    for &(name, cat, lo, hi) in &op_marks {
                        self.tel.span(track, name, cat, astart + lo, astart + hi);
                    }
                }
                completions.push(agent_done + cost.asy);
                if abort.is_some() || interrupted {
                    t = completions.iter().copied().max().unwrap_or(t);
                    break 'phases;
                }
            }
            t = completions.iter().copied().max().unwrap_or(t);
            if self.cfg.exec == ExecModel::Dora && phase.len() > 1 {
                // Rendezvous point joins the phase.
                t += self.sw_work(Category::Dora, 60, 1, AccessClass::Hot);
            }
        }

        let outcome = 'outcome: {
            if interrupted {
                break 'outcome SubmitResult::Done(TxnOutcome::Interrupted);
            }
            match abort {
                Some(reason) => {
                    let rb_cpu = self.rollback(txn, &mut undo, last_agent, t);
                    let (rstart, done) = self.agents[last_agent].submit(t, rb_cpu);
                    let track = self.tel.core_track(last_agent);
                    self.tel
                        .span(track, "rollback", Category::Xct.label(), rstart, done);
                    self.stats.aborted += 1;
                    let latency = done - arrive;
                    self.stats.last_completion = self.stats.last_completion.max(done);
                    SubmitResult::Done(TxnOutcome::Aborted { reason, latency })
                }
                None if prepare.is_some() => {
                    // 2PC phase one: durable Prepare vote instead of commit.
                    let (gtxn, coord) = prepare.unwrap();
                    let mut prep_cpu = self.sw_work(Category::Xct, 200, 3, AccessClass::Hot);
                    let done = if wrote {
                        let (log_cpu, buffered, _) = self.log_write(
                            txn,
                            LogBodyRef::Prepare { gtxn, coord },
                            last_agent,
                            t + prep_cpu,
                        );
                        // Torn-vote window: the Prepare record is volatile
                        // and the fuse blew before the flush — the vote
                        // never left this node; recovery sees a loser.
                        if self.fuse_blown() {
                            break 'outcome SubmitResult::Done(TxnOutcome::Interrupted);
                        }
                        prep_cpu += log_cpu;
                        let bytes = self.log.unflushed_bytes().max(1);
                        let (durable, e) = self.group_commit.durable_at(buffered, bytes);
                        self.platform.energy.charge(EnergyDomain::Storage, e);
                        self.log.flush();
                        let (cstart, agent_done) = self.agents[last_agent].submit(t, prep_cpu);
                        let track = self.tel.core_track(last_agent);
                        self.tel
                            .span(track, "prepare", Category::Log.label(), cstart, agent_done);
                        agent_done.max(durable)
                    } else {
                        let (cstart, agent_done) = self.agents[last_agent].submit(t, prep_cpu);
                        let track = self.tel.core_track(last_agent);
                        self.tel
                            .span(track, "prepare", Category::Xct.label(), cstart, agent_done);
                        agent_done
                    };
                    // Written state becomes visible to later branches on
                    // this node only at resolve; invalidate result caches
                    // now so nothing stale is served meanwhile.
                    for t in &written_tables {
                        self.result_cache.bump_table(*t);
                    }
                    self.prepared.insert(
                        txn,
                        PreparedTxn {
                            undo: std::mem::take(&mut undo),
                            agent: last_agent,
                            locks_taken,
                            wrote,
                        },
                    );
                    let latency = done - arrive;
                    self.stats.last_completion = self.stats.last_completion.max(done);
                    SubmitResult::Prepared { txn, latency }
                }
                None => {
                    // Commit.
                    let commit_start = t;
                    let mut commit_cpu = self.sw_work(Category::Xct, 200, 3, AccessClass::Hot);
                    if self.cfg.exec == ExecModel::Conventional && locks_taken > 0 {
                        commit_cpu += self.sw_work(
                            Category::Lock,
                            130 * locks_taken,
                            2 * locks_taken,
                            AccessClass::Hot,
                        );
                    }
                    let done = if wrote {
                        let (log_cpu, buffered, _) =
                            self.log_write(txn, LogBodyRef::Commit, last_agent, t + commit_cpu);
                        // Torn-commit window: the Commit record is in the
                        // volatile log but the fuse blew before the flush — the
                        // transaction is NOT durable and must lose at recovery.
                        if self.fuse_blown() {
                            break 'outcome SubmitResult::Done(TxnOutcome::Interrupted);
                        }
                        commit_cpu += log_cpu;
                        let bytes = self.log.unflushed_bytes().max(1);
                        let (durable, e) = self.group_commit.durable_at(buffered, bytes);
                        self.platform.energy.charge(EnergyDomain::Storage, e);
                        self.log.flush();
                        self.log.append_ref(txn, LogBodyRef::End);
                        let (cstart, agent_done) = self.agents[last_agent].submit(t, commit_cpu);
                        let track = self.tel.core_track(last_agent);
                        self.tel
                            .span(track, "commit", Category::Log.label(), cstart, agent_done);
                        agent_done.max(durable)
                    } else {
                        let (cstart, agent_done) = self.agents[last_agent].submit(t, commit_cpu);
                        let track = self.tel.core_track(last_agent);
                        self.tel
                            .span(track, "commit", Category::Xct.label(), cstart, agent_done);
                        agent_done
                    };
                    for t in &written_tables {
                        self.result_cache.bump_table(*t);
                    }
                    self.stats.committed += 1;
                    let latency = done - arrive;
                    self.stats.latency.record(latency);
                    self.stats.last_completion = self.stats.last_completion.max(done);
                    if let Some(attrib) = self.attrib.as_mut() {
                        self.path_acc
                            .charge(SEG_COMMIT, done.saturating_sub(commit_start).as_ps());
                        let delta_j = self.platform.energy.total().as_j() - energy_mark;
                        let pj = (delta_j * 1e12).round().max(0.0) as u64;
                        attrib.record(program.name, latency.as_ps(), pj, &self.path_acc);
                    }
                    SubmitResult::Done(TxnOutcome::Committed { latency })
                }
            }
        };
        self.scratch.undo = undo;
        self.scratch.written_tables = written_tables;
        self.scratch.op_marks = op_marks;
        self.scratch.completions = completions;
        if matches!(outcome, SubmitResult::Done(TxnOutcome::Interrupted)) {
            // A blown fuse ends the run mid-transaction: no merges, no
            // further bookkeeping (the "process" died).
            return outcome;
        }
        self.maybe_merge(t);
        outcome
    }

    /// Execute a batch of transactions, the `i`-th arriving at
    /// `arrive + i × inter`.
    ///
    /// Functionally identical to calling [`Engine::submit`] once per
    /// program — same commits, aborts, log records, and index state. The
    /// difference is probe *pricing*: same-table point probes across the
    /// batch are planned together through one PALM-style
    /// [`bionic_btree::tree::BTree::batch_get`] descent (software mode) or
    /// one amortized pass through the probe engine's outstanding-context
    /// pipeline (bionic mode), so each probe is charged its share of the
    /// shared descent instead of a full root-to-leaf walk. §5.3's "complex
    /// measure": batching is how software hides probe latency, and the
    /// comparison point for the FPGA probe engine.
    pub fn submit_batch(
        &mut self,
        programs: &[TxnProgram],
        arrive: SimTime,
        inter: SimTime,
    ) -> Vec<TxnOutcome> {
        let mut out = Vec::with_capacity(programs.len());
        self.submit_batch_with(programs.len(), arrive, inter, |i| &programs[i], &mut out);
        out
    }

    /// [`Engine::submit_batch`] over programs resolved by index — the
    /// allocation-free entry point. `get(i)` hands back the `i`-th program
    /// (typically from a caller-owned pool of reusable programs), and
    /// outcomes land in `out` (cleared first, capacity reused). Pricing and
    /// results are identical to `submit_batch` on the same sequence.
    pub fn submit_batch_with<'p>(
        &mut self,
        n: usize,
        arrive: SimTime,
        inter: SimTime,
        get: impl Fn(usize) -> &'p TxnProgram,
        out: &mut Vec<TxnOutcome>,
    ) {
        out.clear();
        self.plan_batch_with(n, &get, arrive);
        let mut at = arrive;
        for i in 0..n {
            let outcome = self.submit(get(i), at);
            let stop = outcome.is_interrupted();
            out.push(outcome);
            if stop {
                // Crash fuse blew mid-group: the rest of the batch never
                // ran. Callers see a short outcome vector.
                break;
            }
            at += inter;
        }
        // Shares left by aborted tails are dropped: the planner's aggregate
        // is an upper bound once execution diverges from the plan.
        self.batch_plan.clear();
    }

    /// Build the amortized probe plan for the batch: group planned point
    /// probes by table and run each group's batched descent once. Groups
    /// live in scratch, kept sorted by table id, so planning matches the
    /// ascending-table order of the original `BTreeMap` without allocating.
    fn plan_batch_with<'p>(
        &mut self,
        n: usize,
        get: &impl Fn(usize) -> &'p TxnProgram,
        now: SimTime,
    ) {
        self.batch_plan.clear();
        let mut groups = std::mem::take(&mut self.scratch.plan_groups);
        for g in &mut groups {
            g.1.clear();
        }
        for i in 0..n {
            for phase in &get(i).phases {
                for action in phase {
                    for op in &action.ops {
                        match op {
                            Op::Read { table, key }
                            | Op::Update { table, key, .. }
                            | Op::Insert { table, key, .. }
                            | Op::Delete { table, key } => {
                                let g = match groups.binary_search_by_key(table, |g| g.0) {
                                    Ok(g) => g,
                                    Err(g) => {
                                        groups.insert(g, (*table, Vec::new()));
                                        g
                                    }
                                };
                                groups[g].1.push(*key);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        let mut planned_keys = 0u64;
        for (table, keys) in &mut groups {
            let n = keys.len() as u32;
            if n < 2 {
                continue; // a lone probe has nothing to share with
            }
            planned_keys += n as u64;
            let (_, fp) = self.tables[*table as usize].index.batch_get(keys);
            self.batch_plan.insert(*table, n, fp);
        }
        self.scratch.plan_groups = groups;
        if planned_keys > 0 {
            // The planner's own work (gather + sort) runs on the dispatcher.
            let ilog = 64 - planned_keys.leading_zeros() as u64;
            let cpu = self.sw_work(
                Category::FrontEnd,
                planned_keys * (8 + 2 * ilog),
                planned_keys / 8,
                AccessClass::Hot,
            );
            self.router.submit(now, cpu);
        }
    }
}
