//! The seven-category time breakdown of Figure 3.
//!
//! Figure 3 decomposes transaction time in "a highly-optimized transaction
//! processing system" into: Other, Front-end, Dora, Xct mgmt, Log mgmt,
//! Btree mgmt, Bpool mgmt. The engine charges every cycle of simulated CPU
//! work to one of these categories (plus `Lock`, which is zero under DORA —
//! it exists so the conventional baseline can show what DORA eliminated),
//! and this module turns the tallies into the percentage bars the figure
//! plots.

use bionic_sim::time::SimTime;

/// Where a slice of CPU time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Category {
    /// Record manipulation, application logic, everything unclassified.
    Other,
    /// Request dispatch, routing decisions, client handling.
    FrontEnd,
    /// DORA mechanics: action creation, queues, rendezvous points.
    Dora,
    /// Transaction management: begin/commit bookkeeping, rollback.
    Xct,
    /// Log buffer insertion and commit processing.
    Log,
    /// Index probes and structural maintenance.
    Btree,
    /// Buffer pool: page lookup, pin/unpin, eviction.
    Bpool,
    /// Lock manager (conventional engine only; zero under DORA).
    Lock,
}

impl Category {
    /// All categories in Figure 3's display order (Lock appended).
    pub const ALL: [Category; 8] = [
        Category::Other,
        Category::FrontEnd,
        Category::Dora,
        Category::Xct,
        Category::Log,
        Category::Btree,
        Category::Bpool,
        Category::Lock,
    ];

    /// Label as printed in Figure 3.
    pub fn label(self) -> &'static str {
        match self {
            Category::Other => "Other",
            Category::FrontEnd => "Front-end",
            Category::Dora => "Dora",
            Category::Xct => "Xct mgmt",
            Category::Log => "Log mgmt",
            Category::Btree => "Btree mgmt",
            Category::Bpool => "Bpool mgmt",
            Category::Lock => "Lock mgmt",
        }
    }
}

/// Accumulated CPU time per category.
#[derive(Debug, Clone, Default)]
pub struct TimeBreakdown {
    slices: [SimTime; 8],
}

impl TimeBreakdown {
    /// All-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `t` of CPU time to `cat`.
    #[inline]
    pub fn charge(&mut self, cat: Category, t: SimTime) {
        self.slices[cat as usize] += t;
    }

    /// Time charged to one category.
    pub fn get(&self, cat: Category) -> SimTime {
        self.slices[cat as usize]
    }

    /// Total across all categories.
    pub fn total(&self) -> SimTime {
        self.slices.iter().copied().sum()
    }

    /// Percentage share of each category (sums to ~100).
    pub fn percentages(&self) -> Vec<(Category, f64)> {
        let total = self.total().as_ps() as f64;
        Category::ALL
            .iter()
            .map(|&c| {
                let share = if total == 0.0 {
                    0.0
                } else {
                    100.0 * self.get(c).as_ps() as f64 / total
                };
                (c, share)
            })
            .collect()
    }

    /// Share of one category in `[0, 1]`.
    pub fn fraction(&self, cat: Category) -> f64 {
        let total = self.total().as_ps() as f64;
        if total == 0.0 {
            0.0
        } else {
            self.get(cat).as_ps() as f64 / total
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        for (a, b) in self.slices.iter_mut().zip(&other.slices) {
            *a += *b;
        }
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &TimeBreakdown) -> TimeBreakdown {
        let mut out = TimeBreakdown::new();
        for (i, s) in out.slices.iter_mut().enumerate() {
            *s = self.slices[i] - earlier.slices[i];
        }
        out
    }

    /// Render as a Figure-3-style table row set.
    pub fn table(&self) -> String {
        let mut out = String::new();
        for (c, pct) in self.percentages() {
            out.push_str(&format!(
                "{:<11} {:>6.2}%  {}\n",
                c.label(),
                pct,
                self.get(c)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut b = TimeBreakdown::new();
        b.charge(Category::Btree, SimTime::from_ns(40.0));
        b.charge(Category::Btree, SimTime::from_ns(10.0));
        b.charge(Category::Log, SimTime::from_ns(50.0));
        assert_eq!(b.get(Category::Btree).as_ns(), 50.0);
        assert_eq!(b.total().as_ns(), 100.0);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut b = TimeBreakdown::new();
        for (i, c) in Category::ALL.iter().enumerate() {
            b.charge(*c, SimTime::from_ns((i + 1) as f64));
        }
        let sum: f64 = b.percentages().iter().map(|(_, p)| p).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((b.fraction(Category::Lock) - 8.0 / 36.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let b = TimeBreakdown::new();
        assert_eq!(b.total(), SimTime::ZERO);
        assert!(b.percentages().iter().all(|&(_, p)| p == 0.0));
    }

    #[test]
    fn merge_and_since_are_inverses() {
        let mut a = TimeBreakdown::new();
        a.charge(Category::Dora, SimTime::from_ns(5.0));
        let snap = a.clone();
        a.charge(Category::Dora, SimTime::from_ns(7.0));
        a.charge(Category::Xct, SimTime::from_ns(3.0));
        let delta = a.since(&snap);
        assert_eq!(delta.get(Category::Dora).as_ns(), 7.0);
        assert_eq!(delta.get(Category::Xct).as_ns(), 3.0);
        let mut rebuilt = snap.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.total(), a.total());
    }

    #[test]
    fn table_renders_all_labels() {
        let mut b = TimeBreakdown::new();
        b.charge(Category::Bpool, SimTime::from_us(1.0));
        let t = b.table();
        for c in Category::ALL {
            assert!(t.contains(c.label()), "missing {}", c.label());
        }
        assert!(t.contains("100.00%"));
    }
}
