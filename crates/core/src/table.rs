//! Tables: heap storage plus a primary B+tree index.
//!
//! Every record follows one convention: **its first 8 bytes are its primary
//! key** (little-endian i64). That makes indexes rebuildable from heap scans
//! after recovery — exactly the "index re-org … stays in software" division
//! of Figure 4.

use bionic_btree::tree::BTree;
use bionic_storage::bufferpool::BufferPool;
use bionic_storage::heap::HeapFile;
use bionic_storage::page::{PageId, RecordId};

/// Read the embedded primary key from a record image.
pub fn record_key(record: &[u8]) -> i64 {
    i64::from_le_bytes(record[..8].try_into().expect("record shorter than key"))
}

/// Prefix a record body with its key, forming a full record image.
pub fn make_record(key: i64, body: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(8 + body.len());
    make_record_into(key, body, &mut rec);
    rec
}

/// [`make_record`] into a caller-supplied buffer (cleared first) — the
/// hot path reuses one scratch buffer instead of allocating per insert.
pub fn make_record_into(key: i64, body: &[u8], rec: &mut Vec<u8>) {
    rec.clear();
    rec.extend_from_slice(&key.to_le_bytes());
    rec.extend_from_slice(body);
}

/// A table: heap file + primary index (key → packed [`RecordId`]), with an
/// optional secondary index over an embedded `i64` field (secondary key →
/// primary key) — e.g. TATP's `sub_nbr → s_id`.
#[derive(Debug, Default)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Base record storage.
    pub heap: HeapFile,
    /// Primary index.
    pub index: BTree<i64>,
    /// Byte offset (within the full record image) of the indexed secondary
    /// field, if any.
    pub secondary_offset: Option<usize>,
    /// Secondary index: field value → primary key. Unique.
    pub secondary: BTree<i64>,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            heap: HeapFile::new(),
            index: BTree::new(),
            secondary_offset: None,
            secondary: BTree::new(),
        }
    }

    /// An empty table with a secondary index over the i64 at `offset`.
    pub fn with_secondary(name: impl Into<String>, offset: usize) -> Self {
        Table {
            secondary_offset: Some(offset),
            ..Self::new(name)
        }
    }

    /// Extract the secondary key from a record image, if configured.
    pub fn secondary_key(&self, record: &[u8]) -> Option<i64> {
        self.secondary_offset.map(|off| {
            i64::from_le_bytes(record[off..off + 8].try_into().expect("secondary field"))
        })
    }

    /// Rebuild the index(es) from the heap (post-recovery). The heap's page
    /// list must already be restored.
    pub fn rebuild_index(&mut self, pool: &mut BufferPool) -> usize {
        let mut pairs: Vec<(i64, u64)> = Vec::new();
        let mut sec_pairs: Vec<(i64, u64)> = Vec::new();
        let offset = self.secondary_offset;
        self.heap.scan(pool, |rid, rec| {
            let key = record_key(rec);
            pairs.push((key, rid.to_u64()));
            if let Some(off) = offset {
                let skey = i64::from_le_bytes(rec[off..off + 8].try_into().unwrap());
                sec_pairs.push((skey, key as u64));
            }
        });
        pairs.sort_unstable_by_key(|&(k, _)| k);
        let n = pairs.len();
        self.index = BTree::bulk_load(pairs, 256, 0.8);
        if offset.is_some() {
            sec_pairs.sort_unstable_by_key(|&(k, _)| k);
            self.secondary = BTree::bulk_load(sec_pairs, 256, 0.8);
        }
        n
    }

    /// Restore the heap's page list from recovered page ids.
    pub fn restore_pages(&mut self, pages: &[u64]) {
        self.heap = HeapFile::new();
        for &p in pages {
            self.heap.adopt_page(PageId(p));
        }
    }

    /// Fetch a record by key (index probe + heap read), untimed — loaders
    /// and tests use this; the engine's timed paths live in `exec`.
    pub fn get(&self, pool: &mut BufferPool, key: i64) -> Option<Vec<u8>> {
        let (rid, _) = self.index.get(&key);
        rid.and_then(|r| self.heap.get(pool, RecordId::from_u64(r)).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_storage::disk::DiskManager;

    #[test]
    fn record_key_round_trip() {
        let rec = make_record(-42, b"body");
        assert_eq!(record_key(&rec), -42);
        assert_eq!(&rec[8..], b"body");
    }

    #[test]
    fn rebuild_index_from_heap() {
        let mut pool = BufferPool::new(64, DiskManager::new());
        let mut t = Table::new("test");
        for k in 0..500i64 {
            let rec = make_record(k, format!("row {k}").as_bytes());
            let (rid, _) = t.heap.insert(&mut pool, &rec).unwrap();
            t.index.insert(k, rid.to_u64());
        }
        // Wipe and rebuild.
        t.index = BTree::new();
        assert_eq!(t.get(&mut pool, 250), None);
        let n = t.rebuild_index(&mut pool);
        assert_eq!(n, 500);
        assert_eq!(t.get(&mut pool, 250).unwrap(), make_record(250, b"row 250"));
        t.index.check_invariants().unwrap();
    }

    #[test]
    fn secondary_index_rebuilds_too() {
        let mut pool = BufferPool::new(64, DiskManager::new());
        // Secondary field: i64 at offset 8 (first body field) = key * 7.
        let mut t = Table::with_secondary("test", 8);
        for k in 0..200i64 {
            let rec = make_record(k, &(k * 7).to_le_bytes());
            let (rid, _) = t.heap.insert(&mut pool, &rec).unwrap();
            t.index.insert(k, rid.to_u64());
            let skey = t.secondary_key(&rec).unwrap();
            assert_eq!(skey, k * 7);
            t.secondary.insert(skey, k as u64);
        }
        t.secondary = BTree::new();
        t.rebuild_index(&mut pool);
        assert_eq!(t.secondary.len(), 200);
        assert_eq!(t.secondary.get(&700).0, Some(100));
        t.secondary.check_invariants().unwrap();
    }
}
