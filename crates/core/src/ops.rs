//! Transaction programs: the unit of work the engine executes.
//!
//! OLTP transactions are canned programs (TATP and TPC-C are exactly that),
//! so a program here is data, not code: phases of [`Action`]s, each action
//! routed to one logical partition (DORA's decomposition \[10\]) and carrying
//! a straight-line list of [`Op`]s. Updates express their new value as a
//! [`Patch`] over the current record, which is how TATP flips subscriber
//! bits and TPC-C decrements stock quantities without closures.

/// How an update transforms the existing record image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Patch {
    /// Replace `bytes.len()` bytes starting at `offset`.
    Splice {
        /// Byte offset into the record.
        offset: usize,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// Add `delta` to the little-endian i64 at `offset`.
    AddI64 {
        /// Byte offset of the counter field.
        offset: usize,
        /// Signed increment.
        delta: i64,
    },
    /// Replace the whole record.
    Overwrite(Vec<u8>),
}

/// Error applying a patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchOutOfBounds;

impl core::fmt::Display for PatchOutOfBounds {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "patch exceeds record bounds")
    }
}

impl std::error::Error for PatchOutOfBounds {}

impl Patch {
    /// Apply to a record image.
    pub fn apply(&self, record: &mut Vec<u8>) -> Result<(), PatchOutOfBounds> {
        match self {
            Patch::Splice { offset, bytes } => {
                let end = offset + bytes.len();
                if end > record.len() {
                    return Err(PatchOutOfBounds);
                }
                record[*offset..end].copy_from_slice(bytes);
                Ok(())
            }
            Patch::AddI64 { offset, delta } => {
                let end = offset + 8;
                if end > record.len() {
                    return Err(PatchOutOfBounds);
                }
                let cur = i64::from_le_bytes(record[*offset..end].try_into().unwrap());
                record[*offset..end].copy_from_slice(&cur.wrapping_add(*delta).to_le_bytes());
                Ok(())
            }
            Patch::Overwrite(bytes) => {
                *record = bytes.clone();
                Ok(())
            }
        }
    }

    /// Approximate bytes the patch touches (for cost modeling).
    pub fn touched_bytes(&self) -> usize {
        match self {
            Patch::Splice { bytes, .. } => bytes.len(),
            Patch::AddI64 { .. } => 8,
            Patch::Overwrite(bytes) => bytes.len(),
        }
    }
}

/// One primitive database operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point read: probe the index, fetch the record.
    Read {
        /// Target table.
        table: u32,
        /// Primary key.
        key: i64,
    },
    /// Range read: scan `lo..hi` (up to `limit` rows), fetching each record.
    ReadRange {
        /// Target table.
        table: u32,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Maximum rows to fetch.
        limit: usize,
    },
    /// Read-modify-write of one record.
    Update {
        /// Target table.
        table: u32,
        /// Primary key.
        key: i64,
        /// Transformation of the record image.
        patch: Patch,
    },
    /// Insert a new record (aborts the transaction on duplicate key).
    Insert {
        /// Target table.
        table: u32,
        /// Primary key.
        key: i64,
        /// Record image.
        record: Vec<u8>,
    },
    /// Delete a record (aborts the transaction if missing).
    Delete {
        /// Target table.
        table: u32,
        /// Primary key.
        key: i64,
    },
    /// Pure application logic (instruction count).
    Compute {
        /// Instructions executed.
        instructions: u64,
    },
    /// Point read through the table's secondary index: resolve the
    /// secondary key to a primary key, then fetch the record (two probes).
    SecondaryRead {
        /// Target table (must have a secondary index).
        table: u32,
        /// Secondary key value.
        skey: i64,
    },
}

impl Op {
    /// Is this op a write (needs logging and undo)?
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Op::Update { .. } | Op::Insert { .. } | Op::Delete { .. }
        )
    }
}

/// A routed unit of work: runs entirely on one logical partition's agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Action {
    /// Table whose partition map routes this action.
    pub table: u32,
    /// Routing key (determines the owning partition).
    pub route_key: i64,
    /// Straight-line operations.
    pub ops: Vec<Op>,
}

impl Action {
    /// Convenience constructor.
    pub fn new(table: u32, route_key: i64, ops: Vec<Op>) -> Self {
        Action {
            table,
            route_key,
            ops,
        }
    }
}

/// A complete transaction: phases execute in order, actions within a phase
/// in parallel (joined at a rendezvous point, as in DORA \[10\]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnProgram {
    /// Program name (for reports).
    pub name: &'static str,
    /// Ordered phases of parallel actions.
    pub phases: Vec<Vec<Action>>,
    /// Abort the whole transaction when a `Read` misses (TATP semantics for
    /// several transactions); writes always abort on missing/duplicate.
    pub abort_on_missing_read: bool,
}

impl Default for TxnProgram {
    /// An empty program, the blank slot the reusable-fill APIs (e.g.
    /// generator `program_into` paths) write into.
    fn default() -> Self {
        TxnProgram {
            name: "",
            phases: Vec::new(),
            abort_on_missing_read: false,
        }
    }
}

impl TxnProgram {
    /// Single-phase program.
    pub fn single_phase(name: &'static str, actions: Vec<Action>) -> Self {
        TxnProgram {
            name,
            phases: vec![actions],
            abort_on_missing_read: false,
        }
    }

    /// Total ops across all phases.
    pub fn op_count(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| p.iter())
            .map(|a| a.ops.len())
            .sum()
    }

    /// Does the program contain any write?
    pub fn is_read_only(&self) -> bool {
        !self
            .phases
            .iter()
            .flat_map(|p| p.iter())
            .flat_map(|a| a.ops.iter())
            .any(Op::is_write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_patch() {
        let mut rec = b"hello world".to_vec();
        Patch::Splice {
            offset: 6,
            bytes: b"rusty".to_vec(),
        }
        .apply(&mut rec)
        .unwrap();
        assert_eq!(rec, b"hello rusty");
    }

    #[test]
    fn splice_out_of_bounds() {
        let mut rec = vec![0u8; 4];
        let err = Patch::Splice {
            offset: 2,
            bytes: vec![1, 2, 3],
        }
        .apply(&mut rec);
        assert_eq!(err, Err(PatchOutOfBounds));
        assert_eq!(rec, vec![0u8; 4], "failed patch must not modify");
    }

    #[test]
    fn add_i64_patch() {
        let mut rec = vec![0u8; 16];
        rec[8..16].copy_from_slice(&100i64.to_le_bytes());
        Patch::AddI64 {
            offset: 8,
            delta: -30,
        }
        .apply(&mut rec)
        .unwrap();
        assert_eq!(i64::from_le_bytes(rec[8..16].try_into().unwrap()), 70);
    }

    #[test]
    fn add_i64_wraps_not_panics() {
        let mut rec = i64::MAX.to_le_bytes().to_vec();
        Patch::AddI64 {
            offset: 0,
            delta: 1,
        }
        .apply(&mut rec)
        .unwrap();
        assert_eq!(i64::from_le_bytes(rec[..].try_into().unwrap()), i64::MIN);
    }

    #[test]
    fn overwrite_patch_resizes() {
        let mut rec = vec![1u8; 4];
        Patch::Overwrite(vec![9u8; 10]).apply(&mut rec).unwrap();
        assert_eq!(rec, vec![9u8; 10]);
    }

    #[test]
    fn program_classification() {
        let ro = TxnProgram::single_phase(
            "ro",
            vec![Action::new(0, 1, vec![Op::Read { table: 0, key: 1 }])],
        );
        assert!(ro.is_read_only());
        assert_eq!(ro.op_count(), 1);

        let rw = TxnProgram::single_phase(
            "rw",
            vec![Action::new(
                0,
                1,
                vec![
                    Op::Read { table: 0, key: 1 },
                    Op::Update {
                        table: 0,
                        key: 1,
                        patch: Patch::AddI64 {
                            offset: 0,
                            delta: 1,
                        },
                    },
                ],
            )],
        );
        assert!(!rw.is_read_only());
        assert!(rw.phases[0][0].ops[1].is_write());
    }
}
