//! The bionic transaction engine: state, construction, loading, restart.
//!
//! The engine assembles every subsystem of Figure 4 around a
//! [`Platform`]: DORA partition agents over action queues, tables with
//! B+tree indexes, the WAL with a pluggable insertion model, the optional
//! FPGA units (tree probe, log insertion, queue engine, overlay manager),
//! and the seven-category profiler of Figure 3. Execution lives in
//! [`crate::exec`].
//!
//! ### Functional/timing split
//!
//! Transactions are *functionally* executed one at a time in arrival order
//! (records really change, the log really grows, aborts really undo), while
//! *timing* flows through per-agent FIFO servers and the hardware pipeline
//! models, which overlap transactions the way the real system would. This
//! is sound for DORA specifically because partition ownership already
//! serializes conflicting work per partition \[10\]; it is the standard
//! functional-first/timing-second simulator decoupling.

use crate::breakdown::TimeBreakdown;
use crate::config::{EngineConfig, LogImpl};
use crate::degrade::{FaultLayer, FaultUnitReport};
use crate::table::Table;
use bionic_btree::probe::ProbeEngine;
use bionic_overlay::overlay::OverlayIndex;
use bionic_overlay::result_cache::ResultCache;
use bionic_queue::timing::{HwQueueTiming, SwQueueTiming};
use bionic_sim::platform::{Platform, PlatformConfig};
use bionic_sim::server::{FluidQueue, Server};
use bionic_sim::stats::Histogram;
use bionic_sim::time::SimTime;
use bionic_storage::bufferpool::BufferPool;
use bionic_storage::disk::DiskManager;
use bionic_telemetry::Telemetry;
use bionic_wal::manager::LogManager;
use bionic_wal::recovery::RecoveryOutcome;
use bionic_wal::timing::{
    ConsolidatedLog, GroupCommit, HwLog, InsertTiming, LatchedLog, LogInsertModel, SwLogParams,
};
use bionic_wal::TxnId;

/// The pluggable log-insertion path.
pub(crate) enum LogPath {
    /// Latch-serialized software buffer.
    Latched(LatchedLog),
    /// Consolidation-array software buffer.
    Consolidated(ConsolidatedLog),
    /// Hardware insertion engine.
    Hardware(HwLog),
}

impl LogPath {
    pub(crate) fn insert(&mut self, arrive: SimTime, agent: usize, bytes: u64) -> InsertTiming {
        match self {
            LogPath::Latched(m) => m.insert(arrive, agent, bytes),
            LogPath::Consolidated(m) => m.insert(arrive, agent, bytes),
            LogPath::Hardware(m) => m.insert(arrive, agent, bytes),
        }
    }
}

/// Aggregate run statistics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Transactions submitted.
    pub submitted: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (rolled back).
    pub aborted: u64,
    /// End-to-end (arrival → durable) latency of committed transactions.
    pub latency: Histogram,
    /// Completion time of the latest transaction.
    pub last_completion: SimTime,
    /// Overlay bulk merges performed.
    pub merges: u64,
    /// Hardware probe aborts (non-resident data).
    pub probe_misses: u64,
    /// Index probes priced (point descents; range descents count once).
    pub probes: u64,
    /// Total index nodes charged across those probes. With batched submit
    /// the PALM amortization shows up here as fewer nodes per probe.
    pub probe_nodes_visited: u64,
}

impl EngineStats {
    fn new() -> Self {
        EngineStats {
            submitted: 0,
            committed: 0,
            aborted: 0,
            latency: Histogram::new(),
            last_completion: SimTime::ZERO,
            merges: 0,
            probe_misses: 0,
            probes: 0,
            probe_nodes_visited: 0,
        }
    }

    /// Committed transactions per simulated second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.last_completion.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.last_completion.as_secs()
        }
    }
}

/// What survives a crash: the disk image, the durable log, and the catalog.
pub struct CrashImage {
    pub(crate) disk: DiskManager,
    pub(crate) log: Vec<u8>,
    pub(crate) log_base: bionic_wal::Lsn,
    pub(crate) table_names: Vec<String>,
    pub(crate) secondary_offsets: Vec<Option<usize>>,
    /// Per-table heap extent maps. Real systems keep these in durable
    /// catalog pages; modeling them as crash-surviving is the same
    /// simplification as durable page-allocation metadata (DESIGN.md).
    pub(crate) heap_pages: Vec<Vec<u64>>,
}

impl CrashImage {
    /// The surviving durable log bytes (read access, e.g. for an oracle
    /// scanning the commit records that actually reached stable storage).
    pub fn log_bytes(&self) -> &[u8] {
        &self.log
    }

    /// Mutable access to the surviving log bytes — the fault-injection
    /// layer uses this to tear the tail or flip bits "on disk" between
    /// crash and restart.
    pub fn log_mut(&mut self) -> &mut Vec<u8> {
        &mut self.log
    }

    /// LSN of the first surviving log byte.
    pub fn log_base(&self) -> bionic_wal::Lsn {
        self.log_base
    }
}

/// A deterministic crash fuse (see [`Engine::crash_at`]): counts priced log
/// appends down to zero, then "blows" — execution halts at the next
/// interruption point exactly as if the process died there.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CrashFuse {
    pub(crate) remaining: u64,
    pub(crate) blown: bool,
}

/// The engine.
pub struct Engine {
    /// Configuration (fixed at construction).
    pub cfg: EngineConfig,
    /// The modeled hardware platform (time/energy accounting).
    pub platform: Platform,
    pub(crate) pool: BufferPool,
    pub(crate) tables: Vec<Table>,
    pub(crate) overlays: Vec<OverlayIndex<i64>>,
    pub(crate) log: LogManager,
    pub(crate) log_path: LogPath,
    pub(crate) group_commit: GroupCommit,
    pub(crate) agents: Vec<Server>,
    pub(crate) rr_next: usize,
    pub(crate) router: Server,
    pub(crate) probe_hw: Option<ProbeEngine>,
    pub(crate) queue_sw: SwQueueTiming,
    pub(crate) queue_hw: Option<HwQueueTiming>,
    /// Conventional mode: the lock-manager latch.
    pub(crate) lock_latch: FluidQueue,
    /// Conventional mode: per-table index root latches.
    pub(crate) root_latches: Vec<FluidQueue>,
    /// CPU-side cache of query results (§5.6's second data pool).
    pub(crate) result_cache: ResultCache,
    /// Figure-3 CPU time accounting.
    pub breakdown: TimeBreakdown,
    /// Sim-time span recorder and metrics (disabled by default; see
    /// [`Engine::enable_telemetry`]).
    pub tel: Telemetry,
    /// Run statistics.
    pub stats: EngineStats,
    pub(crate) next_txn: TxnId,
    pub(crate) write_seq: u64,
    pub(crate) merge_marks: Vec<u64>,
    /// Amortized probe shares for an in-flight [`Engine::submit_batch`].
    pub(crate) batch_plan: crate::exec::BatchPlan,
    /// Armed crash fuse, if any (see [`Engine::crash_at`]).
    pub(crate) fuse: Option<CrashFuse>,
    /// Degraded-mode layer (watchdog/retry/breaker per unit); `None`
    /// unless [`EngineConfig::hw_faults`] is set.
    pub(crate) faults: Option<FaultLayer>,
    /// Adaptive placement controller (see [`crate::placement`]); `None`
    /// unless [`EngineConfig::placement`] is set.
    pub(crate) placement: Option<crate::placement::PlacementController>,
    /// Software log-insert model used when a hardware log insert falls
    /// back (constructed with the same parameters as the `Latched` path,
    /// so fallback pricing matches the software baseline).
    pub(crate) log_fallback: LatchedLog,
    /// Branches prepared under two-phase commit, keyed by local txn id,
    /// awaiting the coordinator's decision (see
    /// [`Engine::submit_prepared`] / [`Engine::resolve_prepared`]).
    pub(crate) prepared: std::collections::BTreeMap<TxnId, crate::exec::PreparedTxn>,
    /// Reusable hot-path buffers (see [`crate::exec::ExecScratch`]).
    pub(crate) scratch: crate::exec::ExecScratch,
    /// Per-transaction critical-path accumulator (reset at each submit;
    /// charged along the execution path, flushed at commit).
    pub(crate) path_acc: bionic_telemetry::TxnPathAcc,
    /// Commit-time latency/energy attribution ledger per transaction class
    /// × offload path. `None` = disabled, zero hot-path cost (see
    /// [`Engine::enable_attribution`]).
    pub(crate) attrib: Option<bionic_telemetry::Attribution>,
}

impl Engine {
    /// Build an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let sockets = 2usize;
        let cores_per_socket = cfg.agents.div_ceil(sockets).max(1);
        let platform = Platform::hc2_with(PlatformConfig {
            sockets,
            cores_per_socket,
            socket_hop: SimTime::from_ns(120.0),
            seed: cfg.seed,
        });
        let mut fabric_platform = platform;
        fabric_platform.cpu = bionic_sim::cpu::CpuModel::new(
            2.5e9,
            1.0,
            bionic_sim::energy::Energy::from_nj(cfg.cpu_nj_per_instr),
        );
        fabric_platform.sg_dram = bionic_sim::mem::SgDram::new(
            80e9,
            SimTime::from_ns(400.0),
            8,
            4096,
            bionic_sim::energy::Energy::from_nj(cfg.sg_nj_per_access),
        );
        let sw_log_params = SwLogParams {
            cores_per_socket,
            ..SwLogParams::default()
        };
        let log_path = match cfg.offloads.log {
            LogImpl::Latched => LogPath::Latched(LatchedLog::new(sw_log_params)),
            LogImpl::Consolidated => LogPath::Consolidated(ConsolidatedLog::new(sw_log_params)),
            LogImpl::Hardware => LogPath::Hardware(
                HwLog::hc2(&mut fabric_platform.fabric).expect("fabric fits the log engine"),
            ),
        };
        let probe_hw = cfg.offloads.probe.then(|| {
            ProbeEngine::hc2(&mut fabric_platform.fabric).expect("fabric fits the probe engine")
        });
        let queue_hw = cfg.offloads.queue.then(|| {
            HwQueueTiming::hc2(&mut fabric_platform.fabric).expect("fabric fits the queue engine")
        });
        Engine {
            pool: BufferPool::new(cfg.pool_pages, DiskManager::new()),
            tables: Vec::new(),
            overlays: Vec::new(),
            log: LogManager::new(),
            log_path,
            group_commit: GroupCommit::new(cfg.group_commit, bionic_sim::dev::BlockDevice::ssd()),
            agents: vec![Server::new(); cfg.agents],
            rr_next: 0,
            router: Server::new(),
            probe_hw,
            queue_sw: SwQueueTiming::default(),
            queue_hw,
            lock_latch: FluidQueue::latch(),
            root_latches: Vec::new(),
            result_cache: ResultCache::new(16 << 20),
            breakdown: TimeBreakdown::new(),
            tel: Telemetry::disabled(),
            stats: EngineStats::new(),
            next_txn: 1,
            write_seq: 1,
            merge_marks: Vec::new(),
            batch_plan: crate::exec::BatchPlan::default(),
            fuse: None,
            faults: cfg
                .hw_faults
                .as_ref()
                .map(|fc| FaultLayer::new(fc, cfg.seed)),
            placement: cfg
                .placement
                .clone()
                .map(crate::placement::PlacementController::new),
            log_fallback: LatchedLog::new(sw_log_params),
            prepared: std::collections::BTreeMap::new(),
            scratch: crate::exec::ExecScratch::default(),
            path_acc: bionic_telemetry::TxnPathAcc::default(),
            attrib: None,
            platform: fabric_platform,
            cfg,
        }
    }

    /// Arm the crash fuse: the engine will simulate dying mid-execution
    /// after `appends` more priced log appends (Begin/Insert/Update/Delete/
    /// Commit records — the writes a transaction's forward path makes).
    /// Once blown, in-flight work stops at the next interruption point:
    /// [`crate::exec::TxnOutcome::Interrupted`] is returned, no rollback or
    /// commit processing runs, and the caller is expected to
    /// [`Engine::crash`] the engine. `appends == 0` blows immediately.
    ///
    /// This is the event-granular crash point the fault-injection harness
    /// schedules: it lands *inside* a transaction (between its log writes),
    /// not at the clean submit boundaries every other test path uses.
    pub fn crash_at(&mut self, appends: u64) {
        self.fuse = Some(CrashFuse {
            remaining: appends,
            blown: appends == 0,
        });
    }

    /// Has an armed crash fuse blown? (Always false when never armed.)
    pub fn fuse_blown(&self) -> bool {
        self.fuse.is_some_and(|f| f.blown)
    }

    /// Create a table; returns its id.
    pub fn create_table(&mut self, name: impl Into<String>) -> u32 {
        self.register(Table::new(name))
    }

    /// Create a table with a secondary index over the i64 field at byte
    /// `offset` of the record image; returns its id.
    pub fn create_table_with_secondary(&mut self, name: impl Into<String>, offset: usize) -> u32 {
        self.register(Table::with_secondary(name, offset))
    }

    fn register(&mut self, table: Table) -> u32 {
        let id = self.tables.len() as u32;
        self.tables.push(table);
        self.overlays
            .push(OverlayIndex::new(Vec::new(), usize::MAX));
        self.root_latches.push(FluidQueue::latch());
        self.merge_marks.push(0);
        id
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Untimed bulk load of one row (initial population — "load phase"
    /// work is not part of any measured experiment). The record image is
    /// `key || body`.
    pub fn load(&mut self, table: u32, key: i64, body: &[u8]) {
        let rec = crate::table::make_record(key, body);
        let t = &mut self.tables[table as usize];
        let (rid, _) = t.heap.insert(&mut self.pool, &rec).expect("load insert");
        let (old, _) = t.index.insert(key, rid.to_u64());
        assert!(old.is_none(), "duplicate key {key} in load of {}", t.name);
        if let Some(skey) = t.secondary_key(&rec) {
            let (old, _) = t.secondary.insert(skey, key as u64);
            assert!(
                old.is_none(),
                "duplicate secondary key {skey} in {}",
                t.name
            );
        }
    }

    /// Finish loading: flush everything, build overlays from the loaded
    /// indexes, reset measurement state.
    pub fn finish_load(&mut self) {
        self.pool.flush_all();
        if self.cfg.offloads.overlay {
            for (i, t) in self.tables.iter().enumerate() {
                let mut pairs = Vec::with_capacity(t.index.len());
                t.index.scan_all(|k, v| pairs.push((*k, v)));
                self.overlays[i] = OverlayIndex::new(pairs, self.cfg.overlay_budget);
            }
        }
        self.breakdown = TimeBreakdown::new();
        self.platform.energy.reset();
        self.stats = EngineStats::new();
        self.tel.reset_run();
        if let Some(a) = &mut self.attrib {
            a.reset();
        }
        self.path_acc.reset();
    }

    /// Turn the sim-time span recorder on with the standard track layout:
    /// one dispatcher track, one per agent, and one per §5 functional unit.
    /// `capacity` bounds the span ring buffer. The recorder stays enabled
    /// across [`Engine::finish_load`] (which clears recorded data).
    pub fn enable_telemetry(&mut self, capacity: usize) {
        let agents = self.cfg.agents;
        self.tel.enable(agents, capacity);
    }

    /// Turn on commit-time attribution: per transaction class × offload
    /// path latency/energy histograms with a critical-path decomposition
    /// (probe / arbiter-wait / watchdog-retry / fallback / commit). All
    /// recorded quantities are integers (picoseconds, picojoules) so shard
    /// merges are exact. Stays enabled across [`Engine::finish_load`]
    /// (which clears recorded data).
    pub fn enable_attribution(&mut self) {
        if self.attrib.is_none() {
            self.attrib = Some(bionic_telemetry::Attribution::default());
        }
    }

    /// The commit-time attribution ledger, if enabled.
    pub fn attribution(&self) -> Option<&bionic_telemetry::Attribution> {
        self.attrib.as_ref()
    }

    /// Merge another engine's attribution ledger into this one (shard
    /// reduce). No-op when either side is disabled.
    pub fn merge_attribution(&mut self, other: &Engine) {
        if let (Some(mine), Some(theirs)) = (self.attrib.as_mut(), other.attrib.as_ref()) {
            mine.merge(theirs);
        }
    }

    /// Pull a metrics snapshot from every layer into the telemetry
    /// registry (engine, WAL, bufferpool, queues, probe engine, fabric,
    /// PCIe, SG-DRAM, host caches, energy domains). Cold-path: call at the
    /// end of a run or at a failure capture point, not per transaction.
    pub fn collect_metrics(&mut self) {
        let counters = self.platform.counters();
        let pool = self.pool.stats();
        let probe = self.probe_hw.as_ref().map(|p| p.stats());
        let energy = self.platform.energy.snapshot();
        let m = self.tel.metrics_mut();

        m.counter("engine", "submitted", self.stats.submitted);
        m.counter("engine", "committed", self.stats.committed);
        m.counter("engine", "aborted", self.stats.aborted);
        m.counter("engine", "merges", self.stats.merges);
        m.counter("engine", "probes", self.stats.probes);
        m.counter("engine", "probe_misses", self.stats.probe_misses);
        m.counter(
            "engine",
            "probe_nodes_visited",
            self.stats.probe_nodes_visited,
        );
        m.gauge(
            "engine",
            "last_completion_us",
            self.stats.last_completion.as_us(),
        );

        m.counter("wal", "appends", self.log.appends());
        m.counter("wal", "flushes", self.log.flushes());
        m.counter("wal", "group_commit_flushes", self.group_commit.flushes());
        m.counter("wal", "tail_lsn", self.log.tail_lsn());
        m.counter("wal", "unflushed_bytes", self.log.unflushed_bytes());
        m.counter("wal", "torn_bytes_dropped", self.log.torn_bytes_dropped());

        m.counter("bufferpool", "hits", pool.hits);
        m.counter("bufferpool", "misses", pool.misses);
        m.counter("bufferpool", "dirty_evictions", pool.dirty_evictions);
        m.counter("bufferpool", "flushes", pool.flushes);

        m.counter("queue", "sw_ops", self.queue_sw.ops());
        m.counter(
            "queue",
            "hw_ops",
            self.queue_hw.as_ref().map_or(0, |q| q.ops()),
        );

        if let Some(p) = probe {
            m.counter("fpga/tree-probe", "completed", p.completed);
            m.counter("fpga/tree-probe", "aborted", p.aborted);
            m.counter("fpga/tree-probe", "sg_reads", p.sg_reads);
        }
        m.counter("fabric", "used_slices", counters.fabric_used_slices);
        m.counter("fabric", "total_slices", counters.fabric_total_slices);
        m.gauge("fabric", "occupancy", self.platform.fabric.occupancy());

        m.counter("link/pcie", "bytes", counters.pcie_bytes);
        m.counter("link/pcie", "transfers", counters.pcie_transfers);
        m.gauge("link/pcie", "busy_us", counters.pcie_busy.as_us());
        m.counter("sg-dram", "accesses", counters.sg_dram_accesses);
        if let Some(c) = &self.platform.contention {
            for (scope, arb) in [("arbiter/sg", &c.sg), ("arbiter/link", &c.link)] {
                for client in [
                    bionic_sim::arbiter::BwClient::Oltp,
                    bionic_sim::arbiter::BwClient::Olap,
                ] {
                    m.counter(
                        scope,
                        &format!("{}_bytes", client.label()),
                        arb.client_bytes(client.index()),
                    );
                    m.counter(
                        scope,
                        &format!("{}_wait_events", client.label()),
                        arb.client_wait_events(client.index()),
                    );
                    m.gauge(
                        scope,
                        &format!("{}_queued_us", client.label()),
                        arb.client_queued(client.index()).as_us(),
                    );
                }
                m.counter(scope, "requests", arb.requests());
                m.gauge(scope, "max_fill_frac", arb.max_fill_frac());
                m.gauge(scope, "mean_fill_frac", arb.mean_fill_frac());
                m.gauge(scope, "queued_total_us", arb.queued_total().as_us());
            }
        }
        for (class, n) in bionic_sim::mem::AccessClass::ALL
            .iter()
            .zip(counters.cpu_mem_accesses)
        {
            m.counter("cpu-mem", class.label(), n);
        }

        for (domain, e) in energy {
            m.gauge("energy", domain.label(), e.as_j());
        }

        if let Some(a) = &self.attrib {
            let counts = a.path_counts();
            for p in bionic_telemetry::attrib::PATHS {
                m.counter("attrib", p.label(), counts[p.idx()]);
            }
        }

        if let Some(layer) = &self.faults {
            let now = self.stats.last_completion;
            for r in layer.report(now) {
                let scope = format!("fault/{}", r.unit);
                m.counter(&scope, "ops", r.stats.ops);
                m.counter(&scope, "hw_ok", r.stats.hw_ok);
                m.counter(&scope, "retries", r.stats.retries);
                m.counter(&scope, "fallbacks", r.stats.fallbacks);
                m.counter(&scope, "stalls", r.stats.stalls);
                m.counter(&scope, "crc_errors", r.stats.crc_errors);
                m.counter(&scope, "ecc_errors", r.stats.ecc_errors);
                m.counter(&scope, "breaker_opens", r.breaker_opens);
                m.counter(&scope, "breaker_closes", r.breaker_closes);
                m.gauge(&scope, "breaker_state", f64::from(r.breaker_state.as_u8()));
                m.gauge(&scope, "time_degraded_us", r.time_degraded.as_us());
            }
        }

        if let Some(ctl) = &self.placement {
            let r = ctl.report();
            m.counter("placement", "windows", r.windows);
            m.counter("placement", "shed_windows", r.shed_windows);
            m.counter("placement", "brownout_windows", r.brownout_windows);
            m.counter("placement", "transitions", r.transitions);
            for (u, name) in bionic_telemetry::UNIT_NAMES.iter().enumerate() {
                m.gauge(
                    "placement",
                    &format!("{name}_forced_sw"),
                    f64::from(u8::from(r.forced_sw[u])),
                );
            }
        }
    }

    /// Direct read of a row (untimed; for tests and verification). The
    /// primary index is maintained functionally in every mode (the overlay,
    /// when enabled, tracks it and additionally provides versioning, merge
    /// mechanics, and the FPGA cost model).
    pub fn read_row(&mut self, table: u32, key: i64) -> Option<Vec<u8>> {
        self.tables[table as usize].get(&mut self.pool, key)
    }

    /// Rows currently visible in a table.
    pub fn row_count(&self, table: u32) -> usize {
        self.tables[table as usize].index.len()
    }

    /// Crash the engine: everything volatile dies; the disk, the durable
    /// log prefix, and the catalog names survive.
    pub fn crash(self) -> CrashImage {
        CrashImage {
            table_names: self.tables.iter().map(|t| t.name.clone()).collect(),
            secondary_offsets: self.tables.iter().map(|t| t.secondary_offset).collect(),
            heap_pages: self
                .tables
                .iter()
                .map(|t| t.heap.page_ids().iter().map(|p| p.0).collect())
                .collect(),
            log_base: self.log.base_lsn(),
            log: self.log.crash_image(),
            disk: self.pool.crash(),
        }
    }

    /// Restart from a crash image: run ARIES recovery, rebuild heap page
    /// lists and indexes, and return the ready engine plus the recovery
    /// outcome.
    pub fn restart(image: CrashImage, cfg: EngineConfig) -> (Self, RecoveryOutcome) {
        // Presumed abort: with nobody to ask, in-doubt branches roll back.
        Self::restart_resolving(image, cfg, |_, _, _| false)
    }

    /// [`Engine::restart`] for a 2PC participant: in-doubt branches
    /// (durable Prepare, no decision) are resolved through
    /// `resolve(local_txn, gtxn, coord)` — `true` means the coordinator
    /// durably committed the global transaction. Resolution happens inside
    /// recovery, before indexes are rebuilt, so committed branches keep
    /// their effects and aborted ones leave no trace in the rebuilt state.
    pub fn restart_resolving(
        image: CrashImage,
        cfg: EngineConfig,
        resolve: impl FnMut(bionic_wal::TxnId, u64, u32) -> bool,
    ) -> (Self, RecoveryOutcome) {
        let mut engine = Engine::new(cfg);
        engine.pool = BufferPool::new(engine.cfg.pool_pages, image.disk);
        engine.log = LogManager::from_image_at(image.log, image.log_base);
        let outcome =
            bionic_wal::recovery::recover_with(&mut engine.log, &mut engine.pool, resolve);
        // Post-restart transactions must not reuse ids already in the log:
        // a collision would alias a dead transaction's records with a live
        // one's in the shared WAL (and corrupt a second recovery). Global
        // 2PC ids live in the top half of the id space and have their own
        // allocator, so only local ids advance the counter.
        let max_local = engine
            .log
            .iter_from(engine.log.base_lsn())
            .map(|r| r.txn)
            .filter(|t| t & (1 << 63) == 0)
            .max()
            .unwrap_or(0);
        engine.next_txn = engine.next_txn.max(max_local + 1);
        for (name, secondary) in image.table_names.iter().zip(&image.secondary_offsets) {
            match secondary {
                Some(off) => engine.create_table_with_secondary(name.clone(), *off),
                None => engine.create_table(name.clone()),
            };
        }
        // Heap extents: the durable catalog map, unioned with any pages the
        // log additionally references (growth after the last catalog write
        // would be discovered there in a real system).
        for (i, catalog_pages) in image.heap_pages.iter().enumerate() {
            let mut pages = catalog_pages.clone();
            if let Some(logged) = outcome.table_pages.get(&(i as u32)) {
                pages.extend_from_slice(logged);
            }
            pages.sort_unstable();
            pages.dedup();
            engine.tables[i].restore_pages(&pages);
        }
        for i in 0..engine.tables.len() {
            // split the borrow: table i vs the shared pool
            let table = &mut engine.tables[i];
            table.rebuild_index(&mut engine.pool);
        }
        engine.finish_load();
        (engine, outcome)
    }

    /// Take a **sharp** checkpoint: flush every dirty page, then write a
    /// checkpoint record whose `redo_from` is the current log tail — so a
    /// post-crash redo pass skips everything before it. Returns the
    /// checkpoint LSN. Time and energy are charged (the flush is real SAS
    /// I/O); call this from a maintenance cadence, not per transaction.
    pub fn checkpoint(&mut self, now: bionic_sim::time::SimTime) -> bionic_wal::Lsn {
        let redo_from = self.log.tail_lsn();
        let dirty = self.pool.flush_all();
        // Bulk sequential write-back of the dirty pages.
        self.platform.sas_write(now, 0, dirty * 8192);
        let lsn = self.log.checkpoint(redo_from);
        self.log.flush();
        self.platform.ssd_write(now, 1 << 40, 256);
        // Nothing below the redo point is needed anymore (no transaction is
        // in flight between submits): reclaim the log prefix.
        self.log.truncate_to(redo_from);
        lsn
    }

    /// Per-agent busy fraction over the run so far — the skew/imbalance
    /// signal §2 warns about ("even embarrassingly parallel tasks suffer
    /// from skew and imbalance effects").
    pub fn agent_utilization(&self) -> Vec<f64> {
        let horizon = self.stats.last_completion;
        self.agents.iter().map(|a| a.utilization(horizon)).collect()
    }

    /// Load-imbalance factor: max agent busy time over the mean (1.0 is a
    /// perfectly balanced partition map).
    pub fn agent_imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .agents
            .iter()
            .map(|a| a.busy_time().as_secs())
            .collect();
        let mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            busy.iter().cloned().fold(0.0, f64::max) / mean
        }
    }

    /// Split borrow for the scan path: the platform plus the scanner's
    /// degraded-mode unit (when the fault layer is armed). Lets a caller
    /// price a scan against the platform while consulting the scanner's
    /// watchdog/breaker, without a double mutable borrow of the engine.
    pub fn scan_parts(&mut self) -> (&mut Platform, Option<&mut bionic_sim::fault::DegradedUnit>) {
        (
            &mut self.platform,
            self.faults
                .as_mut()
                .map(|f| f.unit_mut(crate::exec::U_SCAN)),
        )
    }

    /// Record an `arbiter-wait` busy mark on the scanner's unit track.
    /// Scan-side contention is priced outside the engine (the scan paths
    /// take the platform alone); this surfaces the queueing the arbiter
    /// charged on the same timeline the OLTP-side waits use. Empty or
    /// inverted intervals are ignored, like every span.
    pub fn mark_scan_arbiter_wait(&mut self, start: SimTime, end: SimTime) {
        self.tel.unit_busy(
            crate::exec::U_SCAN,
            "arbiter-wait",
            crate::breakdown::Category::Other.label(),
            start,
            end,
        );
    }

    /// Per-unit degraded-mode report, stamped at the latest completion
    /// time. `None` when the fault layer is off.
    pub fn fault_report(&self) -> Option<Vec<FaultUnitReport>> {
        let now = self.stats.last_completion;
        self.faults.as_ref().map(|f| f.report(now))
    }

    /// Gather the cumulative counters the placement controller diffs: the
    /// arbiter's per-client queueing and grant bytes, per-unit degrade
    /// stats and breaker opens, and the commit count — all ledgers the
    /// engine keeps anyway, read without mutation.
    fn placement_signals(&self) -> crate::placement::PlacementSignals {
        let mut s = crate::placement::PlacementSignals {
            committed: self.stats.committed,
            ..Default::default()
        };
        if let Some(c) = &self.platform.contention {
            let oltp = bionic_sim::arbiter::BwClient::Oltp.index();
            let olap = bionic_sim::arbiter::BwClient::Olap.index();
            s.oltp_queued_ps =
                c.sg.client_queued(oltp).as_ps() + c.link.client_queued(oltp).as_ps();
            s.oltp_wait_events = c.sg.client_wait_events(oltp) + c.link.client_wait_events(oltp);
            s.sg_olap_bytes = c.sg.client_bytes(olap);
        }
        if let Some(layer) = &self.faults {
            for u in 0..crate::placement::UNIT_COUNT {
                let unit = layer.unit(u);
                s.unit_ops[u] = unit.stats.ops;
                s.unit_retries[u] = unit.stats.retries;
                s.unit_fallbacks[u] = unit.stats.fallbacks;
                s.breaker_opens[u] = unit.breaker().opens();
            }
        }
        s
    }

    /// Drive the placement controller at sim time `now`: when a decision
    /// window boundary has been crossed, sample the counters, run the
    /// decision rules, and emit a trace mark per effective transition.
    /// No-op (one `Option` check) when the controller is off; between
    /// boundaries it costs one comparison.
    pub fn placement_tick(&mut self, now: SimTime) {
        let Some(ctl) = self.placement.as_ref() else {
            return;
        };
        if !ctl.due(now) {
            return;
        }
        let signals = self.placement_signals();
        let ctl = self.placement.as_mut().expect("checked above");
        ctl.observe(now, signals);
        while let Some(d) = self.placement.as_mut().and_then(|c| c.take_unannounced()) {
            let label = if d.forced_sw {
                "placement-shed"
            } else {
                "placement-restore"
            };
            self.tel.unit_busy(
                d.unit,
                label,
                d.reason.label(),
                d.at,
                d.at + SimTime::from_ns(100.0),
            );
        }
    }

    /// May `unit` use its hardware path right now, as far as the
    /// placement controller is concerned? Always `true` when no
    /// controller is armed.
    #[inline]
    pub(crate) fn placement_allows(&self, unit: usize) -> bool {
        match &self.placement {
            Some(ctl) => ctl.allows_hw(unit),
            None => true,
        }
    }

    /// Should the next enhanced-scanner dispatch run in software because
    /// the controller browned the scan unit out? (Distinct from the
    /// breaker-driven per-op fallback inside `scan_dispatch`.)
    pub fn placement_scan_software(&self) -> bool {
        !self.placement_allows(crate::exec::U_SCAN)
    }

    /// The placement controller's summary, or `None` when off.
    pub fn placement_report(&self) -> Option<crate::placement::PlacementReport> {
        self.placement.as_ref().map(|c| c.report())
    }

    /// The write-ahead log (read access, e.g. for verification).
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// The next transaction id [`Engine::submit`] will assign.
    pub fn next_txn_id(&self) -> TxnId {
        self.next_txn
    }

    /// Model the OS page cache writing the buffered log tail back at crash
    /// time (no timing or energy is charged — this is a fault-injection
    /// knob, not a transaction-path flush). After this, [`Engine::crash`]'s
    /// image includes everything appended so far.
    pub fn os_flush_log(&mut self) {
        self.log.flush();
    }

    /// Write back up to `n` dirty buffer-pool pages (ascending page-id
    /// order). Fault-injection knob modeling a partial background
    /// write-back racing the crash; untimed.
    pub fn flush_pool_pages(&mut self, n: usize) -> u64 {
        self.pool.flush_some(n)
    }

    /// Name of a table.
    pub fn table_name(&self, table: u32) -> &str {
        &self.tables[table as usize].name
    }

    /// Secondary-index field offset of a table, if it has one.
    pub fn secondary_offset(&self, table: u32) -> Option<usize> {
        self.tables[table as usize].secondary_offset
    }

    /// Full contents of a table as `(key, record_image)` pairs in key
    /// order, read through the primary index (untimed; for differential
    /// verification).
    pub fn scan_table(&mut self, table: u32) -> Vec<(i64, Vec<u8>)> {
        let mut pairs: Vec<(i64, u64)> = Vec::new();
        self.tables[table as usize]
            .index
            .scan_all(|k, v| pairs.push((*k, v)));
        pairs.sort_unstable_by_key(|&(k, _)| k);
        let mut out = Vec::with_capacity(pairs.len());
        for (key, rid) in pairs {
            let rec = self.tables[table as usize]
                .heap
                .get(
                    &mut self.pool,
                    bionic_storage::page::RecordId::from_u64(rid),
                )
                .0
                .unwrap_or_else(|| panic!("index of {table} points at dead rid for key {key}"));
            out.push((key, rec));
        }
        out
    }

    /// Secondary-index point lookup: secondary key → primary key (untimed).
    pub fn secondary_lookup(&mut self, table: u32, skey: i64) -> Option<i64> {
        self.tables[table as usize]
            .secondary
            .get(&skey)
            .0
            .map(|p| p as i64)
    }

    /// All `(secondary_key, primary_key)` pairs of a table's secondary
    /// index in secondary-key order (untimed; for verification).
    pub fn scan_secondary(&self, table: u32) -> Vec<(i64, i64)> {
        let mut pairs: Vec<(i64, i64)> = Vec::new();
        self.tables[table as usize]
            .secondary
            .scan_all(|k, v| pairs.push((*k, v as i64)));
        pairs.sort_unstable();
        pairs
    }

    /// Check a table's internal consistency: every index entry points at a
    /// live heap record embedding that key; every heap record is indexed;
    /// when a secondary index exists, it maps exactly the secondary fields
    /// of the live records back to their primary keys (both directions).
    pub fn verify_table_integrity(&mut self, table: u32) -> Result<(), String> {
        let t = &mut self.tables[table as usize];
        let name = t.name.clone();
        t.index
            .check_invariants()
            .map_err(|e| format!("{name}: primary index invariant: {e}"))?;
        let mut index_pairs: Vec<(i64, u64)> = Vec::new();
        t.index.scan_all(|k, v| index_pairs.push((*k, v)));

        // Heap side: collect every live record.
        let mut heap_rows: std::collections::BTreeMap<i64, Vec<u8>> =
            std::collections::BTreeMap::new();
        let mut heap_rids: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
        let mut dup: Option<i64> = None;
        t.heap.scan(&mut self.pool, |rid, rec| {
            let key = crate::table::record_key(rec);
            if heap_rows.insert(key, rec.to_vec()).is_some() {
                dup = Some(key);
            }
            heap_rids.insert(key, rid.to_u64());
        });
        if let Some(key) = dup {
            return Err(format!("{name}: duplicate heap record for key {key}"));
        }
        if index_pairs.len() != heap_rows.len() {
            return Err(format!(
                "{name}: index has {} entries but heap has {} live records",
                index_pairs.len(),
                heap_rows.len()
            ));
        }
        for (key, rid) in &index_pairs {
            match heap_rids.get(key) {
                None => return Err(format!("{name}: index key {key} has no heap record")),
                Some(actual) if actual != rid => {
                    return Err(format!(
                        "{name}: index key {key} points at rid {rid} but record lives at {actual}"
                    ));
                }
                Some(_) => {}
            }
        }

        // Secondary side, both directions.
        let t = &self.tables[table as usize];
        if t.secondary_offset.is_some() {
            let mut sec_pairs: Vec<(i64, i64)> = Vec::new();
            t.secondary.scan_all(|k, v| sec_pairs.push((*k, v as i64)));
            for (skey, pkey) in &sec_pairs {
                let Some(rec) = heap_rows.get(pkey) else {
                    return Err(format!(
                        "{name}: secondary {skey} -> {pkey} but primary key is gone"
                    ));
                };
                let actual = t.secondary_key(rec).expect("offset configured");
                if actual != *skey {
                    return Err(format!(
                        "{name}: secondary {skey} -> {pkey} but record's field is {actual}"
                    ));
                }
            }
            let mut expect: Vec<(i64, i64)> = heap_rows
                .iter()
                .map(|(k, rec)| (t.secondary_key(rec).expect("offset configured"), *k))
                .collect();
            expect.sort_unstable();
            let mut got = sec_pairs;
            got.sort_unstable();
            if got != expect {
                return Err(format!(
                    "{name}: secondary index has {} entries, live records imply {}",
                    got.len(),
                    expect.len()
                ));
            }
        }
        Ok(())
    }

    /// Committed-writes version counter: the NEXT version a write will be
    /// stamped with (overlay merge versions).
    pub fn write_seq(&self) -> u64 {
        self.write_seq
    }

    /// The snapshot version covering everything written so far — pass this
    /// to [`Engine::query_range`]'s `asof` to read the current state later,
    /// after more writes have happened.
    pub fn current_version(&self) -> u64 {
        self.write_seq - 1
    }
}
