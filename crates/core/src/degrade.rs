//! The engine's degraded-mode layer: one watchdog/retry/breaker wrapper
//! per offloaded functional unit.
//!
//! [`FaultLayer`] is the per-engine instantiation of
//! [`bionic_sim::fault`]: five [`DegradedUnit`]s — tree probe, log
//! insert, queue, overlay, scanner, in the
//! [`bionic_telemetry::UNIT_NAMES`] order — each over its own
//! decorrelated RNG substream split from the engine seed, so a fault
//! history is replayable per unit and independent of what the other
//! units drew.
//!
//! The layer is strictly opt-in ([`crate::config::EngineConfig::hw_faults`]
//! is `None` by default). When absent, the hardware paths never consult
//! it: zero RNG draws, zero extra branches taken, byte-identical timing.
//! When present, every offloaded op asks its unit's
//! [`DegradedUnit::try_hw`] first; a "no" answer reroutes that single op
//! to the software path — and because the hardware paths are pure
//! *pricing* (functional results always come from the software-maintained
//! structures), a fallback can never change committed results.

use bionic_sim::fault::{BreakerState, DegradeStats, DegradedUnit, HwFaultConfig};
use bionic_sim::rng::SplitMix64;
use bionic_sim::time::SimTime;

/// Number of wrapped functional units (matches
/// [`bionic_telemetry::UNIT_NAMES`]).
pub const UNIT_COUNT: usize = 5;

/// Per-unit degraded-mode state for the whole engine.
pub struct FaultLayer {
    pub(crate) units: [DegradedUnit; UNIT_COUNT],
}

impl FaultLayer {
    /// Build the layer: one unit per offloadable component, each with its
    /// own substream split deterministically from the engine seed.
    pub fn new(cfg: &HwFaultConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xFA11_B0DE_FA11_B0DE);
        FaultLayer {
            units: core::array::from_fn(|_| DegradedUnit::new(cfg, rng.split())),
        }
    }

    /// The unit at telemetry index `unit` (see
    /// [`bionic_telemetry::UNIT_NAMES`]).
    pub fn unit_mut(&mut self, unit: usize) -> &mut DegradedUnit {
        &mut self.units[unit]
    }

    /// Read-only view of the unit at telemetry index `unit` — the
    /// placement controller samples counters without touching state.
    pub fn unit(&self, unit: usize) -> &DegradedUnit {
        &self.units[unit]
    }

    /// Snapshot every unit for reporting, stamped at sim-time `now` (the
    /// time-in-degraded-state of a currently-Open breaker accrues up to
    /// `now`).
    pub fn report(&self, now: SimTime) -> Vec<FaultUnitReport> {
        self.units
            .iter()
            .zip(bionic_telemetry::UNIT_NAMES)
            .map(|(u, name)| FaultUnitReport {
                unit: name,
                stats: u.stats,
                breaker_state: u.breaker().state(),
                breaker_opens: u.breaker().opens(),
                breaker_closes: u.breaker().closes(),
                time_degraded: u.breaker().time_degraded(now),
            })
            .collect()
    }
}

/// One unit's degraded-mode summary (see [`FaultLayer::report`]).
#[derive(Debug, Clone)]
pub struct FaultUnitReport {
    /// Unit name from [`bionic_telemetry::UNIT_NAMES`].
    pub unit: &'static str,
    /// Attempt/retry/fallback and per-family fault counters.
    pub stats: DegradeStats,
    /// Breaker state at snapshot time.
    pub breaker_state: BreakerState,
    /// Closed → Open transitions.
    pub breaker_opens: u64,
    /// HalfOpen → Closed recoveries.
    pub breaker_closes: u64,
    /// Cumulative quarantine time up to the snapshot.
    pub time_degraded: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_draw_decorrelated_streams() {
        // A rate where individual attempts can go either way.
        let cfg = HwFaultConfig::uniform(1_500);
        let mut layer = FaultLayer::new(&cfg, 7);
        let decisions: Vec<bool> = (0..UNIT_COUNT)
            .map(|u| layer.unit_mut(u).try_hw(SimTime::ZERO).hw)
            .collect();
        // Streams are split per unit: a fresh layer with the same seed
        // reproduces them exactly.
        let mut again = FaultLayer::new(&cfg, 7);
        let decisions2: Vec<bool> = (0..UNIT_COUNT)
            .map(|u| again.unit_mut(u).try_hw(SimTime::ZERO).hw)
            .collect();
        assert_eq!(decisions, decisions2);
        // And a different seed gives a different fault history somewhere
        // within a few ops (overwhelmingly likely at these rates).
        let mut other = FaultLayer::new(&cfg, 8);
        let mut diverged = false;
        for round in 0..50u64 {
            for u in 0..UNIT_COUNT {
                let t = SimTime::from_us(round as f64);
                if layer.unit_mut(u).try_hw(t) != other.unit_mut(u).try_hw(t) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "seeds 7 and 8 produced identical fault histories");
    }

    #[test]
    fn report_covers_every_unit_in_telemetry_order() {
        let layer = FaultLayer::new(&HwFaultConfig::uniform(0), 1);
        let report = layer.report(SimTime::ZERO);
        let names: Vec<&str> = report.iter().map(|r| r.unit).collect();
        assert_eq!(names, bionic_telemetry::UNIT_NAMES.to_vec());
        assert!(report.iter().all(|r| r.stats.ops == 0));
    }
}
