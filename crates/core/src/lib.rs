//! # bionic-core — the "bionic" hybrid hardware/software DBMS engine
//!
//! The primary contribution of *"The bionic DBMS is coming, but what will
//! it look like?"* (Johnson & Pandis, CIDR 2013), built as a runnable
//! system over the `bionic-*` substrate crates:
//!
//! * a data-oriented (DORA [10, 11]) execution engine — logical partitions,
//!   action queues, rendezvous points, no locks or index latches — plus a
//!   conventional shared-everything baseline with a lock manager;
//! * the four §5 hardware offloads, each independently toggleable: the
//!   tree-probe engine (§5.3), the log-insertion engine (§5.4), the queue
//!   engine (§5.5), and the overlay database (§5.6);
//! * the seven-category time-breakdown profiler of Figure 3 and
//!   joules-per-transaction accounting (§2's metric);
//! * full write-ahead logging with ARIES restart recovery wired through
//!   [`engine::Engine::crash`] / [`engine::Engine::restart`];
//! * a degraded-mode layer ([`degrade`]) wrapping every offloaded op in a
//!   watchdog + bounded retry + per-unit circuit breaker, with automatic
//!   per-op fallback to the software path (opt-in via
//!   [`config::EngineConfig::hw_faults`]).
//!
//! ```
//! use bionic_core::config::EngineConfig;
//! use bionic_core::engine::Engine;
//! use bionic_core::ops::{Action, Op, TxnProgram};
//! use bionic_sim::time::SimTime;
//!
//! let mut engine = Engine::new(EngineConfig::bionic());
//! let t = engine.create_table("accounts");
//! engine.load(t, 1, b"alice: 100");
//! engine.finish_load();
//!
//! let read = TxnProgram::single_phase(
//!     "read-account",
//!     vec![Action::new(t, 1, vec![Op::Read { table: t, key: 1 }])],
//! );
//! let outcome = engine.submit(&read, SimTime::ZERO);
//! assert!(outcome.is_committed());
//! ```

#![deny(missing_docs)]

pub mod breakdown;
pub mod config;
pub mod degrade;
pub mod engine;
pub mod exec;
pub mod ops;
pub mod placement;
pub mod table;

pub use breakdown::{Category, TimeBreakdown};
pub use config::{EngineConfig, ExecModel, LogImpl, Offloads};
pub use degrade::{FaultLayer, FaultUnitReport};
pub use engine::{CrashImage, Engine, EngineStats};
pub use exec::{AbortReason, PrepareOutcome, TxnOutcome};
pub use ops::{Action, Op, Patch, TxnProgram};
pub use placement::{PlacementConfig, PlacementController, PlacementReport};
