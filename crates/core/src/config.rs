//! Engine configuration: execution model and per-component offload choices.

use bionic_sim::fault::HwFaultConfig;
use bionic_sim::time::SimTime;

/// Which engine architecture executes transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// Data-oriented execution [10, 11]: logical partitions, action queues,
    /// rendezvous points; no locks, no index latches.
    Dora,
    /// Conventional shared-everything: any worker touches any datum, so a
    /// lock manager and index latches guard everything.
    Conventional,
}

/// Log-insertion implementation (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogImpl {
    /// Latch-serialized software buffer.
    Latched,
    /// Consolidation-array software buffer \[7\].
    Consolidated,
    /// Per-socket-aggregating hardware engine.
    Hardware,
}

/// Which §5 components run on the FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offloads {
    /// §5.3 tree probe engine.
    pub probe: bool,
    /// §5.4 log insertion.
    pub log: LogImpl,
    /// §5.5 queue engine.
    pub queue: bool,
    /// §5.6 overlay database instead of the buffer pool.
    pub overlay: bool,
}

impl Offloads {
    /// Everything in software — the conventional platform of Figure 3.
    pub fn none() -> Self {
        Offloads {
            probe: false,
            log: LogImpl::Latched,
            queue: false,
            overlay: false,
        }
    }

    /// The full bionic configuration of Figure 4.
    pub fn all() -> Self {
        Offloads {
            probe: true,
            log: LogImpl::Hardware,
            queue: true,
            overlay: true,
        }
    }

    /// How many units are offloaded (for ablation labels).
    pub fn count(&self) -> usize {
        usize::from(self.probe)
            + usize::from(self.log == LogImpl::Hardware)
            + usize::from(self.queue)
            + usize::from(self.overlay)
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Execution architecture.
    pub exec: ExecModel,
    /// Hardware offload selection.
    pub offloads: Offloads,
    /// Partition agents (DORA) / worker threads (conventional).
    pub agents: usize,
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    /// Group-commit flush interval.
    pub group_commit: SimTime,
    /// FPGA memory budget for the overlay (bytes).
    pub overlay_budget: usize,
    /// Delta writes per table before a background merge is triggered.
    pub merge_threshold: u64,
    /// RNG seed for the platform's probabilistic models.
    pub seed: u64,
    /// CPU energy per instruction, nanojoules (sensitivity experiments
    /// sweep this; 2.0 is the calibrated default, see DESIGN.md).
    pub cpu_nj_per_instr: f64,
    /// SG-DRAM energy per 64-bit access, nanojoules.
    pub sg_nj_per_access: f64,
    /// Hardware fault injection and degraded-mode policy. `None` (the
    /// default) means the fault layer does not exist: no RNG draws, no
    /// watchdogs, byte-identical results to a build without it.
    pub hw_faults: Option<HwFaultConfig>,
    /// Adaptive placement controller (see [`crate::placement`]). `None`
    /// (the default) means no controller exists: no observations, no
    /// rerouting, byte-identical pricing to a build without it.
    pub placement: Option<crate::placement::PlacementConfig>,
}

impl EngineConfig {
    /// The software baseline: DORA on a conventional multicore — the system
    /// Figure 3 profiles.
    pub fn software() -> Self {
        EngineConfig {
            exec: ExecModel::Dora,
            offloads: Offloads::none(),
            agents: 16,
            pool_pages: 1 << 14,
            group_commit: SimTime::from_us(20.0),
            overlay_budget: usize::MAX,
            merge_threshold: 50_000,
            seed: 0xB10_01C,
            cpu_nj_per_instr: 2.0,
            sg_nj_per_access: 2.0,
            hw_faults: None,
            placement: None,
        }
    }

    /// The full bionic engine of Figure 4.
    pub fn bionic() -> Self {
        EngineConfig {
            offloads: Offloads::all(),
            ..Self::software()
        }
    }

    /// The pre-DORA conventional baseline.
    pub fn conventional() -> Self {
        EngineConfig {
            exec: ExecModel::Conventional,
            ..Self::software()
        }
    }

    /// Builder-style agent count override.
    pub fn with_agents(mut self, agents: usize) -> Self {
        self.agents = agents;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style hardware-fault layer override.
    pub fn with_hw_faults(mut self, faults: HwFaultConfig) -> Self {
        self.hw_faults = Some(faults);
        self
    }

    /// Arm the adaptive placement controller (see [`crate::placement`]):
    /// each decision window the engine samples the counters it already
    /// keeps and may shed op classes from hardware to the software paths
    /// (arbiter contention, breaker flapping). Functional results are
    /// unaffected — placement reroutes *pricing* only.
    ///
    /// Minimal adaptive run:
    ///
    /// ```
    /// use bionic_core::config::EngineConfig;
    /// use bionic_core::engine::Engine;
    /// use bionic_core::ops::{Action, Op, TxnProgram};
    /// use bionic_core::placement::PlacementConfig;
    /// use bionic_sim::time::SimTime;
    ///
    /// // The bionic engine with the calibrated default controller.
    /// let cfg = EngineConfig::bionic().with_placement(PlacementConfig::default());
    /// let mut engine = Engine::new(cfg);
    /// let t = engine.create_table("accounts");
    /// engine.load(t, 1, b"alice: 100");
    /// engine.finish_load();
    ///
    /// let read = TxnProgram::single_phase(
    ///     "read-account",
    ///     vec![Action::new(t, 1, vec![Op::Read { table: t, key: 1 }])],
    /// );
    /// // Submissions carry sim time; the controller observes whenever a
    /// // 100 µs window boundary is crossed and its summary lands in the
    /// // engine's placement report.
    /// for i in 0..2_000u32 {
    ///     let at = SimTime::from_us(f64::from(i) * 2.0);
    ///     assert!(engine.submit(&read, at).is_committed());
    /// }
    /// let report = engine.placement_report().expect("controller armed");
    /// assert!(report.windows > 0, "windows observed: {}", report.windows);
    /// // An uncontended, fault-free run never sheds anything.
    /// assert_eq!(report.transitions, 0);
    /// ```
    pub fn with_placement(mut self, placement: crate::placement::PlacementConfig) -> Self {
        self.placement = Some(placement);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_coherent() {
        let sw = EngineConfig::software();
        assert_eq!(sw.exec, ExecModel::Dora);
        assert_eq!(sw.offloads.count(), 0);
        let hw = EngineConfig::bionic();
        assert_eq!(hw.offloads.count(), 4);
        assert_eq!(hw.exec, ExecModel::Dora);
        let conv = EngineConfig::conventional();
        assert_eq!(conv.exec, ExecModel::Conventional);
    }

    #[test]
    fn builders_override() {
        let c = EngineConfig::software().with_agents(4).with_seed(7);
        assert_eq!(c.agents, 4);
        assert_eq!(c.seed, 7);
        assert!(c.hw_faults.is_none(), "faults are strictly opt-in");
        assert!(c.placement.is_none(), "placement is strictly opt-in");
        let f = EngineConfig::bionic().with_hw_faults(HwFaultConfig::uniform(100));
        assert_eq!(f.hw_faults.unwrap().rates.stall_bp, 100);
        let p = EngineConfig::bionic().with_placement(crate::placement::PlacementConfig::default());
        assert_eq!(p.placement.unwrap().shed_trip_windows, 3);
    }
}
