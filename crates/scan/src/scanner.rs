//! The enhanced scanner: CPU scan vs. FPGA-filtered scan (§5.2, E10).
//!
//! The columnar data lives on the FPGA side of the PCIe bridge (Figure 4).
//! A conventional scan therefore *ships predicate columns across PCIe* to
//! evaluate them on the CPU, then pulls the projected columns of matching
//! rows. The enhanced scanner evaluates "selections and projections" on the
//! FPGA at memory rate and ships only results — "Netezza-style filtering at
//! the FPGA should ease bandwidth concerns for queries" on the 4 GB/s bus.
//!
//! Both paths return the same matching rows (functional equivalence is
//! test-enforced); they differ in bytes moved, time, and joules.

use crate::predicate::ScanRequest;
use bionic_sim::arbiter::BwClient;
use bionic_sim::energy::{Energy, EnergyDomain};
use bionic_sim::platform::Platform;
use bionic_sim::time::SimTime;
use bionic_storage::columnar::ColumnarTable;

/// Outcome of a scan.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Matching row indexes, ascending.
    pub matches: Vec<usize>,
    /// Payload bytes that crossed PCIe.
    pub pcie_bytes: u64,
    /// Completion time.
    pub done: SimTime,
    /// SG-DRAM arbiter queueing absorbed by the predicate stream (zero on
    /// a contention-free platform and on the software path).
    pub sg_wait: SimTime,
    /// PCIe-link arbiter queueing absorbed by the projection transfer.
    pub link_wait: SimTime,
}

/// The functional half of a scan — matching rows plus the NFA state-visit
/// count the software cost model charges for — separated from pricing.
///
/// Both scan paths price from aggregates of this value only (`matches.len()`
/// and `nfa_visits`), never from which rows matched, so a caller issuing the
/// same request against an immutable table many times (E13's periodic
/// analytics query) can compute it once and replay it: the `*_with` variants
/// below produce byte-identical outcomes to re-filtering every row.
#[derive(Debug, Clone)]
pub struct ScanEval {
    /// Matching row indexes, ascending.
    pub matches: Vec<usize>,
    /// NFA state visits accumulated while filtering (§4 software cost).
    pub nfa_visits: u64,
}

impl ScanEval {
    /// Evaluate `req` over every row of `table`.
    pub fn compute(table: &ColumnarTable, req: &ScanRequest) -> Self {
        let mut nfa_visits = 0u64;
        let matches: Vec<usize> = (0..table.rows())
            .filter(|&r| req.matches_counting(table, r, &mut nfa_visits))
            .collect();
        ScanEval {
            matches,
            nfa_visits,
        }
    }
}

/// Configuration of the FPGA filter unit.
#[derive(Debug, Clone)]
pub struct ScannerConfig {
    /// Filter throughput (bytes of column data per second through the
    /// comparator lanes). Wide parallel lanes: 32 B/cycle at 200 MHz.
    pub filter_bytes_per_sec: f64,
    /// Fabric energy per row evaluated.
    pub energy_per_row: Energy,
    /// Parallel skeleton-automata lanes for string predicates (each lane
    /// consumes one byte per 200 MHz cycle; rows are independent, so lanes
    /// scale throughput linearly at the cost of area).
    pub nfa_lanes: usize,
    /// Fabric energy per NFA state per byte.
    pub nfa_energy_per_state_byte: Energy,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            filter_bytes_per_sec: 6.4e9,
            energy_per_row: Energy::from_pj(40.0),
            nfa_lanes: 16,
            nfa_energy_per_state_byte: Energy::from_pj(0.5),
        }
    }
}

/// CPU instructions to evaluate one row (per predicate: load, compare,
/// branch, loop bookkeeping).
const INSTR_PER_ROW_PER_PRED: u64 = 6;

/// CPU instructions per NFA state visit in the software simulation (set
/// membership test, edge walk, class test).
const INSTR_PER_NFA_VISIT: u64 = 4;

/// Conventional scan: predicate columns cross PCIe, the CPU filters, then
/// the projected columns of matching rows cross PCIe.
pub fn scan_software(
    platform: &mut Platform,
    table: &ColumnarTable,
    req: &ScanRequest,
    start: SimTime,
) -> ScanOutcome {
    let eval = ScanEval::compute(table, req);
    scan_software_with(platform, table, req, start, &eval)
}

/// [`scan_software`] replaying a precomputed [`ScanEval`] instead of
/// re-filtering the table. Identical pricing and results.
pub fn scan_software_with(
    platform: &mut Platform,
    table: &ColumnarTable,
    req: &ScanRequest,
    start: SimTime,
    eval: &ScanEval,
) -> ScanOutcome {
    let rows = table.rows() as u64;
    let pred_bytes = rows * req.predicate_width(table) as u64;

    // Ship predicate columns to the host (streamed, overlapping with eval:
    // the slower of wire and compute dominates).
    let wire_done = if pred_bytes > 0 {
        platform.pcie_transfer(start, pred_bytes)
    } else {
        start
    };

    // CPU filtering cost, driven by the row count and the NFA state-visit
    // count from the functional evaluation (§4).
    let instructions = rows * INSTR_PER_ROW_PER_PRED * req.predicates.len().max(1) as u64
        + eval.nfa_visits * INSTR_PER_NFA_VISIT;
    let eval_time = platform.cpu_compute(instructions);
    let filtered_at = wire_done.max(start + eval_time);

    // Pull projections of matching rows.
    let proj_bytes = eval.matches.len() as u64 * req.projection_width(table) as u64;
    let done = if proj_bytes > 0 {
        platform.pcie_transfer(filtered_at, proj_bytes)
    } else {
        filtered_at
    };
    ScanOutcome {
        matches: eval.matches.clone(),
        pcie_bytes: pred_bytes + proj_bytes,
        done,
        sg_wait: SimTime::ZERO,
        link_wait: SimTime::ZERO,
    }
}

/// Enhanced scan: the FPGA streams predicate columns out of SG-DRAM, filters
/// at line rate, and ships only the matching projected rows across PCIe.
pub fn scan_enhanced(
    platform: &mut Platform,
    table: &ColumnarTable,
    req: &ScanRequest,
    start: SimTime,
    cfg: &ScannerConfig,
) -> ScanOutcome {
    let eval = ScanEval::compute(table, req);
    scan_enhanced_with(platform, table, req, start, cfg, &eval)
}

/// [`scan_enhanced`] replaying a precomputed [`ScanEval`] instead of
/// re-filtering the table. Identical pricing and results.
pub fn scan_enhanced_with(
    platform: &mut Platform,
    table: &ColumnarTable,
    req: &ScanRequest,
    start: SimTime,
    cfg: &ScannerConfig,
    eval: &ScanEval,
) -> ScanOutcome {
    let rows = table.rows() as u64;
    let pred_bytes = rows * req.predicate_width(table) as u64;

    // Sequential SG-DRAM read of the predicate columns, overlapped with the
    // comparator lanes: the slower rate dominates. String predicates run on
    // parallel skeleton-automata lanes at one byte per cycle per lane.
    let read_rate = 80e9f64; // SG-DRAM streaming bandwidth
    let mut filter_rate = read_rate.min(cfg.filter_bytes_per_sec);
    let str_bytes: u64 = req
        .str_predicates
        .iter()
        .map(|p| rows * table.column(p.col).value_width() as u64)
        .sum();
    if str_bytes > 0 {
        let nfa_rate = cfg.nfa_lanes as f64 * 200e6;
        filter_rate = filter_rate.min(nfa_rate);
    }
    let stream_secs = pred_bytes as f64 / filter_rate;
    // When the platform arbitrates shared bandwidth (the hybrid engine),
    // the stream contends with transactional SG-DRAM traffic: the arbiter
    // books the streamed bytes for the OLAP client and returns whatever
    // the scan lost to round-robin sharing. On a contention-free platform
    // the delay is zero and this path prices exactly as before.
    let sg_wait = platform.sg_contention_delay(BwClient::Olap, start, pred_bytes);
    let filtered_at = start + SimTime::from_secs(stream_secs) + SimTime::from_ns(400.0) + sg_wait;
    platform.charge_fpga(cfg.energy_per_row * rows);
    platform.charge_fpga(cfg.nfa_energy_per_state_byte * (str_bytes * req.nfa_states() as u64));
    // SG-DRAM consumption (energy + counters) for the streamed bytes.
    let sg_accesses = pred_bytes / platform.sg_dram.request_bytes().max(1);
    let e = platform.sg_dram.charge_accesses(sg_accesses);
    platform.energy.charge(EnergyDomain::SgDram, e);

    let proj_bytes = eval.matches.len() as u64 * req.projection_width(table) as u64;
    let mut link_wait = SimTime::ZERO;
    let done = if proj_bytes > 0 {
        link_wait = platform.link_contention_delay(BwClient::Olap, filtered_at, proj_bytes);
        platform.pcie_transfer(filtered_at + link_wait, proj_bytes)
    } else {
        filtered_at
    };
    ScanOutcome {
        matches: eval.matches.clone(),
        pcie_bytes: proj_bytes,
        done,
        sg_wait,
        link_wait,
    }
}

/// Degraded-mode scan dispatch: route one scan through the enhanced
/// (FPGA) path or the software path, consulting the scanner's
/// watchdog/retry/breaker unit when the engine's fault layer is armed.
///
/// With `degrade` absent (`None`) this is exactly [`scan_enhanced`] — the
/// fault layer costs nothing when it does not exist. With a unit present,
/// the scan first absorbs whatever watchdog/retry time the failed
/// hardware attempts burned (`delay`), then runs on the surviving path.
/// Both paths return identical matches (test-enforced above), so the
/// reroute is pricing-only and can never change query results.
pub fn scan_dispatch(
    platform: &mut Platform,
    table: &ColumnarTable,
    req: &ScanRequest,
    start: SimTime,
    cfg: &ScannerConfig,
    degrade: Option<&mut bionic_sim::fault::DegradedUnit>,
) -> ScanOutcome {
    let eval = ScanEval::compute(table, req);
    scan_dispatch_with(platform, table, req, start, cfg, degrade, &eval)
}

/// [`scan_dispatch`] replaying a precomputed [`ScanEval`] on whichever
/// path the fault unit routes to. Identical pricing and results.
pub fn scan_dispatch_with(
    platform: &mut Platform,
    table: &ColumnarTable,
    req: &ScanRequest,
    start: SimTime,
    cfg: &ScannerConfig,
    degrade: Option<&mut bionic_sim::fault::DegradedUnit>,
    eval: &ScanEval,
) -> ScanOutcome {
    let Some(unit) = degrade else {
        return scan_enhanced_with(platform, table, req, start, cfg, eval);
    };
    let d = unit.try_hw(start);
    if d.hw {
        scan_enhanced_with(platform, table, req, start + d.delay, cfg, eval)
    } else {
        scan_software_with(platform, table, req, start + d.delay, eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, ColPredicate};
    use bionic_storage::columnar::Column;

    fn lineitems(n: usize) -> ColumnarTable {
        let mut t = ColumnarTable::new();
        t.add_column("key", Column::I64((0..n as i64).collect()));
        t.add_column("qty", Column::I64((0..n as i64).map(|i| i % 100).collect()));
        t.add_column(
            "price",
            Column::I64((0..n as i64).map(|i| i * 7 % 1000).collect()),
        );
        t
    }

    fn select_qty_below(threshold: i64) -> ScanRequest {
        ScanRequest {
            predicates: vec![ColPredicate::new(1, CmpOp::Lt, threshold)],
            projection: vec![0, 2],
            ..Default::default()
        }
    }

    #[test]
    fn both_paths_return_identical_matches() {
        let t = lineitems(10_000);
        let req = select_qty_below(10);
        let mut p1 = Platform::hc2();
        let mut p2 = Platform::hc2();
        let sw = scan_software(&mut p1, &t, &req, SimTime::ZERO);
        let hw = scan_enhanced(&mut p2, &t, &req, SimTime::ZERO, &ScannerConfig::default());
        assert_eq!(sw.matches, hw.matches);
        assert_eq!(sw.matches.len(), 1000, "10% selectivity");
    }

    #[test]
    fn enhanced_scan_ships_far_fewer_bytes_at_low_selectivity() {
        let t = lineitems(100_000);
        let req = select_qty_below(1); // 1% selectivity
        let mut p1 = Platform::hc2();
        let mut p2 = Platform::hc2();
        let sw = scan_software(&mut p1, &t, &req, SimTime::ZERO);
        let hw = scan_enhanced(&mut p2, &t, &req, SimTime::ZERO, &ScannerConfig::default());
        assert!(
            sw.pcie_bytes > 30 * hw.pcie_bytes,
            "sw={} hw={}",
            sw.pcie_bytes,
            hw.pcie_bytes
        );
        assert!(hw.done < sw.done);
    }

    #[test]
    fn at_full_selectivity_the_advantage_shrinks_to_the_predicate_column() {
        let t = lineitems(100_000);
        let req = select_qty_below(1000); // 100% selectivity
        let mut p1 = Platform::hc2();
        let mut p2 = Platform::hc2();
        let sw = scan_software(&mut p1, &t, &req, SimTime::ZERO);
        let hw = scan_enhanced(&mut p2, &t, &req, SimTime::ZERO, &ScannerConfig::default());
        assert_eq!(hw.matches.len(), 100_000);
        // hw still skips shipping the predicate column; both ship the same
        // (large) projection.
        let proj = 100_000u64 * 16;
        assert_eq!(hw.pcie_bytes, proj);
        assert_eq!(sw.pcie_bytes, proj + 100_000 * 8);
    }

    #[test]
    fn empty_table_and_no_predicates() {
        let t = lineitems(0);
        let req = ScanRequest::default();
        let mut p = Platform::hc2();
        let out = scan_software(&mut p, &t, &req, SimTime::ZERO);
        assert!(out.matches.is_empty());
        assert_eq!(out.pcie_bytes, 0);
    }

    #[test]
    fn regex_predicates_filter_string_columns() {
        use crate::predicate::StrPredicate;
        // 1000 rows of 16B tags; every 10th contains "ERR".
        let n = 1000usize;
        let mut data = Vec::with_capacity(n * 16);
        for i in 0..n {
            let mut tag = if i % 10 == 0 {
                format!("row{i:05}ERR")
            } else {
                format!("row{i:05}ok")
            }
            .into_bytes();
            tag.resize(16, b'.');
            data.extend_from_slice(&tag);
        }
        let mut t = ColumnarTable::new();
        t.add_column("key", Column::I64((0..n as i64).collect()));
        t.add_column("tag", Column::FixedStr { width: 16, data });
        let req = ScanRequest {
            str_predicates: vec![StrPredicate::new(1, "ERR").unwrap()],
            projection: vec![0],
            ..Default::default()
        };
        let mut p1 = Platform::hc2();
        let mut p2 = Platform::hc2();
        let sw = scan_software(&mut p1, &t, &req, SimTime::ZERO);
        let hw = scan_enhanced(&mut p2, &t, &req, SimTime::ZERO, &ScannerConfig::default());
        assert_eq!(sw.matches, hw.matches);
        assert_eq!(sw.matches.len(), 100);
        // Software pays NFA simulation instructions; the skeleton-automata
        // lanes do not — the §4 asymmetry.
        use bionic_sim::energy::EnergyDomain;
        assert!(
            p1.energy.domain(EnergyDomain::CpuCore).as_j()
                > p2.energy.domain(EnergyDomain::CpuCore).as_j()
        );
    }

    #[test]
    fn dispatch_without_a_unit_is_exactly_the_enhanced_path() {
        let t = lineitems(10_000);
        let req = select_qty_below(10);
        let mut p1 = Platform::hc2();
        let mut p2 = Platform::hc2();
        let direct = scan_enhanced(&mut p1, &t, &req, SimTime::ZERO, &ScannerConfig::default());
        let routed = scan_dispatch(
            &mut p2,
            &t,
            &req,
            SimTime::ZERO,
            &ScannerConfig::default(),
            None,
        );
        assert_eq!(direct.matches, routed.matches);
        assert_eq!(direct.pcie_bytes, routed.pcie_bytes);
        assert_eq!(direct.done, routed.done);
    }

    #[test]
    fn dispatch_falls_back_to_software_when_the_unit_is_dead() {
        use bionic_sim::fault::{DegradedUnit, HwFaultConfig};
        use bionic_sim::rng::SplitMix64;
        let t = lineitems(10_000);
        let req = select_qty_below(10);
        let mut unit = DegradedUnit::new(&HwFaultConfig::saturated(), SplitMix64::new(3));
        let mut p_routed = Platform::hc2();
        let routed = scan_dispatch(
            &mut p_routed,
            &t,
            &req,
            SimTime::ZERO,
            &ScannerConfig::default(),
            Some(&mut unit),
        );
        assert_eq!(unit.stats.fallbacks, 1);
        // Same matches as either direct path; bytes match the software
        // path (predicate column shipped to the host).
        let mut p_sw = Platform::hc2();
        let sw = scan_software(&mut p_sw, &t, &req, SimTime::ZERO);
        assert_eq!(routed.matches, sw.matches);
        assert_eq!(routed.pcie_bytes, sw.pcie_bytes);
        // The fallback scan started after the watchdog/retry delay.
        assert!(routed.done > sw.done);
    }

    #[test]
    fn fpga_filter_spends_less_energy_per_row() {
        let t = lineitems(100_000);
        let req = select_qty_below(50);
        let mut p_sw = Platform::hc2();
        let mut p_hw = Platform::hc2();
        scan_software(&mut p_sw, &t, &req, SimTime::ZERO);
        scan_enhanced(
            &mut p_hw,
            &t,
            &req,
            SimTime::ZERO,
            &ScannerConfig::default(),
        );
        let sw_j = p_sw.energy.total().as_j();
        let hw_j = p_hw.energy.total().as_j();
        assert!(hw_j < sw_j, "hw={hw_j} sw={sw_j}");
    }
}
