//! Selection predicates for the scan path.
//!
//! Deliberately simple — conjunctions of column/constant comparisons — which
//! is exactly the class of filters FPGA scanners like Netezza's push into
//! hardware (§5.2 "a Netezza-style engine implements selections and
//! projections for queries").

use crate::nfa::Nfa;
use bionic_storage::columnar::ColumnarTable;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Apply the comparison.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }
}

/// One `column OP constant` predicate.
#[derive(Debug, Clone, Copy)]
pub struct ColPredicate {
    /// Column index in the table.
    pub col: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant operand.
    pub value: i64,
}

impl ColPredicate {
    /// Construct a predicate.
    pub fn new(col: usize, op: CmpOp, value: i64) -> Self {
        ColPredicate { col, op, value }
    }

    /// Evaluate against row `row` of `table`. String columns never match
    /// (numeric predicates only).
    pub fn matches(&self, table: &ColumnarTable, row: usize) -> bool {
        table
            .column(self.col)
            .as_i64(row)
            .is_some_and(|v| self.op.eval(v, self.value))
    }
}

/// A LIKE-style pattern predicate on a fixed-width string column,
/// evaluated by the §4 NFA machinery.
#[derive(Debug, Clone)]
pub struct StrPredicate {
    /// Column index (must be a `FixedStr` column).
    pub col: usize,
    /// Compiled pattern (unanchored search).
    pub nfa: Nfa,
}

impl StrPredicate {
    /// Construct from a pattern source.
    pub fn new(col: usize, pattern: &str) -> Result<Self, crate::nfa::ParseError> {
        Ok(StrPredicate {
            col,
            nfa: Nfa::compile(pattern)?,
        })
    }
}

/// A conjunction of predicates plus a projection list.
#[derive(Debug, Clone, Default)]
pub struct ScanRequest {
    /// All must hold (empty = match everything).
    pub predicates: Vec<ColPredicate>,
    /// String-pattern predicates (all must hold too).
    pub str_predicates: Vec<StrPredicate>,
    /// Column indexes to return for matching rows.
    pub projection: Vec<usize>,
}

impl ScanRequest {
    /// Does `row` satisfy every predicate?
    pub fn matches(&self, table: &ColumnarTable, row: usize) -> bool {
        let mut sink = 0u64;
        self.matches_counting(table, row, &mut sink)
    }

    /// [`ScanRequest::matches`], accumulating NFA state-visit counts (the
    /// software cost driver) into `nfa_visits`.
    pub fn matches_counting(
        &self,
        table: &ColumnarTable,
        row: usize,
        nfa_visits: &mut u64,
    ) -> bool {
        if !self.predicates.iter().all(|p| p.matches(table, row)) {
            return false;
        }
        for sp in &self.str_predicates {
            let bytes = table.column(sp.col).value_bytes(row);
            let (hit, stats) = sp.nfa.search_with_stats(&bytes);
            *nfa_visits += stats.state_visits;
            if !hit {
                return false;
            }
        }
        true
    }

    /// Bytes per row of the columns the predicates read.
    pub fn predicate_width(&self, table: &ColumnarTable) -> usize {
        let mut cols: Vec<usize> = self.predicates.iter().map(|p| p.col).collect();
        cols.extend(self.str_predicates.iter().map(|p| p.col));
        cols.sort_unstable();
        cols.dedup();
        cols.iter().map(|&c| table.column(c).value_width()).sum()
    }

    /// Total NFA states across string predicates (hardware area / energy).
    pub fn nfa_states(&self) -> usize {
        self.str_predicates
            .iter()
            .map(|p| p.nfa.state_count())
            .sum()
    }

    /// Bytes per row of the projected columns.
    pub fn projection_width(&self, table: &ColumnarTable) -> usize {
        self.projection
            .iter()
            .map(|&c| table.column(c).value_width())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_storage::columnar::Column;

    fn table() -> ColumnarTable {
        let mut t = ColumnarTable::new();
        t.add_column("id", Column::I64((0..10).collect()));
        t.add_column("qty", Column::U32((0..10).map(|i| i * 10).collect()));
        t
    }

    #[test]
    fn all_operators() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(!CmpOp::Gt.eval(2, 2));
    }

    #[test]
    fn single_predicate_filters() {
        let t = table();
        let p = ColPredicate::new(0, CmpOp::Ge, 5);
        let matches: Vec<usize> = (0..10).filter(|&r| p.matches(&t, r)).collect();
        assert_eq!(matches, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn conjunction_narrows() {
        let t = table();
        let req = ScanRequest {
            predicates: vec![
                ColPredicate::new(0, CmpOp::Ge, 3),
                ColPredicate::new(1, CmpOp::Lt, 70),
            ],
            projection: vec![0],
            ..Default::default()
        };
        let matches: Vec<usize> = (0..10).filter(|&r| req.matches(&t, r)).collect();
        assert_eq!(matches, vec![3, 4, 5, 6]);
    }

    #[test]
    fn widths_deduplicate_predicate_columns() {
        let t = table();
        let req = ScanRequest {
            predicates: vec![
                ColPredicate::new(0, CmpOp::Ge, 1),
                ColPredicate::new(0, CmpOp::Lt, 9),
                ColPredicate::new(1, CmpOp::Gt, 0),
            ],
            projection: vec![0, 1],
            ..Default::default()
        };
        assert_eq!(req.predicate_width(&t), 8 + 4);
        assert_eq!(req.projection_width(&t), 12);
    }

    #[test]
    fn empty_request_matches_all() {
        let t = table();
        let req = ScanRequest::default();
        assert!((0..10).all(|r| req.matches(&t, r)));
        assert_eq!(req.predicate_width(&t), 0);
    }
}
