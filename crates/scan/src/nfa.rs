//! NFA-based pattern matching — §4's exhibit for control flow in hardware.
//!
//! "Hardware actually excels at control flow, as evidenced by the
//! ubiquitous finite state automaton, particularly non-deterministic finite
//! state automata (NFA), which employ hardware parallelism to great effect.
//! … good regular expression matching and XPath projection algorithms
//! employ NFA, whose fine-grained parallelism is easily captured in
//! hardware \[13\] but leads to extremely inefficient software
//! implementations."
//!
//! This module provides exactly that comparison: a regex subset compiled by
//! Thompson's construction into an [`Nfa`]; a software simulation that
//! tracks the active-state set byte by byte (cost ∝ active states × input
//! length — the inefficiency §4 blames); and a skeleton-automata hardware
//! model ([`NfaEngine`]) that evaluates *every* state in parallel each
//! cycle, so cost is one fabric cycle per byte no matter how non-
//! deterministic the pattern is.
//!
//! Supported syntax: literals, `.`, `[abc]`, `[a-z]`, `*`, `+`, `?`, `|`,
//! and `(`…`)` grouping. Matching is unanchored (search semantics, the
//! LIKE-style filtering a Netezza-class scanner performs).

use bionic_sim::energy::Energy;
use bionic_sim::fpga::{FpgaFabric, FpgaUnit, OutOfArea};
use bionic_sim::time::SimTime;

/// A 256-bit byte-class bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteClass([u64; 4]);

impl ByteClass {
    fn empty() -> Self {
        ByteClass([0; 4])
    }

    fn any() -> Self {
        ByteClass([u64::MAX; 4])
    }

    fn single(b: u8) -> Self {
        let mut c = Self::empty();
        c.insert(b);
        c
    }

    fn insert(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1 << (b & 63);
    }

    fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Does the class contain `b`?
    pub fn contains(&self, b: u8) -> bool {
        self.0[(b >> 6) as usize] & (1 << (b & 63)) != 0
    }
}

#[derive(Debug, Clone)]
enum Edge {
    /// Consume a byte in the class, go to `to`.
    Byte(ByteClass, usize),
    /// Epsilon transition.
    Eps(usize),
}

/// Parse error for the regex subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Human-readable description.
    pub what: &'static str,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Cost accounting for one software NFA simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Input bytes consumed.
    pub bytes: u64,
    /// State-set membership operations (the §4 software inefficiency).
    pub state_visits: u64,
    /// Peak simultaneous active states.
    pub max_active: usize,
}

/// A Thompson-construction NFA with search (unanchored) semantics.
///
/// ```
/// use bionic_scan::Nfa;
///
/// let nfa = Nfa::compile("err(or)?|panic").unwrap();
/// assert!(nfa.is_match(b"12:00 kernel panic!"));
/// assert!(nfa.is_match(b"err 42"));
/// assert!(!nfa.is_match(b"all fine"));
/// ```
#[derive(Debug, Clone)]
pub struct Nfa {
    edges: Vec<Vec<Edge>>, // per-state out-edges
    start: usize,
    accept: usize,
    pattern: String,
}

// ---- parser: recursive descent over alt -> concat -> repeat -> atom ----

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    /// (start, accept) fragments are built directly into `edges`.
    edges: Vec<Vec<Edge>>,
}

type Frag = (usize, usize);

impl<'a> Parser<'a> {
    fn new_state(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.edges.len() - 1
    }

    fn link(&mut self, from: usize, e: Edge) {
        self.edges[from].push(e);
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn alt(&mut self) -> Result<Frag, ParseError> {
        let first = self.concat()?;
        if self.peek() != Some(b'|') {
            return Ok(first);
        }
        let start = self.new_state();
        let accept = self.new_state();
        self.link(start, Edge::Eps(first.0));
        self.link(first.1, Edge::Eps(accept));
        while self.peek() == Some(b'|') {
            self.pos += 1;
            let alt = self.concat()?;
            self.link(start, Edge::Eps(alt.0));
            self.link(alt.1, Edge::Eps(accept));
        }
        Ok((start, accept))
    }

    fn concat(&mut self) -> Result<Frag, ParseError> {
        let mut frag: Option<Frag> = None;
        while let Some(c) = self.peek() {
            if c == b'|' || c == b')' {
                break;
            }
            let next = self.repeat()?;
            frag = Some(match frag {
                None => next,
                Some((s, a)) => {
                    self.link(a, Edge::Eps(next.0));
                    (s, next.1)
                }
            });
        }
        match frag {
            Some(f) => Ok(f),
            None => {
                // Empty branch: a single epsilon fragment.
                let s = self.new_state();
                let a = self.new_state();
                self.link(s, Edge::Eps(a));
                Ok((s, a))
            }
        }
    }

    fn repeat(&mut self) -> Result<Frag, ParseError> {
        let atom = self.atom()?;
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                let s = self.new_state();
                let a = self.new_state();
                self.link(s, Edge::Eps(atom.0));
                self.link(s, Edge::Eps(a));
                self.link(atom.1, Edge::Eps(atom.0));
                self.link(atom.1, Edge::Eps(a));
                Ok((s, a))
            }
            Some(b'+') => {
                self.pos += 1;
                let a = self.new_state();
                self.link(atom.1, Edge::Eps(atom.0));
                self.link(atom.1, Edge::Eps(a));
                Ok((atom.0, a))
            }
            Some(b'?') => {
                self.pos += 1;
                let s = self.new_state();
                let a = self.new_state();
                self.link(s, Edge::Eps(atom.0));
                self.link(s, Edge::Eps(a));
                self.link(atom.1, Edge::Eps(a));
                Ok((s, a))
            }
            _ => Ok(atom),
        }
    }

    fn atom(&mut self) -> Result<Frag, ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unexpected end"))?;
        match c {
            b'(' => {
                self.pos += 1;
                let inner = self.alt()?;
                if self.peek() != Some(b')') {
                    return Err(self.err("unclosed group"));
                }
                self.pos += 1;
                Ok(inner)
            }
            b'[' => {
                self.pos += 1;
                let class = self.class()?;
                Ok(self.byte_frag(class))
            }
            b'.' => {
                self.pos += 1;
                Ok(self.byte_frag(ByteClass::any()))
            }
            b'*' | b'+' | b'?' => Err(self.err("repetition of nothing")),
            b')' | b'|' => Err(self.err("unexpected metacharacter")),
            b'\\' => {
                self.pos += 1;
                let lit = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                self.pos += 1;
                Ok(self.byte_frag(ByteClass::single(lit)))
            }
            lit => {
                self.pos += 1;
                Ok(self.byte_frag(ByteClass::single(lit)))
            }
        }
    }

    fn byte_frag(&mut self, class: ByteClass) -> Frag {
        let s = self.new_state();
        let a = self.new_state();
        self.link(s, Edge::Byte(class, a));
        (s, a)
    }

    fn class(&mut self) -> Result<ByteClass, ParseError> {
        let mut class = ByteClass::empty();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unclosed class"))?;
            if c == b']' {
                self.pos += 1;
                return Ok(class);
            }
            self.pos += 1;
            // Range a-z (a lone trailing '-' is a literal).
            if self.peek() == Some(b'-') && self.b.get(self.pos + 1) != Some(&b']') {
                self.pos += 1;
                let hi = self.peek().ok_or_else(|| self.err("unclosed class"))?;
                self.pos += 1;
                if hi < c {
                    return Err(self.err("descending range"));
                }
                class.insert_range(c, hi);
            } else {
                class.insert(c);
            }
        }
    }
}

impl Nfa {
    /// Compile a pattern.
    pub fn compile(pattern: &str) -> Result<Nfa, ParseError> {
        let mut p = Parser {
            b: pattern.as_bytes(),
            pos: 0,
            edges: Vec::new(),
        };
        let (start, accept) = p.alt()?;
        if p.pos != p.b.len() {
            return Err(p.err("trailing input"));
        }
        Ok(Nfa {
            edges: p.edges,
            start,
            accept,
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of NFA states (hardware area proxy: one flip-flop each \[13\]).
    pub fn state_count(&self) -> usize {
        self.edges.len()
    }

    fn eps_closure(&self, set: &mut [bool], stack: &mut Vec<usize>, stats: &mut SimStats) {
        while let Some(s) = stack.pop() {
            for e in &self.edges[s] {
                if let Edge::Eps(to) = e {
                    stats.state_visits += 1;
                    if !set[*to] {
                        set[*to] = true;
                        stack.push(*to);
                    }
                }
            }
        }
    }

    /// Unanchored search (does any substring match?), with cost accounting.
    pub fn search_with_stats(&self, input: &[u8]) -> (bool, SimStats) {
        let mut stats = SimStats::default();
        let n = self.edges.len();
        let mut current = vec![false; n];
        let mut stack = Vec::with_capacity(n);

        // Seed with start (unanchored: re-seeded every byte).
        current[self.start] = true;
        stack.push(self.start);
        self.eps_closure(&mut current, &mut stack, &mut stats);
        if current[self.accept] {
            return (true, stats);
        }

        let mut next = vec![false; n];
        for &b in input {
            stats.bytes += 1;
            next.iter_mut().for_each(|x| *x = false);
            let mut active = 0;
            for (s, is_active) in current.iter().enumerate() {
                if !is_active {
                    continue;
                }
                active += 1;
                for e in &self.edges[s] {
                    stats.state_visits += 1;
                    if let Edge::Byte(class, to) = e {
                        if class.contains(b) && !next[*to] {
                            next[*to] = true;
                            stack.push(*to);
                        }
                    }
                }
            }
            stats.max_active = stats.max_active.max(active);
            // Unanchored: the start state is always live.
            if !next[self.start] {
                next[self.start] = true;
                stack.push(self.start);
            }
            std::mem::swap(&mut current, &mut next);
            self.eps_closure(&mut current, &mut stack, &mut stats);
            if current[self.accept] {
                return (true, stats);
            }
        }
        (false, stats)
    }

    /// Unanchored search without cost accounting.
    pub fn is_match(&self, input: &[u8]) -> bool {
        self.search_with_stats(input).0
    }
}

/// The skeleton-automata hardware matcher (\[13\] in the paper): every NFA
/// state is a flip-flop updated in parallel, one input byte per fabric
/// cycle — cost is independent of how non-deterministic the pattern is.
#[derive(Debug)]
pub struct NfaEngine {
    unit: FpgaUnit,
    energy_per_state_byte: Energy,
}

impl NfaEngine {
    /// Place the matcher on a fabric. Area scales with the automaton size
    /// it must host (`max_states`).
    pub fn place(fabric: &mut FpgaFabric, max_states: usize) -> Result<Self, OutOfArea> {
        let unit = fabric.place(
            "nfa-matcher",
            1,
            64,
            Energy::ZERO, // charged per byte below
            2_000 + 20 * max_states as u64,
        )?;
        Ok(NfaEngine {
            unit,
            energy_per_state_byte: Energy::from_pj(0.5),
        })
    }

    /// Stream `bytes` of input through an `nfa`-shaped automaton starting
    /// at `arrive`: one byte per cycle, all states in parallel.
    pub fn scan(&mut self, arrive: SimTime, nfa: &Nfa, bytes: u64) -> (SimTime, Energy) {
        let (first, _) = self.unit.submit(arrive);
        let done = first + self.unit.clock_period() * bytes.saturating_sub(1);
        let energy = self.energy_per_state_byte * (bytes * nfa.state_count() as u64);
        (done, energy)
    }

    /// Throughput in bytes/second (one byte per fabric cycle).
    pub fn bytes_per_sec(&self) -> f64 {
        1.0 / self.unit.clock_period().as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, input: &str) -> bool {
        Nfa::compile(pat).unwrap().is_match(input.as_bytes())
    }

    #[test]
    fn literals_are_substring_search() {
        assert!(m("abc", "xxabcxx"));
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abdc"));
        assert!(m("", "anything")); // empty pattern matches everywhere
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "zabcz"));
        assert!(m("a.c", "axc"));
        assert!(!m("a.c", "ac"));
        assert!(m("[abc]x", "cx"));
        assert!(!m("[abc]x", "dx"));
        assert!(m("[a-f]9", "e9"));
        assert!(!m("[a-f]9", "g9"));
        assert!(m("[a-]z", "-z"), "trailing dash is literal");
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("cat|dog", "catnip"));
        assert!(!m("cat|dog", "bird"));
        assert!(m("(ab|cd)+e", "xxabcdabe"));
        assert!(m("gr(a|e)y", "grey"));
        assert!(m("gr(a|e)y", "gray"));
        assert!(!m("gr(a|e)y", "griy"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\.c", "a.c"));
        assert!(!m(r"a\.c", "abc"));
        assert!(m(r"a\|b", "a|b"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Nfa::compile("(ab").is_err());
        assert!(Nfa::compile("*a").is_err());
        assert!(Nfa::compile("[abc").is_err());
        assert!(Nfa::compile("a)b").is_err());
        assert!(Nfa::compile("[z-a]").is_err());
        let e = Nfa::compile("ab)").unwrap_err();
        assert_eq!(e.at, 2);
    }

    #[test]
    fn pathological_nondeterminism_costs_software_dearly() {
        // (a|aa)+ on a long run of 'a's keeps many states active: the §4
        // claim that NFAs are "extremely inefficient" in software.
        let nfa = Nfa::compile("(a|aa)+b").unwrap();
        let input = vec![b'a'; 200];
        let (hit, stats) = nfa.search_with_stats(&input);
        assert!(!hit);
        assert!(stats.max_active >= 3);
        // Far more state work than bytes: the software tax.
        assert!(
            stats.state_visits > 5 * stats.bytes,
            "visits={} bytes={}",
            stats.state_visits,
            stats.bytes
        );
    }

    #[test]
    fn hardware_cost_is_flat_per_byte() {
        let mut fabric = FpgaFabric::hc2();
        let simple = Nfa::compile("abc").unwrap();
        let gnarly = Nfa::compile("(a|aa)+(b|bb)+(c|cc)+").unwrap();
        let mut eng = NfaEngine::place(&mut fabric, 64).unwrap();
        let (t1, _) = eng.scan(SimTime::ZERO, &simple, 10_000);
        let mut fabric2 = FpgaFabric::hc2();
        let mut eng2 = NfaEngine::place(&mut fabric2, 64).unwrap();
        let (t2, _) = eng2.scan(SimTime::ZERO, &gnarly, 10_000);
        // Same wall time regardless of pattern complexity: 1 byte/cycle.
        assert_eq!(t1, t2);
        assert!((eng.bytes_per_sec() - 200e6).abs() < 1.0);
    }

    #[test]
    fn hardware_area_scales_with_states() {
        let mut fabric = FpgaFabric::hc2();
        let before = fabric.free_slices();
        NfaEngine::place(&mut fabric, 256).unwrap();
        let used = before - fabric.free_slices();
        assert_eq!(used, 2_000 + 20 * 256);
    }

    #[test]
    fn stats_track_bytes_until_first_hit() {
        let nfa = Nfa::compile("needle").unwrap();
        let mut input = vec![b'x'; 1000];
        input.extend_from_slice(b"needle");
        input.extend(vec![b'x'; 1000]);
        let (hit, stats) = nfa.search_with_stats(&input);
        assert!(hit);
        // Early exit on match: doesn't scan the trailing kilobyte.
        assert!(stats.bytes <= 1006 + 1, "bytes={}", stats.bytes);
    }
}
