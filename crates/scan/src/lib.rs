//! # bionic-scan — the Netezza-style enhanced scanner (§5.2)
//!
//! Figure 4 places an "enhanced scanner" on the FPGA in front of the
//! columnar database: it "implements selections and projections for queries
//! to reduce bandwidth pressure on the PCI bus". This crate provides the
//! predicate language ([`predicate`]) and both scan paths ([`scanner`]):
//! the conventional ship-then-filter CPU scan and the FPGA filter that
//! ships only results. Experiment E10 sweeps selectivity over both.
//!
//! [`nfa`] adds §4's control-flow-in-hardware exhibit: Thompson-compiled
//! NFA pattern matching with a byte-per-cycle skeleton-automata hardware
//! model \[13\] beside the active-set software simulation it embarrasses.

#![deny(missing_docs)]

pub mod nfa;
pub mod predicate;
pub mod scanner;

pub use nfa::{Nfa, NfaEngine, SimStats};
pub use predicate::{CmpOp, ColPredicate, ScanRequest};
pub use scanner::{scan_enhanced, scan_software, ScanEval, ScanOutcome, ScannerConfig};
