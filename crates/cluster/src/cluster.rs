//! The cluster: N nodes, one engine each, glued by presumed-abort 2PC.
//!
//! ## Execution model
//!
//! The cluster is a serial discrete-event driver over per-node engines.
//! Single-partition transactions go straight to the owning node's
//! [`Engine::submit`] — no message, no extra draw, no added latency —
//! which is what makes an unarmed one-node cluster **byte-identical** to
//! the single engine (the regression test pins this). Cross-partition
//! transactions run the two-phase protocol to completion before the next
//! transaction is drawn; concurrency inside a node is still modeled by
//! the engine's own agent queues.
//!
//! ## The commit protocol (presumed abort)
//!
//! The home node coordinates. Phase one prepares its own branch locally,
//! then each remote branch over the network with bounded timeout-retry;
//! a participant votes YES only once its `Prepare` record is durable, and
//! thereby surrenders the right to abort unilaterally. Phase two: on
//! unanimous YES the coordinator durably logs a commit decision in its
//! *own* WAL ([`Engine::log_decision`]) — the only durable record the
//! protocol adds, because *no decision means abort* — then delivers the
//! decision, retrying each remote. Undeliverable decisions park the
//! branch in doubt; the branch is resolved when the participant next
//! queries the coordinator (before new work on that node, or at end of
//! run, or during its own crash recovery via
//! [`Engine::restart_resolving`]).
//!
//! ## Crash behavior
//!
//! Any node can crash at any point (the engine's crash fuse, or the
//! torture harness's [`CoordStep`] injection on the coordinator).
//! Recovery replays the node's WAL, rebuilds the participant dedup table
//! and the coordinator's durable decisions from the log, and resolves
//! in-doubt branches by querying the surviving decision state — commit
//! iff a durable commit decision exists, abort otherwise. The
//! [`Cluster::verify_atomicity`] oracle then re-derives every global
//! transaction's fate from the WALs alone and asserts all-or-nothing and
//! exactly-once, independent of the driver's bookkeeping.

use std::collections::BTreeMap;

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_core::ops::TxnProgram;
use bionic_core::{PrepareOutcome, TxnOutcome};
use bionic_sim::time::SimTime;
use bionic_wal::manager::LogIter;
use bionic_wal::record::LogBody;
use bionic_wal::TxnId;

use crate::net::{Delivery, NetConfig, NetStats, Network};

/// Global transaction ids live in the top half of the id space so they
/// can share a WAL with ordinary per-node transaction ids.
pub const GTXN_BASE: u64 = 0x8000_0000_0000_0000;

/// Downtime charged for one crash-restart cycle (process restart + WAL
/// replay happen "during" this window in sim time).
const RECOVERY_DOWNTIME: SimTime = SimTime::from_ps(2_000_000_000); // 2 ms

/// Latency of resolving an in-doubt branch through the out-of-band
/// recovery channel after every networked attempt failed.
const OUT_OF_BAND: SimTime = SimTime::from_ps(10_000_000_000); // 10 ms

/// CPU cost of re-voting from the dedup table on a duplicate prepare.
const REVOTE_CPU: SimTime = SimTime::from_ps(2_000_000); // 2 µs

/// Protocol steps at which the torture harness can crash the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordStep {
    /// Before anything ran: the transaction simply never happened.
    BeforePrepare,
    /// After the coordinator prepared its own branch (in doubt in its own
    /// WAL, no remote touched).
    AfterLocalPrepare,
    /// After collecting remote votes, before logging a decision — the
    /// classic "everyone prepared, nobody decided" window.
    AfterVotes,
    /// After the commit decision is durable, before telling anyone.
    AfterDecisionLog,
    /// After delivering the decision to the first remote only — the
    /// partial-notification window all-or-nothing is really about.
    AfterFirstDecision,
    /// After all decisions went out (crash costs downtime, nothing else).
    AfterAllDecisions,
}

impl CoordStep {
    /// Every step, in protocol order.
    pub const ALL: [CoordStep; 6] = [
        CoordStep::BeforePrepare,
        CoordStep::AfterLocalPrepare,
        CoordStep::AfterVotes,
        CoordStep::AfterDecisionLog,
        CoordStep::AfterFirstDecision,
        CoordStep::AfterAllDecisions,
    ];
}

/// Participant-side state of one global transaction, keyed by gtxn in the
/// node's dedup table. Volatile — a crash wipes it, recovery rebuilds it
/// from the WAL — and it is what makes message redelivery exactly-once:
/// a duplicate or retried PREPARE re-votes from here instead of
/// re-executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchState {
    /// Prepared (voted YES): local txn id + coordinator node.
    Prepared(TxnId, u32),
    /// Executed and voted NO; already rolled back locally.
    Refused,
    /// Decision applied (`true` = committed).
    Finished(bool),
}

/// A participant's reply to PREPARE.
enum PrepareReply {
    /// Voted YES; the branch is durably prepared (txn id in the dedup
    /// table).
    Yes,
    /// Voted NO (local failure); branch already rolled back.
    No,
    /// Already finished — a stale duplicate arrived after the decision.
    Stale,
    /// The node's crash fuse blew while executing the branch.
    Crashed,
}

/// Outcome of the networked prepare exchange with one remote.
enum RemoteVote {
    Yes,
    No,
    /// Retries exhausted without hearing a vote; the remote may or may
    /// not hold a prepared branch.
    Unknown,
}

/// One node: an engine plus the volatile protocol state beside it.
pub struct Node {
    /// The node's private engine (own WAL, buffer pool, platform).
    pub engine: Engine,
    /// Per-gtxn participant dedup table (see [`BranchState`]).
    seen: BTreeMap<u64, BranchState>,
    /// Coordinator decision cache: commit decisions mirror durable WAL
    /// records, abort decisions are volatile (presumed abort makes losing
    /// them harmless).
    decisions: BTreeMap<u64, bool>,
    /// Crash-restart cycles this node went through.
    pub crashes: u64,
}

impl Node {
    fn new(engine: Engine) -> Self {
        Node {
            engine,
            seen: BTreeMap::new(),
            decisions: BTreeMap::new(),
            crashes: 0,
        }
    }

    /// Handle one PREPARE delivery (first copy or duplicate).
    fn deliver_prepare(
        &mut self,
        gtxn: u64,
        coord: u32,
        program: &TxnProgram,
        at: SimTime,
    ) -> (PrepareReply, SimTime) {
        match self.seen.get(&gtxn).copied() {
            Some(BranchState::Prepared(..)) => (PrepareReply::Yes, at + REVOTE_CPU),
            Some(BranchState::Refused) => (PrepareReply::No, at + REVOTE_CPU),
            Some(BranchState::Finished(_)) => (PrepareReply::Stale, at + REVOTE_CPU),
            None => match self.engine.submit_prepared(program, at, gtxn, coord) {
                PrepareOutcome::Prepared { txn, latency } => {
                    self.seen.insert(gtxn, BranchState::Prepared(txn, coord));
                    (PrepareReply::Yes, at + latency)
                }
                PrepareOutcome::Aborted { latency, .. } => {
                    self.seen.insert(gtxn, BranchState::Refused);
                    (PrepareReply::No, at + latency)
                }
                PrepareOutcome::Interrupted => (PrepareReply::Crashed, at),
            },
        }
    }
}

/// Cluster-level knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node count.
    pub nodes: usize,
    /// Per-node engine template; node `n` runs it at `seed + n`.
    pub engine: EngineConfig,
    /// Interconnect model.
    pub net: NetConfig,
    /// Coordinator wait before retrying an unanswered message.
    pub timeout: SimTime,
    /// PREPARE retries before the vote counts as unknown (an abort).
    pub prepare_retries: u32,
    /// Decision/status retries before falling back to the out-of-band
    /// recovery channel.
    pub decision_retries: u32,
}

impl ClusterConfig {
    /// Defaults: 200 µs timeout, 4 prepare retries, 6 decision retries.
    pub fn new(nodes: usize, engine: EngineConfig, net: NetConfig) -> Self {
        ClusterConfig {
            nodes,
            engine,
            net,
            timeout: SimTime::from_us(200.0),
            prepare_retries: 4,
            decision_retries: 6,
        }
    }
}

/// End-of-run scoreboard.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Node count.
    pub nodes: usize,
    /// Cross-partition transactions committed / aborted.
    pub global_committed: u64,
    /// Cross-partition transactions aborted.
    pub global_aborted: u64,
    /// Single-partition transactions committed / aborted.
    pub single_committed: u64,
    /// Single-partition transactions aborted.
    pub single_aborted: u64,
    /// Crash-restart cycles across all nodes.
    pub recoveries: u64,
    /// In-doubt branches resolved late (status query or recovery).
    pub in_doubt_resolved: u64,
    /// Worst prepare→resolution delay among those branches.
    pub in_doubt_max: SimTime,
    /// Median end-to-end latency of committed cross-partition txns.
    pub commit_p50: SimTime,
    /// p99 end-to-end latency of committed cross-partition txns.
    pub commit_p99: SimTime,
    /// Latest completion across all nodes.
    pub elapsed: SimTime,
    /// Total platform energy across nodes plus network energy, joules.
    pub joules: f64,
    /// Interconnect counters.
    pub net: NetStats,
}

impl ClusterReport {
    /// Committed transactions (any kind) per second of sim time.
    pub fn throughput_per_sec(&self) -> f64 {
        let n = (self.global_committed + self.single_committed) as f64;
        let s = self.elapsed.as_secs();
        if s > 0.0 {
            n / s
        } else {
            0.0
        }
    }
}

/// The cluster driver. See the module docs for the protocol.
pub struct Cluster {
    /// The nodes, index = node id.
    pub nodes: Vec<Node>,
    /// The interconnect.
    pub net: Network,
    cfg: ClusterConfig,
    next_gtxn: u64,
    armed_crash: Option<(CoordStep, u64)>,
    /// Branches whose decision could not be delivered: `(node, gtxn,
    /// coord)`. Resolved before the node's next transaction or at end of
    /// run.
    unresolved: Vec<(usize, u64, u32)>,
    prepared_at: BTreeMap<(usize, u64), SimTime>,
    commit_latencies_ps: Vec<u64>,
    in_doubt_delays_ps: Vec<u64>,
    global_committed: u64,
    global_aborted: u64,
    single_committed: u64,
    single_aborted: u64,
    recoveries: u64,
}

impl Cluster {
    /// Build `cfg.nodes` nodes; node `n`'s engine runs the template config
    /// with seed `seed + n` (node 0 at exactly the template seed — the
    /// mono-cluster identity anchor).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes >= 1, "a cluster has at least one node");
        let nodes = (0..cfg.nodes)
            .map(|n| {
                let seed = cfg.engine.seed + n as u64;
                Node::new(Engine::new(cfg.engine.clone().with_seed(seed)))
            })
            .collect();
        let net = Network::new(cfg.net.clone());
        Cluster {
            nodes,
            net,
            cfg,
            next_gtxn: 0,
            armed_crash: None,
            unresolved: Vec::new(),
            prepared_at: BTreeMap::new(),
            commit_latencies_ps: Vec::new(),
            in_doubt_delays_ps: Vec::new(),
            global_committed: 0,
            global_aborted: 0,
            single_committed: 0,
            single_aborted: 0,
            recoveries: 0,
        }
    }

    /// Load one small benchmark population per node (see
    /// [`bionic_workloads::PartitionedWorkload::load_small`]) and seal the
    /// load phase on every engine.
    pub fn load_small(
        &mut self,
        kind: bionic_workloads::WorkloadKind,
        cross_bp: u32,
        seed: u64,
    ) -> bionic_workloads::PartitionedWorkload {
        let wl = bionic_workloads::PartitionedWorkload::load_small(
            self.nodes.iter_mut().map(|n| &mut n.engine),
            kind,
            cross_bp,
            seed,
        );
        for n in &mut self.nodes {
            n.engine.finish_load();
        }
        wl
    }

    /// Arm a coordinator crash: the `nth_cross` cross-partition
    /// transaction (0-based) will crash its coordinator at `step`.
    pub fn arm_coordinator_crash(&mut self, step: CoordStep, nth_cross: u64) {
        self.armed_crash = Some((step, nth_cross));
    }

    /// Execute one routed transaction arriving at `arrive`. Returns
    /// whether it (globally) committed.
    pub fn execute(&mut self, txn: bionic_workloads::ClusterTxn, arrive: SimTime) -> bool {
        match txn {
            bionic_workloads::ClusterTxn::Single { node, program, .. } => {
                self.settle_node(node, arrive);
                match self.nodes[node].engine.submit(&program, arrive) {
                    TxnOutcome::Committed { .. } => {
                        self.single_committed += 1;
                        true
                    }
                    TxnOutcome::Aborted { .. } => {
                        self.single_aborted += 1;
                        false
                    }
                    TxnOutcome::Interrupted => {
                        self.recover_node(node, arrive);
                        self.single_aborted += 1;
                        false
                    }
                }
            }
            bionic_workloads::ClusterTxn::Cross { branches } => self.run_cross(branches, arrive),
        }
    }

    /// Resolve every parked in-doubt branch and any stragglers the dedup
    /// tables still hold, so the oracle can demand a doubt-free cluster.
    pub fn end_of_run(&mut self, now: SimTime) {
        let pending = std::mem::take(&mut self.unresolved);
        for (n, gtxn, coord) in pending {
            self.participant_resolve(n, gtxn, coord, now);
        }
        // Safety net: anything still prepared resolves through the same
        // status-query path (its coordinator is recorded in the table).
        for n in 0..self.nodes.len() {
            let stuck: Vec<(u64, u32)> = self.nodes[n]
                .seen
                .iter()
                .filter_map(|(g, s)| match s {
                    BranchState::Prepared(_, coord) => Some((*g, *coord)),
                    _ => None,
                })
                .collect();
            for (gtxn, coord) in stuck {
                self.participant_resolve(n, gtxn, coord, now);
            }
        }
    }

    /// The scoreboard. Call after [`Cluster::end_of_run`].
    pub fn report(&self) -> ClusterReport {
        let mut elapsed = SimTime::ZERO;
        let mut joules = 0.0;
        for node in &self.nodes {
            elapsed = elapsed.max(node.engine.stats.last_completion);
            joules += node.engine.platform.energy.total().as_nj() * 1e-9;
        }
        // 50 nJ per message on the wire (NIC + switch, both directions
        // amortized) — a deterministic integer-count model.
        joules += self.net.stats.sent as f64 * 50e-9;
        let mut lat = self.commit_latencies_ps.clone();
        lat.sort_unstable();
        let pct = |p: f64| -> SimTime {
            if lat.is_empty() {
                return SimTime::ZERO;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            SimTime::from_ps(lat[idx])
        };
        ClusterReport {
            nodes: self.nodes.len(),
            global_committed: self.global_committed,
            global_aborted: self.global_aborted,
            single_committed: self.single_committed,
            single_aborted: self.single_aborted,
            recoveries: self.recoveries,
            in_doubt_resolved: self.in_doubt_delays_ps.len() as u64,
            in_doubt_max: SimTime::from_ps(
                self.in_doubt_delays_ps.iter().copied().max().unwrap_or(0),
            ),
            commit_p50: pct(0.50),
            commit_p99: pct(0.99),
            elapsed,
            joules,
            net: self.net.stats,
        }
    }

    // ---- cross-partition protocol ----

    fn run_cross(
        &mut self,
        branches: Vec<(usize, &'static str, TxnProgram)>,
        arrive: SimTime,
    ) -> bool {
        let gtxn_index = self.next_gtxn;
        let gtxn = GTXN_BASE | self.next_gtxn;
        self.next_gtxn += 1;
        let coord = branches[0].0;
        let crash = match self.armed_crash {
            Some((step, idx)) if idx == gtxn_index => {
                self.armed_crash = None;
                Some(step)
            }
            _ => None,
        };
        for (n, _, _) in &branches {
            self.settle_node(*n, arrive);
        }

        if crash == Some(CoordStep::BeforePrepare) {
            self.recover_node(coord, arrive);
            self.global_aborted += 1;
            return false;
        }

        // Phase 1a: the coordinator's own branch, no network involved.
        let mut t = arrive;
        let mut all_yes = true;
        let (reply, done) =
            self.nodes[coord].deliver_prepare(gtxn, coord as u32, &branches[0].2, t);
        match reply {
            PrepareReply::Yes => {
                self.prepared_at.insert((coord, gtxn), done);
                t = done;
            }
            PrepareReply::No | PrepareReply::Stale => {
                all_yes = false;
                t = done;
            }
            PrepareReply::Crashed => {
                self.recover_node(coord, t);
                self.global_aborted += 1;
                return false;
            }
        }

        if crash == Some(CoordStep::AfterLocalPrepare) {
            // The coordinator dies holding (at most) its own prepared
            // branch; recovery presumes abort — no decision exists.
            self.recover_node(coord, t);
            self.global_aborted += 1;
            return false;
        }

        // Phase 1b: remote branches — skipped entirely once a NO is in
        // (the serial driver prepares in order, so a local veto costs the
        // remotes nothing).
        let mut contacted: Vec<usize> = Vec::new();
        if all_yes {
            for (rn, _, prog) in &branches[1..] {
                match self.prepare_remote(coord, *rn, gtxn, prog, &mut t) {
                    Some(RemoteVote::Yes) => {
                        contacted.push(*rn);
                        self.prepared_at.insert((*rn, gtxn), t);
                    }
                    Some(RemoteVote::No) => {
                        all_yes = false;
                        // Refused branches rolled back already; nothing to
                        // decide for them, but keep the loop shape simple.
                    }
                    Some(RemoteVote::Unknown) => {
                        // The remote may be durably prepared without us
                        // ever hearing the vote — it must get the (abort)
                        // decision.
                        all_yes = false;
                        contacted.push(*rn);
                    }
                    None => {
                        // Remote crashed mid-prepare (recovered inside
                        // prepare_remote); its branch died with it.
                        all_yes = false;
                    }
                }
                if !all_yes {
                    break;
                }
            }
        }

        if crash == Some(CoordStep::AfterVotes) {
            // Everyone who prepared is now in doubt; no decision was ever
            // made, so recovery and status queries presume abort.
            self.recover_node(coord, t);
            for rn in contacted {
                self.unresolved.push((rn, gtxn, coord as u32));
            }
            self.global_aborted += 1;
            return false;
        }

        // Phase 2: decide.
        let commit = all_yes;
        if commit {
            match self.nodes[coord].engine.log_decision(gtxn, t) {
                Some(durable) => {
                    t = durable;
                    self.nodes[coord].decisions.insert(gtxn, true);
                }
                None => {
                    // Fuse blew mid-decision: whether the commit record
                    // survived is the crash image's call, not ours.
                    self.recover_node(coord, t);
                    let committed = self.nodes[coord]
                        .decisions
                        .get(&gtxn)
                        .copied()
                        .unwrap_or(false);
                    for rn in contacted {
                        self.unresolved.push((rn, gtxn, coord as u32));
                    }
                    return self.finish_global(committed, arrive, t);
                }
            }
        } else {
            self.nodes[coord].decisions.insert(gtxn, false);
        }

        if crash == Some(CoordStep::AfterDecisionLog) {
            self.recover_node(coord, t);
            for rn in contacted {
                self.unresolved.push((rn, gtxn, coord as u32));
            }
            // A durable commit decision survives the crash; anything less
            // is presumed abort.
            let committed = self.nodes[coord]
                .decisions
                .get(&gtxn)
                .copied()
                .unwrap_or(false);
            return self.finish_global(committed, arrive, t);
        }

        // Deliver the decision: coordinator's own branch first (memory
        // write, no network), then each contacted remote.
        self.finish_branch(coord, gtxn, commit, t, false);
        for (i, rn) in contacted.iter().enumerate() {
            if !self.decision_remote(coord, *rn, gtxn, commit, &mut t) {
                self.unresolved.push((*rn, gtxn, coord as u32));
            }
            if i == 0 && crash == Some(CoordStep::AfterFirstDecision) {
                self.recover_node(coord, t);
                for rn in &contacted[1..] {
                    self.unresolved.push((*rn, gtxn, coord as u32));
                }
                return self.finish_global(commit, arrive, t);
            }
        }

        if crash == Some(CoordStep::AfterAllDecisions) {
            self.recover_node(coord, t);
        }
        self.finish_global(commit, arrive, t)
    }

    fn finish_global(&mut self, commit: bool, arrive: SimTime, done: SimTime) -> bool {
        if commit {
            self.global_committed += 1;
            self.commit_latencies_ps
                .push(done.saturating_sub(arrive).as_ps());
        } else {
            self.global_aborted += 1;
        }
        commit
    }

    /// The networked PREPARE exchange with one remote. `None` means the
    /// remote crashed (and was recovered in place).
    fn prepare_remote(
        &mut self,
        coord: usize,
        rn: usize,
        gtxn: u64,
        program: &TxnProgram,
        t: &mut SimTime,
    ) -> Option<RemoteVote> {
        for _ in 0..=self.cfg.prepare_retries {
            match self.net.send(coord as u32, rn as u32, *t) {
                Delivery::Dropped => {
                    *t += self.cfg.timeout;
                }
                Delivery::Delivered { at, dup } => {
                    let (reply, done) =
                        self.nodes[rn].deliver_prepare(gtxn, coord as u32, program, at);
                    if dup {
                        // The second copy re-votes from the dedup table —
                        // never re-executes.
                        let _ = self.nodes[rn].deliver_prepare(gtxn, coord as u32, program, done);
                    }
                    let vote = match reply {
                        PrepareReply::Yes => RemoteVote::Yes,
                        PrepareReply::No | PrepareReply::Stale => RemoteVote::No,
                        PrepareReply::Crashed => {
                            self.recover_node(rn, done);
                            return None;
                        }
                    };
                    match self.net.send(rn as u32, coord as u32, done) {
                        Delivery::Dropped => {
                            // Vote lost: the coordinator times out and
                            // retries the prepare; the dedup table absorbs
                            // the redelivery.
                            *t = (*t + self.cfg.timeout).max(done);
                        }
                        Delivery::Delivered { at: back, .. } => {
                            *t = back;
                            return Some(vote);
                        }
                    }
                }
            }
        }
        Some(RemoteVote::Unknown)
    }

    /// Deliver the decision to one remote; `false` means every retry was
    /// lost and the branch stays parked in doubt.
    fn decision_remote(
        &mut self,
        coord: usize,
        rn: usize,
        gtxn: u64,
        commit: bool,
        t: &mut SimTime,
    ) -> bool {
        for _ in 0..=self.cfg.decision_retries {
            match self.net.send(coord as u32, rn as u32, *t) {
                Delivery::Dropped => {
                    *t += self.cfg.timeout;
                }
                Delivery::Delivered { at, dup } => {
                    self.finish_branch(rn, gtxn, commit, at, false);
                    if dup {
                        // Second copy lands on Finished state: no-op.
                        self.finish_branch(rn, gtxn, commit, at + REVOTE_CPU, false);
                    }
                    *t = (*t).max(at);
                    return true;
                }
            }
        }
        false
    }

    /// Apply a decision to a branch if (and only if) it is still
    /// prepared. Safe against duplicates and stale deliveries.
    fn finish_branch(&mut self, n: usize, gtxn: u64, commit: bool, at: SimTime, late: bool) {
        if let Some(BranchState::Prepared(txn, _)) = self.nodes[n].seen.get(&gtxn).copied() {
            match self.nodes[n].engine.resolve_prepared(txn, commit, at) {
                TxnOutcome::Interrupted => {
                    // Fuse blew mid-resolution: recovery will finish the
                    // job from the WAL + decision state.
                    self.recover_node(n, at);
                }
                _ => {
                    self.nodes[n]
                        .seen
                        .insert(gtxn, BranchState::Finished(commit));
                    if let Some(p) = self.prepared_at.remove(&(n, gtxn)) {
                        if late {
                            self.in_doubt_delays_ps.push(at.saturating_sub(p).as_ps());
                        }
                    }
                }
            }
        }
    }

    /// Resolve parked in-doubt branches owned by `node` before it takes
    /// new work. No-op (and draw-free) when nothing is parked.
    fn settle_node(&mut self, node: usize, now: SimTime) {
        if self.unresolved.is_empty() {
            return;
        }
        let (mine, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.unresolved)
            .into_iter()
            .partition(|u| u.0 == node);
        self.unresolved = rest;
        for (n, gtxn, coord) in mine {
            self.participant_resolve(n, gtxn, coord, now);
        }
    }

    /// Participant-initiated resolution: query the coordinator's decision
    /// state over the network (bounded retries), falling back to the
    /// out-of-band recovery channel. Presumed abort answers misses.
    fn participant_resolve(&mut self, n: usize, gtxn: u64, coord: u32, now: SimTime) {
        let commit = self.nodes[coord as usize]
            .decisions
            .get(&gtxn)
            .copied()
            .unwrap_or(false);
        let mut t = now;
        let mut resolved_at = None;
        for _ in 0..=self.cfg.decision_retries {
            match self.net.send(n as u32, coord, t) {
                Delivery::Dropped => {
                    t += self.cfg.timeout;
                }
                Delivery::Delivered { at, .. } => match self.net.send(coord, n as u32, at) {
                    Delivery::Dropped => {
                        t = (t + self.cfg.timeout).max(at);
                    }
                    Delivery::Delivered { at: back, .. } => {
                        resolved_at = Some(back);
                        break;
                    }
                },
            }
        }
        let at = resolved_at.unwrap_or(t + OUT_OF_BAND);
        self.finish_branch(n, gtxn, commit, at, true);
    }

    /// Crash node `n` and bring it back: scan the crash image for durable
    /// coordinator decisions and every branch the node ever prepared,
    /// replay the WAL with [`Engine::restart_resolving`] (in-doubt
    /// branches resolved against the cluster's surviving decision state),
    /// and rebuild the volatile tables from what the log proves.
    fn recover_node(&mut self, n: usize, now: SimTime) {
        self.recoveries += 1;
        self.nodes[n].crashes += 1;
        // Decision view from the survivors (coordinators hold their own
        // decisions; presumed abort covers everything else).
        let mut view: BTreeMap<u64, bool> = BTreeMap::new();
        for (i, peer) in self.nodes.iter().enumerate() {
            if i != n {
                view.extend(peer.decisions.iter().map(|(k, v)| (*k, *v)));
            }
        }
        let seed = self.cfg.engine.seed + n as u64;
        let placeholder = Engine::new(EngineConfig::software().with_agents(1));
        let image = std::mem::replace(&mut self.nodes[n].engine, placeholder).crash();

        let mut own_decisions: BTreeMap<u64, bool> = BTreeMap::new();
        let mut prepares: Vec<(TxnId, u64)> = Vec::new();
        for rec in LogIter::over(image.log_bytes(), 0) {
            match rec.body {
                LogBody::Commit if rec.txn & GTXN_BASE != 0 => {
                    own_decisions.insert(rec.txn, true);
                }
                LogBody::Prepare { gtxn, .. } => prepares.push((rec.txn, gtxn)),
                _ => {}
            }
        }
        view.extend(own_decisions.iter().map(|(k, v)| (*k, *v)));

        let cfg_n = self.cfg.engine.clone().with_seed(seed);
        let (engine, rec) = Engine::restart_resolving(image, cfg_n, |_txn, gtxn, _coord| {
            view.get(&gtxn).copied().unwrap_or(false)
        });
        let recovered_at = now + RECOVERY_DOWNTIME;
        let winners: std::collections::BTreeSet<TxnId> = rec.winners.iter().copied().collect();
        let mut seen = BTreeMap::new();
        for (txn, gtxn) in prepares {
            seen.insert(gtxn, BranchState::Finished(winners.contains(&txn)));
        }
        for (txn, gtxn, _) in &rec.in_doubt {
            // Doubt resolved at recovery: account its prepare→resolution
            // delay against the tail metric.
            let _ = txn;
            if let Some(p) = self.prepared_at.remove(&(n, *gtxn)) {
                self.in_doubt_delays_ps
                    .push(recovered_at.saturating_sub(p).as_ps());
            }
        }
        // Branches whose decisions were parked for this node are settled
        // by the recovery itself.
        self.unresolved.retain(|u| u.0 != n);
        // Any prepared_at bookkeeping left for this node is for branches
        // the crash rolled up (e.g. unflushed prepares): drop it.
        self.prepared_at.retain(|(bn, _), _| *bn != n);
        self.nodes[n].engine = engine;
        self.nodes[n].seen = seen;
        self.nodes[n].decisions = own_decisions;
    }

    // ---- the differential oracle ----

    /// Re-derive every global transaction's fate from the per-node WALs
    /// alone and assert atomicity:
    ///
    /// 1. no gtxn both committed on one node and aborted on another;
    /// 2. no branch committed without a durable commit decision;
    /// 3. no branch aborted against a durable commit decision;
    /// 4. at most one prepared branch per `(node, gtxn)` — exactly-once
    ///    under drops, duplicates, and retries;
    /// 5. no branch still in doubt (call after [`Cluster::end_of_run`]).
    pub fn verify_atomicity(&self) -> Result<(), String> {
        let mut decisions: std::collections::BTreeSet<u64> = Default::default();
        // gtxn -> per-branch (node, committed, aborted)
        let mut by_gtxn: BTreeMap<u64, Vec<(usize, bool, bool)>> = BTreeMap::new();
        for (n, node) in self.nodes.iter().enumerate() {
            let lm = node.engine.log();
            let mut branch_of: BTreeMap<TxnId, u64> = BTreeMap::new();
            // (commit, abort, end) markers per local txn. The runtime
            // rollback path writes CLRs + End with no explicit Abort
            // record, so "ended without committing" is the abort signal.
            let mut state: BTreeMap<TxnId, (bool, bool, bool)> = BTreeMap::new();
            let mut prepared_gtxns: std::collections::BTreeSet<u64> = Default::default();
            for rec in lm.iter_from(lm.base_lsn()) {
                if rec.txn & GTXN_BASE != 0 {
                    if matches!(rec.body, LogBody::Commit) {
                        decisions.insert(rec.txn);
                    }
                    continue;
                }
                match rec.body {
                    LogBody::Prepare { gtxn, .. } => {
                        if !prepared_gtxns.insert(gtxn) {
                            return Err(format!(
                                "node {n}: gtxn {gtxn:#x} prepared more than once (exactly-once violated)"
                            ));
                        }
                        branch_of.insert(rec.txn, gtxn);
                    }
                    LogBody::Commit => state.entry(rec.txn).or_default().0 = true,
                    LogBody::Abort => state.entry(rec.txn).or_default().1 = true,
                    LogBody::End => state.entry(rec.txn).or_default().2 = true,
                    _ => {}
                }
            }
            for (txn, gtxn) in branch_of {
                let (c, a, e) = state.get(&txn).copied().unwrap_or((false, false, false));
                by_gtxn
                    .entry(gtxn)
                    .or_default()
                    .push((n, c, a || (e && !c)));
            }
        }
        for (gtxn, branches) in by_gtxn {
            let committed: Vec<usize> = branches.iter().filter(|b| b.1).map(|b| b.0).collect();
            let aborted: Vec<usize> = branches.iter().filter(|b| b.2).map(|b| b.0).collect();
            let doubt: Vec<usize> = branches
                .iter()
                .filter(|b| !b.1 && !b.2)
                .map(|b| b.0)
                .collect();
            if !committed.is_empty() && !aborted.is_empty() {
                return Err(format!(
                    "gtxn {gtxn:#x}: committed on nodes {committed:?} but aborted on {aborted:?}"
                ));
            }
            if !committed.is_empty() && !decisions.contains(&gtxn) {
                return Err(format!(
                    "gtxn {gtxn:#x}: committed on {committed:?} with no durable commit decision"
                ));
            }
            if !aborted.is_empty() && decisions.contains(&gtxn) {
                return Err(format!(
                    "gtxn {gtxn:#x}: aborted on {aborted:?} against a durable commit decision"
                ));
            }
            if !doubt.is_empty() {
                return Err(format!(
                    "gtxn {gtxn:#x}: still in doubt on nodes {doubt:?} after end of run"
                ));
            }
        }
        Ok(())
    }

    // ---- telemetry ----

    /// Merge all nodes' metric registries under `node{n}/` scopes.
    pub fn merged_metrics(&mut self) -> bionic_telemetry::MetricsRegistry {
        for node in &mut self.nodes {
            node.engine.collect_metrics();
        }
        let regs: Vec<&bionic_telemetry::MetricsRegistry> =
            self.nodes.iter().map(|n| n.engine.tel.metrics()).collect();
        bionic_telemetry::merge_node_metrics(&regs)
    }

    /// One Chrome trace with one `node{n}/…` track group per node.
    pub fn merged_chrome_trace(&self) -> String {
        let per_node: Vec<(
            Vec<bionic_telemetry::tracer::Track>,
            Vec<bionic_telemetry::SpanEvent>,
        )> = self
            .nodes
            .iter()
            .map(|n| (n.engine.tel.tracks().to_vec(), n.engine.tel.events()))
            .collect();
        let refs: Vec<(
            &[bionic_telemetry::tracer::Track],
            &[bionic_telemetry::SpanEvent],
        )> = per_node.iter().map(|(t, e)| (&t[..], &e[..])).collect();
        bionic_telemetry::merged_chrome_trace(&refs)
    }
}
