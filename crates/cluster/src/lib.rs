//! # bionic-cluster — a deterministic multi-node bionic DBMS
//!
//! The paper's bionic engine is a single box: cores, specialized units,
//! and a log engine behind one dispatcher. This crate asks the next
//! question — what does a *cluster* of bionic boxes look like — and
//! answers it the same way the rest of the repo answers everything: as a
//! deterministic simulation whose artifacts are byte-identical for any
//! seed, job count, or shard split.
//!
//! Three layers:
//!
//! * [`net`] — the interconnect. Per-directed-link latency plus
//!   injectable faults (drop / duplicate / delay / partition, basis-point
//!   rates) driven by per-link [`SplitMix64`](bionic_sim::rng::SplitMix64)
//!   substreams. A knob at zero draws nothing, so an unarmed network is
//!   bit-for-bit a latency model.
//! * [`cluster`] — N nodes, each owning a full [`Engine`]
//!   (own WAL, buffer pool, platform, telemetry), joined by crash-safe
//!   presumed-abort two-phase commit: participants vote YES only after a
//!   durable `Prepare` record, the coordinator's only durable word is a
//!   commit decision in its own WAL, and recovery resolves in-doubt
//!   branches from the logs ([`Engine::restart_resolving`]). Timeouts,
//!   bounded-backoff retries, participant dedup tables (exactly-once
//!   under duplication and redelivery), and a WAL-only atomicity oracle
//!   ([`Cluster::verify_atomicity`]) close the loop.
//! * telemetry — per-node metrics and spans merge under `node{n}/`
//!   prefixes into single cluster-wide artifacts
//!   ([`Cluster::merged_metrics`], [`Cluster::merged_chrome_trace`]).
//!
//! The load side is [`bionic_workloads::PartitionedWorkload`]: one
//! benchmark population per node and a seeded router that injects a
//! tunable fraction of cross-partition transactions.
//!
//! [`Engine`]: bionic_core::engine::Engine
//! [`Engine::restart_resolving`]: bionic_core::engine::Engine::restart_resolving
//! [`Cluster::verify_atomicity`]: cluster::Cluster::verify_atomicity
//! [`Cluster::merged_metrics`]: cluster::Cluster::merged_metrics
//! [`Cluster::merged_chrome_trace`]: cluster::Cluster::merged_chrome_trace

#![deny(missing_docs)]

pub mod cluster;
pub mod net;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, CoordStep, Node, GTXN_BASE};
pub use net::{Delivery, NetConfig, NetStats, Network};
