//! The deterministic cluster interconnect.
//!
//! Every message between two nodes crosses one directed *link*. A link is
//! a latency model plus an injectable fault model, and both are driven by
//! a per-link [`SplitMix64`] substream derived from the network seed and
//! the link's endpoints — so a link's behavior depends only on the seed
//! and the sequence of messages *it* carried, never on what other links
//! did or on host scheduling. That is what makes cluster runs
//! byte-identical at any `--jobs`/`--shards` setting.
//!
//! Faults are rates in basis points with the same zero-draw contract the
//! chaos and hardware fault layers follow: **a knob at zero consumes no
//! randomness**, so an unarmed network prices messages identically to a
//! build where the fault model does not exist. The per-message draw
//! order is fixed and documented: partition gate, then drop, then
//! duplicate, then delay, then jitter — each drawn only when armed.

use bionic_sim::rng::SplitMix64;
use bionic_sim::time::SimTime;

/// Interconnect parameters. All rates are basis points (1 bp = 0.01 %),
/// clamped to 10 000; all times are sim-time picoseconds underneath.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Seed for the per-link fault substreams.
    pub seed: u64,
    /// One-way base latency per message.
    pub base: SimTime,
    /// Uniform extra latency in `0..=jitter` (drawn only when non-zero).
    pub jitter: SimTime,
    /// Chance a message is silently lost.
    pub drop_bp: u32,
    /// Chance a message is delivered twice.
    pub dup_bp: u32,
    /// Chance a message is delayed by `delay_extra` on top of its latency.
    pub delay_bp: u32,
    /// Extra latency charged to a delayed message.
    pub delay_extra: SimTime,
    /// Chance a link partitions; while partitioned it black-holes the
    /// next [`NetConfig::part_msgs`] messages it is asked to carry.
    pub part_bp: u32,
    /// Partition width, in messages observed on the link.
    pub part_msgs: u32,
}

impl NetConfig {
    /// A healthy interconnect: 5 µs links, no jitter, every fault knob at
    /// zero — the configuration whose message handling draws no
    /// randomness at all.
    pub fn healthy(seed: u64) -> Self {
        NetConfig {
            seed,
            base: SimTime::from_us(5.0),
            jitter: SimTime::ZERO,
            drop_bp: 0,
            dup_bp: 0,
            delay_bp: 0,
            delay_extra: SimTime::from_us(40.0),
            part_bp: 0,
            part_msgs: 6,
        }
    }

    /// Arm the fault knobs from the chaos plan's network rates
    /// (`net_drop`/`net_dup`/`net_delay`/`net_part`, basis points).
    pub fn with_rates(mut self, drop_bp: u32, dup_bp: u32, delay_bp: u32, part_bp: u32) -> Self {
        self.drop_bp = drop_bp.min(10_000);
        self.dup_bp = dup_bp.min(10_000);
        self.delay_bp = delay_bp.min(10_000);
        self.part_bp = part_bp.min(10_000);
        self
    }

    /// Is any fault knob armed?
    pub fn armed(&self) -> bool {
        self.drop_bp | self.dup_bp | self.delay_bp | self.part_bp != 0
    }
}

/// What happened to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered at `at`; `dup` means a second copy arrives one
    /// microsecond later and the receiver must deduplicate.
    Delivered {
        /// Arrival time of the first copy.
        at: SimTime,
        /// A duplicate copy follows.
        dup: bool,
    },
    /// Lost — dropped by the fault model or black-holed by a partition.
    Dropped,
}

/// Message counters, all deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages that arrived (first copies).
    pub delivered: u64,
    /// Messages lost to the drop knob.
    pub dropped: u64,
    /// Messages lost to a partition window.
    pub partitioned: u64,
    /// Duplicate copies generated.
    pub duplicated: u64,
    /// Messages that took the delay penalty.
    pub delayed: u64,
    /// Partition windows opened.
    pub partitions: u64,
}

struct Link {
    rng: SplitMix64,
    part_left: u32,
}

/// The interconnect: per-directed-link state lazily created on first use,
/// each link seeded independently of every other.
pub struct Network {
    cfg: NetConfig,
    links: std::collections::BTreeMap<(u32, u32), Link>,
    /// Counters.
    pub stats: NetStats,
}

impl Network {
    /// A network with the given parameters.
    pub fn new(cfg: NetConfig) -> Self {
        Network {
            cfg,
            links: std::collections::BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    fn link(&mut self, from: u32, to: u32) -> &mut Link {
        let seed = self.cfg.seed;
        self.links.entry((from, to)).or_insert_with(|| {
            // Endpoint-keyed substream: mix the directed pair into the
            // seed so (0,1) and (1,0) are independent streams.
            let key = ((from as u64) << 32) | to as u64;
            Link {
                rng: SplitMix64::new(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                part_left: 0,
            }
        })
    }

    /// Carry one message from `from` to `to`, handed to the NIC at `now`.
    ///
    /// Fixed draw order — partition gate, drop, duplicate, delay, jitter —
    /// with every draw skipped while its knob is zero, so the healthy
    /// configuration never touches the link's RNG.
    pub fn send(&mut self, from: u32, to: u32, now: SimTime) -> Delivery {
        self.stats.sent += 1;
        let cfg = self.cfg.clone();
        let link = self.link(from, to);

        if cfg.part_bp > 0 {
            if link.part_left > 0 {
                link.part_left -= 1;
                self.stats.partitioned += 1;
                return Delivery::Dropped;
            }
            if link.rng.chance(cfg.part_bp as f64 / 1e4) {
                // The window swallows this message and the next part_msgs-1.
                link.part_left = cfg.part_msgs.saturating_sub(1);
                self.stats.partitions += 1;
                self.stats.partitioned += 1;
                return Delivery::Dropped;
            }
        }
        if cfg.drop_bp > 0 && link.rng.chance(cfg.drop_bp as f64 / 1e4) {
            self.stats.dropped += 1;
            return Delivery::Dropped;
        }
        let dup = cfg.dup_bp > 0 && link.rng.chance(cfg.dup_bp as f64 / 1e4);
        let delayed = cfg.delay_bp > 0 && link.rng.chance(cfg.delay_bp as f64 / 1e4);
        let mut latency = cfg.base;
        if delayed {
            latency += cfg.delay_extra;
        }
        if !cfg.jitter.is_zero() {
            latency += SimTime::from_ps(link.rng.below(cfg.jitter.as_ps() + 1));
        }
        if delayed {
            self.stats.delayed += 1;
        }
        self.stats.delivered += 1;
        if dup {
            self.stats.duplicated += 1;
        }
        Delivery::Delivered {
            at: now + latency,
            dup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: NetConfig, msgs: u32) -> (Vec<Delivery>, NetStats) {
        let mut net = Network::new(cfg);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        for i in 0..msgs {
            out.push(net.send(i % 3, (i + 1) % 3, t));
            t += SimTime::from_us(10.0);
        }
        (out, net.stats)
    }

    #[test]
    fn healthy_network_is_pure_latency() {
        let (deliveries, stats) = run(NetConfig::healthy(7), 100);
        assert_eq!(stats.delivered, 100);
        assert_eq!(
            stats.dropped + stats.duplicated + stats.delayed + stats.partitioned,
            0
        );
        for (i, d) in deliveries.iter().enumerate() {
            let sent = SimTime::from_us(10.0 * i as f64);
            assert_eq!(
                *d,
                Delivery::Delivered {
                    at: sent + SimTime::from_us(5.0),
                    dup: false
                }
            );
        }
    }

    #[test]
    fn same_seed_same_delivery_schedule() {
        let cfg = NetConfig::healthy(42).with_rates(1_500, 800, 1_000, 400);
        assert_eq!(run(cfg.clone(), 400), run(cfg, 400));
    }

    #[test]
    fn links_are_independent_substreams() {
        // Interleaving traffic on another link must not change what link
        // (0,1) does — the property that keeps sharded runs byte-stable.
        let cfg = NetConfig::healthy(42).with_rates(2_000, 1_000, 1_000, 500);
        let solo: Vec<Delivery> = {
            let mut net = Network::new(cfg.clone());
            (0..200)
                .map(|i| net.send(0, 1, SimTime::from_us(i as f64)))
                .collect()
        };
        let interleaved: Vec<Delivery> = {
            let mut net = Network::new(cfg);
            (0..200)
                .map(|i| {
                    let _ = net.send(2, 3, SimTime::from_us(i as f64));
                    net.send(0, 1, SimTime::from_us(i as f64))
                })
                .collect()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn partition_black_holes_a_window_of_messages() {
        let mut cfg = NetConfig::healthy(1).with_rates(0, 0, 0, 10_000);
        cfg.part_msgs = 4;
        let mut net = Network::new(cfg);
        // 100% partition rate: first message opens the window, the window
        // swallows it plus the next three, then the next message re-opens.
        for i in 0..8 {
            let d = net.send(0, 1, SimTime::from_us(i as f64));
            assert_eq!(d, Delivery::Dropped, "msg {i}");
        }
        assert_eq!(net.stats.partitions, 2);
        assert_eq!(net.stats.partitioned, 8);
        assert_eq!(net.stats.delivered, 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let cfg = NetConfig::healthy(99).with_rates(2_000, 1_000, 1_500, 0);
        let (_, stats) = run(cfg, 4000);
        let frac = |n: u64| n as f64 / stats.sent as f64;
        assert!((0.15..0.25).contains(&frac(stats.dropped)), "{stats:?}");
        // Dup/delay are drawn on surviving messages only.
        assert!(
            (0.06..0.14).contains(&(stats.duplicated as f64 / stats.delivered as f64)),
            "{stats:?}"
        );
        assert!(
            (0.10..0.20).contains(&(stats.delayed as f64 / stats.delivered as f64)),
            "{stats:?}"
        );
    }
}
