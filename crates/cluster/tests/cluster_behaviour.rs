//! Cluster behaviour: mono-cluster byte-identity, healthy-net 2PC,
//! coordinator-crash smoke coverage, and merged telemetry artifacts.

use bionic_cluster::{Cluster, ClusterConfig, CoordStep, NetConfig};
use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::{AnyWorkload, WorkloadKind};

const CADENCE: f64 = 10.0; // µs between arrivals

fn run_cluster(
    nodes: usize,
    engine: EngineConfig,
    net: NetConfig,
    kind: WorkloadKind,
    cross_bp: u32,
    seed: u64,
    txns: usize,
) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig::new(nodes, engine, net));
    let mut wl = cluster.load_small(kind, cross_bp, seed);
    let mut at = SimTime::ZERO;
    for _ in 0..txns {
        let txn = wl.next();
        cluster.execute(txn, at);
        at += SimTime::from_us(CADENCE);
    }
    cluster.end_of_run(at);
    cluster
}

#[test]
fn unarmed_mono_cluster_is_byte_identical_to_the_single_engine() {
    for cfg in [
        EngineConfig::software().with_agents(4),
        EngineConfig::bionic(),
        EngineConfig::conventional().with_agents(4),
    ] {
        // Plain engine, driven directly.
        let mut solo = Engine::new(cfg.clone());
        let mut wl = AnyWorkload::load_small(&mut solo, WorkloadKind::Tatp, 4242);
        solo.finish_load();
        let mut at = SimTime::ZERO;
        for _ in 0..200 {
            let (_, prog) = wl.next_program();
            solo.submit(&prog, at);
            at += SimTime::from_us(CADENCE);
        }

        // One-node cluster, healthy net, zero cross fraction.
        let cluster = run_cluster(
            1,
            cfg,
            NetConfig::healthy(4242),
            WorkloadKind::Tatp,
            0,
            4242,
            200,
        );
        let node = &cluster.nodes[0].engine;

        assert_eq!(node.stats.submitted, solo.stats.submitted);
        assert_eq!(node.stats.committed, solo.stats.committed);
        assert_eq!(node.stats.aborted, solo.stats.aborted);
        assert_eq!(node.stats.last_completion, solo.stats.last_completion);
        assert_eq!(node.log().tail_lsn(), solo.log().tail_lsn());
        assert_eq!(
            node.log().crash_image(),
            solo.log().crash_image(),
            "one-node cluster WAL must be byte-identical to the single engine"
        );
        assert_eq!(cluster.net.stats.sent, 0, "no messages on a mono-cluster");
    }
}

#[test]
fn healthy_cluster_commits_cross_partition_transactions_atomically() {
    let cluster = run_cluster(
        3,
        EngineConfig::software().with_agents(2),
        NetConfig::healthy(7),
        WorkloadKind::Tatp,
        3_000,
        7,
        300,
    );
    let report = cluster.report();
    assert!(report.global_committed > 20, "{report:?}");
    assert!(report.single_committed > 100, "{report:?}");
    assert_eq!(report.recoveries, 0);
    assert_eq!(report.in_doubt_resolved, 0, "healthy net leaves no doubt");
    assert!(report.net.sent > 0 && report.net.dropped == 0);
    // Cross-partition commits pay at least one RTT + decision flush over
    // a local commit.
    assert!(report.commit_p50 >= SimTime::from_us(10.0), "{report:?}");
    cluster.verify_atomicity().expect("atomic");
}

#[test]
fn tpcc_cross_partition_stream_stays_atomic() {
    let cluster = run_cluster(
        2,
        EngineConfig::bionic(),
        NetConfig::healthy(11),
        WorkloadKind::Tpcc,
        2_000,
        11,
        200,
    );
    let report = cluster.report();
    assert!(report.global_committed > 10, "{report:?}");
    cluster.verify_atomicity().expect("atomic");
}

#[test]
fn lossy_network_preserves_atomicity_and_resolves_all_doubt() {
    let net = NetConfig::healthy(13).with_rates(2_500, 1_500, 2_000, 600);
    let cluster = run_cluster(
        3,
        EngineConfig::software().with_agents(2),
        net,
        WorkloadKind::Tatp,
        4_000,
        13,
        250,
    );
    let report = cluster.report();
    assert!(
        report.net.dropped + report.net.partitioned > 0,
        "{report:?}"
    );
    assert!(report.global_committed > 5, "{report:?}");
    cluster.verify_atomicity().expect("atomic under loss");
}

#[test]
fn same_seed_same_cluster_run() {
    let go = || {
        let net = NetConfig::healthy(5).with_rates(1_500, 1_000, 1_000, 400);
        let mut cluster = run_cluster(
            3,
            EngineConfig::software().with_agents(2),
            net,
            WorkloadKind::Tatp,
            2_000,
            5,
            200,
        );
        let report = cluster.report();
        let metrics = cluster.merged_metrics().to_csv();
        (
            report.global_committed,
            report.global_aborted,
            report.single_committed,
            report.elapsed,
            report.net,
            metrics,
        )
    };
    assert_eq!(go(), go());
}

#[test]
fn coordinator_crash_smoke_every_step() {
    for (i, step) in CoordStep::ALL.into_iter().enumerate() {
        let mut cluster = Cluster::new(ClusterConfig::new(
            2,
            EngineConfig::software().with_agents(2),
            NetConfig::healthy(99),
        ));
        let mut wl = cluster.load_small(WorkloadKind::Tatp, 5_000, 99);
        cluster.arm_coordinator_crash(step, 1);
        let mut at = SimTime::ZERO;
        for _ in 0..120 {
            let txn = wl.next();
            cluster.execute(txn, at);
            at += SimTime::from_us(CADENCE);
        }
        cluster.end_of_run(at);
        let report = cluster.report();
        assert!(report.recoveries >= 1, "step {i} never fired: {report:?}");
        cluster
            .verify_atomicity()
            .unwrap_or_else(|e| panic!("step {step:?}: {e}"));
    }
}

#[test]
fn merged_telemetry_has_one_track_group_per_node() {
    let mut cluster = Cluster::new(ClusterConfig::new(
        2,
        EngineConfig::software().with_agents(2),
        NetConfig::healthy(3),
    ));
    for node in &mut cluster.nodes {
        node.engine.enable_telemetry(4096);
    }
    let mut wl = cluster.load_small(WorkloadKind::Tatp, 2_000, 3);
    let mut at = SimTime::ZERO;
    for _ in 0..80 {
        let txn = wl.next();
        cluster.execute(txn, at);
        at += SimTime::from_us(CADENCE);
    }
    cluster.end_of_run(at);

    let trace = cluster.merged_chrome_trace();
    bionic_telemetry::validate_chrome_trace(&trace).expect("schema-valid merged trace");
    assert!(trace.contains("node0/core-0") && trace.contains("node1/core-0"));
    assert!(trace.contains("node0/fpga/tree-probe"));

    let metrics = cluster.merged_metrics().to_csv();
    assert!(metrics.contains("node0/engine,committed,"));
    assert!(metrics.contains("node1/engine,committed,"));
}
