//! The cluster torture matrix: crash-safe 2PC under seeded network
//! faults, node crash fuses, and coordinator crashes at every protocol
//! step.
//!
//! Two layers, mirroring the single-engine chaos suite:
//!
//! * a 64-seed fixed matrix driven by
//!   [`FaultPlan::from_seed_clustered`] — each seed picks the workload,
//!   transaction count, crash fuse, and network fault rates; the
//!   coordinator crash step cycles through [`CoordStep::ALL`]. Split into
//!   four tests so the harness runs the shards in parallel, exactly like
//!   `crates/chaos/tests/torture.rs`.
//! * a property test over random seeds asserting the same invariant: the
//!   WAL-only atomicity oracle ([`Cluster::verify_atomicity`]) never
//!   fires, and a rerun of the same seed is byte-identical.

use bionic_chaos::FaultPlan;
use bionic_cluster::{Cluster, ClusterConfig, CoordStep, NetConfig};
use bionic_core::config::EngineConfig;
use bionic_sim::time::SimTime;
use proptest::prelude::*;

/// Deterministic digest of one finished run, for rerun-identity checks.
#[derive(Debug, PartialEq)]
struct RunDigest {
    global_committed: u64,
    global_aborted: u64,
    single_committed: u64,
    single_aborted: u64,
    recoveries: u64,
    in_doubt: u64,
    elapsed: SimTime,
    sent: u64,
    tails: Vec<u64>,
}

/// Run one clustered fault plan to completion and verify atomicity.
/// Returns the digest; panics (with the serialized plan) on any oracle
/// violation so the failing schedule is reproducible from the message.
fn run_clustered_plan(seed: u64) -> RunDigest {
    let plan = FaultPlan::from_seed_clustered(seed);
    let nodes = 2 + (seed % 3) as usize; // 2..=4 nodes
    let engine = if seed.is_multiple_of(2) {
        EngineConfig::software().with_agents(2)
    } else {
        EngineConfig::bionic()
    };
    let net = NetConfig::healthy(seed).with_rates(
        plan.net_drop,
        plan.net_dup,
        plan.net_delay,
        plan.net_part,
    );
    let mut cluster = Cluster::new(ClusterConfig::new(nodes, engine, net));
    let mut wl = cluster.load_small(plan.workload, 3_000, seed);

    // Arm the crash fuse on a seed-chosen node (the chaos plan's fuse
    // counts WAL appends, so it fires mid-transaction — including mid-2PC
    // when it lands on a participant executing a prepared branch).
    if let Some(appends) = plan.crash_after_appends {
        let victim = (seed as usize) % nodes;
        cluster.nodes[victim].engine.crash_at(appends);
    }
    // And a coordinator crash at a protocol step, cycling through all six.
    let step = CoordStep::ALL[(seed % 6) as usize];
    cluster.arm_coordinator_crash(step, seed % 5);

    let mut at = SimTime::ZERO;
    for _ in 0..plan.txns {
        let txn = wl.next();
        cluster.execute(txn, at);
        at += SimTime::from_us(10.0);
    }
    cluster.end_of_run(at);

    if let Err(msg) = cluster.verify_atomicity() {
        panic!(
            "seed {seed}: {msg}\n  plan: {}\n  nodes: {nodes}, coord step: {step:?}",
            plan.serialize()
        );
    }
    let report = cluster.report();
    RunDigest {
        global_committed: report.global_committed,
        global_aborted: report.global_aborted,
        single_committed: report.single_committed,
        single_aborted: report.single_aborted,
        recoveries: report.recoveries,
        in_doubt: report.in_doubt_resolved,
        elapsed: report.elapsed,
        sent: report.net.sent,
        tails: cluster
            .nodes
            .iter()
            .map(|n| n.engine.log().tail_lsn())
            .collect(),
    }
}

fn run_seed_range(range: std::ops::Range<u64>) {
    for seed in range {
        let _ = run_clustered_plan(seed);
    }
}

#[test]
fn cluster_torture_seeds_00_to_15() {
    run_seed_range(0..16);
}

#[test]
fn cluster_torture_seeds_16_to_31() {
    run_seed_range(16..32);
}

#[test]
fn cluster_torture_seeds_32_to_47() {
    run_seed_range(32..48);
}

#[test]
fn cluster_torture_seeds_48_to_63() {
    run_seed_range(48..64);
}

#[test]
fn coordinator_crash_matrix_all_steps_under_loss() {
    // Every protocol step, on a lossy network, with enough traffic that
    // the armed cross-partition transaction actually exists.
    for (i, step) in CoordStep::ALL.into_iter().enumerate() {
        let net = NetConfig::healthy(1000 + i as u64).with_rates(1_000, 800, 800, 300);
        let mut cluster = Cluster::new(ClusterConfig::new(
            3,
            EngineConfig::software().with_agents(2),
            net,
        ));
        let mut wl = cluster.load_small(bionic_workloads::WorkloadKind::Tatp, 4_000, 77 + i as u64);
        cluster.arm_coordinator_crash(step, 2);
        let mut at = SimTime::ZERO;
        for _ in 0..150 {
            let txn = wl.next();
            cluster.execute(txn, at);
            at += SimTime::from_us(10.0);
        }
        cluster.end_of_run(at);
        let report = cluster.report();
        assert!(
            report.recoveries >= 1,
            "step {step:?} never fired: {report:?}"
        );
        cluster
            .verify_atomicity()
            .unwrap_or_else(|e| panic!("step {step:?} under loss: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Any seed's clustered plan satisfies the atomicity oracle, and the
    // run is deterministic: same seed, same digest, same WAL tails.
    #[test]
    fn random_clustered_plans_stay_atomic_and_deterministic(seed in any::<u64>()) {
        let a = run_clustered_plan(seed);
        let b = run_clustered_plan(seed);
        prop_assert_eq!(a, b);
    }
}
