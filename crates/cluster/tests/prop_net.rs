//! Properties of the deterministic interconnect.
//!
//! The network model is only useful if (a) its behavior is a pure
//! function of the seed and each link's own traffic — so cluster runs are
//! byte-identical at any `--jobs`/`--shards` split — and (b) its fault
//! knobs do exactly what they say: zero-rate knobs draw nothing, armed
//! knobs fire within statistical reach of their basis-point rates, and a
//! partition window really black-holes everything it covers.
#![recursion_limit = "1024"]

use bionic_cluster::{Delivery, NetConfig, Network};
use bionic_sim::time::SimTime;
use proptest::prelude::*;

fn rates() -> impl Strategy<Value = (u32, u32, u32, u32)> {
    (0u32..3_000, 0u32..3_000, 0u32..3_000, 0u32..1_000)
}

/// Replay one link's traffic and collect its deliveries.
fn drive_link(net: &mut Network, from: u32, to: u32, msgs: u32) -> Vec<Delivery> {
    (0..msgs)
        .map(|i| net.send(from, to, SimTime::from_us(7.0 * i as f64)))
        .collect()
}

proptest! {
    // A link's delivery schedule depends only on the seed and its own
    // message count — never on what other links carried, in what order,
    // or whether they exist at all. This is the jobs/shards-determinism
    // property: shard assignment changes which links are busy, not what
    // any given link does.
    #[test]
    fn link_schedule_is_independent_of_other_links(
        seed in any::<u64>(),
        rates in rates(),
        msgs in 1u32..200,
        noise in 0u32..40,
    ) {
        let (drop, dup, delay, part) = rates;
        let cfg = NetConfig::healthy(seed).with_rates(drop, dup, delay, part);
        let solo = drive_link(&mut Network::new(cfg.clone()), 0, 1, msgs);
        let mut net = Network::new(cfg);
        // Interleave traffic over unrelated links, including the reverse
        // direction (a directed pair is its own substream).
        for i in 0..noise {
            let _ = net.send(1, 0, SimTime::from_us(i as f64));
            let _ = net.send(2, 3, SimTime::from_us(i as f64));
        }
        let interleaved = drive_link(&mut net, 0, 1, msgs);
        prop_assert_eq!(solo, interleaved);
    }

    // Zero-rate knobs consume no randomness: an unarmed network is a
    // pure latency model, byte-for-byte, regardless of seed.
    #[test]
    fn unarmed_network_is_seed_invariant_pure_latency(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        msgs in 1u32..300,
    ) {
        let a = drive_link(&mut Network::new(NetConfig::healthy(seed_a)), 0, 1, msgs);
        let b = drive_link(&mut Network::new(NetConfig::healthy(seed_b)), 0, 1, msgs);
        prop_assert_eq!(&a, &b);
        for (i, d) in a.iter().enumerate() {
            let sent = SimTime::from_us(7.0 * i as f64);
            prop_assert_eq!(
                *d,
                Delivery::Delivered { at: sent + SimTime::from_us(5.0), dup: false }
            );
        }
    }

    // While a partition window is open, the link delivers nothing: every
    // message inside the window is `Dropped` and counted as partitioned.
    #[test]
    fn no_delivery_inside_a_partition_window(
        seed in any::<u64>(),
        width in 1u32..12,
        msgs in 1u32..100,
    ) {
        let mut cfg = NetConfig::healthy(seed).with_rates(0, 0, 0, 10_000);
        cfg.part_msgs = width;
        let mut net = Network::new(cfg);
        let deliveries = drive_link(&mut net, 0, 1, msgs);
        // At 100% partition rate every message either opens a window or
        // falls inside one — nothing may arrive.
        prop_assert!(deliveries.iter().all(|d| *d == Delivery::Dropped));
        prop_assert_eq!(net.stats.partitioned, msgs as u64);
        prop_assert_eq!(net.stats.delivered, 0);
        // Window accounting: each opened window swallows up to `width`
        // messages, so windows * width must cover the traffic.
        prop_assert!(net.stats.partitions * width as u64 >= msgs as u64);
    }

    // Armed fault rates are honored within wide statistical bounds, and
    // the counters always reconcile: sent = delivered + dropped +
    // partitioned, duplicates/delays only on delivered messages.
    #[test]
    fn fault_frequencies_track_their_rates(
        seed in any::<u64>(),
        rates in rates(),
    ) {
        let (drop, dup, delay, part) = rates;
        let cfg = NetConfig::healthy(seed).with_rates(drop, dup, delay, part);
        let mut net = Network::new(cfg);
        let msgs = 3_000u32;
        let _ = drive_link(&mut net, 0, 1, msgs);
        let s = net.stats;
        prop_assert_eq!(s.sent, msgs as u64);
        prop_assert_eq!(s.sent, s.delivered + s.dropped + s.partitioned);
        prop_assert!(s.duplicated <= s.delivered);
        prop_assert!(s.delayed <= s.delivered);
        if drop == 0 { prop_assert_eq!(s.dropped, 0); }
        if dup == 0 { prop_assert_eq!(s.duplicated, 0); }
        if delay == 0 { prop_assert_eq!(s.delayed, 0); }
        if part == 0 { prop_assert_eq!(s.partitioned, 0); }
        // A meaningfully-armed drop knob fires, and never wildly above
        // its rate (4x headroom over 3000 messages absorbs variance).
        if drop >= 500 && part == 0 {
            let frac = s.dropped as f64 / s.sent as f64;
            let rate = drop as f64 / 1e4;
            prop_assert!(frac > rate * 0.25 && frac < rate * 4.0,
                "drop rate {} but observed {}", rate, frac);
        }
    }

    // Rebuilding the same network and replaying the same traffic gives
    // identical deliveries and identical counters.
    #[test]
    fn replay_is_byte_identical(
        seed in any::<u64>(),
        rates in rates(),
        msgs in 1u32..400,
    ) {
        let (drop, dup, delay, part) = rates;
        let cfg = NetConfig::healthy(seed).with_rates(drop, dup, delay, part);
        let go = || {
            let mut net = Network::new(cfg.clone());
            let d: Vec<Delivery> = (0..msgs)
                .map(|i| net.send(i % 4, (i + 1) % 4, SimTime::from_us(3.0 * i as f64)))
                .collect();
            (d, net.stats)
        };
        prop_assert_eq!(go(), go());
    }
}
