//! Fixed-size pages, the unit of buffering and I/O.

/// Page size in bytes. Leaves are "sized for disk access" (§5.3); 8 KiB is
/// the classic OLTP choice.
pub const PAGE_SIZE: usize = 8192;

/// Identifies a page within the database file space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel for "no page".
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Is this the invalid sentinel?
    pub fn is_valid(self) -> bool {
        self != PageId::INVALID
    }

    /// Byte offset of this page in the backing file.
    pub fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

impl core::fmt::Display for PageId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A record's physical address: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Containing page.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Construct a record id.
    pub fn new(page: PageId, slot: u16) -> Self {
        RecordId { page, slot }
    }

    /// Pack into a u64 (page in the high 48 bits, slot in the low 16) — the
    /// form stored as B+tree payloads.
    pub fn to_u64(self) -> u64 {
        (self.page.0 << 16) | self.slot as u64
    }

    /// Unpack from [`RecordId::to_u64`] form.
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: PageId(v >> 16),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl core::fmt::Display for RecordId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{}", self.page, self.slot)
    }
}

/// An 8 KiB page image.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Read access to the raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl core::fmt::Debug for Page {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_offsets() {
        assert_eq!(PageId(0).byte_offset(), 0);
        assert_eq!(PageId(3).byte_offset(), 3 * 8192);
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
    }

    #[test]
    fn record_id_round_trips_through_u64() {
        let rid = RecordId::new(PageId(123_456), 789);
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
        let max = RecordId::new(PageId((1 << 48) - 1), u16::MAX);
        assert_eq!(RecordId::from_u64(max.to_u64()), max);
    }

    #[test]
    fn pages_start_zeroed_and_are_writable() {
        let mut p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
        p.bytes_mut()[100] = 42;
        assert_eq!(p.bytes()[100], 42);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", PageId(7)), "P7");
        assert_eq!(format!("{}", RecordId::new(PageId(7), 3)), "P7.3");
    }
}
