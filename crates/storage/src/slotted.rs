//! Slotted-page layout for variable-length records.
//!
//! Classic layout: a header and a slot directory grow from the front of the
//! page, record bodies grow from the back. Deleting a record tombstones its
//! slot (slot numbers are stable — they're half of every `RecordId` — so
//! they are never compacted away, only reused).
//!
//! Layout:
//! ```text
//!   0..8    page LSN (for recovery)
//!   8..10   slot count
//!   10..12  free-space start (end of slot directory growth)
//!   12..14  free-space end   (start of record data)
//!   14..16  reserved
//!   16..    slot directory: per slot { offset: u16, len: u16 }
//!   ...     free space
//!   ...PAGE_SIZE  record bodies
//! ```

use crate::page::{Page, PAGE_SIZE};

const HEADER: usize = 16;
const SLOT_BYTES: usize = 4;
const OFF_LSN: usize = 0;
const OFF_NSLOTS: usize = 8;
const OFF_FREE_START: usize = 10;
const OFF_FREE_END: usize = 12;

/// Errors from slotted-page operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotError {
    /// Not enough contiguous free space for the record (even after compaction).
    PageFull,
    /// Slot index out of range or tombstoned.
    NoSuchSlot,
    /// Record too large to ever fit in a page.
    RecordTooLarge,
}

impl core::fmt::Display for SlotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SlotError::PageFull => write!(f, "page full"),
            SlotError::NoSuchSlot => write!(f, "no such slot"),
            SlotError::RecordTooLarge => write!(f, "record larger than page capacity"),
        }
    }
}

impl std::error::Error for SlotError {}

/// Maximum record body size storable in a page.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT_BYTES;

fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}

fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// A view over a [`Page`] interpreted as a slotted page.
///
/// The view is a thin wrapper; all state lives in the page bytes, so pages
/// survive buffer-pool eviction and log replay untouched.
pub struct SlottedPage<'a> {
    page: &'a mut Page,
}

impl<'a> SlottedPage<'a> {
    /// Interpret an existing page (must have been initialized).
    pub fn attach(page: &'a mut Page) -> Self {
        SlottedPage { page }
    }

    /// Attach, initializing first if the page has never been formatted
    /// (recovery redo may touch pages that were allocated but never
    /// written back before the crash).
    pub fn attach_or_init(page: &'a mut Page) -> Self {
        let initialized = get_u16(page.bytes(), OFF_FREE_END) != 0;
        if initialized {
            Self::attach(page)
        } else {
            Self::init(page)
        }
    }

    /// Initialize a fresh page and return the view.
    pub fn init(page: &'a mut Page) -> Self {
        let b = page.bytes_mut();
        b[..HEADER].fill(0);
        put_u16(b, OFF_NSLOTS, 0);
        put_u16(b, OFF_FREE_START, HEADER as u16);
        put_u16(b, OFF_FREE_END, PAGE_SIZE as u16);
        SlottedPage { page }
    }

    fn b(&self) -> &[u8; PAGE_SIZE] {
        self.page.bytes()
    }

    fn bm(&mut self) -> &mut [u8; PAGE_SIZE] {
        self.page.bytes_mut()
    }

    /// The page LSN (last log record that touched this page).
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.b()[OFF_LSN..OFF_LSN + 8].try_into().unwrap())
    }

    /// Set the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.bm()[OFF_LSN..OFF_LSN + 8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slots (including tombstones).
    pub fn slot_count(&self) -> u16 {
        get_u16(self.b(), OFF_NSLOTS)
    }

    fn free_start(&self) -> usize {
        get_u16(self.b(), OFF_FREE_START) as usize
    }

    fn free_end(&self) -> usize {
        get_u16(self.b(), OFF_FREE_END) as usize
    }

    fn slot(&self, i: u16) -> Option<(usize, usize)> {
        if i >= self.slot_count() {
            return None;
        }
        let off = HEADER + i as usize * SLOT_BYTES;
        let rec_off = get_u16(self.b(), off) as usize;
        let rec_len = get_u16(self.b(), off + 2) as usize;
        Some((rec_off, rec_len))
    }

    fn set_slot(&mut self, i: u16, rec_off: u16, rec_len: u16) {
        let off = HEADER + i as usize * SLOT_BYTES;
        put_u16(self.bm(), off, rec_off);
        put_u16(self.bm(), off + 2, rec_len);
    }

    /// Contiguous free bytes between the slot directory and record data.
    pub fn contiguous_free(&self) -> usize {
        self.free_end().saturating_sub(self.free_start())
    }

    /// Free bytes recoverable by compaction (holes left by deletes/moves)
    /// plus contiguous space.
    pub fn total_free(&self) -> usize {
        let live: usize = (0..self.slot_count())
            .filter_map(|i| self.slot(i))
            .filter(|&(off, _)| off != 0)
            .map(|(_, len)| len)
            .sum();
        PAGE_SIZE - self.free_start() - live
    }

    /// Would an insert of `len` bytes succeed (possibly via compaction)?
    pub fn can_insert(&self, len: usize) -> bool {
        let need_slot = if self.first_free_slot().is_some() {
            0
        } else {
            SLOT_BYTES
        };
        len + need_slot <= self.total_free() && len <= MAX_RECORD
    }

    fn first_free_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&i| matches!(self.slot(i), Some((0, _))))
    }

    /// Slide all live records to the back of the page, eliminating holes.
    fn compact(&mut self) {
        let n = self.slot_count();
        // Collect live records (slot, bytes) — copying is fine at 8 KiB.
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        for i in 0..n {
            if let Some((off, len)) = self.slot(i) {
                if off != 0 {
                    live.push((i, self.b()[off..off + len].to_vec()));
                }
            }
        }
        let mut cursor = PAGE_SIZE;
        for (i, bytes) in &live {
            cursor -= bytes.len();
            let c = cursor;
            self.bm()[c..c + bytes.len()].copy_from_slice(bytes);
            self.set_slot(*i, c as u16, bytes.len() as u16);
        }
        put_u16(self.bm(), OFF_FREE_END, cursor as u16);
    }

    /// Insert a record; returns its slot number.
    pub fn insert(&mut self, rec: &[u8]) -> Result<u16, SlotError> {
        if rec.len() > MAX_RECORD {
            return Err(SlotError::RecordTooLarge);
        }
        if !self.can_insert(rec.len()) {
            return Err(SlotError::PageFull);
        }
        let reuse = self.first_free_slot();
        let need_slot = if reuse.is_some() { 0 } else { SLOT_BYTES };
        if self.contiguous_free() < rec.len() + need_slot {
            self.compact();
        }
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                put_u16(self.bm(), OFF_NSLOTS, s + 1);
                let fs = self.free_start() + SLOT_BYTES;
                put_u16(self.bm(), OFF_FREE_START, fs as u16);
                s
            }
        };
        let end = self.free_end();
        let start = end - rec.len();
        self.bm()[start..end].copy_from_slice(rec);
        put_u16(self.bm(), OFF_FREE_END, start as u16);
        self.set_slot(slot, start as u16, rec.len() as u16);
        Ok(slot)
    }

    /// Read a record by slot.
    pub fn get(&self, slot: u16) -> Result<&[u8], SlotError> {
        match self.slot(slot) {
            Some((off, len)) if off != 0 => Ok(&self.b()[off..off + len]),
            _ => Err(SlotError::NoSuchSlot),
        }
    }

    /// Delete a record, tombstoning its slot for reuse.
    pub fn delete(&mut self, slot: u16) -> Result<(), SlotError> {
        match self.slot(slot) {
            Some((off, _)) if off != 0 => {
                self.set_slot(slot, 0, 0);
                Ok(())
            }
            _ => Err(SlotError::NoSuchSlot),
        }
    }

    /// Update a record in place. Fits-in-place updates reuse the body;
    /// growing updates are delete+insert into the same slot (may compact).
    pub fn update(&mut self, slot: u16, rec: &[u8]) -> Result<(), SlotError> {
        let (off, len) = match self.slot(slot) {
            Some((off, len)) if off != 0 => (off, len),
            _ => return Err(SlotError::NoSuchSlot),
        };
        if rec.len() <= len {
            self.bm()[off..off + rec.len()].copy_from_slice(rec);
            self.set_slot(slot, off as u16, rec.len() as u16);
            return Ok(());
        }
        if rec.len() > MAX_RECORD {
            return Err(SlotError::RecordTooLarge);
        }
        // Grow: tombstone, check room, re-insert at the same slot.
        self.set_slot(slot, 0, 0);
        let fits = rec.len() <= self.total_free();
        if !fits {
            // Roll back the tombstone.
            self.set_slot(slot, off as u16, len as u16);
            return Err(SlotError::PageFull);
        }
        if self.contiguous_free() < rec.len() {
            self.compact();
        }
        let end = self.free_end();
        let start = end - rec.len();
        self.bm()[start..end].copy_from_slice(rec);
        put_u16(self.bm(), OFF_FREE_END, start as u16);
        self.set_slot(slot, start as u16, rec.len() as u16);
        Ok(())
    }

    /// Install a record at a *specific* slot, growing the slot directory
    /// with tombstones if needed and overwriting any existing body — the
    /// physical-redo primitive: replaying `Insert{rid}` must land the record
    /// at exactly `rid`, or index entries would dangle.
    pub fn install(&mut self, slot: u16, rec: &[u8]) -> Result<(), SlotError> {
        if rec.len() > MAX_RECORD {
            return Err(SlotError::RecordTooLarge);
        }
        if slot < self.slot_count() {
            if self.slot(slot).is_some_and(|(off, _)| off != 0) {
                return self.update(slot, rec);
            }
        } else {
            // Grow the directory up to and including `slot`.
            let grow = (slot + 1 - self.slot_count()) as usize * SLOT_BYTES;
            if self.total_free() < grow + rec.len() {
                return Err(SlotError::PageFull);
            }
            if self.contiguous_free() < grow {
                self.compact();
            }
            let old = self.slot_count();
            put_u16(self.bm(), OFF_NSLOTS, slot + 1);
            let fs = self.free_start() + grow;
            put_u16(self.bm(), OFF_FREE_START, fs as u16);
            for s in old..=slot {
                self.set_slot(s, 0, 0);
            }
        }
        // Slot exists and is a tombstone: place the body.
        if self.contiguous_free() < rec.len() {
            if self.total_free() < rec.len() {
                return Err(SlotError::PageFull);
            }
            self.compact();
        }
        let end = self.free_end();
        let start = end - rec.len();
        self.bm()[start..end].copy_from_slice(rec);
        put_u16(self.bm(), OFF_FREE_END, start as u16);
        self.set_slot(slot, start as u16, rec.len() as u16);
        Ok(())
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |i| match self.slot(i) {
            Some((off, len)) if off != 0 => Some((i, &self.b()[off..off + len])),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Page {
        let mut p = Page::zeroed();
        SlottedPage::init(&mut p);
        p
    }

    #[test]
    fn insert_then_get() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        let s = sp.insert(b"hello").unwrap();
        assert_eq!(sp.get(s).unwrap(), b"hello");
        assert_eq!(sp.slot_count(), 1);
    }

    #[test]
    fn slots_are_stable_across_deletes() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        let a = sp.insert(b"aaa").unwrap();
        let b = sp.insert(b"bbb").unwrap();
        let c = sp.insert(b"ccc").unwrap();
        sp.delete(b).unwrap();
        assert_eq!(sp.get(a).unwrap(), b"aaa");
        assert_eq!(sp.get(c).unwrap(), b"ccc");
        assert_eq!(sp.get(b), Err(SlotError::NoSuchSlot));
        // Tombstoned slot is reused by the next insert.
        let d = sp.insert(b"ddd").unwrap();
        assert_eq!(d, b);
        assert_eq!(sp.get(d).unwrap(), b"ddd");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        let s = sp.insert(b"0123456789").unwrap();
        sp.update(s, b"abc").unwrap();
        assert_eq!(sp.get(s).unwrap(), b"abc");
        sp.update(s, b"a much longer record body").unwrap();
        assert_eq!(sp.get(s).unwrap(), b"a much longer record body");
    }

    #[test]
    fn fill_page_then_overflow() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        let rec = [7u8; 100];
        let mut n = 0;
        while sp.insert(&rec).is_ok() {
            n += 1;
        }
        // 8192 - 16 header over (100 + 4) per record ≈ 78 records.
        assert!(n >= 75, "n={n}");
        assert!(!sp.can_insert(100));
        assert!(sp.can_insert(1) || sp.total_free() < 5);
    }

    #[test]
    fn compaction_recovers_holes() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        let slots: Vec<u16> = (0..70).map(|_| sp.insert(&[1u8; 100]).unwrap()).collect();
        // Delete every other record: plenty of total space, fragmented.
        for s in slots.iter().step_by(2) {
            sp.delete(*s).unwrap();
        }
        // A 2000-byte record only fits via compaction.
        assert!(sp.contiguous_free() < 2000);
        let s = sp.insert(&[9u8; 2000]).unwrap();
        assert_eq!(sp.get(s).unwrap(), &[9u8; 2000][..]);
        // Survivors intact after compaction.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(sp.get(*s).unwrap(), &[1u8; 100][..]);
        }
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        let huge = vec![0u8; PAGE_SIZE];
        assert_eq!(sp.insert(&huge), Err(SlotError::RecordTooLarge));
    }

    #[test]
    fn failed_grow_update_rolls_back() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        let s = sp.insert(&[1u8; 100]).unwrap();
        while sp.insert(&[2u8; 100]).is_ok() {}
        // Page is full; growing s must fail and leave the original intact.
        let err = sp.update(s, &[3u8; 4000]).unwrap_err();
        assert_eq!(err, SlotError::PageFull);
        assert_eq!(sp.get(s).unwrap(), &[1u8; 100][..]);
    }

    #[test]
    fn lsn_round_trip() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        assert_eq!(sp.lsn(), 0);
        sp.set_lsn(0xDEADBEEF);
        assert_eq!(sp.lsn(), 0xDEADBEEF);
    }

    #[test]
    fn iter_yields_live_records_in_slot_order() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        sp.insert(b"a").unwrap();
        let b = sp.insert(b"b").unwrap();
        sp.insert(b"c").unwrap();
        sp.delete(b).unwrap();
        let collected: Vec<(u16, Vec<u8>)> = sp.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(
            collected,
            vec![(0u16, b"a".to_vec()), (2u16, b"c".to_vec())]
        );
    }

    #[test]
    fn install_at_specific_slots() {
        let mut p = fresh();
        let mut sp = SlottedPage::attach(&mut p);
        // Install far beyond the current directory.
        sp.install(5, b"five").unwrap();
        assert_eq!(sp.slot_count(), 6);
        assert_eq!(sp.get(5).unwrap(), b"five");
        for s in 0..5 {
            assert_eq!(sp.get(s), Err(SlotError::NoSuchSlot));
        }
        // Install into an intermediate tombstone.
        sp.install(2, b"two").unwrap();
        assert_eq!(sp.get(2).unwrap(), b"two");
        // Overwrite a live slot.
        sp.install(5, b"FIVE!").unwrap();
        assert_eq!(sp.get(5).unwrap(), b"FIVE!");
        // Normal inserts reuse remaining tombstones first.
        let s = sp.insert(b"zero").unwrap();
        assert_eq!(s, 0);
    }

    #[test]
    fn attach_or_init_detects_raw_pages() {
        let mut p = Page::zeroed();
        {
            let mut sp = SlottedPage::attach_or_init(&mut p);
            sp.insert(b"first").unwrap();
        }
        {
            // Already initialized: must preserve contents.
            let sp = SlottedPage::attach_or_init(&mut p);
            assert_eq!(sp.get(0).unwrap(), b"first");
        }
    }

    #[test]
    fn state_survives_page_copy() {
        // All state lives in the bytes: copying the Page preserves records.
        let mut p = fresh();
        let s = {
            let mut sp = SlottedPage::attach(&mut p);
            sp.insert(b"durable").unwrap()
        };
        let mut copy = p.clone();
        let sp = SlottedPage::attach(&mut copy);
        assert_eq!(sp.get(s).unwrap(), b"durable");
    }
}
