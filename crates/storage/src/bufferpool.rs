//! The buffer pool — CLOCK replacement over a fixed frame budget.
//!
//! Figure 3 shows "Bpool mgmt" as a visible slice of transaction time even
//! in a highly optimized engine; §5.6 proposes replacing the pool with an
//! FPGA-side overlay. This is the conventional pool those comparisons need.
//! Every access returns an [`Access`] footprint (hit? dirty eviction?) that
//! the engine converts to simulated time and energy.

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use std::collections::HashMap;

/// Footprint of one buffer-pool access, consumed by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Was the page already resident?
    pub hit: bool,
    /// Did fetching it force a dirty page to be written back?
    pub evicted_dirty: bool,
}

/// Aggregate buffer-pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from memory.
    pub hits: u64,
    /// Accesses that read from disk.
    pub misses: u64,
    /// Dirty write-backs caused by eviction.
    pub dirty_evictions: u64,
    /// Explicit flushes.
    pub flushes: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page_id: PageId,
    page: Page,
    dirty: bool,
    referenced: bool,
    pins: u32,
}

/// A CLOCK-replacement buffer pool over a [`DiskManager`].
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    disk: DiskManager,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages over `disk`.
    pub fn new(capacity: usize, disk: DiskManager) -> Self {
        assert!(capacity >= 1);
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            hand: 0,
            disk,
            stats: PoolStats::default(),
        }
    }

    /// Allocate a fresh page on disk and fault it in.
    pub fn allocate_page(&mut self) -> (PageId, Access) {
        let id = self.disk.allocate();
        let access = self.fault_in(id);
        (id, access)
    }

    fn evict_victim(&mut self) -> (usize, bool) {
        // CLOCK: sweep until an unreferenced, unpinned frame is found.
        // Pinned frames are never victims; two full sweeps without a
        // candidate means every frame is pinned, which is a caller bug.
        let mut steps = 0;
        loop {
            assert!(
                steps < 2 * self.frames.len() + 1,
                "all {} frames pinned: cannot evict",
                self.frames.len()
            );
            steps += 1;
            let f = &mut self.frames[self.hand];
            if f.pins > 0 {
                self.hand = (self.hand + 1) % self.frames.len();
            } else if f.referenced {
                f.referenced = false;
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                let idx = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                let dirty = self.frames[idx].dirty;
                if dirty {
                    let (pid, page) = {
                        let f = &self.frames[idx];
                        (f.page_id, f.page.clone())
                    };
                    self.disk.write(pid, &page);
                    self.stats.dirty_evictions += 1;
                }
                self.map.remove(&self.frames[idx].page_id);
                return (idx, dirty);
            }
        }
    }

    fn fault_in(&mut self, id: PageId) -> Access {
        if let Some(&idx) = self.map.get(&id) {
            self.frames[idx].referenced = true;
            self.stats.hits += 1;
            return Access {
                hit: true,
                evicted_dirty: false,
            };
        }
        self.stats.misses += 1;
        let page = self.disk.read(id);
        let mut evicted_dirty = false;
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_id: id,
                page,
                dirty: false,
                referenced: true,
                pins: 0,
            });
            self.frames.len() - 1
        } else {
            let (idx, dirty) = self.evict_victim();
            evicted_dirty = dirty;
            self.frames[idx] = Frame {
                page_id: id,
                page,
                dirty: false,
                referenced: true,
                pins: 0,
            };
            idx
        };
        self.map.insert(id, idx);
        Access {
            hit: false,
            evicted_dirty,
        }
    }

    /// Read access to a page through a closure.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> (R, Access) {
        let access = self.fault_in(id);
        let idx = self.map[&id];
        (f(&self.frames[idx].page), access)
    }

    /// Write access to a page through a closure; marks the page dirty.
    pub fn with_page_mut<R>(&mut self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> (R, Access) {
        let access = self.fault_in(id);
        let idx = self.map[&id];
        let frame = &mut self.frames[idx];
        frame.dirty = true;
        (f(&mut frame.page), access)
    }

    /// Pin a page: fault it in and exempt it from eviction until every pin
    /// is released. Pins nest; each `pin` needs a matching [`BufferPool::unpin`].
    pub fn pin(&mut self, id: PageId) -> Access {
        let access = self.fault_in(id);
        let idx = self.map[&id];
        self.frames[idx].pins += 1;
        access
    }

    /// Release one pin on a resident page. Panics on unbalanced unpin —
    /// that is a latching bug, not a recoverable condition.
    pub fn unpin(&mut self, id: PageId) {
        let idx = *self.map.get(&id).expect("unpin of non-resident page");
        let f = &mut self.frames[idx];
        assert!(f.pins > 0, "unpin of unpinned page {id:?}");
        f.pins -= 1;
    }

    /// Current pin count of a page (0 if not resident).
    pub fn pin_count(&self, id: PageId) -> u32 {
        self.map.get(&id).map_or(0, |&idx| self.frames[idx].pins)
    }

    /// Is the page currently held in a frame?
    pub fn is_resident(&self, id: PageId) -> bool {
        self.map.contains_key(&id)
    }

    /// Flush one page if resident and dirty. Returns true if a write happened.
    pub fn flush(&mut self, id: PageId) -> bool {
        if let Some(&idx) = self.map.get(&id) {
            if self.frames[idx].dirty {
                let page = self.frames[idx].page.clone();
                self.disk.write(id, &page);
                self.frames[idx].dirty = false;
                self.stats.flushes += 1;
                return true;
            }
        }
        false
    }

    /// Flush every dirty page; returns the number written.
    pub fn flush_all(&mut self) -> u64 {
        let dirty_ids: Vec<PageId> = self
            .frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| f.page_id)
            .collect();
        let n = dirty_ids.len() as u64;
        for id in dirty_ids {
            self.flush(id);
        }
        n
    }

    /// Flush at most `n` dirty pages, chosen deterministically in ascending
    /// [`PageId`] order (the fault-injection harness uses this to model a
    /// partial background write-back before a crash). Returns the number
    /// actually written.
    pub fn flush_some(&mut self, n: usize) -> u64 {
        let mut dirty_ids: Vec<PageId> = self
            .frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| f.page_id)
            .collect();
        dirty_ids.sort_unstable();
        let mut written = 0;
        for id in dirty_ids.into_iter().take(n) {
            if self.flush(id) {
                written += 1;
            }
        }
        written
    }

    /// Page ids of all currently dirty frames, ascending.
    pub fn dirty_page_ids(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self
            .frames
            .iter()
            .filter(|f| f.dirty)
            .map(|f| f.page_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Access to the underlying disk (e.g. for crash drills: flush, then
    /// steal the disk and rebuild a pool over it).
    pub fn into_disk(self) -> DiskManager {
        let mut pool = self;
        pool.flush_all();
        pool.disk
    }

    /// Take the disk WITHOUT flushing — models a crash: only what eviction
    /// or explicit flushes wrote back survives.
    pub fn crash(self) -> DiskManager {
        self.disk
    }

    /// Immutable view of the disk's I/O counters.
    pub fn disk_io(&self) -> (u64, u64) {
        self.disk.io_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize, npages: usize) -> (BufferPool, Vec<PageId>) {
        let disk = DiskManager::new();
        let mut pool = BufferPool::new(cap, disk);
        let ids: Vec<PageId> = (0..npages).map(|_| pool.allocate_page().0).collect();
        (pool, ids)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (mut p, ids) = pool(2, 1);
        let (_, a) = p.with_page(ids[0], |_| ());
        assert!(a.hit); // allocate faulted it in
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn eviction_kicks_in_at_capacity() {
        let (mut p, ids) = pool(2, 3);
        // 3 pages through a 2-frame pool: the first allocation got evicted.
        assert_eq!(p.resident(), 2);
        let (_, a) = p.with_page(ids[0], |_| ());
        assert!(!a.hit, "page 0 must have been evicted");
    }

    #[test]
    fn dirty_pages_are_written_back_on_eviction() {
        let (mut p, ids) = pool(2, 2);
        p.with_page_mut(ids[0], |pg| pg.bytes_mut()[0] = 7);
        // Fault in a third page to force eviction of a dirty frame.
        let (_id3, _) = p.allocate_page();
        // One of ids[0]/ids[1] got evicted; if it was the dirty one, the
        // write-back must be visible on re-read.
        let (byte, _) = p.with_page(ids[0], |pg| pg.bytes()[0]);
        assert_eq!(byte, 7);
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let (mut p, ids) = pool(2, 2);
        // Touch page 0 so it is referenced; allocate a new page: victim
        // should be page 1 (unreferenced after the sweep clears page 0).
        p.with_page(ids[0], |_| ());
        p.with_page(ids[1], |_| ());
        p.with_page(ids[0], |_| ());
        p.allocate_page();
        // Page 0 was twice-referenced, more likely retained than page 1.
        // CLOCK is approximate, so just check: exactly one of them missed.
        let (_, a0) = p.with_page(ids[0], |_| ());
        let (_, a1) = p.with_page(ids[1], |_| ());
        assert!(a0.hit != a1.hit || !a0.hit);
    }

    #[test]
    fn flush_all_makes_state_durable() {
        let (mut p, ids) = pool(4, 2);
        p.with_page_mut(ids[0], |pg| pg.bytes_mut()[10] = 42);
        p.with_page_mut(ids[1], |pg| pg.bytes_mut()[10] = 43);
        assert_eq!(p.flush_all(), 2);
        let mut disk = p.crash(); // no further flush
        assert_eq!(disk.read(ids[0]).bytes()[10], 42);
        assert_eq!(disk.read(ids[1]).bytes()[10], 43);
    }

    #[test]
    fn crash_loses_unflushed_writes() {
        let (mut p, ids) = pool(4, 1);
        p.with_page_mut(ids[0], |pg| pg.bytes_mut()[10] = 42);
        let mut disk = p.crash();
        assert_eq!(disk.read(ids[0]).bytes()[10], 0, "unflushed write must die");
    }

    #[test]
    fn into_disk_flushes_first() {
        let (mut p, ids) = pool(4, 1);
        p.with_page_mut(ids[0], |pg| pg.bytes_mut()[10] = 42);
        let mut disk = p.into_disk();
        assert_eq!(disk.read(ids[0]).bytes()[10], 42);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let (mut p, ids) = pool(2, 2);
        p.pin(ids[0]);
        p.with_page_mut(ids[0], |pg| pg.bytes_mut()[0] = 9);
        // Push many pages through the other frame: ids[0] must stay put.
        for _ in 0..8 {
            p.allocate_page();
            assert!(p.is_resident(ids[0]), "pinned page evicted");
        }
        assert_eq!(p.pin_count(ids[0]), 1);
        p.unpin(ids[0]);
        assert_eq!(p.pin_count(ids[0]), 0);
        // Now it is evictable again.
        p.allocate_page();
        p.allocate_page();
        assert!(!p.is_resident(ids[0]), "unpinned page should cycle out");
        // ... and its dirty content was written back on eviction.
        let (byte, _) = p.with_page(ids[0], |pg| pg.bytes()[0]);
        assert_eq!(byte, 9);
    }

    #[test]
    #[should_panic(expected = "all 2 frames pinned")]
    fn fully_pinned_pool_panics_on_eviction() {
        let (mut p, ids) = pool(2, 2);
        p.pin(ids[0]);
        p.pin(ids[1]);
        p.allocate_page(); // needs a frame; none evictable
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned page")]
    fn unbalanced_unpin_panics() {
        let (mut p, ids) = pool(2, 1);
        p.unpin(ids[0]);
    }

    #[test]
    fn flush_some_writes_in_ascending_page_order() {
        let (mut p, ids) = pool(8, 4);
        for id in &ids {
            p.with_page_mut(*id, |pg| pg.bytes_mut()[0] = 1);
        }
        assert_eq!(p.dirty_page_ids(), {
            let mut s = ids.clone();
            s.sort_unstable();
            s
        });
        assert_eq!(p.flush_some(2), 2);
        // The two lowest page ids are clean now, the rest still dirty.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(p.dirty_page_ids(), sorted[2..].to_vec());
        let mut disk_check = p.crash();
        assert_eq!(disk_check.read(sorted[0]).bytes()[0], 1);
        assert_eq!(disk_check.read(sorted[3]).bytes()[0], 0);
    }

    #[test]
    fn hit_ratio_reflects_locality() {
        let (mut p, ids) = pool(8, 8);
        for _ in 0..100 {
            for id in &ids {
                p.with_page(*id, |_| ());
            }
        }
        assert!(p.stats().hit_ratio() > 0.9);
    }

    #[test]
    fn working_set_larger_than_pool_thrashes() {
        let (mut p, ids) = pool(4, 64);
        let mut misses = 0;
        for round in 0..10 {
            for id in &ids {
                let (_, a) = p.with_page(*id, |_| ());
                if round > 0 && !a.hit {
                    misses += 1;
                }
            }
        }
        // Sequential sweep over 64 pages with 4 frames: near-100% miss.
        assert!(misses > 500, "misses={misses}");
    }
}
