//! The database file space: a page-addressed store.
//!
//! Functionally this is the contents of the SAS array in Figure 2. It is
//! held in memory (the simulator charges I/O *time* through
//! `bionic_sim::dev::BlockDevice`; this type supplies the *bytes*), but the
//! separation is real: pages evicted from the buffer pool round-trip through
//! here, so recovery and restart drills observe true durability boundaries.

use crate::page::{Page, PageId};

/// A page-addressed store with allocate/read/write. `Clone` snapshots the
/// full disk image — crash/recovery drills and benchmarks use it to replay
/// recovery against identical starting states.
#[derive(Debug, Default, Clone)]
pub struct DiskManager {
    pages: Vec<Option<Page>>,
    reads: u64,
    writes: u64,
}

impl DiskManager {
    /// An empty file space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u64);
        self.pages.push(Some(Page::zeroed()));
        id
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Read a page image. Panics on unallocated ids — reading a page that
    /// was never allocated is a storage-engine bug, not a runtime condition.
    pub fn read(&mut self, id: PageId) -> Page {
        self.reads += 1;
        self.pages[id.0 as usize]
            .as_ref()
            .expect("read of unallocated page")
            .clone()
    }

    /// Write a page image back.
    pub fn write(&mut self, id: PageId, page: &Page) {
        self.writes += 1;
        self.pages[id.0 as usize] = Some(page.clone());
    }

    /// `(reads, writes)` so far.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Is `id` within the allocated page range? Crash drills model "lose the
    /// buffer pool, keep the disk" by building a fresh buffer pool over this
    /// same `DiskManager`.
    pub fn is_allocated(&self, id: PageId) -> bool {
        (id.0 as usize) < self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let mut d = DiskManager::new();
        let id = d.allocate();
        let mut p = d.read(id);
        p.bytes_mut()[0] = 99;
        d.write(id, &p);
        assert_eq!(d.read(id).bytes()[0], 99);
        assert_eq!(d.io_counters(), (2, 1));
    }

    #[test]
    fn allocations_are_sequential() {
        let mut d = DiskManager::new();
        assert_eq!(d.allocate(), PageId(0));
        assert_eq!(d.allocate(), PageId(1));
        assert_eq!(d.page_count(), 2);
        assert!(d.is_allocated(PageId(1)));
        assert!(!d.is_allocated(PageId(2)));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_is_a_bug() {
        let mut d = DiskManager::new();
        d.allocate();
        // Allocated len 1; index 5 panics via slice indexing or expect.
        let _ = d.read(PageId(0));
        let mut d2 = DiskManager::new();
        let id = d2.allocate();
        d2.pages[id.0 as usize] = None;
        let _ = d2.read(id);
    }
}
