//! # bionic-storage — pages, buffering, heap files, and columnar data
//!
//! The storage substrate under the bionic DBMS: fixed-size [`page::Page`]s
//! with a [`slotted::SlottedPage`] record layout, a CLOCK
//! [`bufferpool::BufferPool`] over a [`disk::DiskManager`], unordered
//! [`heap::HeapFile`]s for the OLTP base tables, and a
//! [`columnar::ColumnarTable`] store for the Netezza-style scan path of §5.2.
//!
//! Everything here is functionally real — bytes round-trip through pages,
//! eviction, and crash drills. Timing and energy are *not* modeled here:
//! operations return footprints (`bufferpool::Access`, `heap::HeapFootprint`)
//! that `bionic-core` converts to simulated cost, keeping data structures
//! reusable outside the simulator.

#![deny(missing_docs)]

pub mod bufferpool;
pub mod columnar;
pub mod disk;
pub mod heap;
pub mod page;
pub mod slotted;

pub use bufferpool::{Access, BufferPool, PoolStats};
pub use disk::DiskManager;
pub use heap::{HeapFile, HeapFootprint};
pub use page::{Page, PageId, RecordId, PAGE_SIZE};
pub use slotted::{SlotError, SlottedPage};
