//! Heap files: unordered record storage over slotted pages.
//!
//! The base tables of the OLTP workloads (TATP subscribers, TPC-C stock, …)
//! live in heap files; B+trees index into them by [`RecordId`]. Every
//! operation returns a [`HeapFootprint`] so the engine can charge buffer-pool
//! and record-access costs to the `Bpool mgmt` slice of Figure 3.

use crate::bufferpool::BufferPool;
use crate::page::{PageId, RecordId};
use crate::slotted::{SlotError, SlottedPage};

/// Cost footprint of a heap-file operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapFootprint {
    /// Pages examined.
    pub pages_touched: u32,
    /// Buffer-pool hits among them.
    pub pool_hits: u32,
    /// Buffer-pool misses (disk page reads).
    pub pool_misses: u32,
    /// Dirty evictions those misses forced.
    pub dirty_evictions: u32,
    /// Did the operation allocate a new page?
    pub allocated_page: bool,
}

impl HeapFootprint {
    fn absorb(&mut self, a: crate::bufferpool::Access) {
        self.pages_touched += 1;
        if a.hit {
            self.pool_hits += 1;
        } else {
            self.pool_misses += 1;
        }
        if a.evicted_dirty {
            self.dirty_evictions += 1;
        }
    }

    /// Merge another footprint into this one.
    pub fn merge(&mut self, other: HeapFootprint) {
        self.pages_touched += other.pages_touched;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.dirty_evictions += other.dirty_evictions;
        self.allocated_page |= other.allocated_page;
    }
}

/// An unordered collection of records across slotted pages.
#[derive(Debug, Default)]
pub struct HeapFile {
    pages: Vec<PageId>,
}

impl HeapFile {
    /// An empty heap file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pages owned by this file.
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }

    /// Adopt an already-allocated page into this file — used when rebuilding
    /// heap metadata after recovery (the page population is discovered from
    /// the log). Pages must be adopted in ascending id order.
    pub fn adopt_page(&mut self, pid: PageId) {
        debug_assert!(self.pages.last().is_none_or(|&p| p < pid));
        self.pages.push(pid);
    }

    /// Insert a record, appending a new page when the last one is full.
    pub fn insert(
        &mut self,
        pool: &mut BufferPool,
        rec: &[u8],
    ) -> Result<(RecordId, HeapFootprint), SlotError> {
        let mut fp = HeapFootprint::default();
        if let Some(&last) = self.pages.last() {
            let (result, access) = pool.with_page_mut(last, |pg| {
                let mut sp = SlottedPage::attach(pg);
                sp.insert(rec)
            });
            fp.absorb(access);
            match result {
                Ok(slot) => return Ok((RecordId::new(last, slot), fp)),
                Err(SlotError::PageFull) => {}
                Err(e) => return Err(e),
            }
        }
        // Need a fresh page.
        let (pid, access) = pool.allocate_page();
        fp.absorb(access);
        fp.allocated_page = true;
        self.pages.push(pid);
        let (result, access) = pool.with_page_mut(pid, |pg| {
            let mut sp = SlottedPage::init(pg);
            sp.insert(rec)
        });
        fp.absorb(access);
        result.map(|slot| (RecordId::new(pid, slot), fp))
    }

    /// Read a record by id; `None` if deleted or never existed.
    pub fn get(&self, pool: &mut BufferPool, rid: RecordId) -> (Option<Vec<u8>>, HeapFootprint) {
        let mut fp = HeapFootprint::default();
        let (result, access) = pool.with_page_mut(rid.page, |pg| {
            let sp = SlottedPage::attach(pg);
            sp.get(rid.slot).map(<[u8]>::to_vec).ok()
        });
        fp.absorb(access);
        (result, fp)
    }

    /// [`HeapFile::get`] into a caller-supplied buffer (cleared first): same
    /// page traffic and footprint, no allocation when `out`'s capacity
    /// suffices. Returns the record length if the slot is live.
    pub fn get_into(
        &self,
        pool: &mut BufferPool,
        rid: RecordId,
        out: &mut Vec<u8>,
    ) -> (Option<usize>, HeapFootprint) {
        out.clear();
        let mut fp = HeapFootprint::default();
        let (result, access) = pool.with_page_mut(rid.page, |pg| {
            let sp = SlottedPage::attach(pg);
            sp.get(rid.slot).ok().map(|r| {
                out.extend_from_slice(r);
                r.len()
            })
        });
        fp.absorb(access);
        (result, fp)
    }

    /// Length of the record at `rid` without copying it out (same page
    /// traffic and footprint as [`HeapFile::get`]). `None` for a dead slot.
    pub fn record_len(
        &self,
        pool: &mut BufferPool,
        rid: RecordId,
    ) -> (Option<usize>, HeapFootprint) {
        let mut fp = HeapFootprint::default();
        let (result, access) = pool.with_page_mut(rid.page, |pg| {
            let sp = SlottedPage::attach(pg);
            sp.get(rid.slot).ok().map(<[u8]>::len)
        });
        fp.absorb(access);
        (result, fp)
    }

    /// Update a record in place. If the record no longer fits in its page,
    /// it is deleted and re-inserted elsewhere, returning the **new** id —
    /// the caller owns fixing any index entries (exactly the software
    /// responsibility split of §5.3).
    pub fn update(
        &mut self,
        pool: &mut BufferPool,
        rid: RecordId,
        rec: &[u8],
    ) -> Result<(RecordId, HeapFootprint), SlotError> {
        let mut fp = HeapFootprint::default();
        let (result, access) = pool.with_page_mut(rid.page, |pg| {
            let mut sp = SlottedPage::attach(pg);
            sp.update(rid.slot, rec)
        });
        fp.absorb(access);
        match result {
            Ok(()) => Ok((rid, fp)),
            Err(SlotError::PageFull) => {
                // Move: delete here, insert wherever there's room.
                let (del, access) = pool.with_page_mut(rid.page, |pg| {
                    let mut sp = SlottedPage::attach(pg);
                    sp.delete(rid.slot)
                });
                fp.absorb(access);
                del?;
                let (new_rid, ins_fp) = self.insert(pool, rec)?;
                fp.merge(ins_fp);
                Ok((new_rid, fp))
            }
            Err(e) => Err(e),
        }
    }

    /// Delete a record.
    pub fn delete(
        &mut self,
        pool: &mut BufferPool,
        rid: RecordId,
    ) -> Result<HeapFootprint, SlotError> {
        let mut fp = HeapFootprint::default();
        let (result, access) = pool.with_page_mut(rid.page, |pg| {
            let mut sp = SlottedPage::attach(pg);
            sp.delete(rid.slot)
        });
        fp.absorb(access);
        result.map(|()| fp)
    }

    /// Visit every live record.
    pub fn scan(
        &self,
        pool: &mut BufferPool,
        mut visit: impl FnMut(RecordId, &[u8]),
    ) -> HeapFootprint {
        let mut fp = HeapFootprint::default();
        for &pid in &self.pages {
            let (_, access) = pool.with_page_mut(pid, |pg| {
                let sp = SlottedPage::attach(pg);
                for (slot, rec) in sp.iter() {
                    visit(RecordId::new(pid, slot), rec);
                }
            });
            fp.absorb(access);
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn setup() -> (HeapFile, BufferPool) {
        (HeapFile::new(), BufferPool::new(64, DiskManager::new()))
    }

    #[test]
    fn insert_get_round_trip() {
        let (mut hf, mut pool) = setup();
        let (rid, fp) = hf.insert(&mut pool, b"record one").unwrap();
        assert!(fp.allocated_page);
        let (rec, _) = hf.get(&mut pool, rid);
        assert_eq!(rec.unwrap(), b"record one");
    }

    #[test]
    fn spills_to_new_pages_when_full() {
        let (mut hf, mut pool) = setup();
        let rec = [5u8; 500];
        let rids: Vec<RecordId> = (0..100)
            .map(|_| hf.insert(&mut pool, &rec).unwrap().0)
            .collect();
        assert!(hf.page_ids().len() > 5, "pages={}", hf.page_ids().len());
        for rid in rids {
            assert_eq!(hf.get(&mut pool, rid).0.unwrap(), rec.to_vec());
        }
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let (mut hf, mut pool) = setup();
        let (rid, _) = hf.insert(&mut pool, b"0123456789").unwrap();
        let (rid2, _) = hf.update(&mut pool, rid, b"short").unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(hf.get(&mut pool, rid).0.unwrap(), b"short");
    }

    #[test]
    fn growing_update_moves_record() {
        let (mut hf, mut pool) = setup();
        // Fill page 0 almost completely.
        let (rid, _) = hf.insert(&mut pool, &[1u8; 100]).unwrap();
        while hf.page_ids().len() == 1 {
            hf.insert(&mut pool, &[2u8; 100]).unwrap();
        }
        // rid lives on a full page 0; grow it.
        let big = [3u8; 4000];
        let (new_rid, _) = hf.update(&mut pool, rid, &big).unwrap();
        assert_ne!(new_rid, rid);
        assert_eq!(hf.get(&mut pool, new_rid).0.unwrap(), big.to_vec());
        assert_eq!(hf.get(&mut pool, rid).0, None, "old rid must be dead");
    }

    #[test]
    fn delete_then_get_none() {
        let (mut hf, mut pool) = setup();
        let (rid, _) = hf.insert(&mut pool, b"x").unwrap();
        hf.delete(&mut pool, rid).unwrap();
        assert_eq!(hf.get(&mut pool, rid).0, None);
        assert!(hf.delete(&mut pool, rid).is_err());
    }

    #[test]
    fn scan_visits_all_live_records() {
        let (mut hf, mut pool) = setup();
        let mut rids = Vec::new();
        for i in 0..50u8 {
            rids.push(hf.insert(&mut pool, &[i; 200]).unwrap().0);
        }
        hf.delete(&mut pool, rids[10]).unwrap();
        let mut seen = 0;
        hf.scan(&mut pool, |_, rec| {
            assert_eq!(rec.len(), 200);
            seen += 1;
        });
        assert_eq!(seen, 49);
    }

    #[test]
    fn footprints_count_pool_behaviour() {
        let (mut hf, mut tiny_pool) = (HeapFile::new(), BufferPool::new(2, DiskManager::new()));
        let mut rids = Vec::new();
        for _ in 0..40 {
            rids.push(hf.insert(&mut tiny_pool, &[0u8; 1000]).unwrap().0);
        }
        // Random access across many pages through 2 frames: misses happen.
        let mut misses = 0;
        for rid in &rids {
            let (_, fp) = hf.get(&mut tiny_pool, *rid);
            misses += fp.pool_misses;
        }
        assert!(misses > 0);
    }
}
