//! Columnar storage for the analytics path.
//!
//! §5.2 keeps a "columnar database" on the FPGA side of Figure 4, scanned by
//! the Netezza-style enhanced scanner. This module supplies that substrate:
//! typed column vectors grouped into a table, with the byte-size accounting
//! the scan experiments need to reason about PCIe bandwidth.

/// A typed column of values.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 32-bit unsigned integers.
    U32(Vec<u32>),
    /// Fixed-width byte strings, `width` bytes per row, concatenated.
    FixedStr {
        /// Bytes per value.
        width: usize,
        /// Row-major concatenated values (`rows * width` bytes).
        data: Vec<u8>,
    },
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::U32(v) => v.len(),
            Column::FixedStr { width, data } => {
                if *width == 0 {
                    0
                } else {
                    data.len() / width
                }
            }
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per value.
    pub fn value_width(&self) -> usize {
        match self {
            Column::I64(_) => 8,
            Column::U32(_) => 4,
            Column::FixedStr { width, .. } => *width,
        }
    }

    /// Total bytes held.
    pub fn byte_size(&self) -> usize {
        self.len() * self.value_width()
    }

    /// Read row `i` as i64 where the column is numeric; `None` for strings.
    pub fn as_i64(&self, i: usize) -> Option<i64> {
        match self {
            Column::I64(v) => v.get(i).copied(),
            Column::U32(v) => v.get(i).map(|&x| x as i64),
            Column::FixedStr { .. } => None,
        }
    }

    /// Read row `i` as raw bytes (numeric columns in little-endian).
    pub fn value_bytes(&self, i: usize) -> Vec<u8> {
        match self {
            Column::I64(v) => v[i].to_le_bytes().to_vec(),
            Column::U32(v) => v[i].to_le_bytes().to_vec(),
            Column::FixedStr { width, data } => data[i * width..(i + 1) * width].to_vec(),
        }
    }
}

/// A named collection of equal-length columns.
#[derive(Debug, Clone, Default)]
pub struct ColumnarTable {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl ColumnarTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a column. Panics if its length disagrees with existing columns —
    /// ragged tables are construction bugs.
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> &mut Self {
        if let Some(first) = self.columns.first() {
            assert_eq!(first.len(), col.len(), "ragged column lengths");
        }
        self.names.push(name.into());
        self.columns.push(col);
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Total bytes of one full row across all columns.
    pub fn row_bytes(&self) -> usize {
        self.columns.iter().map(Column::value_width).sum()
    }

    /// Total bytes of the whole table.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ColumnarTable {
        let mut t = ColumnarTable::new();
        t.add_column("id", Column::I64((0..100).collect()));
        t.add_column("qty", Column::U32((0..100).map(|i| i * 2).collect()));
        t.add_column(
            "tag",
            Column::FixedStr {
                width: 4,
                data: (0..100).flat_map(|i: u32| i.to_le_bytes()).collect(),
            },
        );
        t
    }

    #[test]
    fn shape_accessors() {
        let t = sample();
        assert_eq!(t.rows(), 100);
        assert_eq!(t.width(), 3);
        assert_eq!(t.row_bytes(), 8 + 4 + 4);
        assert_eq!(t.byte_size(), 100 * 16);
    }

    #[test]
    fn numeric_access() {
        let t = sample();
        assert_eq!(t.column_by_name("id").unwrap().as_i64(7), Some(7));
        assert_eq!(t.column_by_name("qty").unwrap().as_i64(7), Some(14));
        assert_eq!(t.column_by_name("tag").unwrap().as_i64(7), None);
    }

    #[test]
    fn value_bytes_round_trip() {
        let t = sample();
        assert_eq!(
            t.column_by_name("id").unwrap().value_bytes(3),
            3i64.to_le_bytes().to_vec()
        );
        assert_eq!(
            t.column_by_name("tag").unwrap().value_bytes(3),
            3u32.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn name_lookup() {
        let t = sample();
        assert_eq!(t.column_index("qty"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert!(t.column_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        let mut t = ColumnarTable::new();
        t.add_column("a", Column::I64(vec![1, 2, 3]));
        t.add_column("b", Column::I64(vec![1]));
    }

    #[test]
    fn empty_fixedstr_edge_cases() {
        let c = Column::FixedStr {
            width: 0,
            data: vec![],
        };
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }
}
