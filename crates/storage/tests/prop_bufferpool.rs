//! Buffer-pool invariant property tests.
//!
//! The write-ahead invariant the chaos harness leans on: the pool may push
//! a dirty page to disk at any moment (eviction, partial flush), but every
//! state it exposes to disk must be one a WAL install record covers. The
//! model here is a shadow WAL: each mutation stamps a fresh LSN into the
//! page and logs the complete resulting image. After arbitrary traffic and
//! a crash, every disk page must be byte-identical to either the zero page
//! (never written back) or one of the logged images — never a torn,
//! blended, or unlogged state. Pinned pages must additionally never leave
//! the pool at all.

use bionic_storage::bufferpool::BufferPool;
use bionic_storage::disk::DiskManager;
use bionic_storage::page::PageId;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum PoolOp {
    /// Mutate page `i % npages`, stamping a fresh LSN and logging the image.
    Write(usize),
    /// Read page `i % npages` (moves the CLOCK hand, sets referenced bits).
    Read(usize),
    /// Pin page `i % npages`.
    Pin(usize),
    /// Unpin page `i % npages` if we hold a pin.
    Unpin(usize),
    /// Flush up to `n % 4` dirty pages in deterministic order.
    FlushSome(usize),
    /// Allocate a throwaway page to apply eviction pressure.
    Pressure,
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        (0usize..64).prop_map(PoolOp::Write),
        (0usize..64).prop_map(PoolOp::Read),
        (0usize..64).prop_map(PoolOp::Pin),
        (0usize..64).prop_map(PoolOp::Unpin),
        (0usize..8).prop_map(PoolOp::FlushSome),
        Just(PoolOp::Pressure),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_page_state_reaches_disk_without_a_covering_install(
        ops in prop::collection::vec(pool_op(), 1..200),
        capacity in 2usize..12,
        npages in 1usize..16,
    ) {
        let mut pool = BufferPool::new(capacity, DiskManager::new());
        let ids: Vec<PageId> = (0..npages).map(|_| pool.allocate_page().0).collect();

        // Shadow WAL: every image a page ever legitimately held, per page.
        let mut wal: HashMap<PageId, Vec<Vec<u8>>> = HashMap::new();
        let mut pinned: HashSet<PageId> = HashSet::new();
        let mut next_lsn: u64 = 1;

        for op in ops {
            match op {
                PoolOp::Write(i) => {
                    let id = ids[i % npages];
                    let image = pool.with_page_mut(id, |pg| {
                        pg.bytes_mut()[..8].copy_from_slice(&next_lsn.to_le_bytes());
                        pg.bytes().to_vec()
                    }).0;
                    next_lsn += 1;
                    wal.entry(id).or_default().push(image);
                }
                PoolOp::Read(i) => {
                    pool.with_page(ids[i % npages], |_| ());
                }
                PoolOp::Pin(i) => {
                    let id = ids[i % npages];
                    // Keep at least one frame evictable or the pool
                    // (correctly) panics under pressure.
                    if pinned.len() + 1 < capacity && pinned.insert(id) {
                        pool.pin(id);
                    }
                }
                PoolOp::Unpin(i) => {
                    let id = ids[i % npages];
                    if pinned.remove(&id) {
                        pool.unpin(id);
                    }
                }
                PoolOp::FlushSome(n) => {
                    pool.flush_some(n % 4);
                }
                PoolOp::Pressure => {
                    pool.allocate_page();
                }
            }
            // Pinned pages never leave the pool, whatever the traffic.
            for id in &pinned {
                prop_assert!(pool.is_resident(*id), "pinned {id:?} evicted");
            }
        }

        // Crash: drop the pool, keep only what eviction/flush wrote back.
        let mut disk = pool.crash();
        for id in &ids {
            let on_disk = disk.read(*id).bytes().to_vec();
            let zero = on_disk.iter().all(|&b| b == 0);
            let covered = wal
                .get(id)
                .is_some_and(|images| images.iter().any(|img| img == &on_disk));
            prop_assert!(
                zero || covered,
                "page {id:?} reached disk in a state no WAL install covers \
                 (lsn stamp = {})",
                u64::from_le_bytes(on_disk[..8].try_into().unwrap()),
            );
        }
    }

    #[test]
    fn eviction_write_back_is_always_the_latest_logged_image(
        writes in prop::collection::vec((0usize..8, any::<u8>()), 1..120),
    ) {
        // Tight pool, many pages: heavy eviction. The page found on disk
        // after a crash must be the *newest* image the WAL logged for it at
        // write-back time or older — never a mix. With full-image stamps,
        // "covered" (above) already proves atomicity; here we additionally
        // check monotonicity: a later write never resurrects an older
        // on-disk stamp once the newer one has been flushed explicitly.
        let mut pool = BufferPool::new(2, DiskManager::new());
        let ids: Vec<PageId> = (0..8).map(|_| pool.allocate_page().0).collect();
        let mut latest_stamp: HashMap<PageId, u64> = HashMap::new();
        for (lsn, (i, byte)) in (1u64..).zip(writes) {
            let id = ids[i % 8];
            pool.with_page_mut(id, |pg| {
                pg.bytes_mut()[..8].copy_from_slice(&lsn.to_le_bytes());
                pg.bytes_mut()[9] = byte;
            });
            latest_stamp.insert(id, lsn);
        }
        pool.flush_all();
        let mut disk = pool.crash();
        for id in &ids {
            let stamp = u64::from_le_bytes(disk.read(*id).bytes()[..8].try_into().unwrap());
            let expect = latest_stamp.get(id).copied().unwrap_or(0);
            prop_assert_eq!(stamp, expect, "page {:?}", id);
        }
    }
}
