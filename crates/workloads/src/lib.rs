//! # bionic-workloads — TATP and TPC-C for the bionic engine
//!
//! Spec-faithful implementations of the two workloads Figure 3 profiles:
//!
//! * [`tatp`] — the update-heavy telecom benchmark, including the
//!   non-uniform subscriber selection and the built-in failure rates
//!   (UpdateSubscriberData aborts ≈37.5 % of the time by design);
//! * [`tpcc`] — all five TPC-C transactions with NURand skew, remote
//!   warehouses, and the 1 % NewOrder rollback; StockLevel is the paper's
//!   index-bound exhibit;
//! * [`driver`] — runs a stream against an engine and reports throughput,
//!   latency, joules/txn, and the Figure-3 breakdown;
//! * [`hybrid`] — the Figure-4 mixed driver: TATP transactions interleaved
//!   with enhanced-scanner analytics under shared-bandwidth arbitration;
//! * [`partitioned`] — the cluster sharding layer: one population per
//!   node and a routed stream mixing single-partition transactions with a
//!   tunable fraction of cross-partition (two-phase-commit) transactions.

#![deny(missing_docs)]

pub mod anywork;
pub mod driver;
pub mod hybrid;
pub mod partitioned;
pub mod tatp;
pub mod tpcc;

pub use anywork::{AnyWorkload, WorkloadKind};
pub use driver::{run, run_batched, run_batched_pooled, PooledSource, WorkloadReport};
pub use hybrid::{run_hybrid, HybridConfig, HybridReport};
pub use partitioned::{ClusterTxn, PartitionedWorkload};
pub use tatp::{TatpConfig, TatpGenerator, TatpTxn};
pub use tpcc::{TpccConfig, TpccGenerator, TpccTxn};
