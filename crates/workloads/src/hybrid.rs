//! The hybrid OLTP/OLAP driver — Figure 4 end-to-end.
//!
//! Everything before this module exercised the bionic engine one side at a
//! time: transactions (F3/E4–E9) or analytics (E10/E11) in isolation. The
//! paper's Figure 4, however, draws a *single* machine where the DORA
//! engine and the enhanced scanner run concurrently against the same
//! SG-DRAM and the same CPU↔FPGA link. This driver interleaves a TATP
//! transaction stream with a periodic enhanced-scanner stream over a
//! columnar analytics table, with [shared-bandwidth
//! arbitration](bionic_sim::arbiter) enabled so each side observes the
//! other's queueing delay.
//!
//! The analytics knob is *scan pressure*: the fraction of SG-DRAM
//! bandwidth the scan stream offers. At pressure `p`, scans of `B` bytes
//! are launched every `B / (p × 80 GB/s)` of simulated time; experiment
//! E13 sweeps `p` from 0 to 1 and watches transaction throughput, latency,
//! and joules respond (EXPERIMENTS.md, "how to read the contention knee").
//!
//! Interleaving is deterministic: transaction and scan arrivals are merged
//! in simulated-time order (ties go to the transaction), so a hybrid run
//! is a pure function of its config — the property every figure relies on.

use crate::driver::WorkloadReport;
use crate::tatp::{self, TatpConfig, TatpGenerator};
use bionic_core::engine::Engine;
use bionic_scan::predicate::{CmpOp, ColPredicate, ScanRequest};
use bionic_scan::scanner::{scan_dispatch_with, scan_software_with, ScanEval, ScannerConfig};
use bionic_sim::stats::{Histogram, Summary};
use bionic_sim::time::SimTime;
use bionic_storage::columnar::{Column, ColumnarTable};
use std::collections::BTreeMap;

/// Configuration of one hybrid run.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// TATP sizing (subscribers, workload seed).
    pub tatp: TatpConfig,
    /// Transactions to submit.
    pub txns: u64,
    /// Open-loop transaction inter-arrival time.
    pub inter_arrival: SimTime,
    /// Offered scan load as a fraction of SG-DRAM bandwidth (0 disables
    /// the analytic stream entirely; 1.0 offers the full 80 GB/s).
    pub scan_pressure: f64,
    /// Rows in the columnar analytics table each scan sweeps.
    pub scan_rows: usize,
    /// Issue one [`Engine::query_range`] through the result cache after
    /// every scan (exercises cache invalidation under concurrent updates).
    pub range_queries: bool,
    /// Run every scan on the software path ([`scan_software_with`]) instead of
    /// the enhanced scanner. This is the all-software reference
    /// configuration experiment E14's brownout curve degrades toward:
    /// pair it with [`bionic_core::config::EngineConfig::software`] and
    /// *nothing* in the run touches an accelerator.
    pub software_scans: bool,
    /// Capture windowed metric snapshots on this fixed sim-time grid
    /// (run-relative). `None` disables the snapshot feed entirely.
    pub snapshot_window: Option<SimTime>,
}

impl HybridConfig {
    /// A small deterministic default used by tests and Smoke-scale E13.
    pub fn small(scan_pressure: f64) -> Self {
        HybridConfig {
            tatp: TatpConfig {
                subscribers: 2_000,
                ..Default::default()
            },
            txns: 800,
            inter_arrival: SimTime::from_us(2.0),
            scan_pressure,
            scan_rows: 200_000,
            range_queries: true,
            software_scans: false,
            snapshot_window: None,
        }
    }
}

/// Everything a hybrid run produces: the transactional report plus the
/// analytic stream's outcome and the arbiter's occupancy accounting.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// The transaction side, measured exactly like [`crate::run`].
    pub oltp: WorkloadReport,
    /// Engine table ids of the TATP schema this run loaded, so callers can
    /// keep querying the same engine after the run (see the result-cache
    /// staleness regression test).
    pub tatp_tables: tatp::TatpTables,
    /// Scans completed.
    pub scans: u64,
    /// Rows matched across all scans (functional check: selectivity is a
    /// property of the data, not of contention).
    pub scan_matches: u64,
    /// Scan latency (arrival → last projected byte delivered).
    pub scan_latency: Summary,
    /// Achieved analytic throughput in bytes of predicate column streamed
    /// per second of simulated time, over the scan stream's active span.
    pub scan_bytes_per_sec: f64,
    /// Range queries issued through the result cache.
    pub queries: u64,
    /// Range queries answered from the result cache.
    pub query_cache_hits: u64,
    /// SG-DRAM bytes granted to the transaction engine.
    pub sg_oltp_bytes: u64,
    /// SG-DRAM bytes granted to the scan stream.
    pub sg_olap_bytes: u64,
    /// Peak SG-DRAM window fill (fraction of capacity; ≤ 1 when the
    /// conservation invariant holds).
    pub sg_max_fill_frac: f64,
    /// Mean SG-DRAM window fill across touched windows.
    pub sg_mean_fill_frac: f64,
    /// Total arbitration delay handed to SG-DRAM clients.
    pub sg_queued: SimTime,
    /// PCIe-link bytes granted to the transaction engine.
    pub link_oltp_bytes: u64,
    /// PCIe-link bytes granted to the scan stream.
    pub link_olap_bytes: u64,
    /// Peak PCIe-link window fill (fraction of capacity).
    pub link_max_fill_frac: f64,
    /// Windowed metric snapshots, when [`HybridConfig::snapshot_window`]
    /// was set: one window per grid step (run-relative times) plus a final
    /// partial window at the horizon.
    pub snapshots: Option<bionic_telemetry::SnapshotHub>,
    /// Adaptive placement controller summary, when the engine was built
    /// with [`bionic_core::config::EngineConfig::with_placement`].
    pub placement: Option<bionic_core::PlacementReport>,
}

/// Build the columnar table the analytic stream scans: a deterministic
/// lineitem-like layout whose `qty` column drives selectivity.
pub fn analytics_table(rows: usize) -> ColumnarTable {
    let mut t = ColumnarTable::new();
    t.add_column("key", Column::I64((0..rows as i64).collect()));
    t.add_column(
        "qty",
        Column::I64((0..rows as i64).map(|i| i % 1000).collect()),
    );
    t.add_column(
        "price",
        Column::I64((0..rows as i64).map(|i| i * 7 % 10_000).collect()),
    );
    t
}

/// The scan every analytic arrival runs: 1 % selectivity over `qty`,
/// projecting key and price — the Netezza-style filter of §5.2.
fn scan_request() -> ScanRequest {
    ScanRequest {
        predicates: vec![ColPredicate::new(1, CmpOp::Lt, 10)],
        projection: vec![0, 2],
        ..Default::default()
    }
}

/// Run the hybrid workload on `engine`. Enables shared-bandwidth
/// arbitration on the engine's platform, loads TATP, then merges the
/// transaction and scan arrival streams in simulated-time order.
pub fn run_hybrid(engine: &mut Engine, cfg: &HybridConfig) -> HybridReport {
    assert!(
        (0.0..=1.0).contains(&cfg.scan_pressure),
        "scan pressure is a fraction of SG-DRAM bandwidth"
    );
    engine.platform.enable_contention();
    let tables = tatp::load(engine, &cfg.tatp);
    let subscriber_table = tables.subscriber;
    let mut generator = TatpGenerator::new(cfg.tatp.clone(), tables);
    let scan_table = analytics_table(cfg.scan_rows);
    let req = scan_request();
    let scanner_cfg = ScannerConfig::default();
    // The scan table and request never change within a run, so the
    // functional half of every scan (matching rows + NFA visits) is the
    // same each time: evaluate it once and replay it. The `*_with` scan
    // variants price from its aggregates exactly as the recomputing paths
    // do, so every outcome is byte-identical to re-filtering per scan.
    let scan_eval = ScanEval::compute(&scan_table, &req);

    // Offered load p × 80 GB/s: one scan of `pred_bytes` every
    // `pred_bytes / (p × bw)`. Pressure 0 pushes the first scan past the
    // end of the run.
    let pred_bytes = cfg.scan_rows as u64 * req.predicate_width(&scan_table) as u64;
    let sg_bw = 80e9f64;
    let scan_period = if cfg.scan_pressure > 0.0 {
        SimTime::from_secs(pred_bytes as f64 / (cfg.scan_pressure * sg_bw))
    } else {
        SimTime::MAX
    };

    // Measurement baselines, mirroring `driver::run`.
    let breakdown_before = engine.breakdown.clone();
    let energy_before = engine.platform.energy.clone();
    let committed_before = engine.stats.committed;
    let submitted_before = engine.stats.submitted;
    let aborted_before = engine.stats.aborted;
    let cache_before = engine.result_cache_stats();
    let base = engine.stats.last_completion;

    let mut per_type: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut per_type_hist: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut scan_hist = Histogram::default();
    let mut scans = 0u64;
    let mut scan_matches = 0u64;
    let mut last_scan_done = SimTime::ZERO;
    let mut queries = 0u64;

    let mut hub = cfg.snapshot_window.map(bionic_telemetry::SnapshotHub::new);
    let mut txn_i = 0u64;
    let mut scan_i = 0u64;
    while txn_i < cfg.txns {
        let txn_at = cfg.inter_arrival * txn_i;
        let scan_at = if scan_period == SimTime::MAX {
            SimTime::MAX
        } else {
            scan_period * scan_i
        };
        if let Some(hub) = hub.as_mut() {
            // Grid crossing: collect every layer's counters and capture the
            // finished window(s) before the next arrival runs. Times on the
            // grid are run-relative (arrival offsets from `base`).
            let next_arrival = txn_at.min(scan_at);
            while hub.due(next_arrival) {
                let end = hub.cursor() + hub.window();
                engine.collect_metrics();
                hub.capture(end, engine.tel.metrics());
            }
        }
        if txn_at <= scan_at {
            let (ty, prog) = generator.next_ref();
            *per_type.entry(ty.label()).or_insert(0) += 1;
            let outcome = engine.submit(prog, base + txn_at);
            per_type_hist
                .entry(ty.label())
                .or_default()
                .record(outcome.latency());
            txn_i += 1;
        } else {
            // Scan arrivals drive the placement window grid too — without
            // this, a pure-scan stretch would leave the controller blind
            // between transactions.
            engine.placement_tick(base + scan_at);
            // Route through the degraded-mode dispatcher: with the fault
            // layer off this is exactly `scan_enhanced`; with it armed the
            // scanner unit may reroute this scan to the software path. A
            // placement brownout of the scan unit forces the software path
            // for the whole decision window. The all-software reference
            // configuration skips the dispatcher and scans on the host
            // unconditionally.
            let out = if cfg.software_scans || engine.placement_scan_software() {
                scan_software_with(
                    &mut engine.platform,
                    &scan_table,
                    &req,
                    base + scan_at,
                    &scan_eval,
                )
            } else {
                let (platform, scan_unit) = engine.scan_parts();
                scan_dispatch_with(
                    platform,
                    &scan_table,
                    &req,
                    base + scan_at,
                    &scanner_cfg,
                    scan_unit,
                    &scan_eval,
                )
            };
            let wait = out.sg_wait + out.link_wait;
            if !wait.is_zero() {
                // Surface the analytic stream's arbiter queueing on the
                // scanner's unit track (satellite of the per-client wait
                // counters the arbiter itself keeps).
                engine.mark_scan_arbiter_wait(base + scan_at, base + scan_at + wait);
            }
            scan_hist.record(out.done - (base + scan_at));
            scans += 1;
            scan_matches += out.matches.len() as u64;
            last_scan_done = last_scan_done.max(out.done);
            scan_i += 1;
            if cfg.range_queries {
                // A Figure-4 "query engine" read over live transactional
                // state: range over the subscriber table, through the
                // result cache the update stream keeps invalidating.
                let lo = (scan_i as i64 * 37) % cfg.tatp.subscribers;
                let hi = (lo + 64).min(cfg.tatp.subscribers);
                engine.query_range(subscriber_table, lo, hi, None, out.done);
                queries += 1;
            }
        }
    }

    let committed = engine.stats.committed - committed_before;
    let elapsed = engine.stats.last_completion.saturating_sub(base);
    if let Some(hub) = hub.as_mut() {
        // Close out the grid at the horizon: any full windows the arrival
        // loop never crossed, then one final partial window so the deltas
        // telescope to the run's cumulative counters.
        engine.collect_metrics();
        while hub.due(elapsed) {
            let end = hub.cursor() + hub.window();
            hub.capture(end, engine.tel.metrics());
        }
        if elapsed > hub.cursor() || hub.is_empty() {
            hub.capture(elapsed.max(hub.cursor()), engine.tel.metrics());
        }
    }
    let energy = engine.platform.energy.since(&energy_before);
    let oltp = WorkloadReport {
        submitted: engine.stats.submitted - submitted_before,
        committed,
        aborted: engine.stats.aborted - aborted_before,
        throughput_per_sec: if elapsed.is_zero() {
            0.0
        } else {
            committed as f64 / elapsed.as_secs()
        },
        latency: engine.stats.latency.summary(),
        breakdown: engine.breakdown.since(&breakdown_before),
        joules_per_txn: if committed == 0 {
            0.0
        } else {
            energy.total().as_j() / committed as f64
        },
        energy: energy.snapshot(),
        per_type,
        per_type_latency: per_type_hist
            .into_iter()
            .map(|(k, h)| (k, h.summary()))
            .collect(),
    };

    let contention = engine
        .platform
        .contention
        .as_ref()
        .expect("enabled at entry");
    let scan_span = last_scan_done.saturating_sub(base);
    let cache = engine.result_cache_stats();
    HybridReport {
        oltp,
        tatp_tables: tables,
        scans,
        scan_matches,
        scan_latency: scan_hist.summary(),
        scan_bytes_per_sec: if scan_span.is_zero() {
            0.0
        } else {
            (scans * pred_bytes) as f64 / scan_span.as_secs()
        },
        queries,
        query_cache_hits: cache.hits - cache_before.hits,
        sg_oltp_bytes: contention.sg.client_bytes(0),
        sg_olap_bytes: contention.sg.client_bytes(1),
        sg_max_fill_frac: contention.sg.max_fill_frac(),
        sg_mean_fill_frac: contention.sg.mean_fill_frac(),
        sg_queued: contention.sg.queued_total(),
        link_oltp_bytes: contention.link.client_bytes(0),
        link_olap_bytes: contention.link.client_bytes(1),
        link_max_fill_frac: contention.link.max_fill_frac(),
        snapshots: hub,
        placement: engine.placement_report(),
    }
}

/// Check the arbiter conservation invariant on a platform after a hybrid
/// run: no bandwidth created or lost across contending clients, on either
/// shared path. Returns the first violation found.
pub fn check_conservation(engine: &Engine) -> Result<(), String> {
    match &engine.platform.contention {
        Some(c) => {
            c.sg.check_conservation().map_err(|e| format!("sg: {e}"))?;
            c.link
                .check_conservation()
                .map_err(|e| format!("link: {e}"))
        }
        None => Err("contention is not enabled on this platform".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_core::config::EngineConfig;

    fn run_at(pressure: f64) -> (HybridReport, Engine) {
        let mut engine = Engine::new(EngineConfig::bionic());
        let cfg = HybridConfig {
            scan_rows: 100_000,
            txns: 400,
            ..HybridConfig::small(pressure)
        };
        let report = run_hybrid(&mut engine, &cfg);
        (report, engine)
    }

    #[test]
    fn pressure_zero_runs_no_scans() {
        let (r, engine) = run_at(0.0);
        assert_eq!(r.scans, 0);
        assert_eq!(r.sg_olap_bytes, 0);
        assert!(r.oltp.committed > 0);
        check_conservation(&engine).unwrap();
    }

    #[test]
    fn scan_pressure_slows_transactions_not_their_function() {
        let (calm, e0) = run_at(0.0);
        let (loaded, e1) = run_at(0.8);
        // Functional outcomes are contention-independent...
        assert_eq!(calm.oltp.committed, loaded.oltp.committed);
        assert_eq!(calm.oltp.aborted, loaded.oltp.aborted);
        // ...but the loaded run's transactions waited for bandwidth.
        assert!(
            loaded.oltp.latency.p99 > calm.oltp.latency.p99,
            "p99 {} should exceed {}",
            loaded.oltp.latency.p99,
            calm.oltp.latency.p99
        );
        assert!(loaded.sg_olap_bytes > 0);
        assert!(loaded.sg_queued > SimTime::ZERO);
        check_conservation(&e0).unwrap();
        check_conservation(&e1).unwrap();
    }

    #[test]
    fn scans_return_correct_matches_under_contention() {
        let (r, engine) = run_at(0.5);
        assert!(r.scans > 0);
        // 1% selectivity over `qty % 1000 < 10`.
        assert_eq!(r.scan_matches, r.scans * 1_000);
        assert!(r.sg_max_fill_frac <= 1.0 + 1e-12);
        check_conservation(&engine).unwrap();
    }

    #[test]
    fn hybrid_runs_are_deterministic() {
        let (a, _) = run_at(0.6);
        let (b, _) = run_at(0.6);
        assert_eq!(a.oltp.committed, b.oltp.committed);
        assert_eq!(a.oltp.latency.p99, b.oltp.latency.p99);
        assert_eq!(a.sg_oltp_bytes, b.sg_oltp_bytes);
        assert_eq!(a.scan_latency.p50, b.scan_latency.p50);
    }

    #[test]
    fn software_scan_reference_matches_enhanced_results() {
        let (enhanced, _) = run_at(0.5);
        let mut engine = Engine::new(EngineConfig::software());
        let cfg = HybridConfig {
            scan_rows: 100_000,
            txns: 400,
            software_scans: true,
            ..HybridConfig::small(0.5)
        };
        let sw = run_hybrid(&mut engine, &cfg);
        // The reference configuration is functionally identical: same scan
        // count and selectivity, same commit/abort stream.
        assert_eq!(sw.scans, enhanced.scans);
        assert_eq!(sw.scan_matches, enhanced.scan_matches);
        assert_eq!(sw.oltp.committed, enhanced.oltp.committed);
        assert_eq!(sw.oltp.aborted, enhanced.oltp.aborted);
        check_conservation(&engine).unwrap();
    }

    #[test]
    fn snapshot_deltas_telescope_and_attribution_covers_commits() {
        let mut engine = Engine::new(EngineConfig::bionic());
        engine.enable_attribution();
        let cfg = HybridConfig {
            scan_rows: 100_000,
            txns: 400,
            snapshot_window: Some(SimTime::from_us(100.0)),
            ..HybridConfig::small(0.6)
        };
        let report = run_hybrid(&mut engine, &cfg);
        let hub = report.snapshots.as_ref().expect("window configured");
        assert!(hub.len() > 1, "run spans several windows");
        // Conservation: per-window commit deltas telescope to the total.
        let total: i64 = hub
            .windows()
            .map(|w| w.counter_delta("engine", "committed"))
            .sum();
        assert_eq!(total, report.oltp.committed as i64);
        // Attribution saw every committed transaction, and under pressure
        // some of them waited on the arbiter.
        let attrib = engine.attribution().expect("enabled above");
        assert_eq!(attrib.count(), report.oltp.committed);
        let waited: u64 = attrib
            .cells()
            .iter()
            .map(|(_, _, c)| c.segments_ps[bionic_telemetry::attrib::SEG_ARBITER_WAIT])
            .sum();
        assert!(waited > 0, "scan pressure should queue some probes");
        check_conservation(&engine).unwrap();
    }

    #[test]
    fn faulting_scanner_falls_back_without_changing_scan_results() {
        use bionic_sim::fault::HwFaultConfig;
        let (clean, _) = run_at(0.5);
        let mut engine =
            Engine::new(EngineConfig::bionic().with_hw_faults(HwFaultConfig::saturated()));
        let cfg = HybridConfig {
            scan_rows: 100_000,
            txns: 400,
            ..HybridConfig::small(0.5)
        };
        let broken = run_hybrid(&mut engine, &cfg);
        // Fallbacks are pricing-only: every scan still returns the same
        // 1% selectivity, and the OLTP side commits everything it did.
        assert_eq!(broken.scan_matches, broken.scans * 1_000);
        assert_eq!(clean.oltp.committed, broken.oltp.committed);
        assert_eq!(clean.oltp.aborted, broken.oltp.aborted);
        // The scanner unit really was consulted and really fell back.
        let report = engine.fault_report().expect("layer armed");
        let scanner = report.iter().find(|r| r.unit == "scanner").unwrap();
        assert!(scanner.stats.ops > 0);
        assert!(scanner.stats.fallbacks > 0);
        // Brownout: degraded scans (and OLTP watchdogs) cost time.
        assert!(broken.oltp.latency.p99 > clean.oltp.latency.p99);
        check_conservation(&engine).unwrap();
    }
}
