//! Partition-aware workload generation for cluster runs.
//!
//! A cluster shards a benchmark horizontally: every node owns a full,
//! independent population of the chosen workload (its partition), and the
//! stream interleaves *single-partition* transactions — the benchmark's
//! official mix against one node — with *cross-partition* transactions
//! that must touch two nodes atomically and therefore ride the two-phase
//! commit protocol. The cross-partition fraction is the knob the paper's
//! scale-out argument turns: at 0 bp the cluster is embarrassingly
//! parallel, and every basis point of distribution buys coordination.
//!
//! Determinism contract: node `n`'s generator is seeded from
//! `seed + n * GOLDEN`, so **node 0's stream is byte-identical to a
//! single-engine [`AnyWorkload`] run at the same seed** — the property the
//! cluster's unarmed-1-node regression test pins. Home-node selection and
//! the cross draw come from a separate [`SplitMix64`] stream, and the
//! cross draw is only taken when it can matter (`nodes > 1 && cross_bp >
//! 0`), so a mono-cluster consumes the exact same generator draws as the
//! single engine.

use crate::anywork::{AnyWorkload, WorkloadKind};
use bionic_core::engine::Engine;
use bionic_core::ops::TxnProgram;
use bionic_sim::rng::SplitMix64;

/// Weyl increment used to derive per-node generator seeds.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// One transaction drawn from the partitioned stream.
pub enum ClusterTxn {
    /// An ordinary transaction against one node's partition.
    Single {
        /// The owning node.
        node: usize,
        /// Program label (benchmark transaction name).
        label: &'static str,
        /// The program to run.
        program: TxnProgram,
    },
    /// An atomic transaction spanning two partitions. The first branch's
    /// node is the coordinator (the transaction's home node).
    Cross {
        /// `(node, label, program)` per participating partition, home
        /// node first.
        branches: Vec<(usize, &'static str, TxnProgram)>,
    },
}

impl ClusterTxn {
    /// The coordinating / owning node.
    pub fn home(&self) -> usize {
        match self {
            ClusterTxn::Single { node, .. } => *node,
            ClusterTxn::Cross { branches } => branches[0].0,
        }
    }
}

/// A sharded workload: one generator per node plus the routing stream.
pub struct PartitionedWorkload {
    gens: Vec<AnyWorkload>,
    cross_bp: u32,
    route: SplitMix64,
}

impl PartitionedWorkload {
    /// Load one small population per engine (see
    /// [`AnyWorkload::load_small`]) and return the routed stream.
    /// `cross_bp` is the cross-partition fraction in basis points
    /// (0..=10_000). Node 0 loads at exactly `seed`, preserving
    /// single-engine byte-identity for a one-node cluster.
    pub fn load_small<'a>(
        engines: impl IntoIterator<Item = &'a mut Engine>,
        kind: WorkloadKind,
        cross_bp: u32,
        seed: u64,
    ) -> Self {
        let gens: Vec<AnyWorkload> = engines
            .into_iter()
            .enumerate()
            .map(|(n, e)| {
                AnyWorkload::load_small(e, kind, seed.wrapping_add((n as u64).wrapping_mul(GOLDEN)))
            })
            .collect();
        PartitionedWorkload {
            gens,
            cross_bp: cross_bp.min(10_000),
            route: SplitMix64::new(seed ^ 0x7C15_9E37_79B9_7F4A),
        }
    }

    /// Number of partitions.
    pub fn nodes(&self) -> usize {
        self.gens.len()
    }

    /// Draw the next transaction. Single-node streams never consume the
    /// cross draw, and a zero `cross_bp` consumes neither the cross draw
    /// nor the remote-node draw — the routing stream stays aligned with a
    /// cross-free run.
    #[allow(clippy::should_implement_trait)] // infallible, follows TatpGenerator
    pub fn next(&mut self) -> ClusterTxn {
        let n = self.gens.len();
        let home = if n > 1 {
            self.route.below(n as u64) as usize
        } else {
            0
        };
        let cross = n > 1 && self.cross_bp > 0 && self.route.chance(self.cross_bp as f64 / 1e4);
        if !cross {
            let (label, program) = self.gens[home].next_program();
            return ClusterTxn::Single {
                node: home,
                label,
                program,
            };
        }
        let mut other = self.route.below(n as u64 - 1) as usize;
        if other >= home {
            other += 1;
        }
        let (hl, hp) = self.gens[home].next_program();
        let (ol, op) = self.gens[other].next_program();
        ClusterTxn::Cross {
            branches: vec![(home, hl, hp), (other, ol, op)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_core::config::EngineConfig;

    fn engines(n: usize) -> Vec<Engine> {
        (0..n)
            .map(|i| {
                Engine::new(
                    EngineConfig::software()
                        .with_agents(2)
                        .with_seed(40 + i as u64),
                )
            })
            .collect()
    }

    #[test]
    fn node_zero_stream_matches_single_engine_run() {
        let mut solo = Engine::new(EngineConfig::software().with_agents(2).with_seed(40));
        let mut w = AnyWorkload::load_small(&mut solo, WorkloadKind::Tatp, 77);
        let solo_stream: Vec<TxnProgram> = (0..40).map(|_| w.next_program().1).collect();

        let mut cluster = engines(1);
        let mut pw = PartitionedWorkload::load_small(&mut cluster, WorkloadKind::Tatp, 0, 77);
        let routed: Vec<TxnProgram> = (0..40)
            .map(|_| match pw.next() {
                ClusterTxn::Single { node, program, .. } => {
                    assert_eq!(node, 0);
                    program
                }
                ClusterTxn::Cross { .. } => panic!("mono-cluster can never go cross"),
            })
            .collect();
        assert_eq!(solo_stream, routed);
    }

    #[test]
    fn cross_fraction_tracks_the_knob() {
        let mut es = engines(4);
        let mut pw = PartitionedWorkload::load_small(&mut es, WorkloadKind::Tatp, 2_500, 9);
        let mut cross = 0usize;
        let mut homes = [0usize; 4];
        for _ in 0..800 {
            match pw.next() {
                ClusterTxn::Single { node, .. } => homes[node] += 1,
                ClusterTxn::Cross { branches } => {
                    assert_eq!(branches.len(), 2);
                    assert_ne!(branches[0].0, branches[1].0, "branches hit distinct nodes");
                    cross += 1;
                }
            }
        }
        // 25% nominal; allow generous slack, the draw is unbiased.
        assert!((120..=280).contains(&cross), "cross={cross}");
        assert!(homes.iter().all(|&h| h > 80), "{homes:?}");
    }

    #[test]
    fn same_seed_same_routed_stream() {
        let stream = |seed: u64| {
            let mut es = engines(3);
            let mut pw = PartitionedWorkload::load_small(&mut es, WorkloadKind::Tpcc, 1_000, seed);
            (0..60)
                .map(|_| match pw.next() {
                    ClusterTxn::Single { node, label, .. } => format!("s{node}/{label}"),
                    ClusterTxn::Cross { branches } => format!(
                        "x{}/{}+{}/{}",
                        branches[0].0, branches[0].1, branches[1].0, branches[1].1
                    ),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(5), stream(5));
        assert_ne!(stream(5), stream(6));
    }
}
