//! The TPC-C benchmark (in-memory scale).
//!
//! Figure 3's right bar profiles **StockLevel**, TPC-C's read-only
//! index-heavy transaction ("OLTP workloads are index-bound, spending in
//! some cases 40 % or more of total transaction time traversing various
//! index structures", §5.3). All five transaction types are implemented
//! with the spec's 45/43/4/4/4 mix, NURand skew, remote-warehouse
//! probabilities, and the 1 % intentional NewOrder abort.
//!
//! The generator keeps *shadow state* (next order ids, undelivered orders,
//! items of recent orders) so that data-dependent transactions can be
//! emitted as concrete [`TxnProgram`]s with exactly the data footprint the
//! spec prescribes.

use bionic_core::engine::Engine;
use bionic_core::ops::{Action, Op, Patch, TxnProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Key packing for TPC-C composite keys.
pub mod keys {
    /// DISTRICT key: `(w, d 0..10)`.
    pub fn district(w: i64, d: i64) -> i64 {
        w * 10 + d
    }

    /// CUSTOMER key: `(w, d, c)`.
    pub fn customer(w: i64, d: i64, c: i64) -> i64 {
        district(w, d) * 100_000 + c
    }

    /// ORDER / NEWORDER key: `(w, d, o_id)`.
    pub fn order(w: i64, d: i64, o_id: i64) -> i64 {
        district(w, d) * (1 << 32) + o_id
    }

    /// ORDERLINE key: `(order, line 0..16)`.
    pub fn orderline(order_key: i64, line: i64) -> i64 {
        order_key * 16 + line
    }

    /// STOCK key: `(w, item)`.
    pub fn stock(w: i64, item: i64) -> i64 {
        w * 1_000_000 + item
    }
}

/// Record layout offsets (absolute, key prefix included).
pub mod layout {
    /// WAREHOUSE.ytd.
    pub const W_YTD: usize = 8;
    /// WAREHOUSE body bytes.
    pub const W_BODY: usize = 72;
    /// DISTRICT.ytd.
    pub const D_YTD: usize = 8;
    /// DISTRICT.next_o_id.
    pub const D_NEXT_O_ID: usize = 16;
    /// DISTRICT body bytes.
    pub const D_BODY: usize = 72;
    /// CUSTOMER.balance.
    pub const C_BALANCE: usize = 8;
    /// CUSTOMER.ytd_payment.
    pub const C_YTD: usize = 16;
    /// CUSTOMER.payment_cnt.
    pub const C_PAYMENT_CNT: usize = 24;
    /// CUSTOMER body bytes (the spec row is ~655 B; we keep the hot prefix
    /// plus representative padding).
    pub const C_BODY: usize = 120;
    /// ORDER.carrier_id.
    pub const O_CARRIER: usize = 8;
    /// ORDER.ol_cnt.
    pub const O_OL_CNT: usize = 16;
    /// ORDER body bytes.
    pub const O_BODY: usize = 24;
    /// NEWORDER body bytes.
    pub const NO_BODY: usize = 8;
    /// ORDERLINE.delivery_d.
    pub const OL_DELIVERY_D: usize = 8;
    /// ORDERLINE.amount.
    pub const OL_AMOUNT: usize = 16;
    /// ORDERLINE body bytes.
    pub const OL_BODY: usize = 40;
    /// ITEM body bytes.
    pub const I_BODY: usize = 56;
    /// STOCK.quantity.
    pub const S_QUANTITY: usize = 8;
    /// STOCK body bytes.
    pub const S_BODY: usize = 56;
}

/// Engine table ids, in creation order.
#[derive(Debug, Clone, Copy)]
pub struct TpccTables {
    /// WAREHOUSE.
    pub warehouse: u32,
    /// DISTRICT.
    pub district: u32,
    /// CUSTOMER.
    pub customer: u32,
    /// HISTORY.
    pub history: u32,
    /// ORDER.
    pub order: u32,
    /// NEWORDER.
    pub neworder: u32,
    /// ORDERLINE.
    pub orderline: u32,
    /// ITEM.
    pub item: u32,
    /// STOCK.
    pub stock: u32,
}

/// TPC-C configuration (scaled for in-memory simulation).
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Warehouses.
    pub warehouses: i64,
    /// Customers per district (spec 3000).
    pub customers_per_district: i64,
    /// Item catalog size (spec 100_000).
    pub items: i64,
    /// Initial orders per district (spec 3000).
    pub initial_orders: i64,
    /// RNG seed.
    pub seed: u64,
}

/// Districts per warehouse (fixed by the spec).
pub const DISTRICTS: i64 = 10;

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 2,
            customers_per_district: 3000,
            items: 100_000,
            initial_orders: 300,
            seed: 0x7CC,
        }
    }
}

impl TpccConfig {
    /// A small configuration for fast tests.
    pub fn small() -> Self {
        TpccConfig {
            warehouses: 1,
            customers_per_district: 60,
            items: 1000,
            initial_orders: 30,
            ..Default::default()
        }
    }
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpccTxn {
    /// 45 %: order entry (read-write, multi-table).
    NewOrder,
    /// 43 %: payment (read-write).
    Payment,
    /// 4 %: order status (read-only).
    OrderStatus,
    /// 4 %: delivery (read-write batch).
    Delivery,
    /// 4 %: stock level (read-only, index-heavy) — Figure 3 right.
    StockLevel,
}

impl TpccTxn {
    /// Cumulative mix thresholds.
    pub const MIX: [(TpccTxn, u32); 5] = [
        (TpccTxn::NewOrder, 45),
        (TpccTxn::Payment, 88),
        (TpccTxn::OrderStatus, 92),
        (TpccTxn::Delivery, 96),
        (TpccTxn::StockLevel, 100),
    ];

    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            TpccTxn::NewOrder => "NewOrder",
            TpccTxn::Payment => "Payment",
            TpccTxn::OrderStatus => "OrderStatus",
            TpccTxn::Delivery => "Delivery",
            TpccTxn::StockLevel => "StockLevel",
        }
    }
}

/// Per-district shadow state the generator maintains.
#[derive(Debug, Clone)]
struct DistrictState {
    next_o_id: i64,
    /// `(o_id, customer, item_ids)` of recent orders (StockLevel window).
    recent: VecDeque<(i64, i64, Vec<i64>)>,
    /// Undelivered orders: `(o_id, customer, ol_cnt)`.
    undelivered: VecDeque<(i64, i64, i64)>,
    /// Last order per customer (OrderStatus).
    last_order: Vec<(i64, i64)>, // (o_id, ol_cnt) indexed by customer
}

/// Load TPC-C and return table handles + generator.
pub fn load(engine: &mut Engine, cfg: &TpccConfig) -> (TpccTables, TpccGenerator) {
    let tables = TpccTables {
        warehouse: engine.create_table("WAREHOUSE"),
        district: engine.create_table("DISTRICT"),
        customer: engine.create_table("CUSTOMER"),
        history: engine.create_table("HISTORY"),
        order: engine.create_table("ORDER"),
        neworder: engine.create_table("NEWORDER"),
        orderline: engine.create_table("ORDERLINE"),
        item: engine.create_table("ITEM"),
        stock: engine.create_table("STOCK"),
    };
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    for i in 1..=cfg.items {
        let mut body = vec![0u8; layout::I_BODY];
        rng.fill(&mut body[..]);
        body[..8].copy_from_slice(&rng.gen_range(100i64..10_000).to_le_bytes()); // price
        engine.load(tables.item, i, &body);
    }

    let mut districts = Vec::new();
    for w in 0..cfg.warehouses {
        let mut body = vec![0u8; layout::W_BODY];
        rng.fill(&mut body[..]);
        body[..8].copy_from_slice(&0i64.to_le_bytes()); // ytd
        engine.load(tables.warehouse, w, &body);

        for i in 1..=cfg.items {
            let mut body = vec![0u8; layout::S_BODY];
            rng.fill(&mut body[..]);
            body[..8].copy_from_slice(&rng.gen_range(10i64..100).to_le_bytes()); // qty
            engine.load(tables.stock, keys::stock(w, i), &body);
        }

        for d in 0..DISTRICTS {
            let dk = keys::district(w, d);
            let mut body = vec![0u8; layout::D_BODY];
            rng.fill(&mut body[..]);
            body[..8].copy_from_slice(&0i64.to_le_bytes()); // ytd
            body[8..16].copy_from_slice(&(cfg.initial_orders + 1).to_le_bytes()); // next_o_id
            engine.load(tables.district, dk, &body);

            for c in 0..cfg.customers_per_district {
                let mut body = vec![0u8; layout::C_BODY];
                rng.fill(&mut body[..]);
                body[..8].copy_from_slice(&(-1000i64).to_le_bytes()); // balance
                body[8..16].copy_from_slice(&10i64.to_le_bytes()); // ytd
                body[16..24].copy_from_slice(&1i64.to_le_bytes()); // payment_cnt
                engine.load(tables.customer, keys::customer(w, d, c), &body);
            }

            let mut state = DistrictState {
                next_o_id: cfg.initial_orders + 1,
                recent: VecDeque::new(),
                undelivered: VecDeque::new(),
                last_order: vec![(0, 0); cfg.customers_per_district as usize],
            };
            for o_id in 1..=cfg.initial_orders {
                let c = rng.gen_range(0..cfg.customers_per_district);
                let ol_cnt = rng.gen_range(5..=15i64);
                let ok = keys::order(w, d, o_id);
                let mut body = vec![0u8; layout::O_BODY];
                let delivered = o_id <= cfg.initial_orders * 7 / 10;
                body[..8].copy_from_slice(&if delivered { 5i64 } else { 0 }.to_le_bytes());
                body[8..16].copy_from_slice(&ol_cnt.to_le_bytes());
                engine.load(tables.order, ok, &body);
                let mut items = Vec::with_capacity(ol_cnt as usize);
                for line in 0..ol_cnt {
                    let item = rng.gen_range(1..=cfg.items);
                    items.push(item);
                    let mut body = vec![0u8; layout::OL_BODY];
                    body[..8].copy_from_slice(&0i64.to_le_bytes()); // delivery_d
                    body[8..16].copy_from_slice(&rng.gen_range(10i64..10_000).to_le_bytes());
                    engine.load(tables.orderline, keys::orderline(ok, line), &body);
                }
                if !delivered {
                    engine.load(tables.neworder, ok, &[0u8; layout::NO_BODY]);
                    state.undelivered.push_back((o_id, c, ol_cnt));
                }
                state.last_order[c as usize] = (o_id, ol_cnt);
                state.recent.push_back((o_id, c, items));
                if state.recent.len() > 30 {
                    state.recent.pop_front();
                }
            }
            districts.push(state);
        }
    }
    engine.finish_load();
    let generator = TpccGenerator {
        rng: SmallRng::seed_from_u64(cfg.seed ^ 0xC0FFEE),
        cfg: cfg.clone(),
        tables,
        districts,
        history_seq: 1,
        c_for_nurand: 7,
    };
    (tables, generator)
}

/// Generates the TPC-C transaction stream and maintains shadow state.
pub struct TpccGenerator {
    rng: SmallRng,
    cfg: TpccConfig,
    tables: TpccTables,
    districts: Vec<DistrictState>,
    history_seq: i64,
    c_for_nurand: i64,
}

impl TpccGenerator {
    fn district_index(&self, w: i64, d: i64) -> usize {
        (w * DISTRICTS + d) as usize
    }

    /// TPC-C NURand(A, 1..=x).
    fn nurand(&mut self, a: i64, x: i64) -> i64 {
        let r1 = self.rng.gen_range(0..=a);
        let r2 = self.rng.gen_range(1..=x);
        (((r1 | r2) + self.c_for_nurand) % x) + 1
    }

    fn pick_customer(&mut self) -> i64 {
        self.nurand(1023, self.cfg.customers_per_district) - 1
    }

    fn pick_item(&mut self) -> i64 {
        self.nurand(8191, self.cfg.items)
    }

    /// Pick a transaction type from the official mix.
    pub fn next_type(&mut self) -> TpccTxn {
        let roll = self.rng.gen_range(0..100u32);
        for (t, hi) in TpccTxn::MIX {
            if roll < hi {
                return t;
            }
        }
        unreachable!()
    }

    /// Generate the next transaction.
    #[allow(clippy::should_implement_trait)] // fallible-free, tuple-returning
    pub fn next(&mut self) -> (TpccTxn, TxnProgram) {
        let t = self.next_type();
        (t, self.program(t))
    }

    /// Build a program of a specific type.
    pub fn program(&mut self, t: TpccTxn) -> TxnProgram {
        let w = self.rng.gen_range(0..self.cfg.warehouses);
        let d = self.rng.gen_range(0..DISTRICTS);
        match t {
            TpccTxn::NewOrder => self.new_order(w, d),
            TpccTxn::Payment => self.payment(w, d),
            TpccTxn::OrderStatus => self.order_status(w, d),
            TpccTxn::Delivery => self.delivery(w),
            TpccTxn::StockLevel => self.stock_level(w, d),
        }
    }

    /// NewOrder: the spec's order-entry transaction.
    pub fn new_order(&mut self, w: i64, d: i64) -> TxnProgram {
        let c = self.pick_customer();
        let ol_cnt = self.rng.gen_range(5..=15i64);
        let rollback = self.rng.gen_range(0..100) == 0; // 1% bad item
        let dk = keys::district(w, d);
        let t = self.tables;

        let mut items = Vec::with_capacity(ol_cnt as usize);
        for _ in 0..ol_cnt {
            items.push(self.pick_item());
        }

        // Phase 1: reads + district sequence bump.
        let mut phase1 = vec![
            Action::new(
                t.warehouse,
                w,
                vec![Op::Read {
                    table: t.warehouse,
                    key: w,
                }],
            ),
            Action::new(
                t.district,
                dk,
                vec![Op::Update {
                    table: t.district,
                    key: dk,
                    patch: Patch::AddI64 {
                        offset: layout::D_NEXT_O_ID,
                        delta: 1,
                    },
                }],
            ),
            Action::new(
                t.customer,
                keys::customer(w, d, c),
                vec![Op::Read {
                    table: t.customer,
                    key: keys::customer(w, d, c),
                }],
            ),
        ];
        for (idx, &item) in items.iter().enumerate() {
            let key = if rollback && idx == items.len() - 1 {
                // The spec's intentional abort: an unused item id.
                self.cfg.items + 1_000_000
            } else {
                item
            };
            phase1.push(Action::new(
                t.item,
                key,
                vec![Op::Read { table: t.item, key }],
            ));
        }

        // Phase 2: stock updates (1% remote warehouse per line).
        let mut phase2 = Vec::new();
        for &item in &items {
            let supply_w = if self.cfg.warehouses > 1 && self.rng.gen_range(0..100) == 0 {
                (w + 1) % self.cfg.warehouses
            } else {
                w
            };
            let sk = keys::stock(supply_w, item);
            phase2.push(Action::new(
                t.stock,
                sk,
                vec![Op::Update {
                    table: t.stock,
                    key: sk,
                    patch: Patch::AddI64 {
                        offset: layout::S_QUANTITY,
                        delta: -(self.rng.gen_range(1..=10)),
                    },
                }],
            ));
        }

        // Phase 3: order materialization.
        let didx = self.district_index(w, d);
        let st = &mut self.districts[didx];
        let o_id = st.next_o_id;
        if !rollback {
            st.next_o_id += 1;
            st.undelivered.push_back((o_id, c, ol_cnt));
            st.last_order[c as usize] = (o_id, ol_cnt);
            st.recent.push_back((o_id, c, items.clone()));
            if st.recent.len() > 30 {
                st.recent.pop_front();
            }
        }
        let ok = keys::order(w, d, o_id);
        let mut order_body = vec![0u8; layout::O_BODY];
        order_body[8..16].copy_from_slice(&ol_cnt.to_le_bytes());
        let mut phase3 = vec![
            Action::new(
                t.order,
                ok,
                vec![Op::Insert {
                    table: t.order,
                    key: ok,
                    record: order_body,
                }],
            ),
            Action::new(
                t.neworder,
                ok,
                vec![Op::Insert {
                    table: t.neworder,
                    key: ok,
                    record: vec![0u8; layout::NO_BODY],
                }],
            ),
        ];
        let mut ol_ops = Vec::new();
        for line in 0..ol_cnt {
            let mut body = vec![0u8; layout::OL_BODY];
            body[8..16].copy_from_slice(&self.rng.gen_range(10i64..10_000).to_le_bytes());
            ol_ops.push(Op::Insert {
                table: t.orderline,
                key: keys::orderline(ok, line),
                record: body,
            });
        }
        phase3.push(Action::new(t.orderline, ok, ol_ops));

        TxnProgram {
            name: "TPCC-NewOrder",
            phases: vec![phase1, phase2, phase3],
            abort_on_missing_read: true,
        }
    }

    /// Payment.
    pub fn payment(&mut self, w: i64, d: i64) -> TxnProgram {
        let t = self.tables;
        // 15% remote customer district.
        let (cw, cd) = if self.cfg.warehouses > 1 && self.rng.gen_range(0..100) < 15 {
            (
                (w + 1) % self.cfg.warehouses,
                self.rng.gen_range(0..DISTRICTS),
            )
        } else {
            (w, d)
        };
        let c = self.pick_customer();
        let amount = self.rng.gen_range(100i64..500_000);
        let hk = self.history_seq;
        self.history_seq += 1;
        let mut hist = vec![0u8; 40];
        hist[..8].copy_from_slice(&amount.to_le_bytes());
        TxnProgram {
            name: "TPCC-Payment",
            phases: vec![vec![
                Action::new(
                    t.warehouse,
                    w,
                    vec![Op::Update {
                        table: t.warehouse,
                        key: w,
                        patch: Patch::AddI64 {
                            offset: layout::W_YTD,
                            delta: amount,
                        },
                    }],
                ),
                Action::new(
                    t.district,
                    keys::district(w, d),
                    vec![Op::Update {
                        table: t.district,
                        key: keys::district(w, d),
                        patch: Patch::AddI64 {
                            offset: layout::D_YTD,
                            delta: amount,
                        },
                    }],
                ),
                Action::new(
                    t.customer,
                    keys::customer(cw, cd, c),
                    vec![
                        Op::Update {
                            table: t.customer,
                            key: keys::customer(cw, cd, c),
                            patch: Patch::AddI64 {
                                offset: layout::C_BALANCE,
                                delta: -amount,
                            },
                        },
                        Op::Update {
                            table: t.customer,
                            key: keys::customer(cw, cd, c),
                            patch: Patch::AddI64 {
                                offset: layout::C_PAYMENT_CNT,
                                delta: 1,
                            },
                        },
                    ],
                ),
                Action::new(
                    t.history,
                    hk,
                    vec![Op::Insert {
                        table: t.history,
                        key: hk,
                        record: hist,
                    }],
                ),
            ]],
            abort_on_missing_read: true,
        }
    }

    /// OrderStatus (read-only).
    pub fn order_status(&mut self, w: i64, d: i64) -> TxnProgram {
        let t = self.tables;
        let c = self.pick_customer();
        let (o_id, ol_cnt) = self.districts[self.district_index(w, d)].last_order[c as usize];
        let mut ops = vec![Op::Read {
            table: t.customer,
            key: keys::customer(w, d, c),
        }];
        let mut phases = vec![vec![Action::new(
            t.customer,
            keys::customer(w, d, c),
            std::mem::take(&mut ops),
        )]];
        if o_id > 0 {
            let ok = keys::order(w, d, o_id);
            phases.push(vec![Action::new(
                t.order,
                ok,
                vec![
                    Op::Read {
                        table: t.order,
                        key: ok,
                    },
                    Op::ReadRange {
                        table: t.orderline,
                        lo: keys::orderline(ok, 0),
                        hi: keys::orderline(ok, ol_cnt.max(1)),
                        limit: 16,
                    },
                ],
            )]);
        }
        TxnProgram {
            name: "TPCC-OrderStatus",
            phases,
            abort_on_missing_read: false,
        }
    }

    /// Delivery: deliver the oldest undelivered order in every district.
    pub fn delivery(&mut self, w: i64) -> TxnProgram {
        let t = self.tables;
        let carrier: u8 = self.rng.gen_range(1..=10);
        let mut phase = Vec::new();
        for d in 0..DISTRICTS {
            let idx = self.district_index(w, d);
            let Some((o_id, c, ol_cnt)) = self.districts[idx].undelivered.pop_front() else {
                continue; // spec: skipped delivery
            };
            let ok = keys::order(w, d, o_id);
            phase.push(Action::new(
                t.neworder,
                ok,
                vec![Op::Delete {
                    table: t.neworder,
                    key: ok,
                }],
            ));
            phase.push(Action::new(
                t.order,
                ok,
                vec![Op::Update {
                    table: t.order,
                    key: ok,
                    patch: Patch::Splice {
                        offset: layout::O_CARRIER,
                        bytes: vec![carrier],
                    },
                }],
            ));
            let mut ol_ops = Vec::new();
            for line in 0..ol_cnt {
                ol_ops.push(Op::Update {
                    table: t.orderline,
                    key: keys::orderline(ok, line),
                    patch: Patch::AddI64 {
                        offset: layout::OL_DELIVERY_D,
                        delta: 1,
                    },
                });
            }
            phase.push(Action::new(t.orderline, ok, ol_ops));
            phase.push(Action::new(
                t.customer,
                keys::customer(w, d, c),
                vec![Op::Update {
                    table: t.customer,
                    key: keys::customer(w, d, c),
                    patch: Patch::AddI64 {
                        offset: layout::C_BALANCE,
                        delta: 100,
                    },
                }],
            ));
        }
        if phase.is_empty() {
            // Nothing to deliver anywhere: a trivial read of the warehouse.
            phase.push(Action::new(
                t.warehouse,
                w,
                vec![Op::Read {
                    table: t.warehouse,
                    key: w,
                }],
            ));
        }
        TxnProgram {
            name: "TPCC-Delivery",
            phases: vec![phase],
            abort_on_missing_read: false,
        }
    }

    /// StockLevel: the Figure-3 read-only transaction. Examines the order
    /// lines of the district's last 20 orders and probes the stock row of
    /// every item seen — index probes all the way down.
    pub fn stock_level(&mut self, w: i64, d: i64) -> TxnProgram {
        let t = self.tables;
        let idx = self.district_index(w, d);
        let st = &self.districts[idx];
        let next = st.next_o_id;
        let lo_order = (next - 20).max(1);
        let dk = keys::district(w, d);

        // Distinct items among the last 20 orders (shadow of the OL join).
        let mut items: Vec<i64> = st
            .recent
            .iter()
            .filter(|(o, _, _)| *o >= lo_order)
            .flat_map(|(_, _, its)| its.iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();

        let mut phases = vec![vec![Action::new(
            t.district,
            dk,
            vec![Op::Read {
                table: t.district,
                key: dk,
            }],
        )]];
        let mut phase2 = vec![Action::new(
            t.orderline,
            keys::order(w, d, lo_order),
            vec![Op::ReadRange {
                table: t.orderline,
                lo: keys::orderline(keys::order(w, d, lo_order), 0),
                hi: keys::orderline(keys::order(w, d, next), 0),
                limit: 400,
            }],
        )];
        // The stock probes: one per distinct item, plus the counting logic.
        let mut stock_ops: Vec<Op> = items
            .iter()
            .map(|&i| Op::Read {
                table: t.stock,
                key: keys::stock(w, i),
            })
            .collect();
        stock_ops.push(Op::Compute {
            instructions: 20 * items.len() as u64 + 100,
        });
        phase2.push(Action::new(t.stock, keys::stock(w, 1), stock_ops));
        phases.push(phase2);

        TxnProgram {
            name: "TPCC-StockLevel",
            phases,
            abort_on_missing_read: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_core::config::EngineConfig;
    use bionic_sim::SimTime;

    fn setup() -> (Engine, TpccGenerator) {
        let cfg = TpccConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let (_, g) = load(&mut e, &cfg);
        (e, g)
    }

    #[test]
    fn load_populates_the_schema() {
        let (e, _) = setup();
        assert_eq!(e.row_count(0), 1, "warehouses");
        assert_eq!(e.row_count(1), 10, "districts");
        assert_eq!(e.row_count(2), 600, "customers");
        assert_eq!(e.row_count(7), 1000, "items");
        assert_eq!(e.row_count(8), 1000, "stock");
        assert_eq!(e.row_count(4), 300, "orders");
        let no = e.row_count(5);
        assert_eq!(no, 90, "30% of 300 orders undelivered");
        assert!(e.row_count(6) > 1000, "orderlines");
    }

    #[test]
    fn new_order_commits_and_grows_orders() {
        let (mut e, mut g) = setup();
        let before = e.row_count(4);
        let mut at = SimTime::ZERO;
        let mut committed = 0;
        for _ in 0..50 {
            let prog = g.new_order(0, 1);
            if e.submit(&prog, at).is_committed() {
                committed += 1;
            }
            at += SimTime::from_us(20.0);
        }
        assert!(committed >= 45, "~1% intentional aborts: {committed}");
        assert_eq!(e.row_count(4), before + committed);
    }

    #[test]
    fn new_order_rollback_rate_is_about_one_percent() {
        let (mut e, mut g) = setup();
        let mut at = SimTime::ZERO;
        let n = 1500;
        for _ in 0..n {
            let prog = g.new_order(0, 0);
            e.submit(&prog, at);
            at += SimTime::from_us(20.0);
        }
        let rate = e.stats.aborted as f64 / n as f64;
        assert!(rate > 0.001 && rate < 0.03, "abort rate={rate}");
    }

    #[test]
    fn payment_moves_money() {
        let (mut e, mut g) = setup();
        let prog = g.payment(0, 3);
        assert!(e.submit(&prog, SimTime::ZERO).is_committed());
        let w = e.read_row(0, 0).unwrap();
        let ytd = i64::from_le_bytes(w[8..16].try_into().unwrap());
        assert!(ytd > 0, "warehouse ytd={ytd}");
        assert_eq!(e.row_count(3), 1, "history row inserted");
    }

    #[test]
    fn delivery_drains_new_orders() {
        let (mut e, mut g) = setup();
        let before = e.row_count(5);
        let prog = g.delivery(0);
        assert!(e.submit(&prog, SimTime::ZERO).is_committed());
        assert_eq!(e.row_count(5), before - 10, "one per district");
    }

    #[test]
    fn stock_level_is_read_only_and_commits() {
        let (mut e, mut g) = setup();
        let prog = g.stock_level(0, 2);
        assert!(!prog
            .phases
            .iter()
            .flatten()
            .flat_map(|a| a.ops.iter())
            .any(bionic_core::ops::Op::is_write));
        assert!(e.submit(&prog, SimTime::ZERO).is_committed());
        // Read-only: nothing logged.
        assert_eq!(e.log().tail_lsn(), 0);
    }

    #[test]
    fn stock_level_is_index_bound() {
        use bionic_core::Category;
        let (mut e, mut g) = setup();
        let mut at = SimTime::ZERO;
        for d in 0..DISTRICTS {
            let prog = g.stock_level(0, d);
            e.submit(&prog, at);
            at += SimTime::from_us(100.0);
        }
        // §5.3: 40%+ of StockLevel time goes to index traversal.
        let frac = e.breakdown.fraction(Category::Btree);
        assert!(frac > 0.30, "btree fraction={frac}");
    }

    #[test]
    fn full_mix_runs_clean() {
        let (mut e, mut g) = setup();
        let mut at = SimTime::ZERO;
        for _ in 0..500 {
            let (_, prog) = g.next();
            e.submit(&prog, at);
            at += SimTime::from_us(50.0);
        }
        assert_eq!(e.stats.submitted, 500);
        let commit_rate = e.stats.committed as f64 / 500.0;
        assert!(commit_rate > 0.95, "commit rate={commit_rate}");
    }

    #[test]
    fn mix_matches_spec() {
        let (_, mut g) = setup();
        let mut counts = std::collections::HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            *counts.entry(g.next_type()).or_insert(0u32) += 1;
        }
        let pct = |t: TpccTxn| 100.0 * counts[&t] as f64 / n as f64;
        assert!((pct(TpccTxn::NewOrder) - 45.0).abs() < 1.5);
        assert!((pct(TpccTxn::Payment) - 43.0).abs() < 1.5);
        assert!((pct(TpccTxn::StockLevel) - 4.0).abs() < 0.5);
    }

    #[test]
    fn nurand_skews_toward_a_hot_set() {
        let (_, mut g) = setup();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.pick_item()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().unwrap();
        let avg = 20_000 / 1000;
        assert!(*max > 2 * avg, "max={max} avg={avg}");
    }
}
