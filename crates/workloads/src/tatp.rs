//! The TATP (Telecom Application Transaction Processing) benchmark.
//!
//! TATP is the paper's update-heavy exhibit: Figure 3's left bar profiles
//! **UpdateSubscriberData**. The implementation follows the public TATP
//! specification: four tables keyed by subscriber id, the standard seven
//! transaction types in the standard 35/10/35/2/14/2/2 mix, non-uniform
//! subscriber selection, and the spec's intentional failure modes
//! (UpdateSubscriberData fails when the chosen special-facility row does not
//! exist — ≈37.5 % of attempts — which exercises the abort/rollback path).
//!
//! Composite keys are packed into `i64`: see [`keys`].

use bionic_core::engine::Engine;
use bionic_core::ops::{Action, Op, Patch, TxnProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Key packing for TATP's composite primary keys.
pub mod keys {
    /// ACCESS_INFO key: `(s_id, ai_type 1..=4)`.
    pub fn access_info(s_id: i64, ai_type: i64) -> i64 {
        s_id * 4 + (ai_type - 1)
    }

    /// SPECIAL_FACILITY key: `(s_id, sf_type 1..=4)`.
    pub fn special_facility(s_id: i64, sf_type: i64) -> i64 {
        s_id * 4 + (sf_type - 1)
    }

    /// CALL_FORWARDING key: `(s_id, sf_type 1..=4, start_time 0|8|16)`.
    pub fn call_forwarding(s_id: i64, sf_type: i64, start_time: i64) -> i64 {
        special_facility(s_id, sf_type) * 3 + start_time / 8
    }
}

/// Record-layout offsets (bytes, relative to the full record image whose
/// first 8 bytes are the packed key).
pub mod layout {
    /// SUBSCRIBER.bit_1 (one byte of the bit fields).
    pub const SUB_BIT_1: usize = 8;
    /// SUBSCRIBER.vlr_location (u32 stored as 8-byte field).
    pub const SUB_VLR_LOCATION: usize = 24;
    /// SUBSCRIBER.sub_nbr (the 15-digit number, stored as its numeric
    /// value; indexed by the table's secondary index).
    pub const SUB_NBR: usize = 40;
    /// SUBSCRIBER record body length (spec: ~10 bit, 10 hex, 10 byte2
    /// fields plus locations; we store them packed).
    pub const SUB_BODY: usize = 60;
    /// SPECIAL_FACILITY.data_a.
    pub const SF_DATA_A: usize = 10;
    /// SPECIAL_FACILITY body length.
    pub const SF_BODY: usize = 16;
    /// ACCESS_INFO body length (data1-4, data5, data6).
    pub const AI_BODY: usize = 16;
    /// CALL_FORWARDING body length (end_time + numberx).
    pub const CF_BODY: usize = 24;
}

/// TATP table ids within the engine, in creation order.
#[derive(Debug, Clone, Copy)]
pub struct TatpTables {
    /// SUBSCRIBER.
    pub subscriber: u32,
    /// ACCESS_INFO.
    pub access_info: u32,
    /// SPECIAL_FACILITY.
    pub special_facility: u32,
    /// CALL_FORWARDING.
    pub call_forwarding: u32,
}

/// TATP configuration.
#[derive(Debug, Clone)]
pub struct TatpConfig {
    /// Subscriber population (spec default 100k; tests use less).
    pub subscribers: i64,
    /// RNG seed for load + generation.
    pub seed: u64,
}

impl Default for TatpConfig {
    fn default() -> Self {
        TatpConfig {
            subscribers: 100_000,
            seed: 0x7A79,
        }
    }
}

impl TatpConfig {
    /// A small population for fast tests.
    pub fn small() -> Self {
        TatpConfig {
            subscribers: 2_000,
            ..Default::default()
        }
    }
}

/// The seven TATP transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TatpTxn {
    /// Read one subscriber row (35 %).
    GetSubscriberData,
    /// Read an active call-forwarding destination (10 %).
    GetNewDestination,
    /// Read one access-info row (35 %).
    GetAccessData,
    /// Update subscriber bit + special-facility data (2 %) — Figure 3 left.
    UpdateSubscriberData,
    /// Update subscriber vlr_location (14 %).
    UpdateLocation,
    /// Insert a call-forwarding row (2 %).
    InsertCallForwarding,
    /// Delete a call-forwarding row (2 %).
    DeleteCallForwarding,
}

impl TatpTxn {
    /// The spec mix as cumulative percentage thresholds.
    pub const MIX: [(TatpTxn, u32); 7] = [
        (TatpTxn::GetSubscriberData, 35),
        (TatpTxn::GetNewDestination, 45),
        (TatpTxn::GetAccessData, 80),
        (TatpTxn::UpdateSubscriberData, 82),
        (TatpTxn::UpdateLocation, 96),
        (TatpTxn::InsertCallForwarding, 98),
        (TatpTxn::DeleteCallForwarding, 100),
    ];

    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            TatpTxn::GetSubscriberData => "GetSubscriberData",
            TatpTxn::GetNewDestination => "GetNewDestination",
            TatpTxn::GetAccessData => "GetAccessData",
            TatpTxn::UpdateSubscriberData => "UpdateSubscriberData",
            TatpTxn::UpdateLocation => "UpdateLocation",
            TatpTxn::InsertCallForwarding => "InsertCallForwarding",
            TatpTxn::DeleteCallForwarding => "DeleteCallForwarding",
        }
    }
}

/// The sub_nbr assigned to a subscriber: a fixed permutation of s_id (the
/// spec's zero-padded digit string, folded to a number).
pub fn sub_nbr(s_id: i64) -> i64 {
    (s_id.wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as i64)) & i64::MAX
}

/// Load the TATP schema and population into an engine.
pub fn load(engine: &mut Engine, cfg: &TatpConfig) -> TatpTables {
    let tables = TatpTables {
        subscriber: engine.create_table_with_secondary("SUBSCRIBER", layout::SUB_NBR),
        access_info: engine.create_table("ACCESS_INFO"),
        special_facility: engine.create_table("SPECIAL_FACILITY"),
        call_forwarding: engine.create_table("CALL_FORWARDING"),
    };
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for s_id in 1..=cfg.subscribers {
        let mut body = vec![0u8; layout::SUB_BODY];
        rng.fill(&mut body[..]);
        body[layout::SUB_VLR_LOCATION - 8..layout::SUB_VLR_LOCATION]
            .copy_from_slice(&rng.gen_range(0i64..1 << 31).to_le_bytes());
        // The record image is key(8) || body, so body offsets are -8.
        body[layout::SUB_NBR - 8..layout::SUB_NBR].copy_from_slice(&sub_nbr(s_id).to_le_bytes());
        engine.load(tables.subscriber, s_id, &body);

        // 1..=4 ACCESS_INFO rows with distinct ai_types.
        let n_ai = rng.gen_range(1..=4);
        for ai_type in 1..=n_ai {
            let mut body = vec![0u8; layout::AI_BODY];
            rng.fill(&mut body[..]);
            engine.load(tables.access_info, keys::access_info(s_id, ai_type), &body);
        }

        // 1..=4 SPECIAL_FACILITY rows; for each, 0..=3 CALL_FORWARDING rows.
        let n_sf = rng.gen_range(1..=4);
        for sf_type in 1..=n_sf {
            let mut body = vec![0u8; layout::SF_BODY];
            rng.fill(&mut body[..]);
            body[0] = u8::from(rng.gen_bool(0.85)); // is_active
            engine.load(
                tables.special_facility,
                keys::special_facility(s_id, sf_type),
                &body,
            );
            let n_cf = rng.gen_range(0..=3);
            for cf in 0..n_cf {
                let start_time = cf * 8;
                let mut body = vec![0u8; layout::CF_BODY];
                rng.fill(&mut body[..]);
                body[0] = (start_time + 8) as u8; // end_time
                engine.load(
                    tables.call_forwarding,
                    keys::call_forwarding(s_id, sf_type, start_time),
                    &body,
                );
            }
        }
    }
    engine.finish_load();
    tables
}

/// Generates the TATP transaction stream.
pub struct TatpGenerator {
    cfg: TatpConfig,
    tables: TatpTables,
    rng: SmallRng,
    /// The non-uniformity mask `A` (65535 for populations ≤ 1 M).
    a: i64,
    /// One reusable program skeleton per transaction type, refilled in
    /// place by [`TatpGenerator::next_ref`] — the zero-allocation stream.
    skeletons: Vec<TxnProgram>,
    /// Type drawn by the last [`TatpGenerator::next_label`], consumed by
    /// the paired [`TatpGenerator::fill`].
    pending: TatpTxn,
}

impl TatpGenerator {
    /// Create a generator over a loaded schema.
    pub fn new(cfg: TatpConfig, tables: TatpTables) -> Self {
        let a = if cfg.subscribers <= 1_000_000 {
            65_535
        } else {
            1_048_575
        };
        TatpGenerator {
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xDEAD),
            cfg,
            tables,
            a,
            skeletons: (0..TatpTxn::MIX.len())
                .map(|_| TxnProgram::default())
                .collect(),
            pending: TatpTxn::GetSubscriberData,
        }
    }

    /// Skeleton-pool slot for a transaction type.
    fn slot(t: TatpTxn) -> usize {
        match t {
            TatpTxn::GetSubscriberData => 0,
            TatpTxn::GetNewDestination => 1,
            TatpTxn::GetAccessData => 2,
            TatpTxn::UpdateSubscriberData => 3,
            TatpTxn::UpdateLocation => 4,
            TatpTxn::InsertCallForwarding => 5,
            TatpTxn::DeleteCallForwarding => 6,
        }
    }

    /// The spec's non-uniform subscriber id: `(rnd(0,A) | rnd(1,P)) % P + 1`.
    pub fn subscriber_id(&mut self) -> i64 {
        let p = self.cfg.subscribers;
        let x = self.rng.gen_range(0..=self.a);
        let y = self.rng.gen_range(1..=p);
        ((x | y) % p) + 1
    }

    /// Pick the next transaction type from the official mix.
    pub fn next_type(&mut self) -> TatpTxn {
        let roll = self.rng.gen_range(0..100u32);
        for (t, hi) in TatpTxn::MIX {
            if roll < hi {
                return t;
            }
        }
        unreachable!("mix covers 0..100")
    }

    /// Generate the next transaction program.
    #[allow(clippy::should_implement_trait)] // fallible-free, tuple-returning
    pub fn next(&mut self) -> (TatpTxn, TxnProgram) {
        let t = self.next_type();
        (t, self.program(t))
    }

    /// Generate the next transaction into the type's reusable skeleton and
    /// hand out a reference — the zero-allocation equivalent of
    /// [`TatpGenerator::next`]. The RNG draw sequence is identical, so the
    /// stream of programs matches `next` byte for byte.
    pub fn next_ref(&mut self) -> (TatpTxn, &TxnProgram) {
        let t = self.next_type();
        let i = Self::slot(t);
        let mut prog = std::mem::take(&mut self.skeletons[i]);
        self.program_into(t, &mut prog);
        self.skeletons[i] = prog;
        (t, &self.skeletons[i])
    }

    /// Draw the next transaction type, remembering it for the paired
    /// [`TatpGenerator::fill`] call (the two-step protocol pooled drivers
    /// use: the label picks the pool slot, then `fill` writes into it).
    pub fn next_label(&mut self) -> &'static str {
        self.pending = self.next_type();
        self.pending.label()
    }

    /// Fill `prog` with the transaction drawn by the last
    /// [`TatpGenerator::next_label`].
    pub fn fill(&mut self, prog: &mut TxnProgram) {
        self.program_into(self.pending, prog);
    }

    /// Build a program of a specific type (used directly by Figure 3).
    pub fn program(&mut self, t: TatpTxn) -> TxnProgram {
        let mut prog = TxnProgram::default();
        self.program_into(t, &mut prog);
        prog
    }

    /// Build a program of a specific type into `prog`. When `prog` already
    /// holds this type's program (same `name`) — a pool slot filled by an
    /// earlier call — it is refilled field by field with no allocation;
    /// any other value of `prog` (e.g. [`TxnProgram::default`]) is replaced
    /// by a freshly built program. Both paths draw from the RNG in exactly
    /// the same order, so the generated stream is independent of which one
    /// runs.
    pub fn program_into(&mut self, t: TatpTxn, prog: &mut TxnProgram) {
        let s_id = self.subscriber_id();
        match t {
            TatpTxn::GetSubscriberData => {
                if prog.name == "TATP-GetSubscriberData" {
                    let a = &mut prog.phases[0][0];
                    a.route_key = s_id;
                    let Op::Read { key, .. } = &mut a.ops[0] else {
                        unreachable!()
                    };
                    *key = s_id;
                } else {
                    *prog = TxnProgram {
                        name: "TATP-GetSubscriberData",
                        phases: vec![vec![Action::new(
                            self.tables.subscriber,
                            s_id,
                            vec![Op::Read {
                                table: self.tables.subscriber,
                                key: s_id,
                            }],
                        )]],
                        abort_on_missing_read: true,
                    };
                }
            }
            TatpTxn::GetAccessData => {
                let ai_type = self.rng.gen_range(1..=4);
                let key = keys::access_info(s_id, ai_type);
                if prog.name == "TATP-GetAccessData" {
                    let a = &mut prog.phases[0][0];
                    a.route_key = key;
                    let Op::Read { key: k, .. } = &mut a.ops[0] else {
                        unreachable!()
                    };
                    *k = key;
                } else {
                    *prog = TxnProgram {
                        name: "TATP-GetAccessData",
                        phases: vec![vec![Action::new(
                            self.tables.access_info,
                            key,
                            vec![Op::Read {
                                table: self.tables.access_info,
                                key,
                            }],
                        )]],
                        // Spec: fails (gracefully) when the ai row is absent.
                        abort_on_missing_read: false,
                    };
                }
            }
            TatpTxn::GetNewDestination => {
                let sf_type = self.rng.gen_range(1..=4);
                let start_time = self.rng.gen_range(0..3) * 8;
                let sf_key = keys::special_facility(s_id, sf_type);
                let cf_key = keys::call_forwarding(s_id, sf_type, start_time);
                if prog.name == "TATP-GetNewDestination" {
                    let phase = &mut prog.phases[0];
                    phase[0].route_key = sf_key;
                    let Op::Read { key, .. } = &mut phase[0].ops[0] else {
                        unreachable!()
                    };
                    *key = sf_key;
                    phase[1].route_key = cf_key;
                    let Op::Read { key, .. } = &mut phase[1].ops[0] else {
                        unreachable!()
                    };
                    *key = cf_key;
                } else {
                    *prog = TxnProgram {
                        name: "TATP-GetNewDestination",
                        phases: vec![vec![
                            Action::new(
                                self.tables.special_facility,
                                sf_key,
                                vec![Op::Read {
                                    table: self.tables.special_facility,
                                    key: sf_key,
                                }],
                            ),
                            Action::new(
                                self.tables.call_forwarding,
                                cf_key,
                                vec![Op::Read {
                                    table: self.tables.call_forwarding,
                                    key: cf_key,
                                }],
                            ),
                        ]],
                        abort_on_missing_read: false,
                    };
                }
            }
            TatpTxn::UpdateSubscriberData => {
                let sf_type = self.rng.gen_range(1..=4);
                let bit: u8 = self.rng.gen_range(0..=1);
                let data_a: u8 = self.rng.gen();
                let sf_key = keys::special_facility(s_id, sf_type);
                if prog.name == "TATP-UpdateSubscriberData" {
                    let phase = &mut prog.phases[0];
                    phase[0].route_key = s_id;
                    let Op::Update {
                        key,
                        patch: Patch::Splice { bytes, .. },
                        ..
                    } = &mut phase[0].ops[0]
                    else {
                        unreachable!()
                    };
                    *key = s_id;
                    bytes[0] = bit;
                    phase[1].route_key = sf_key;
                    let Op::Update {
                        key,
                        patch: Patch::Splice { bytes, .. },
                        ..
                    } = &mut phase[1].ops[0]
                    else {
                        unreachable!()
                    };
                    *key = sf_key;
                    bytes[0] = data_a;
                } else {
                    *prog = TxnProgram {
                        name: "TATP-UpdateSubscriberData",
                        phases: vec![vec![
                            Action::new(
                                self.tables.subscriber,
                                s_id,
                                vec![Op::Update {
                                    table: self.tables.subscriber,
                                    key: s_id,
                                    patch: Patch::Splice {
                                        offset: layout::SUB_BIT_1,
                                        bytes: vec![bit],
                                    },
                                }],
                            ),
                            // Fails (≈37.5 %) when this sf_type doesn't
                            // exist: the spec's built-in abort driver.
                            Action::new(
                                self.tables.special_facility,
                                sf_key,
                                vec![Op::Update {
                                    table: self.tables.special_facility,
                                    key: sf_key,
                                    patch: Patch::Splice {
                                        offset: layout::SF_DATA_A,
                                        bytes: vec![data_a],
                                    },
                                }],
                            ),
                        ]],
                        abort_on_missing_read: true,
                    };
                }
            }
            TatpTxn::UpdateLocation => {
                // Spec: the subscriber is identified BY sub_nbr — one
                // secondary probe, then the update.
                let loc: i64 = self.rng.gen_range(0..1 << 31);
                if prog.name == "TATP-UpdateLocation" {
                    let a = &mut prog.phases[0][0];
                    a.route_key = s_id;
                    let Op::SecondaryRead { skey, .. } = &mut a.ops[0] else {
                        unreachable!()
                    };
                    *skey = sub_nbr(s_id);
                    let Op::Update {
                        key,
                        patch: Patch::Splice { bytes, .. },
                        ..
                    } = &mut a.ops[1]
                    else {
                        unreachable!()
                    };
                    *key = s_id;
                    bytes.copy_from_slice(&loc.to_le_bytes());
                } else {
                    *prog = TxnProgram {
                        name: "TATP-UpdateLocation",
                        phases: vec![vec![Action::new(
                            self.tables.subscriber,
                            s_id,
                            vec![
                                Op::SecondaryRead {
                                    table: self.tables.subscriber,
                                    skey: sub_nbr(s_id),
                                },
                                Op::Update {
                                    table: self.tables.subscriber,
                                    key: s_id,
                                    patch: Patch::Splice {
                                        offset: layout::SUB_VLR_LOCATION,
                                        bytes: loc.to_le_bytes().to_vec(),
                                    },
                                },
                            ],
                        )]],
                        abort_on_missing_read: true,
                    };
                }
            }
            TatpTxn::InsertCallForwarding => {
                let sf_type = self.rng.gen_range(1..=4);
                let start_time = self.rng.gen_range(0..3) * 8;
                let sf_key = keys::special_facility(s_id, sf_type);
                let cf_key = keys::call_forwarding(s_id, sf_type, start_time);
                if prog.name == "TATP-InsertCallForwarding" {
                    let phase = &mut prog.phases[0];
                    phase[0].route_key = s_id;
                    let Op::SecondaryRead { skey, .. } = &mut phase[0].ops[0] else {
                        unreachable!()
                    };
                    *skey = sub_nbr(s_id);
                    phase[1].route_key = sf_key;
                    let Op::Read { key, .. } = &mut phase[1].ops[0] else {
                        unreachable!()
                    };
                    *key = sf_key;
                    let ins = &mut prog.phases[1][0];
                    ins.route_key = cf_key;
                    let Op::Insert { key, record, .. } = &mut ins.ops[0] else {
                        unreachable!()
                    };
                    *key = cf_key;
                    self.rng.fill(&mut record[..]);
                } else {
                    let mut body = vec![0u8; layout::CF_BODY];
                    self.rng.fill(&mut body[..]);
                    *prog = TxnProgram {
                        name: "TATP-InsertCallForwarding",
                        phases: vec![
                            vec![
                                Action::new(
                                    self.tables.subscriber,
                                    s_id,
                                    vec![Op::SecondaryRead {
                                        table: self.tables.subscriber,
                                        skey: sub_nbr(s_id),
                                    }],
                                ),
                                Action::new(
                                    self.tables.special_facility,
                                    sf_key,
                                    vec![Op::Read {
                                        table: self.tables.special_facility,
                                        key: sf_key,
                                    }],
                                ),
                            ],
                            vec![Action::new(
                                self.tables.call_forwarding,
                                cf_key,
                                vec![Op::Insert {
                                    table: self.tables.call_forwarding,
                                    key: cf_key,
                                    record: body,
                                }],
                            )],
                        ],
                        // Fails when the SF row is missing or the CF exists.
                        abort_on_missing_read: true,
                    };
                }
            }
            TatpTxn::DeleteCallForwarding => {
                let sf_type = self.rng.gen_range(1..=4);
                let start_time = self.rng.gen_range(0..3) * 8;
                let cf_key = keys::call_forwarding(s_id, sf_type, start_time);
                if prog.name == "TATP-DeleteCallForwarding" {
                    let a = &mut prog.phases[0][0];
                    a.route_key = cf_key;
                    let Op::Delete { key, .. } = &mut a.ops[0] else {
                        unreachable!()
                    };
                    *key = cf_key;
                } else {
                    *prog = TxnProgram {
                        name: "TATP-DeleteCallForwarding",
                        phases: vec![vec![Action::new(
                            self.tables.call_forwarding,
                            cf_key,
                            vec![Op::Delete {
                                table: self.tables.call_forwarding,
                                key: cf_key,
                            }],
                        )]],
                        abort_on_missing_read: true,
                    };
                }
            }
        }
    }
}

impl crate::driver::PooledSource for TatpGenerator {
    fn next_label(&mut self) -> &'static str {
        TatpGenerator::next_label(self)
    }

    fn fill(&mut self, prog: &mut TxnProgram) {
        TatpGenerator::fill(self, prog);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_core::config::EngineConfig;

    fn setup() -> (Engine, TatpGenerator) {
        let cfg = TatpConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let tables = load(&mut e, &cfg);
        let g = TatpGenerator::new(cfg, tables);
        (e, g)
    }

    #[test]
    fn load_populates_all_tables() {
        let (e, _) = setup();
        assert_eq!(e.row_count(0), 2000, "subscribers");
        let ai = e.row_count(1);
        assert!((2000..=8000).contains(&ai), "access_info={ai}");
        let sf = e.row_count(2);
        assert!((2000..=8000).contains(&sf), "special_facility={sf}");
        assert!(e.row_count(3) > 0, "some call forwarding rows");
    }

    #[test]
    fn subscriber_ids_are_in_range_and_nonuniform() {
        let (_, mut g) = setup();
        let mut counts = vec![0u32; 2001];
        for _ in 0..20_000 {
            let id = g.subscriber_id();
            assert!((1..=2000).contains(&id));
            counts[id as usize] += 1;
        }
        // The OR-mask skews low bits: distribution must differ measurably
        // from uniform (chi-square-lite: max/min bucket ratio).
        let hot = counts.iter().skip(1).max().unwrap();
        let avg = 20_000 / 2000;
        assert!(*hot > 3 * avg, "hot={hot} avg={avg}");
    }

    #[test]
    fn mix_matches_spec_within_tolerance() {
        let (_, mut g) = setup();
        let mut counts = std::collections::HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            *counts.entry(g.next_type()).or_insert(0u32) += 1;
        }
        let pct = |t: TatpTxn| 100.0 * counts[&t] as f64 / n as f64;
        assert!((pct(TatpTxn::GetSubscriberData) - 35.0).abs() < 1.5);
        assert!((pct(TatpTxn::GetAccessData) - 35.0).abs() < 1.5);
        assert!((pct(TatpTxn::UpdateLocation) - 14.0).abs() < 1.0);
        assert!((pct(TatpTxn::GetNewDestination) - 10.0).abs() < 1.0);
        assert!((pct(TatpTxn::UpdateSubscriberData) - 2.0).abs() < 0.5);
    }

    #[test]
    fn update_subscriber_data_fails_at_spec_rate() {
        let (mut e, mut g) = setup();
        let mut at = bionic_sim::SimTime::ZERO;
        let n = 1000;
        for _ in 0..n {
            let prog = g.program(TatpTxn::UpdateSubscriberData);
            e.submit(&prog, at);
            at += bionic_sim::SimTime::from_us(5.0);
        }
        let abort_rate = e.stats.aborted as f64 / n as f64;
        // P(sf_type present) = E[n_sf]/4 = 62.5% -> ~37.5% abort.
        assert!((abort_rate - 0.375).abs() < 0.06, "abort_rate={abort_rate}");
    }

    #[test]
    fn full_mix_runs_clean() {
        let (mut e, mut g) = setup();
        let mut at = bionic_sim::SimTime::ZERO;
        for _ in 0..2000 {
            let (_, prog) = g.next();
            e.submit(&prog, at);
            at += bionic_sim::SimTime::from_us(5.0);
        }
        assert_eq!(e.stats.submitted, 2000);
        assert!(e.stats.committed > 1500, "committed={}", e.stats.committed);
        // Reads dominate the mix, so aborts stay bounded.
        assert!(e.stats.aborted < 500, "aborted={}", e.stats.aborted);
    }

    #[test]
    fn refilled_stream_matches_allocating_stream() {
        // Twin generators, same seed: the pooled `next_ref` path (refill in
        // place) must emit exactly the programs `next` (fresh build) does —
        // same types, same names, same keys, same record bytes — over
        // enough draws to refill every skeleton many times.
        let cfg = TatpConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let tables = load(&mut e, &cfg);
        let mut ga = TatpGenerator::new(cfg.clone(), tables);
        let mut gb = TatpGenerator::new(cfg, tables);
        for i in 0..5_000 {
            let (ta, pa) = ga.next();
            let (tb, pb) = gb.next_ref();
            assert_eq!(ta, tb, "type diverged at draw {i}");
            assert_eq!(&pa, pb, "program diverged at draw {i}");
        }
    }

    #[test]
    fn label_fill_protocol_matches_next() {
        let cfg = TatpConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let tables = load(&mut e, &cfg);
        let mut ga = TatpGenerator::new(cfg.clone(), tables);
        let mut gb = TatpGenerator::new(cfg, tables);
        let mut slot = TxnProgram::default();
        for i in 0..5_000 {
            let (ta, pa) = ga.next();
            let label = gb.next_label();
            gb.fill(&mut slot);
            assert_eq!(ta.label(), label, "label diverged at draw {i}");
            assert_eq!(pa, slot, "program diverged at draw {i}");
        }
    }

    #[test]
    fn insert_then_delete_call_forwarding_round_trips() {
        let (mut e, _) = setup();
        // Hand-roll a CF insert+delete pair on a known-present subscriber.
        let s_id = 1;
        let cf_key = keys::call_forwarding(s_id, 1, 0);
        // Clean slate: remove if the loader created it.
        let del = TxnProgram::single_phase(
            "cleanup",
            vec![Action::new(
                3,
                cf_key,
                vec![Op::Delete {
                    table: 3,
                    key: cf_key,
                }],
            )],
        );
        e.submit(&del, bionic_sim::SimTime::ZERO);
        let before = e.row_count(3);
        let ins = TxnProgram::single_phase(
            "ins",
            vec![Action::new(
                3,
                cf_key,
                vec![Op::Insert {
                    table: 3,
                    key: cf_key,
                    record: vec![0u8; layout::CF_BODY],
                }],
            )],
        );
        assert!(e
            .submit(&ins, bionic_sim::SimTime::from_ms(1.0))
            .is_committed());
        assert_eq!(e.row_count(3), before + 1);
    }
}
