//! Workload driver: runs a transaction stream against an engine and
//! collects the report every experiment prints.

use bionic_core::breakdown::TimeBreakdown;
use bionic_core::engine::Engine;
use bionic_core::ops::TxnProgram;
use bionic_sim::energy::{Energy, EnergyDomain};
use bionic_sim::stats::{Histogram, Summary};
use bionic_sim::time::SimTime;
use std::collections::BTreeMap;

/// Everything a workload run produces.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Transactions submitted.
    pub submitted: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Committed throughput (txn/s of simulated time).
    pub throughput_per_sec: f64,
    /// Commit latency summary.
    pub latency: Summary,
    /// Figure-3 CPU-time breakdown over the run.
    pub breakdown: TimeBreakdown,
    /// Total energy per committed transaction.
    pub joules_per_txn: f64,
    /// Energy by hardware domain.
    pub energy: Vec<(EnergyDomain, Energy)>,
    /// Counts per transaction type.
    pub per_type: BTreeMap<&'static str, u64>,
    /// Latency summary per transaction type (committed and aborted alike).
    pub per_type_latency: BTreeMap<&'static str, Summary>,
}

impl WorkloadReport {
    /// Render a compact human-readable summary.
    pub fn summary_table(&self) -> String {
        let mut out = format!(
            "txns: {} submitted, {} committed, {} aborted\n\
             throughput: {:.0} txn/s   joules/txn: {:.3e}\n\
             latency: {}\n",
            self.submitted,
            self.committed,
            self.aborted,
            self.throughput_per_sec,
            self.joules_per_txn,
            self.latency,
        );
        out.push_str(&self.breakdown.table());
        out
    }
}

/// A transaction source that refills caller-owned program slots — the
/// zero-allocation counterpart of the `FnMut() -> (label, program)`
/// closures [`run`] and [`run_batched`] take. The two-step protocol lets
/// the driver pick a per-label pool slot *before* the program is built:
/// [`PooledSource::next_label`] draws the next transaction's type, and the
/// paired [`PooledSource::fill`] writes that transaction into the chosen
/// slot, reusing its buffers.
pub trait PooledSource {
    /// Draw the next transaction's type; returns its stable label.
    fn next_label(&mut self) -> &'static str;

    /// Build the transaction drawn by the last
    /// [`PooledSource::next_label`] into `prog`.
    fn fill(&mut self, prog: &mut TxnProgram);
}

/// Run `n` transactions drawn from `next`, arriving `inter_arrival` apart
/// (open loop). Measurement state is taken relative to the engine's state
/// at entry, so back-to-back runs on one engine stay comparable.
pub fn run(
    engine: &mut Engine,
    n: u64,
    inter_arrival: SimTime,
    mut next: impl FnMut() -> (&'static str, TxnProgram),
) -> WorkloadReport {
    let breakdown_before = engine.breakdown.clone();
    let energy_before = engine.platform.energy.clone();
    let committed_before = engine.stats.committed;
    let submitted_before = engine.stats.submitted;
    let aborted_before = engine.stats.aborted;

    let mut per_type: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut per_type_hist: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut at = SimTime::ZERO;
    let start_completion = engine.stats.last_completion;
    for _ in 0..n {
        let (label, prog) = next();
        *per_type.entry(label).or_insert(0) += 1;
        let outcome = engine.submit(&prog, start_completion + at);
        per_type_hist
            .entry(label)
            .or_default()
            .record(outcome.latency());
        at += inter_arrival;
    }

    let committed = engine.stats.committed - committed_before;
    let elapsed = engine
        .stats
        .last_completion
        .saturating_sub(start_completion);
    let energy = engine.platform.energy.since(&energy_before);
    WorkloadReport {
        submitted: engine.stats.submitted - submitted_before,
        committed,
        aborted: engine.stats.aborted - aborted_before,
        throughput_per_sec: if elapsed.is_zero() {
            0.0
        } else {
            committed as f64 / elapsed.as_secs()
        },
        latency: engine.stats.latency.summary(),
        breakdown: engine.breakdown.since(&breakdown_before),
        joules_per_txn: if committed == 0 {
            0.0
        } else {
            energy.total().as_j() / committed as f64
        },
        energy: energy.snapshot(),
        per_type,
        per_type_latency: per_type_hist
            .into_iter()
            .map(|(k, h)| (k, h.summary()))
            .collect(),
    }
}

/// Like [`run`], but transactions are handed to the engine in groups of
/// `batch_size` through [`Engine::submit_batch`], so same-table probes
/// within a group share their index descents (PALM-style amortization).
/// Arrival times, commit/abort outcomes, and all functional state match
/// [`run`] exactly; only probe pricing differs. `batch_size == 1`
/// degenerates to per-transaction submission.
pub fn run_batched(
    engine: &mut Engine,
    n: u64,
    inter_arrival: SimTime,
    batch_size: usize,
    mut next: impl FnMut() -> (&'static str, TxnProgram),
) -> WorkloadReport {
    let batch_size = batch_size.max(1);
    let breakdown_before = engine.breakdown.clone();
    let energy_before = engine.platform.energy.clone();
    let committed_before = engine.stats.committed;
    let submitted_before = engine.stats.submitted;
    let aborted_before = engine.stats.aborted;

    let mut per_type: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut per_type_hist: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut at = SimTime::ZERO;
    let start_completion = engine.stats.last_completion;
    let mut remaining = n;
    while remaining > 0 {
        let take = (remaining as usize).min(batch_size);
        let mut labels = Vec::with_capacity(take);
        let mut programs = Vec::with_capacity(take);
        for _ in 0..take {
            let (label, prog) = next();
            *per_type.entry(label).or_insert(0) += 1;
            labels.push(label);
            programs.push(prog);
        }
        let outcomes = engine.submit_batch(&programs, start_completion + at, inter_arrival);
        for (label, outcome) in labels.iter().zip(&outcomes) {
            per_type_hist
                .entry(label)
                .or_default()
                .record(outcome.latency());
        }
        at += inter_arrival * take as u64;
        remaining -= take as u64;
    }

    let committed = engine.stats.committed - committed_before;
    let elapsed = engine
        .stats
        .last_completion
        .saturating_sub(start_completion);
    let energy = engine.platform.energy.since(&energy_before);
    WorkloadReport {
        submitted: engine.stats.submitted - submitted_before,
        committed,
        aborted: engine.stats.aborted - aborted_before,
        throughput_per_sec: if elapsed.is_zero() {
            0.0
        } else {
            committed as f64 / elapsed.as_secs()
        },
        latency: engine.stats.latency.summary(),
        breakdown: engine.breakdown.since(&breakdown_before),
        joules_per_txn: if committed == 0 {
            0.0
        } else {
            energy.total().as_j() / committed as f64
        },
        energy: energy.snapshot(),
        per_type,
        per_type_latency: per_type_hist
            .into_iter()
            .map(|(k, h)| (k, h.summary()))
            .collect(),
    }
}

/// Like [`run_batched`], but the transaction stream comes from a
/// [`PooledSource`] and programs live in driver-owned per-label pools that
/// are refilled in place batch after batch — the steady-state loop
/// allocates nothing per transaction. Arrival times, outcomes, pricing,
/// and the report all match [`run_batched`] over the same stream exactly.
pub fn run_batched_pooled(
    engine: &mut Engine,
    n: u64,
    inter_arrival: SimTime,
    batch_size: usize,
    src: &mut impl PooledSource,
) -> WorkloadReport {
    let batch_size = batch_size.max(1);
    let breakdown_before = engine.breakdown.clone();
    let energy_before = engine.platform.energy.clone();
    let committed_before = engine.stats.committed;
    let submitted_before = engine.stats.submitted;
    let aborted_before = engine.stats.aborted;

    let mut per_type: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut per_type_hist: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    // One program pool per label, each holding up to a batch's worth of
    // reusable slots; `order` maps batch position -> (pool, slot).
    let mut pools: Vec<(&'static str, Vec<TxnProgram>)> = Vec::new();
    let mut used: Vec<usize> = Vec::new();
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(batch_size);
    let mut outcomes = Vec::with_capacity(batch_size);
    let mut at = SimTime::ZERO;
    let start_completion = engine.stats.last_completion;
    let mut remaining = n;
    while remaining > 0 {
        let take = (remaining as usize).min(batch_size);
        order.clear();
        used.iter_mut().for_each(|u| *u = 0);
        for _ in 0..take {
            let label = src.next_label();
            *per_type.entry(label).or_insert(0) += 1;
            let pi = match pools.iter().position(|(l, _)| *l == label) {
                Some(pi) => pi,
                None => {
                    pools.push((label, Vec::new()));
                    used.push(0);
                    pools.len() - 1
                }
            };
            let ki = used[pi];
            used[pi] += 1;
            if pools[pi].1.len() == ki {
                pools[pi].1.push(TxnProgram::default());
            }
            src.fill(&mut pools[pi].1[ki]);
            order.push((pi, ki));
        }
        engine.submit_batch_with(
            take,
            start_completion + at,
            inter_arrival,
            |i| {
                let (pi, ki) = order[i];
                &pools[pi].1[ki]
            },
            &mut outcomes,
        );
        for (k, outcome) in outcomes.iter().enumerate() {
            per_type_hist
                .entry(pools[order[k].0].0)
                .or_default()
                .record(outcome.latency());
        }
        at += inter_arrival * take as u64;
        remaining -= take as u64;
    }

    let committed = engine.stats.committed - committed_before;
    let elapsed = engine
        .stats
        .last_completion
        .saturating_sub(start_completion);
    let energy = engine.platform.energy.since(&energy_before);
    WorkloadReport {
        submitted: engine.stats.submitted - submitted_before,
        committed,
        aborted: engine.stats.aborted - aborted_before,
        throughput_per_sec: if elapsed.is_zero() {
            0.0
        } else {
            committed as f64 / elapsed.as_secs()
        },
        latency: engine.stats.latency.summary(),
        breakdown: engine.breakdown.since(&breakdown_before),
        joules_per_txn: if committed == 0 {
            0.0
        } else {
            energy.total().as_j() / committed as f64
        },
        energy: energy.snapshot(),
        per_type,
        per_type_latency: per_type_hist
            .into_iter()
            .map(|(k, h)| (k, h.summary()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tatp::{self, TatpConfig, TatpGenerator};
    use bionic_core::config::EngineConfig;

    #[test]
    fn driver_reports_are_consistent() {
        let cfg = TatpConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let tables = tatp::load(&mut e, &cfg);
        let mut g = TatpGenerator::new(cfg, tables);
        let report = run(&mut e, 500, SimTime::from_us(5.0), || {
            let (t, p) = g.next();
            (t.label(), p)
        });
        assert_eq!(report.submitted, 500);
        assert_eq!(report.committed + report.aborted, 500);
        assert!(report.throughput_per_sec > 0.0);
        assert!(report.joules_per_txn > 0.0);
        assert_eq!(report.per_type.values().sum::<u64>(), 500);
        assert_eq!(report.per_type.len(), report.per_type_latency.len());
        let total: u64 = report.per_type_latency.values().map(|s| s.count).sum();
        assert_eq!(total, 500);
        let table = report.summary_table();
        assert!(table.contains("throughput"));
        assert!(table.contains("Btree"));
    }

    #[test]
    fn batched_run_matches_outcomes_and_amortizes_probes() {
        let make = || {
            let cfg = TatpConfig::small();
            let mut e = Engine::new(EngineConfig::software().with_agents(8));
            let tables = tatp::load(&mut e, &cfg);
            (e, TatpGenerator::new(cfg, tables))
        };
        let (mut serial, mut gs) = make();
        let rs = run(&mut serial, 600, SimTime::from_us(5.0), || {
            let (t, p) = gs.next();
            (t.label(), p)
        });
        let (mut batched, mut gb) = make();
        let rb = run_batched(&mut batched, 600, SimTime::from_us(5.0), 64, || {
            let (t, p) = gb.next();
            (t.label(), p)
        });
        // Functional behavior is identical: same commit/abort decisions.
        assert_eq!(rs.submitted, rb.submitted);
        assert_eq!(rs.committed, rb.committed);
        assert_eq!(rs.aborted, rb.aborted);
        assert_eq!(rs.per_type, rb.per_type);
        // PALM amortization: strictly fewer index nodes charged per probe.
        let nodes_per_probe =
            |e: &Engine| e.stats.probe_nodes_visited as f64 / e.stats.probes.max(1) as f64;
        assert!(
            nodes_per_probe(&batched) < nodes_per_probe(&serial),
            "batched {:.2} vs serial {:.2}",
            nodes_per_probe(&batched),
            nodes_per_probe(&serial)
        );
    }

    #[test]
    fn pooled_run_is_identical_to_batched_run() {
        let make = || {
            let cfg = TatpConfig::small();
            let mut e = Engine::new(EngineConfig::software().with_agents(8));
            let tables = tatp::load(&mut e, &cfg);
            (e, TatpGenerator::new(cfg, tables))
        };
        let (mut batched, mut gb) = make();
        let rb = run_batched(&mut batched, 600, SimTime::from_us(5.0), 32, || {
            let (t, p) = gb.next();
            (t.label(), p)
        });
        let (mut pooled, mut gp) = make();
        let rp = run_batched_pooled(&mut pooled, 600, SimTime::from_us(5.0), 32, &mut gp);
        // Not just functionally equal — identically priced: the pooled
        // path feeds the very same programs through the very same batch
        // planner, so every derived number matches bit for bit.
        assert_eq!(rb.submitted, rp.submitted);
        assert_eq!(rb.committed, rp.committed);
        assert_eq!(rb.aborted, rp.aborted);
        assert_eq!(rb.per_type, rp.per_type);
        assert_eq!(rb.throughput_per_sec, rp.throughput_per_sec);
        assert_eq!(rb.joules_per_txn, rp.joules_per_txn);
        assert_eq!(batched.stats.probes, pooled.stats.probes);
        assert_eq!(
            batched.stats.probe_nodes_visited,
            pooled.stats.probe_nodes_visited
        );
        assert_eq!(
            rb.per_type_latency.keys().collect::<Vec<_>>(),
            rp.per_type_latency.keys().collect::<Vec<_>>()
        );
        for (k, s) in &rb.per_type_latency {
            assert_eq!(s.count, rp.per_type_latency[k].count, "{k}");
            assert_eq!(s.mean, rp.per_type_latency[k].mean, "{k}");
        }
    }

    #[test]
    fn back_to_back_runs_measure_independently() {
        let cfg = TatpConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let tables = tatp::load(&mut e, &cfg);
        let mut g = TatpGenerator::new(cfg, tables);
        let r1 = run(&mut e, 200, SimTime::from_us(5.0), || {
            let (t, p) = g.next();
            (t.label(), p)
        });
        let r2 = run(&mut e, 200, SimTime::from_us(5.0), || {
            let (t, p) = g.next();
            (t.label(), p)
        });
        assert_eq!(r1.submitted, 200);
        assert_eq!(r2.submitted, 200);
        // Second run's breakdown is its own, not cumulative.
        let total1 = r1.breakdown.total();
        let total2 = r2.breakdown.total();
        assert!(total2 < total1 * 2u64);
    }
}
