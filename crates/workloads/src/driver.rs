//! Workload driver: runs a transaction stream against an engine and
//! collects the report every experiment prints.

use bionic_core::breakdown::TimeBreakdown;
use bionic_core::engine::Engine;
use bionic_core::ops::TxnProgram;
use bionic_sim::energy::{Energy, EnergyDomain};
use bionic_sim::stats::{Histogram, Summary};
use bionic_sim::time::SimTime;
use std::collections::BTreeMap;

/// Everything a workload run produces.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Transactions submitted.
    pub submitted: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Committed throughput (txn/s of simulated time).
    pub throughput_per_sec: f64,
    /// Commit latency summary.
    pub latency: Summary,
    /// Figure-3 CPU-time breakdown over the run.
    pub breakdown: TimeBreakdown,
    /// Total energy per committed transaction.
    pub joules_per_txn: f64,
    /// Energy by hardware domain.
    pub energy: Vec<(EnergyDomain, Energy)>,
    /// Counts per transaction type.
    pub per_type: BTreeMap<&'static str, u64>,
    /// Latency summary per transaction type (committed and aborted alike).
    pub per_type_latency: BTreeMap<&'static str, Summary>,
}

impl WorkloadReport {
    /// Render a compact human-readable summary.
    pub fn summary_table(&self) -> String {
        let mut out = format!(
            "txns: {} submitted, {} committed, {} aborted\n\
             throughput: {:.0} txn/s   joules/txn: {:.3e}\n\
             latency: {}\n",
            self.submitted,
            self.committed,
            self.aborted,
            self.throughput_per_sec,
            self.joules_per_txn,
            self.latency,
        );
        out.push_str(&self.breakdown.table());
        out
    }
}

/// Run `n` transactions drawn from `next`, arriving `inter_arrival` apart
/// (open loop). Measurement state is taken relative to the engine's state
/// at entry, so back-to-back runs on one engine stay comparable.
pub fn run(
    engine: &mut Engine,
    n: u64,
    inter_arrival: SimTime,
    mut next: impl FnMut() -> (&'static str, TxnProgram),
) -> WorkloadReport {
    let breakdown_before = engine.breakdown.clone();
    let energy_before = engine.platform.energy.clone();
    let committed_before = engine.stats.committed;
    let submitted_before = engine.stats.submitted;
    let aborted_before = engine.stats.aborted;

    let mut per_type: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut per_type_hist: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    let mut at = SimTime::ZERO;
    let start_completion = engine.stats.last_completion;
    for _ in 0..n {
        let (label, prog) = next();
        *per_type.entry(label).or_insert(0) += 1;
        let outcome = engine.submit(&prog, start_completion + at);
        per_type_hist
            .entry(label)
            .or_default()
            .record(outcome.latency());
        at += inter_arrival;
    }

    let committed = engine.stats.committed - committed_before;
    let elapsed = engine.stats.last_completion.saturating_sub(start_completion);
    let energy = engine.platform.energy.since(&energy_before);
    WorkloadReport {
        submitted: engine.stats.submitted - submitted_before,
        committed,
        aborted: engine.stats.aborted - aborted_before,
        throughput_per_sec: if elapsed.is_zero() {
            0.0
        } else {
            committed as f64 / elapsed.as_secs()
        },
        latency: engine.stats.latency.summary(),
        breakdown: engine.breakdown.since(&breakdown_before),
        joules_per_txn: if committed == 0 {
            0.0
        } else {
            energy.total().as_j() / committed as f64
        },
        energy: energy.snapshot(),
        per_type,
        per_type_latency: per_type_hist
            .into_iter()
            .map(|(k, h)| (k, h.summary()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tatp::{self, TatpConfig, TatpGenerator};
    use bionic_core::config::EngineConfig;

    #[test]
    fn driver_reports_are_consistent() {
        let cfg = TatpConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let tables = tatp::load(&mut e, &cfg);
        let mut g = TatpGenerator::new(cfg, tables);
        let report = run(&mut e, 500, SimTime::from_us(5.0), || {
            let (t, p) = g.next();
            (t.label(), p)
        });
        assert_eq!(report.submitted, 500);
        assert_eq!(report.committed + report.aborted, 500);
        assert!(report.throughput_per_sec > 0.0);
        assert!(report.joules_per_txn > 0.0);
        assert_eq!(report.per_type.values().sum::<u64>(), 500);
        assert_eq!(report.per_type.len(), report.per_type_latency.len());
        let total: u64 = report.per_type_latency.values().map(|s| s.count).sum();
        assert_eq!(total, 500);
        let table = report.summary_table();
        assert!(table.contains("throughput"));
        assert!(table.contains("Btree"));
    }

    #[test]
    fn back_to_back_runs_measure_independently() {
        let cfg = TatpConfig::small();
        let mut e = Engine::new(EngineConfig::software().with_agents(8));
        let tables = tatp::load(&mut e, &cfg);
        let mut g = TatpGenerator::new(cfg, tables);
        let r1 = run(&mut e, 200, SimTime::from_us(5.0), || {
            let (t, p) = g.next();
            (t.label(), p)
        });
        let r2 = run(&mut e, 200, SimTime::from_us(5.0), || {
            let (t, p) = g.next();
            (t.label(), p)
        });
        assert_eq!(r1.submitted, 200);
        assert_eq!(r2.submitted, 200);
        // Second run's breakdown is its own, not cumulative.
        let total1 = r1.breakdown.total();
        let total2 = r2.breakdown.total();
        assert!(total2 < total1 * 2u64);
    }
}
