//! A workload-kind abstraction over TATP and TPC-C.
//!
//! Harnesses that want to run "some OLTP stream" without caring which
//! benchmark it is — the crash-torture framework foremost — load through
//! [`AnyWorkload`] and pull programs from one uniform `next_program`
//! interface. Both generators stay fully deterministic from the seed.

use crate::tatp::{self, TatpConfig, TatpGenerator};
use crate::tpcc::{self, TpccConfig, TpccGenerator};
use bionic_core::engine::Engine;
use bionic_core::ops::TxnProgram;

/// Which benchmark drives the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// TATP: update-heavy telecom mix with a secondary index on SUBSCRIBER.
    Tatp,
    /// TPC-C: multi-table order-entry mix with inserts, deletes, and
    /// data-dependent programs.
    Tpcc,
}

impl WorkloadKind {
    /// Stable lowercase label (used by the fault-plan serialization).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Tatp => "tatp",
            WorkloadKind::Tpcc => "tpcc",
        }
    }

    /// Parse a [`WorkloadKind::label`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tatp" => Some(WorkloadKind::Tatp),
            "tpcc" => Some(WorkloadKind::Tpcc),
            _ => None,
        }
    }
}

/// A loaded workload of either kind: schema + population are already in the
/// engine, and `next_program` yields the benchmark's official mix.
pub enum AnyWorkload {
    /// A TATP stream.
    Tatp(TatpGenerator),
    /// A TPC-C stream.
    Tpcc(TpccGenerator),
}

impl AnyWorkload {
    /// Load a deliberately small population (hundreds of rows per table,
    /// not thousands) into `engine` and return the generator. Small
    /// populations make torture runs fast and raise collision rates —
    /// more duplicate-key aborts, more delete/insert churn per key — which
    /// is exactly what a crash-recovery oracle wants to chew on.
    pub fn load_small(engine: &mut Engine, kind: WorkloadKind, seed: u64) -> Self {
        match kind {
            WorkloadKind::Tatp => {
                let cfg = TatpConfig {
                    subscribers: 400,
                    seed,
                };
                let tables = tatp::load(engine, &cfg);
                AnyWorkload::Tatp(TatpGenerator::new(cfg, tables))
            }
            WorkloadKind::Tpcc => {
                let cfg = TpccConfig {
                    warehouses: 1,
                    customers_per_district: 40,
                    items: 200,
                    initial_orders: 20,
                    seed,
                };
                let (_, generator) = tpcc::load(engine, &cfg);
                AnyWorkload::Tpcc(generator)
            }
        }
    }

    /// The next transaction of the benchmark's official mix, with its label.
    pub fn next_program(&mut self) -> (&'static str, TxnProgram) {
        match self {
            AnyWorkload::Tatp(g) => {
                let (t, p) = g.next();
                (t.label(), p)
            }
            AnyWorkload::Tpcc(g) => {
                let (t, p) = g.next();
                (t.label(), p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_core::config::EngineConfig;
    use bionic_sim::SimTime;

    #[test]
    fn kind_labels_round_trip() {
        for kind in [WorkloadKind::Tatp, WorkloadKind::Tpcc] {
            assert_eq!(WorkloadKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(WorkloadKind::parse("ycsb"), None);
    }

    #[test]
    fn both_kinds_load_and_run() {
        for kind in [WorkloadKind::Tatp, WorkloadKind::Tpcc] {
            let mut e = Engine::new(EngineConfig::software().with_agents(4));
            let mut w = AnyWorkload::load_small(&mut e, kind, 0xFEED);
            let mut at = SimTime::ZERO;
            for _ in 0..50 {
                let (_, prog) = w.next_program();
                e.submit(&prog, at);
                at += SimTime::from_us(10.0);
            }
            assert_eq!(e.stats.submitted, 50, "{kind:?}");
            assert!(e.stats.committed > 25, "{kind:?}: {}", e.stats.committed);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let progs = |seed: u64| {
            let mut e = Engine::new(EngineConfig::software().with_agents(4));
            let mut w = AnyWorkload::load_small(&mut e, WorkloadKind::Tpcc, seed);
            (0..30).map(|_| w.next_program().1).collect::<Vec<_>>()
        };
        assert_eq!(progs(9), progs(9));
        assert_ne!(progs(9), progs(10));
    }
}
