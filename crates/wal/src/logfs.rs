//! A log-structured filesystem over the WAL machinery.
//!
//! §5.4 closes with: "We also note that efficient logging infrastructure
//! could prove useful outside the database engine; high performance logging
//! file systems are another obvious candidate." This module is that
//! demonstration: a minimal log-structured filesystem whose only persistent
//! structure is an append-only operation log. All file state is an
//! in-memory cache rebuilt by replay; durability comes from the same
//! [`GroupCommit`] path the DBMS uses, and the insert cost can ride any
//! [`LogInsertModel`] — including the hardware engine.
//!
//! [`GroupCommit`]: crate::timing::GroupCommit
//! [`LogInsertModel`]: crate::timing::LogInsertModel

use crate::record::fnv1a;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// A file id.
pub type Fid = u64;

/// One logged filesystem operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOp {
    /// Create a file with a name; assigns the next fid.
    Create {
        /// File name.
        name: String,
    },
    /// Append bytes to a file.
    Append {
        /// Target file.
        fid: Fid,
        /// Payload.
        data: Vec<u8>,
    },
    /// Truncate a file to zero length.
    Truncate {
        /// Target file.
        fid: Fid,
    },
    /// Remove a file.
    Remove {
        /// Target file.
        fid: Fid,
    },
}

impl FsOp {
    fn encode(&self, out: &mut BytesMut) {
        match self {
            FsOp::Create { name } => {
                out.put_u8(0);
                out.put_u32_le(name.len() as u32);
                out.put_slice(name.as_bytes());
            }
            FsOp::Append { fid, data } => {
                out.put_u8(1);
                out.put_u64_le(*fid);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
            FsOp::Truncate { fid } => {
                out.put_u8(2);
                out.put_u64_le(*fid);
            }
            FsOp::Remove { fid } => {
                out.put_u8(3);
                out.put_u64_le(*fid);
            }
        }
    }

    /// Decode one op, or `None` on any malformed bytes (never panics —
    /// replay treats a failed decode as end-of-valid-log).
    fn decode(buf: &mut Bytes) -> Option<FsOp> {
        if buf.remaining() == 0 {
            return None;
        }
        Some(match buf.get_u8() {
            0 => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n {
                    return None;
                }
                let name = String::from_utf8(buf[..n].to_vec()).ok()?;
                buf.advance(n);
                FsOp::Create { name }
            }
            1 => {
                if buf.remaining() < 12 {
                    return None;
                }
                let fid = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n {
                    return None;
                }
                let data = buf[..n].to_vec();
                buf.advance(n);
                FsOp::Append { fid, data }
            }
            2 => {
                if buf.remaining() < 8 {
                    return None;
                }
                FsOp::Truncate {
                    fid: buf.get_u64_le(),
                }
            }
            3 => {
                if buf.remaining() < 8 {
                    return None;
                }
                FsOp::Remove {
                    fid: buf.get_u64_le(),
                }
            }
            _ => return None,
        })
    }

    /// Encoded length in bytes (what an insert costs the log path).
    pub fn encoded_len(&self) -> usize {
        let mut b = BytesMut::new();
        self.encode(&mut b);
        8 + b.len()
    }
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Name already exists.
    Exists,
    /// No such file.
    NotFound,
}

impl core::fmt::Display for FsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FsError::Exists => write!(f, "file exists"),
            FsError::NotFound => write!(f, "no such file"),
        }
    }
}

impl std::error::Error for FsError {}

/// The log-structured filesystem.
///
/// ```
/// use bionic_wal::logfs::LogFs;
///
/// let mut fs = LogFs::new();
/// let (fid, _) = fs.create("notes.txt").unwrap();
/// fs.append(fid, b"hello").unwrap();
/// fs.flush();
/// fs.append(fid, b" LOST").unwrap(); // never flushed
///
/// let replayed = LogFs::replay(fs.crash_image());
/// assert_eq!(replayed.read(fid).unwrap(), b"hello");
/// ```
#[derive(Debug, Default)]
pub struct LogFs {
    log: Vec<u8>,
    durable: usize,
    next_fid: Fid,
    names: HashMap<String, Fid>,
    contents: HashMap<Fid, Vec<u8>>,
    /// Bytes dropped from the replayed image's tail by record validation
    /// (torn write or corruption). Zero for a filesystem built fresh.
    torn_bytes: u64,
    appended_bytes: u64,
}

impl LogFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    fn apply(&mut self, op: &FsOp) {
        match op {
            FsOp::Create { name } => {
                let fid = self.next_fid;
                self.next_fid += 1;
                self.names.insert(name.clone(), fid);
                self.contents.insert(fid, Vec::new());
            }
            FsOp::Append { fid, data } => {
                self.contents
                    .get_mut(fid)
                    .expect("append to live file")
                    .extend_from_slice(data);
            }
            FsOp::Truncate { fid } => {
                self.contents.get_mut(fid).expect("truncate live").clear();
            }
            FsOp::Remove { fid } => {
                self.contents.remove(fid);
                self.names.retain(|_, f| f != fid);
            }
        }
    }

    fn log_op(&mut self, op: &FsOp) -> usize {
        let mut body = BytesMut::new();
        op.encode(&mut body);
        self.log
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.log.extend_from_slice(&fnv1a(&body).to_le_bytes());
        self.log.extend_from_slice(&body);
        self.apply(op);
        self.appended_bytes += 8 + body.len() as u64;
        8 + body.len()
    }

    /// Create a file; returns its fid and the logged bytes.
    pub fn create(&mut self, name: &str) -> Result<(Fid, usize), FsError> {
        if self.names.contains_key(name) {
            return Err(FsError::Exists);
        }
        let fid = self.next_fid;
        let bytes = self.log_op(&FsOp::Create {
            name: name.to_string(),
        });
        Ok((fid, bytes))
    }

    /// Append to a file; returns the logged bytes.
    pub fn append(&mut self, fid: Fid, data: &[u8]) -> Result<usize, FsError> {
        if !self.contents.contains_key(&fid) {
            return Err(FsError::NotFound);
        }
        Ok(self.log_op(&FsOp::Append {
            fid,
            data: data.to_vec(),
        }))
    }

    /// Truncate a file to empty.
    pub fn truncate(&mut self, fid: Fid) -> Result<usize, FsError> {
        if !self.contents.contains_key(&fid) {
            return Err(FsError::NotFound);
        }
        Ok(self.log_op(&FsOp::Truncate { fid }))
    }

    /// Remove a file.
    pub fn remove(&mut self, fid: Fid) -> Result<usize, FsError> {
        if !self.contents.contains_key(&fid) {
            return Err(FsError::NotFound);
        }
        Ok(self.log_op(&FsOp::Remove { fid }))
    }

    /// Look up a file by name.
    pub fn lookup(&self, name: &str) -> Option<Fid> {
        self.names.get(name).copied()
    }

    /// Read a file's contents.
    pub fn read(&self, fid: Fid) -> Result<&[u8], FsError> {
        self.contents
            .get(&fid)
            .map(Vec::as_slice)
            .ok_or(FsError::NotFound)
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.contents.len()
    }

    /// Total log bytes written through this instance (headers included),
    /// not counting bytes inherited from a replayed image.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Mark everything logged so far as durable (the caller has timed the
    /// flush through its group-commit path).
    pub fn flush(&mut self) {
        self.durable = self.log.len();
    }

    /// Bytes logged but not yet durable.
    pub fn unflushed_bytes(&self) -> usize {
        self.log.len() - self.durable
    }

    /// Crash: only the durable log prefix survives.
    pub fn crash_image(&self) -> Vec<u8> {
        self.log[..self.durable].to_vec()
    }

    /// Bytes the last [`LogFs::replay`] dropped from the tail of its image
    /// because they failed validation (torn write or corruption). Surfaced
    /// so callers can observe the skip instead of it vanishing silently.
    pub fn torn_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// Rebuild a filesystem by replaying a log image. Replay stops at the
    /// first torn or corrupt record; the invalid tail is *discarded* from
    /// the rebuilt log (so future appends extend valid state, not garbage)
    /// and its size is reported by [`LogFs::torn_bytes`].
    pub fn replay(image: Vec<u8>) -> Self {
        let mut fs = LogFs {
            log: image,
            ..Default::default()
        };
        let mut at = 0usize;
        loop {
            if at + 8 > fs.log.len() {
                break;
            }
            let len = u32::from_le_bytes(fs.log[at..at + 4].try_into().unwrap()) as usize;
            if at + 8 + len > fs.log.len() {
                break; // truncated tail
            }
            let csum = u32::from_le_bytes(fs.log[at + 4..at + 8].try_into().unwrap());
            let payload = &fs.log[at + 8..at + 8 + len];
            if fnv1a(payload) != csum {
                break; // corrupt record
            }
            let mut buf = Bytes::copy_from_slice(payload);
            let Some(op) = FsOp::decode(&mut buf) else {
                break;
            };
            fs.apply(&op);
            at += 8 + len;
        }
        fs.torn_bytes = (fs.log.len() - at) as u64;
        fs.log.truncate(at);
        fs.durable = at;
        fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{HwLog, LatchedLog, LogInsertModel, SwLogParams};
    use bionic_sim::fpga::FpgaFabric;
    use bionic_sim::time::SimTime;

    #[test]
    fn create_append_read() {
        let mut fs = LogFs::new();
        let (fid, _) = fs.create("journal").unwrap();
        fs.append(fid, b"hello ").unwrap();
        fs.append(fid, b"world").unwrap();
        assert_eq!(fs.read(fid).unwrap(), b"hello world");
        assert_eq!(fs.lookup("journal"), Some(fid));
        assert_eq!(fs.create("journal"), Err(FsError::Exists));
    }

    #[test]
    fn truncate_and_remove() {
        let mut fs = LogFs::new();
        let (fid, _) = fs.create("tmp").unwrap();
        fs.append(fid, b"data").unwrap();
        fs.truncate(fid).unwrap();
        assert_eq!(fs.read(fid).unwrap(), b"");
        fs.remove(fid).unwrap();
        assert_eq!(fs.read(fid), Err(FsError::NotFound));
        assert_eq!(fs.lookup("tmp"), None);
        assert_eq!(fs.append(fid, b"x"), Err(FsError::NotFound));
    }

    #[test]
    fn replay_restores_flushed_state_exactly() {
        let mut fs = LogFs::new();
        let (a, _) = fs.create("a").unwrap();
        let (b, _) = fs.create("b").unwrap();
        fs.append(a, b"alpha").unwrap();
        fs.append(b, b"beta").unwrap();
        fs.remove(b).unwrap();
        fs.flush();
        fs.append(a, b" LOST").unwrap(); // not flushed

        let replayed = LogFs::replay(fs.crash_image());
        assert_eq!(replayed.read(a).unwrap(), b"alpha");
        assert_eq!(replayed.read(b), Err(FsError::NotFound));
        assert_eq!(replayed.file_count(), 1);
        // fid allocation continues correctly after replay.
        let mut replayed = replayed;
        let (c, _) = replayed.create("c").unwrap();
        assert!(c > b);
    }

    #[test]
    fn replay_tolerates_torn_tail_and_surfaces_it() {
        let mut fs = LogFs::new();
        let (a, _) = fs.create("a").unwrap();
        fs.append(a, b"whole").unwrap();
        fs.flush();
        let mut image = fs.crash_image();
        // A torn write: half a record at the end.
        image.extend_from_slice(&[200, 0, 0, 0, 1, 2, 3]);
        let replayed = LogFs::replay(image);
        assert_eq!(replayed.read(a).unwrap(), b"whole");
        assert_eq!(replayed.torn_bytes(), 7, "skip is surfaced, not silent");
        // The garbage is gone from the rebuilt log: a further append and
        // re-replay must still round-trip.
        let mut replayed = replayed;
        replayed.append(a, b" again").unwrap();
        replayed.flush();
        let twice = LogFs::replay(replayed.crash_image());
        assert_eq!(twice.read(a).unwrap(), b"whole again");
        assert_eq!(twice.torn_bytes(), 0);
    }

    #[test]
    fn replay_stops_at_corrupt_record() {
        let mut fs = LogFs::new();
        let (a, _) = fs.create("a").unwrap();
        fs.append(a, b"first").unwrap();
        fs.append(a, b"later").unwrap();
        fs.flush();
        let mut image = fs.crash_image();
        let n = image.len();
        image[n - 2] ^= 0x08; // bit flip inside the last append's payload
        let replayed = LogFs::replay(image);
        assert_eq!(replayed.read(a).unwrap(), b"first");
        assert!(replayed.torn_bytes() > 0);
    }

    #[test]
    fn hardware_log_path_makes_fs_appends_cheap() {
        // The §5.4 aside, quantified: per-append CPU cost under the latched
        // vs hardware insert models, driving the same filesystem.
        let mut fs = LogFs::new();
        let (fid, _) = fs.create("applog").unwrap();
        let mut latched = LatchedLog::new(SwLogParams::default());
        let mut fabric = FpgaFabric::hc2();
        let mut hw = HwLog::hc2(&mut fabric).unwrap();
        let mut at = SimTime::ZERO;
        let mut sw_busy = SimTime::ZERO;
        let mut hw_busy = SimTime::ZERO;
        for i in 0..1_000u64 {
            let bytes = fs.append(fid, b"log line payload 0123456789").unwrap() as u64;
            sw_busy += latched.insert(at, (i % 16) as usize, bytes).cpu_busy;
            hw_busy += hw.insert(at, (i % 16) as usize, bytes).cpu_busy;
            at += SimTime::from_ns(300.0);
        }
        assert!(hw_busy * 2u64 < sw_busy, "hw={hw_busy} sw={sw_busy}");
        assert_eq!(fs.read(fid).unwrap().len(), 27 * 1000);
    }
}
