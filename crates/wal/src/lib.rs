//! # bionic-wal — write-ahead logging, §5.4's offload target
//!
//! "The DORA system eliminates most locking …, leaving the database log as
//! the main centralized service." This crate supplies that service three
//! ways, plus everything downstream of it:
//!
//! * [`record`] — length-prefixed binary log records with before/after
//!   images and per-transaction `prev_lsn` chains;
//! * [`manager::LogManager`] — LSN assignment, the volatile/durable split,
//!   checkpoints, crash images;
//! * [`timing`] — how long an insert takes under contention: latch-serial
//!   ([`timing::LatchedLog`]), consolidation-array (\[7\],
//!   [`timing::ConsolidatedLog`]), and the paper's per-socket-aggregating
//!   hardware engine ([`timing::HwLog`]); group commit to the SSD;
//! * [`recovery`] — ARIES-style analysis/redo/undo with CLRs, shared with
//!   the runtime abort path;
//! * [`logfs`] — §5.4's closing aside made real: a log-structured
//!   filesystem reusing the same insertion/commit machinery.

#![deny(missing_docs)]

pub mod logfs;
pub mod manager;
pub mod record;
pub mod recovery;
pub mod timing;

pub use logfs::{FsError, FsOp, LogFs};
pub use manager::{LogIter, LogManager};
pub use record::{ClrAction, LogBody, LogBodyRef, LogRecord, Lsn, TxnId, NULL_LSN};
pub use recovery::{recover, undo_txn, RecoveryOutcome};
pub use timing::{
    ConsolidatedLog, GroupCommit, HwLog, HwLogConfig, InsertTiming, LatchedLog, LogInsertModel,
    SwLogParams,
};
