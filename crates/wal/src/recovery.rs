//! ARIES-style restart recovery: analysis, redo, undo.
//!
//! Figure 4 keeps "log sync & recovery" in software on the GP-CPU, and §5.3
//! relies on it: the hardware probe engine only has to guarantee per-request
//! atomicity *because* recovery restores transaction atomicity from the log.
//!
//! The protocol is classic ARIES, scoped to this storage engine:
//!
//! 1. **Analysis** scans forward from the last checkpoint, classifying
//!    transactions into winners (Commit seen) and losers.
//! 2. **Redo** repeats history: every redoable record is re-applied iff the
//!    target page's LSN is older — including records of losers and CLRs.
//! 3. **Undo** rolls losers back newest-first along their `prev_lsn`
//!    chains, appending CLRs (with `undo_next`) so that a crash *during*
//!    recovery is itself recoverable, then an `End` per loser.
//!
//! The same undo machinery serves runtime aborts ([`undo_txn`]).

use crate::manager::LogManager;
use crate::record::{ClrAction, LogBody, LogRecord, Lsn, TxnId, NULL_LSN};
use bionic_storage::bufferpool::BufferPool;
use bionic_storage::page::RecordId;
use bionic_storage::slotted::SlottedPage;
use std::collections::{HashMap, HashSet};

/// Summary of a completed recovery.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOutcome {
    /// Committed transactions found by analysis.
    pub winners: Vec<TxnId>,
    /// In-flight transactions rolled back.
    pub losers: Vec<TxnId>,
    /// Log records scanned across all phases.
    pub records_scanned: u64,
    /// Page-level actions re-applied by redo.
    pub redone: u64,
    /// Page-level actions rolled back by undo.
    pub undone: u64,
    /// `(table, pages)` population discovered, for rebuilding heap/catalog
    /// metadata and indexes.
    pub table_pages: HashMap<u32, Vec<u64>>,
    /// Bytes dropped from the log tail because they failed record
    /// validation (torn write at crash, or corruption) — surfaced from
    /// [`LogManager::torn_bytes_dropped`] so callers see the skip instead of
    /// it vanishing silently.
    pub torn_bytes_skipped: u64,
    /// Transactions found prepared but undecided (durable Prepare, no
    /// Commit/End): `(local txn, global txn, coordinator)`. These were
    /// handed to the resolver; presumed abort means an unresolvable branch
    /// rolls back.
    pub in_doubt: Vec<(TxnId, u64, u32)>,
    /// In-doubt branches the resolver committed.
    pub resolved_committed: u64,
    /// In-doubt branches rolled back (resolver said abort, or presumed).
    pub resolved_aborted: u64,
}

/// Install `image` at `rid`, stamping `lsn` on the page.
pub fn apply_install(pool: &mut BufferPool, rid: RecordId, image: &[u8], lsn: Lsn) {
    pool.with_page_mut(rid.page, |pg| {
        let mut sp = SlottedPage::attach_or_init(pg);
        sp.install(rid.slot, image)
            .expect("recovery install must fit: page history guarantees space");
        sp.set_lsn(lsn);
    });
}

/// Remove the record at `rid`, stamping `lsn` on the page.
pub fn apply_remove(pool: &mut BufferPool, rid: RecordId, lsn: Lsn) {
    pool.with_page_mut(rid.page, |pg| {
        let mut sp = SlottedPage::attach_or_init(pg);
        sp.delete(rid.slot)
            .expect("recovery delete of a record that redo should have installed");
        sp.set_lsn(lsn);
    });
}

fn page_lsn(pool: &mut BufferPool, rid: RecordId) -> Lsn {
    pool.with_page_mut(rid.page, |pg| SlottedPage::attach_or_init(pg).lsn())
        .0
}

/// Undo one data record, appending its CLR. Returns the CLR's `undo_next`.
fn undo_one(lm: &mut LogManager, pool: &mut BufferPool, rec: &LogRecord) -> Option<Lsn> {
    let (action, next) = match &rec.body {
        LogBody::Insert { table, rid, .. } => (
            ClrAction::Remove {
                table: *table,
                rid: *rid,
            },
            rec.prev_lsn,
        ),
        LogBody::Update {
            table, rid, before, ..
        } => (
            ClrAction::Install {
                table: *table,
                rid: *rid,
                image: before.clone(),
            },
            rec.prev_lsn,
        ),
        LogBody::Delete { table, rid, before } => (
            ClrAction::Install {
                table: *table,
                rid: *rid,
                image: before.clone(),
            },
            rec.prev_lsn,
        ),
        // CLRs are never undone; skip to their undo_next.
        LogBody::Clr { undo_next, .. } => {
            return if *undo_next == NULL_LSN {
                None
            } else {
                Some(*undo_next)
            };
        }
        // Begin terminates the chain; control records are not undone.
        LogBody::Begin => return None,
        _ => {
            return if rec.prev_lsn == NULL_LSN {
                None
            } else {
                Some(rec.prev_lsn)
            };
        }
    };
    let (clr, _) = lm.append(
        rec.txn,
        LogBody::Clr {
            undo_next: next,
            action: action.clone(),
        },
    );
    match action {
        ClrAction::Install { rid, image, .. } => {
            apply_install(pool, RecordId::from_u64(rid), &image, clr.lsn);
        }
        ClrAction::Remove { rid, .. } => {
            apply_remove(pool, RecordId::from_u64(rid), clr.lsn);
        }
    }
    if next == NULL_LSN {
        None
    } else {
        Some(next)
    }
}

/// Roll back a transaction from its current chain tail (runtime abort or
/// recovery undo). Appends CLRs and a final `End`; returns actions undone.
pub fn undo_txn(lm: &mut LogManager, pool: &mut BufferPool, txn: TxnId) -> u64 {
    let mut undone = 0;
    let mut cursor = lm.last_lsn_of(txn);
    while let Some(lsn) = cursor {
        let rec = lm.read(lsn).expect("undo chain points at valid record");
        debug_assert_eq!(rec.txn, txn, "undo chain crossed transactions");
        let was_data = rec.body.is_redoable();
        cursor = undo_one(lm, pool, &rec);
        if was_data {
            undone += 1;
        }
    }
    lm.append(txn, LogBody::End);
    undone
}

/// Run full restart recovery over `lm` (typically built with
/// [`LogManager::from_image`] from the crash image) against `pool`.
///
/// Prepared-but-undecided (in-doubt) branches are *presumed aborted*: with
/// no resolver to consult, a durable Prepare without a later Commit rolls
/// back exactly like a loser. Distributed participants use
/// [`recover_with`] to consult the coordinator's decision instead.
pub fn recover(lm: &mut LogManager, pool: &mut BufferPool) -> RecoveryOutcome {
    recover_with(lm, pool, |_, _, _| false)
}

/// [`recover`] with an in-doubt resolver: `resolve(txn, gtxn, coord)`
/// returns `true` iff the coordinator durably decided commit for the
/// global transaction this local branch belongs to. Committed branches get
/// their missing Commit/End records appended (their effects were already
/// replayed by redo); aborted ones roll back through the ordinary undo
/// path, CLRs and all.
pub fn recover_with(
    lm: &mut LogManager,
    pool: &mut BufferPool,
    mut resolve: impl FnMut(TxnId, u64, u32) -> bool,
) -> RecoveryOutcome {
    let mut out = RecoveryOutcome {
        torn_bytes_skipped: lm.torn_bytes_dropped(),
        ..RecoveryOutcome::default()
    };

    // ---- Analysis ------------------------------------------------------
    // Start from the last checkpoint if any; seed with its active set.
    let mut txn_last: HashMap<TxnId, Lsn> = HashMap::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut ended: HashSet<TxnId> = HashSet::new();
    let mut prepared: HashMap<TxnId, (u64, u32)> = HashMap::new();
    let mut redo_start: Lsn = 0;
    let start = match lm.last_checkpoint() {
        Some(ck) => {
            if let Some(LogRecord {
                body: LogBody::Checkpoint { active, redo_from },
                ..
            }) = lm.read(ck)
            {
                for (t, l) in active {
                    txn_last.insert(t, l);
                }
                redo_start = redo_from;
            }
            ck
        }
        None => 0,
    };
    let analysis_records: Vec<LogRecord> = lm.iter_from(start).collect();
    for rec in &analysis_records {
        out.records_scanned += 1;
        match &rec.body {
            LogBody::Commit => {
                committed.insert(rec.txn);
            }
            LogBody::End => {
                ended.insert(rec.txn);
                txn_last.remove(&rec.txn);
            }
            LogBody::Checkpoint { .. } => {}
            LogBody::Prepare { gtxn, coord } => {
                prepared.insert(rec.txn, (*gtxn, *coord));
                txn_last.insert(rec.txn, rec.lsn);
            }
            _ => {
                txn_last.insert(rec.txn, rec.lsn);
            }
        }
    }
    out.winners = committed.iter().copied().collect();
    out.winners.sort_unstable();
    // In-doubt branches (durable Prepare, no decision) are pulled out of
    // the loser set: their fate belongs to the resolver, not to undo.
    let mut in_doubt: Vec<(TxnId, u64, u32)> = txn_last
        .keys()
        .filter(|t| !committed.contains(t) && !ended.contains(t))
        .filter_map(|t| prepared.get(t).map(|&(g, c)| (*t, g, c)))
        .collect();
    in_doubt.sort_unstable();
    out.in_doubt = in_doubt.clone();
    let mut losers: Vec<(TxnId, Lsn)> = txn_last
        .iter()
        .filter(|(t, _)| !committed.contains(t) && !ended.contains(t) && !prepared.contains_key(t))
        .map(|(&t, &l)| (t, l))
        .collect();
    losers.sort_unstable();
    out.losers = losers.iter().map(|&(t, _)| t).collect();

    // ---- Redo: repeat history from the checkpoint's redo point ----------
    // (0 when there is no checkpoint; sharp checkpoints let us skip the
    // whole prefix. Redo stays conditional on the page LSN either way.)
    let redo_records: Vec<LogRecord> = lm.iter_from(redo_start).collect();
    for rec in &redo_records {
        out.records_scanned += 1;
        let (table, rid, image): (u32, u64, Option<&[u8]>) = match &rec.body {
            LogBody::Insert { table, rid, after } => (*table, *rid, Some(after)),
            LogBody::Update {
                table, rid, after, ..
            } => (*table, *rid, Some(after)),
            LogBody::Delete { table, rid, .. } => (*table, *rid, None),
            LogBody::Clr { action, .. } => match action {
                ClrAction::Install { table, rid, image } => (*table, *rid, Some(image)),
                ClrAction::Remove { table, rid } => (*table, *rid, None),
            },
            _ => continue,
        };
        let rid = RecordId::from_u64(rid);
        out.table_pages.entry(table).or_default().push(rid.page.0);
        if page_lsn(pool, rid) < rec.lsn {
            match image {
                Some(img) => apply_install(pool, rid, img, rec.lsn),
                None => {
                    // Idempotent remove: the page may already reflect it.
                    pool.with_page_mut(rid.page, |pg| {
                        let mut sp = SlottedPage::attach_or_init(pg);
                        let _ = sp.delete(rid.slot);
                        sp.set_lsn(rec.lsn);
                    });
                }
            }
            out.redone += 1;
        }
    }
    for pages in out.table_pages.values_mut() {
        pages.sort_unstable();
        pages.dedup();
    }

    // ---- Undo losers, newest chain tail first ---------------------------
    losers.sort_by_key(|&(_, l)| std::cmp::Reverse(l));
    for (txn, _) in losers {
        out.undone += undo_txn(lm, pool, txn);
    }

    // ---- Resolve in-doubt branches against the coordinator --------------
    // Redo already replayed their effects (they were not losers), so a
    // commit decision only needs the missing decision records; an abort
    // rolls back through the same undo path as a loser.
    let resolved_any = !in_doubt.is_empty();
    for (txn, gtxn, coord) in in_doubt {
        if resolve(txn, gtxn, coord) {
            lm.append(txn, LogBody::Commit);
            lm.append(txn, LogBody::End);
            out.winners.push(txn);
            out.resolved_committed += 1;
        } else {
            lm.append(txn, LogBody::Abort);
            out.undone += undo_txn(lm, pool, txn); // appends the End
            out.resolved_aborted += 1;
        }
    }
    if resolved_any {
        // Force the resolution records: a crash right after recovery must
        // not resurrect the doubt (the coordinator may be gone by then).
        lm.flush();
    }
    out.winners.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_storage::disk::DiskManager;
    use bionic_storage::heap::HeapFile;

    /// A tiny logged "engine" for exercising recovery: applies operations to
    /// a heap file and logs them WAL-correctly.
    struct Harness {
        lm: LogManager,
        pool: BufferPool,
        heap: HeapFile,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                lm: LogManager::new(),
                pool: BufferPool::new(128, DiskManager::new()),
                heap: HeapFile::new(),
            }
        }

        fn begin(&mut self, txn: TxnId) {
            self.lm.append(txn, LogBody::Begin);
        }

        fn insert(&mut self, txn: TxnId, data: &[u8]) -> RecordId {
            let (rid, _) = self.heap.insert(&mut self.pool, data).unwrap();
            let (rec, _) = self.lm.append(
                txn,
                LogBody::Insert {
                    table: 0,
                    rid: rid.to_u64(),
                    after: data.to_vec(),
                },
            );
            self.pool.with_page_mut(rid.page, |pg| {
                SlottedPage::attach(pg).set_lsn(rec.lsn);
            });
            rid
        }

        fn update(&mut self, txn: TxnId, rid: RecordId, data: &[u8]) {
            let (before, _) = self.heap.get(&mut self.pool, rid);
            let (new_rid, _) = self.heap.update(&mut self.pool, rid, data).unwrap();
            assert_eq!(new_rid, rid, "test records never move");
            let (rec, _) = self.lm.append(
                txn,
                LogBody::Update {
                    table: 0,
                    rid: rid.to_u64(),
                    before: before.unwrap(),
                    after: data.to_vec(),
                },
            );
            self.pool.with_page_mut(rid.page, |pg| {
                SlottedPage::attach(pg).set_lsn(rec.lsn);
            });
        }

        fn delete(&mut self, txn: TxnId, rid: RecordId) {
            let (before, _) = self.heap.get(&mut self.pool, rid);
            self.heap.delete(&mut self.pool, rid).unwrap();
            let (rec, _) = self.lm.append(
                txn,
                LogBody::Delete {
                    table: 0,
                    rid: rid.to_u64(),
                    before: before.unwrap(),
                },
            );
            self.pool.with_page_mut(rid.page, |pg| {
                SlottedPage::attach(pg).set_lsn(rec.lsn);
            });
        }

        fn commit(&mut self, txn: TxnId) {
            self.lm.append(txn, LogBody::Commit);
            self.lm.flush(); // WAL: commit forces the log
            self.lm.append(txn, LogBody::End);
        }

        fn prepare(&mut self, txn: TxnId, gtxn: u64, coord: u32) {
            self.lm.append(txn, LogBody::Prepare { gtxn, coord });
            self.lm.flush(); // prepare vote must be durable before YES
        }

        /// Crash: lose the buffer pool and the volatile log tail; restart
        /// with recovery. Returns the recovered (pool, log, outcome).
        fn crash_and_recover(self) -> (BufferPool, LogManager, RecoveryOutcome) {
            let disk = self.pool.crash();
            let mut pool = BufferPool::new(128, disk);
            let mut lm = LogManager::from_image(self.lm.crash_image());
            let out = recover(&mut lm, &mut pool);
            (pool, lm, out)
        }
    }

    fn read(pool: &mut BufferPool, rid: RecordId) -> Option<Vec<u8>> {
        pool.with_page_mut(rid.page, |pg| {
            SlottedPage::attach_or_init(pg)
                .get(rid.slot)
                .map(<[u8]>::to_vec)
                .ok()
        })
        .0
    }

    #[test]
    fn committed_work_survives_a_crash() {
        let mut h = Harness::new();
        h.begin(1);
        let rid = h.insert(1, b"committed row");
        h.commit(1);
        // Dirty page never flushed — redo must rebuild it from the log.
        let (mut pool, _, out) = h.crash_and_recover();
        assert_eq!(read(&mut pool, rid).unwrap(), b"committed row");
        assert_eq!(out.winners, vec![1]);
        assert!(out.losers.is_empty());
        assert!(out.redone >= 1);
    }

    #[test]
    fn uncommitted_work_is_rolled_back() {
        let mut h = Harness::new();
        h.begin(1);
        let rid1 = h.insert(1, b"will survive");
        h.commit(1);
        h.begin(2);
        let rid2 = h.insert(2, b"will vanish");
        h.update(2, rid1, b"dirty update");
        h.lm.flush(); // loser's records ARE durable — undo must remove them
        let (mut pool, lm, out) = h.crash_and_recover();
        assert_eq!(out.losers, vec![2]);
        assert_eq!(read(&mut pool, rid1).unwrap(), b"will survive");
        assert_eq!(read(&mut pool, rid2), None);
        assert!(out.undone >= 2);
        // Loser chain is closed with an End record.
        assert_eq!(lm.last_lsn_of(2), None);
    }

    #[test]
    fn unflushed_loser_tail_simply_disappears() {
        let mut h = Harness::new();
        h.begin(1);
        h.insert(1, b"not durable, not committed");
        // No flush at all: nothing of txn 1 is durable.
        let (_pool, _, out) = h.crash_and_recover();
        assert!(out.winners.is_empty());
        assert!(out.losers.is_empty(), "nothing durable => nothing to undo");
        assert_eq!(out.redone, 0);
    }

    #[test]
    fn deletes_are_undone_by_reinstall() {
        let mut h = Harness::new();
        h.begin(1);
        let rid = h.insert(1, b"precious");
        h.commit(1);
        h.begin(2);
        h.delete(2, rid);
        h.lm.flush();
        let (mut pool, _, out) = h.crash_and_recover();
        assert_eq!(out.losers, vec![2]);
        assert_eq!(read(&mut pool, rid).unwrap(), b"precious");
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut h = Harness::new();
        h.begin(1);
        let rid1 = h.insert(1, b"one");
        h.commit(1);
        h.begin(2);
        h.insert(2, b"two");
        h.lm.flush();
        let (pool, lm, first) = h.crash_and_recover();

        // Crash again immediately after recovery (CLRs durable only if
        // flushed — flush to simulate the worst case of a mid-recovery
        // crash having completed its CLR writes).
        let mut lm2 = LogManager::from_image({
            let mut l = lm;
            l.flush();
            l.crash_image()
        });
        let disk = pool.crash();
        let mut pool2 = BufferPool::new(128, disk);
        let second = recover(&mut lm2, &mut pool2);
        assert_eq!(second.losers, Vec::<TxnId>::new(), "loser already Ended");
        assert_eq!(read(&mut pool2, rid1).unwrap(), b"one");
        assert!(first.undone >= 1);
        assert_eq!(second.undone, 0);
    }

    #[test]
    fn runtime_abort_uses_the_same_undo_path() {
        let mut h = Harness::new();
        h.begin(7);
        let rid = h.insert(7, b"oops");
        h.lm.append(7, LogBody::Abort);
        let undone = undo_txn(&mut h.lm, &mut h.pool, 7);
        assert_eq!(undone, 1);
        assert_eq!(read(&mut h.pool, rid), None);
        assert_eq!(h.lm.last_lsn_of(7), None);
        // Post-abort, the heap can reuse the slot without issue.
        let (rid2, _) = h.heap.insert(&mut h.pool, b"next").unwrap();
        assert_eq!(read(&mut h.pool, rid2).unwrap(), b"next");
    }

    #[test]
    fn checkpoint_bounds_analysis() {
        let mut h = Harness::new();
        for t in 1..=20 {
            h.begin(t);
            h.insert(t, format!("row {t}").as_bytes());
            h.commit(t);
        }
        h.begin(100);
        h.insert(100, b"active across checkpoint");
        // Fuzzy checkpoint: nothing flushed, so redo must start at 0.
        h.lm.checkpoint(0);
        h.begin(101);
        h.insert(101, b"after checkpoint");
        h.lm.flush();
        let (_pool, _, out) = h.crash_and_recover();
        let mut losers = out.losers.clone();
        losers.sort_unstable();
        assert_eq!(losers, vec![100, 101]);
        // Analysis started at the checkpoint: it scanned far fewer records
        // than the redo pass did (which always scans from 0).
        assert!(out.records_scanned > 0);
    }

    #[test]
    fn torn_tail_is_skipped_and_surfaced_to_callers() {
        let mut h = Harness::new();
        h.begin(1);
        let rid = h.insert(1, b"safe");
        h.commit(1);
        // Torn write: an insert record only half of which reached disk.
        let mut image = h.lm.crash_image();
        let clean_len = image.len();
        let torn = LogRecord {
            lsn: 0,
            txn: 2,
            prev_lsn: NULL_LSN,
            body: LogBody::Insert {
                table: 0,
                rid: 99,
                after: vec![0xAB; 64],
            },
        }
        .encode();
        image.extend_from_slice(&torn[..torn.len() - 5]);
        let torn_len = (image.len() - clean_len) as u64;

        let disk = h.pool.crash();
        let mut pool = BufferPool::new(128, disk);
        let mut lm = LogManager::from_image(image);
        let out = recover(&mut lm, &mut pool);
        assert_eq!(out.torn_bytes_skipped, torn_len, "skip must be surfaced");
        assert_eq!(out.winners, vec![1]);
        assert!(out.losers.is_empty(), "torn record never became durable");
        assert_eq!(read(&mut pool, rid).unwrap(), b"safe");
    }

    #[test]
    fn bitflipped_tail_is_cut_at_the_corrupt_record() {
        let mut h = Harness::new();
        h.begin(1);
        let rid = h.insert(1, b"good");
        h.commit(1);
        h.begin(2);
        h.insert(2, b"flipped");
        h.lm.flush();
        let mut image = h.lm.crash_image();
        // Corrupt one byte inside txn 2's insert payload (past txn 1's
        // records): validation must cut the log there, so txn 2's Begin may
        // survive but its insert does not.
        let n = image.len();
        image[n - 3] ^= 0x40;
        let disk = h.pool.crash();
        let mut pool = BufferPool::new(128, disk);
        let mut lm = LogManager::from_image(image);
        let out = recover(&mut lm, &mut pool);
        assert!(out.torn_bytes_skipped > 0);
        assert_eq!(out.winners, vec![1]);
        assert_eq!(read(&mut pool, rid).unwrap(), b"good");
    }

    #[test]
    fn in_doubt_branch_is_presumed_aborted_without_a_resolver() {
        let mut h = Harness::new();
        h.begin(1);
        let rid = h.insert(1, b"kept");
        h.commit(1);
        h.begin(2);
        let rid2 = h.insert(2, b"in doubt");
        h.prepare(2, 0x8000_0000_0000_0007, 1);
        let (mut pool, lm, out) = h.crash_and_recover();
        assert_eq!(out.in_doubt, vec![(2, 0x8000_0000_0000_0007, 1)]);
        assert_eq!(out.resolved_aborted, 1);
        assert_eq!(out.resolved_committed, 0);
        assert!(out.losers.is_empty(), "in-doubt is not a plain loser");
        assert_eq!(read(&mut pool, rid).unwrap(), b"kept");
        assert_eq!(read(&mut pool, rid2), None, "presumed abort rolls back");
        assert_eq!(lm.last_lsn_of(2), None, "branch chain is closed");
    }

    #[test]
    fn in_doubt_branch_commits_when_the_resolver_says_so() {
        let mut h = Harness::new();
        h.begin(2);
        let rid = h.insert(2, b"decided commit");
        h.prepare(2, 0x8000_0000_0000_0009, 0);
        let disk = h.pool.crash();
        let mut pool = BufferPool::new(128, disk);
        let mut lm = LogManager::from_image(h.lm.crash_image());
        let out = recover_with(&mut lm, &mut pool, |txn, gtxn, coord| {
            assert_eq!((txn, gtxn, coord), (2, 0x8000_0000_0000_0009, 0));
            true
        });
        assert_eq!(out.resolved_committed, 1);
        assert_eq!(out.winners, vec![2]);
        assert_eq!(read(&mut pool, rid).unwrap(), b"decided commit");

        // Second crash immediately after: the appended Commit was flushed,
        // so the branch is now an ordinary winner — no in-doubt, no undo.
        let disk2 = pool.crash();
        let mut pool2 = BufferPool::new(128, disk2);
        let mut lm2 = LogManager::from_image(lm.crash_image());
        let again = recover_with(&mut lm2, &mut pool2, |_, _, _| {
            panic!("resolved branch must not be re-asked")
        });
        assert!(again.in_doubt.is_empty());
        assert_eq!(read(&mut pool2, rid).unwrap(), b"decided commit");
    }

    #[test]
    fn unflushed_prepare_is_an_ordinary_loser() {
        let mut h = Harness::new();
        h.begin(3);
        h.insert(3, b"vote never sent");
        h.lm.flush();
        // Prepare appended but NOT flushed: the vote never became durable,
        // so recovery must treat the branch as a plain loser.
        h.lm.append(
            3,
            LogBody::Prepare {
                gtxn: 0x8000_0000_0000_0002,
                coord: 0,
            },
        );
        let (_pool, _, out) = h.crash_and_recover();
        assert!(out.in_doubt.is_empty());
        assert_eq!(out.losers, vec![3]);
    }

    #[test]
    fn table_pages_discovered_for_rebuild() {
        let mut h = Harness::new();
        h.begin(1);
        for i in 0..200 {
            h.insert(1, format!("row {i:04} {}", "x".repeat(120)).as_bytes());
        }
        h.commit(1);
        let (_pool, _, out) = h.crash_and_recover();
        let pages = &out.table_pages[&0];
        assert!(pages.len() > 1, "rows spanned pages: {pages:?}");
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        assert_eq!(&sorted, pages, "page list is sorted for heap rebuild");
    }
}
