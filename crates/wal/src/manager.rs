//! The log manager: LSN assignment, the in-memory tail, durability, and
//! checkpointing.
//!
//! This is the *functional* log — bytes in, bytes out. How long an insert
//! takes under contention is the business of [`crate::timing`]; whether a
//! crash survives is decided here by the durable/volatile split: everything
//! past `durable_lsn` dies with the process.

use crate::record::{LogBody, LogBodyRef, LogRecord, Lsn, TxnId, NULL_LSN};
use std::collections::HashMap;

/// The write-ahead log.
#[derive(Debug, Clone, Default)]
pub struct LogManager {
    buf: Vec<u8>,
    /// LSN of the first byte in `buf` (grows when the prefix is truncated).
    base_lsn: Lsn,
    durable_lsn: Lsn,
    last_lsn: HashMap<TxnId, Lsn>,
    last_checkpoint: Option<Lsn>,
    flushes: u64,
    appends: u64,
    /// Bytes discarded from the tail of a crash image because they did not
    /// decode as a valid record (torn write or corruption). Zero except on
    /// managers rebuilt via [`LogManager::from_image_at`].
    torn_bytes: u64,
}

impl LogManager {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a log manager over a durable log image (restart after a
    /// crash). Per-transaction chains are reconstructed by scanning, so
    /// recovery can keep appending CLRs with correct `prev_lsn`s and LSNs
    /// strictly above every pre-crash record.
    pub fn from_image(image: Vec<u8>) -> Self {
        Self::from_image_at(image, 0)
    }

    /// Rebuild from a crash image whose first byte sits at `base_lsn`
    /// (non-zero when the pre-crash log had been truncated).
    ///
    /// The scan stops at the first byte run that does not decode as a valid
    /// record — a torn write or corrupted tail — and *discards* those bytes
    /// from the rebuilt log, so later appends (recovery CLRs) land on a
    /// clean record boundary instead of after garbage that a second crash
    /// would resurrect. The count is reported via
    /// [`LogManager::torn_bytes_dropped`].
    pub fn from_image_at(image: Vec<u8>, base_lsn: Lsn) -> Self {
        let mut lm = LogManager {
            base_lsn,
            buf: image,
            ..Default::default()
        };
        let mut at = 0;
        while let Some((rec, next)) = LogRecord::decode(&lm.buf, at) {
            let lsn = base_lsn + at;
            match rec.body {
                LogBody::End => {
                    lm.last_lsn.remove(&rec.txn);
                }
                LogBody::Checkpoint { .. } => lm.last_checkpoint = Some(lsn),
                _ => {
                    lm.last_lsn.insert(rec.txn, lsn);
                }
            }
            at = next;
        }
        lm.torn_bytes = lm.buf.len() as Lsn - at;
        lm.buf.truncate(at as usize);
        lm.durable_lsn = base_lsn + at;
        lm
    }

    /// Bytes dropped from the tail of the crash image this manager was
    /// rebuilt from because they failed record validation (torn or
    /// corrupted). Zero for logs that shut down cleanly.
    pub fn torn_bytes_dropped(&self) -> u64 {
        self.torn_bytes
    }

    /// Next LSN to be assigned (current end of log).
    pub fn tail_lsn(&self) -> Lsn {
        self.base_lsn + self.buf.len() as Lsn
    }

    /// LSN of the oldest retained record (0 until the log is truncated).
    pub fn base_lsn(&self) -> Lsn {
        self.base_lsn
    }

    /// Discard the log prefix below `lsn` (a record boundary). Only legal
    /// once `lsn` is durable, at or below the last checkpoint's redo point,
    /// and below no live undo chain — the conditions a sharp checkpoint
    /// establishes. Returns the bytes reclaimed.
    pub fn truncate_to(&mut self, lsn: Lsn) -> u64 {
        assert!(lsn <= self.durable_lsn, "cannot truncate volatile log");
        assert!(
            self.last_lsn.values().all(|&l| l >= lsn),
            "live undo chain below the truncation point"
        );
        if lsn <= self.base_lsn {
            return 0;
        }
        let cut = (lsn - self.base_lsn) as usize;
        self.buf.drain(..cut);
        self.base_lsn = lsn;
        cut as u64
    }

    /// Highest LSN guaranteed on stable storage.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn
    }

    /// Bytes buffered but not yet durable.
    pub fn unflushed_bytes(&self) -> u64 {
        self.tail_lsn() - self.durable_lsn
    }

    /// Number of flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of records appended through this manager (not counting
    /// records inherited from a crash image).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// LSN of the most recent checkpoint record, if any.
    pub fn last_checkpoint(&self) -> Option<Lsn> {
        self.last_checkpoint
    }

    /// Last LSN written by `txn` (the tail of its undo chain).
    pub fn last_lsn_of(&self, txn: TxnId) -> Option<Lsn> {
        self.last_lsn.get(&txn).copied()
    }

    /// Transactions with live (unfinished) chains — the analysis-phase seed.
    pub fn active_txns(&self) -> Vec<(TxnId, Lsn)> {
        let mut v: Vec<(TxnId, Lsn)> = self.last_lsn.iter().map(|(&t, &l)| (t, l)).collect();
        v.sort_unstable();
        v
    }

    /// Append a record for `txn`; returns the full record (with assigned
    /// LSN and chained `prev_lsn`) and its encoded size.
    pub fn append(&mut self, txn: TxnId, body: LogBody) -> (LogRecord, usize) {
        let prev_lsn = self.last_lsn.get(&txn).copied().unwrap_or(NULL_LSN);
        let rec = LogRecord {
            lsn: self.tail_lsn(),
            txn,
            prev_lsn,
            body,
        };
        let bytes = rec.encode();
        self.buf.extend_from_slice(&bytes);
        self.appends += 1;
        match rec.body {
            LogBody::End => {
                self.last_lsn.remove(&txn);
            }
            LogBody::Checkpoint { .. } => {
                self.last_checkpoint = Some(rec.lsn);
            }
            _ => {
                self.last_lsn.insert(txn, rec.lsn);
            }
        }
        (rec, bytes.len())
    }

    /// [`LogManager::append`] for a borrowed body: encodes straight into
    /// the log tail with no intermediate record or buffers, producing
    /// exactly the bytes the owned path would. Returns the assigned LSN
    /// and encoded size.
    pub fn append_ref(&mut self, txn: TxnId, body: LogBodyRef<'_>) -> (Lsn, usize) {
        let prev_lsn = self.last_lsn.get(&txn).copied().unwrap_or(NULL_LSN);
        let lsn = self.tail_lsn();
        let bytes = body.encode_append(txn, prev_lsn, &mut self.buf);
        self.appends += 1;
        if matches!(body, LogBodyRef::End) {
            self.last_lsn.remove(&txn);
        } else {
            self.last_lsn.insert(txn, lsn);
        }
        (lsn, bytes)
    }

    /// Write a checkpoint recording currently active transactions and the
    /// LSN redo may start from (see [`LogBody::Checkpoint`]).
    pub fn checkpoint(&mut self, redo_from: Lsn) -> Lsn {
        let active = self.active_txns();
        let (rec, _) = self.append(0, LogBody::Checkpoint { active, redo_from });
        rec.lsn
    }

    /// Make everything buffered so far durable. Returns `(durable_lsn,
    /// bytes_flushed)`; the byte count is what the caller charges to the SSD.
    pub fn flush(&mut self) -> (Lsn, u64) {
        let bytes = self.unflushed_bytes();
        if bytes > 0 {
            self.durable_lsn = self.tail_lsn();
            self.flushes += 1;
        }
        (self.durable_lsn, bytes)
    }

    /// Is `lsn` durable?
    pub fn is_durable(&self, lsn: Lsn) -> bool {
        lsn < self.durable_lsn
    }

    /// Simulate a crash: return the durable portion of the retained log
    /// (what recovery will see), together with its base LSN.
    pub fn crash_image(&self) -> Vec<u8> {
        self.buf[..(self.durable_lsn - self.base_lsn) as usize].to_vec()
    }

    /// Iterate records from `from` (clamped to the retained base) to the
    /// end of the buffered log.
    pub fn iter_from(&self, from: Lsn) -> LogIter<'_> {
        LogIter {
            log: &self.buf,
            base: self.base_lsn,
            at: from.max(self.base_lsn),
        }
    }

    /// Read one record by LSN (must be a record boundary at or above the
    /// retained base).
    pub fn read(&self, lsn: Lsn) -> Option<LogRecord> {
        if lsn < self.base_lsn {
            return None;
        }
        LogRecord::decode(&self.buf, lsn - self.base_lsn).map(|(r, next)| {
            let _ = next;
            LogRecord { lsn, ..r }
        })
    }
}

/// Iterator over records in a log image.
pub struct LogIter<'a> {
    log: &'a [u8],
    /// LSN of `log[0]`.
    base: Lsn,
    at: Lsn,
}

impl<'a> LogIter<'a> {
    /// Iterate a raw log image (e.g. a crash image) from an offset.
    pub fn over(log: &'a [u8], from: Lsn) -> Self {
        LogIter {
            log,
            base: 0,
            at: from,
        }
    }
}

impl Iterator for LogIter<'_> {
    type Item = LogRecord;

    fn next(&mut self) -> Option<LogRecord> {
        let (rec, next) = LogRecord::decode(self.log, self.at - self.base)?;
        let lsn = self.at;
        self.at = self.base + next;
        Some(LogRecord { lsn, ..rec })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_assign_monotone_lsns_and_chain_prev() {
        let mut lm = LogManager::new();
        let (r1, _) = lm.append(1, LogBody::Begin);
        let (r2, _) = lm.append(1, LogBody::Commit);
        let (r3, _) = lm.append(2, LogBody::Begin);
        assert_eq!(r1.lsn, 0);
        assert!(r2.lsn > r1.lsn);
        assert_eq!(r1.prev_lsn, NULL_LSN);
        assert_eq!(r2.prev_lsn, r1.lsn);
        assert_eq!(r3.prev_lsn, NULL_LSN, "chains are per-transaction");
    }

    #[test]
    fn append_ref_is_byte_identical_to_owned_append() {
        // Drive both append paths through the same record sequence and
        // require identical log bytes, LSNs, and chain state.
        let mut owned = LogManager::new();
        let mut by_ref = LogManager::new();
        let img = |n: usize| (0..n).map(|i| i as u8).collect::<Vec<u8>>();
        let seq: Vec<(TxnId, LogBody)> = vec![
            (1, LogBody::Begin),
            (
                1,
                LogBody::Insert {
                    table: 2,
                    rid: 77,
                    after: img(24),
                },
            ),
            (2, LogBody::Begin),
            (
                1,
                LogBody::Update {
                    table: 2,
                    rid: 77,
                    before: img(24),
                    after: img(31),
                },
            ),
            (
                2,
                LogBody::Delete {
                    table: 0,
                    rid: 5,
                    before: img(300),
                },
            ),
            (1, LogBody::Commit),
            (
                2,
                LogBody::Prepare {
                    gtxn: 0x8000_0000_0000_0042,
                    coord: 1,
                },
            ),
            (2, LogBody::Abort),
            (1, LogBody::End),
        ];
        for (txn, body) in seq {
            let r = match &body {
                LogBody::Begin => LogBodyRef::Begin,
                LogBody::Commit => LogBodyRef::Commit,
                LogBody::Abort => LogBodyRef::Abort,
                LogBody::End => LogBodyRef::End,
                LogBody::Insert { table, rid, after } => LogBodyRef::Insert {
                    table: *table,
                    rid: *rid,
                    after,
                },
                LogBody::Update {
                    table,
                    rid,
                    before,
                    after,
                } => LogBodyRef::Update {
                    table: *table,
                    rid: *rid,
                    before,
                    after,
                },
                LogBody::Delete { table, rid, before } => LogBodyRef::Delete {
                    table: *table,
                    rid: *rid,
                    before,
                },
                LogBody::Prepare { gtxn, coord } => LogBodyRef::Prepare {
                    gtxn: *gtxn,
                    coord: *coord,
                },
                other => unreachable!("owned-only body {other:?}"),
            };
            let (lsn, n) = by_ref.append_ref(txn, r);
            let (rec, n_owned) = owned.append(txn, body);
            assert_eq!((lsn, n), (rec.lsn, n_owned));
        }
        owned.flush();
        by_ref.flush();
        assert_eq!(owned.crash_image(), by_ref.crash_image());
        assert_eq!(owned.active_txns(), by_ref.active_txns());
        assert_eq!(owned.appends(), by_ref.appends());
    }

    #[test]
    fn flush_advances_durability() {
        let mut lm = LogManager::new();
        lm.append(1, LogBody::Begin);
        assert_eq!(lm.durable_lsn(), 0);
        assert!(lm.unflushed_bytes() > 0);
        let (durable, bytes) = lm.flush();
        assert_eq!(durable, lm.tail_lsn());
        assert!(bytes > 0);
        assert_eq!(lm.unflushed_bytes(), 0);
        // Idempotent flush.
        let (_, bytes2) = lm.flush();
        assert_eq!(bytes2, 0);
        assert_eq!(lm.flushes(), 1);
    }

    #[test]
    fn crash_image_is_exactly_the_durable_prefix() {
        let mut lm = LogManager::new();
        let (r1, _) = lm.append(1, LogBody::Begin);
        lm.flush();
        lm.append(
            1,
            LogBody::Insert {
                table: 0,
                rid: 1,
                after: vec![1, 2, 3],
            },
        );
        let img = lm.crash_image();
        let recs: Vec<LogRecord> = LogIter::over(&img, 0).collect();
        assert_eq!(recs.len(), 1, "unflushed insert must be lost");
        assert_eq!(recs[0], r1);
    }

    #[test]
    fn iteration_from_arbitrary_boundary() {
        let mut lm = LogManager::new();
        lm.append(1, LogBody::Begin);
        let (r2, _) = lm.append(1, LogBody::Commit);
        lm.append(1, LogBody::End);
        let recs: Vec<LogRecord> = lm.iter_from(r2.lsn).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].body, LogBody::Commit);
        assert_eq!(lm.read(r2.lsn).unwrap().body, LogBody::Commit);
    }

    #[test]
    fn active_txns_tracks_chains() {
        let mut lm = LogManager::new();
        lm.append(5, LogBody::Begin);
        lm.append(6, LogBody::Begin);
        lm.append(5, LogBody::Commit);
        lm.append(5, LogBody::End);
        let active = lm.active_txns();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].0, 6);
        assert_eq!(lm.last_lsn_of(5), None);
        assert!(lm.last_lsn_of(6).is_some());
    }

    #[test]
    fn truncation_reclaims_prefix_and_preserves_reads() {
        let mut lm = LogManager::new();
        lm.append(1, LogBody::Begin);
        lm.append(1, LogBody::Commit);
        lm.append(1, LogBody::End);
        let (keep, _) = lm.append(2, LogBody::Begin);
        lm.flush();
        let reclaimed = lm.truncate_to(keep.lsn);
        assert!(reclaimed > 0);
        assert_eq!(lm.base_lsn(), keep.lsn);
        // Reads below the base are gone; at/above work with correct LSNs.
        assert!(lm.read(0).is_none());
        let r = lm.read(keep.lsn).unwrap();
        assert_eq!(r.lsn, keep.lsn);
        assert_eq!(r.body, LogBody::Begin);
        // Appends continue with monotone LSNs.
        let (next, _) = lm.append(2, LogBody::Commit);
        assert!(next.lsn > keep.lsn);
        assert_eq!(next.prev_lsn, keep.lsn);
        // Iteration from 0 clamps to the base.
        let recs: Vec<LogRecord> = lm.iter_from(0).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].lsn, keep.lsn);
    }

    #[test]
    #[should_panic(expected = "live undo chain")]
    fn truncation_refuses_to_cut_live_chains() {
        let mut lm = LogManager::new();
        lm.append(1, LogBody::Begin); // live chain at LSN 0
        let (mark, _) = lm.append(2, LogBody::Begin);
        lm.flush();
        lm.truncate_to(mark.lsn);
    }

    #[test]
    fn crash_image_after_truncation_carries_the_base() {
        let mut lm = LogManager::new();
        lm.append(1, LogBody::Begin);
        lm.append(1, LogBody::End);
        let (keep, _) = lm.append(2, LogBody::Begin);
        lm.append(2, LogBody::Commit);
        lm.append(2, LogBody::End);
        lm.flush();
        lm.truncate_to(keep.lsn);
        let base = lm.base_lsn();
        let image = lm.crash_image();
        let restored = LogManager::from_image_at(image, base);
        assert_eq!(restored.base_lsn(), base);
        let recs: Vec<LogRecord> = restored.iter_from(0).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].lsn, keep.lsn);
        // prev_lsn chains stay coherent across the rebase.
        assert_eq!(recs[1].prev_lsn, keep.lsn);
    }

    #[test]
    fn torn_image_tail_is_dropped_and_counted() {
        let mut lm = LogManager::new();
        lm.append(1, LogBody::Begin);
        let (c, _) = lm.append(1, LogBody::Commit);
        lm.flush();
        let mut image = lm.crash_image();
        let clean_len = image.len();
        // A torn write: half of a record made it to disk.
        let torn = LogRecord {
            lsn: 0,
            txn: 2,
            prev_lsn: NULL_LSN,
            body: LogBody::Insert {
                table: 0,
                rid: 1,
                after: vec![7; 40],
            },
        }
        .encode();
        image.extend_from_slice(&torn[..torn.len() / 2]);
        let torn_len = (image.len() - clean_len) as u64;

        let restored = LogManager::from_image(image);
        assert_eq!(restored.torn_bytes_dropped(), torn_len);
        assert_eq!(restored.tail_lsn(), clean_len as Lsn);
        assert_eq!(restored.durable_lsn(), clean_len as Lsn);
        // Appends after restore land on a clean boundary and decode back.
        let mut restored = restored;
        let (e, _) = restored.append(1, LogBody::End);
        assert_eq!(e.lsn, clean_len as Lsn);
        assert_eq!(e.prev_lsn, c.lsn);
        let recs: Vec<LogRecord> = restored.iter_from(0).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].body, LogBody::End);
    }

    #[test]
    fn clean_image_reports_zero_torn_bytes() {
        let mut lm = LogManager::new();
        lm.append(1, LogBody::Begin);
        lm.flush();
        let restored = LogManager::from_image(lm.crash_image());
        assert_eq!(restored.torn_bytes_dropped(), 0);
    }

    #[test]
    fn checkpoint_records_active_set() {
        let mut lm = LogManager::new();
        lm.append(9, LogBody::Begin);
        let ck = lm.checkpoint(0);
        assert_eq!(lm.last_checkpoint(), Some(ck));
        let rec = lm.read(ck).unwrap();
        match rec.body {
            LogBody::Checkpoint { active, redo_from } => {
                assert_eq!(active.len(), 1);
                assert_eq!(active[0].0, 9);
                assert_eq!(redo_from, 0);
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }
}
