//! Log-insertion timing models — software vs. hardware (§5.4).
//!
//! Three ways to get a record into the log buffer:
//!
//! * [`LatchedLog`] — the textbook serial log: one latch protects the tail;
//!   every insert acquires it, bumps the LSN, copies its payload. Crossing
//!   sockets drags the latch cache line along (the "\[7\] multi-socket open
//!   challenge").
//! * [`ConsolidatedLog`] — Aether-style consolidation \[7\]: threads that
//!   arrive while the buffer is busy *join* the in-flight group and ride its
//!   single latch acquisition, so the latch cost amortizes under load.
//! * [`HwLog`] — the paper's proposal: per-socket aggregation buffers with
//!   an asynchronous interface ("requests from the same socket can be
//!   aggregated before passing them on"), a PCIe hop, and a pipelined
//!   hardware arbiter whose "hardware-level arbitration is significantly
//!   simpler to reason about than a typical lock-free data structure".
//!
//! Each model answers: when is the record ordered in the buffer, how long
//! was the inserting core busy, and what energy was spent. Durability is a
//! separate, shared concern — [`GroupCommit`] batches flushes to the SSD.

use bionic_sim::dev::BlockDevice;
use bionic_sim::energy::Energy;
use bionic_sim::fpga::{FpgaFabric, FpgaUnit, OutOfArea};
use bionic_sim::link::Link;
use bionic_sim::server::FluidQueue;
use bionic_sim::time::SimTime;

/// Outcome of one log-insert through a timing model.
#[derive(Debug, Clone, Copy)]
pub struct InsertTiming {
    /// When the record is ordered in the log buffer (eligible for flush).
    pub buffered_at: SimTime,
    /// How long the inserting core was occupied (spin + copy, or enqueue).
    pub cpu_busy: SimTime,
    /// Energy spent outside the inserting core (fabric, PCIe). CPU energy
    /// is derived from `cpu_busy` by the caller's CPU model.
    pub energy: Energy,
}

/// A log-insertion timing model.
pub trait LogInsertModel {
    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Insert `bytes` of log payload from `agent` at time `arrive`.
    fn insert(&mut self, arrive: SimTime, agent: usize, bytes: u64) -> InsertTiming;
}

/// Shared software-side constants.
#[derive(Debug, Clone, Copy)]
pub struct SwLogParams {
    /// Latch acquire+release plus LSN arithmetic.
    pub latch_overhead: SimTime,
    /// Memory-copy bandwidth into the log buffer.
    pub copy_bytes_per_sec: f64,
    /// Latch cache-line transfer cost when ownership crosses sockets.
    pub socket_hop: SimTime,
    /// Cores per socket (maps agent index → socket).
    pub cores_per_socket: usize,
    /// Spin bound: past this, the thread blocks instead of spinning. The
    /// wait still delays `buffered_at` (and thus commit latency) but no
    /// longer burns the core.
    pub spin_cap: SimTime,
}

impl Default for SwLogParams {
    fn default() -> Self {
        SwLogParams {
            latch_overhead: SimTime::from_ns(60.0),
            copy_bytes_per_sec: 10e9,
            socket_hop: SimTime::from_ns(120.0),
            cores_per_socket: 8,
            spin_cap: SimTime::from_us(5.0),
        }
    }
}

impl SwLogParams {
    fn copy_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.copy_bytes_per_sec)
    }

    fn socket_of(&self, agent: usize) -> usize {
        agent / self.cores_per_socket
    }
}

/// The latch-serialized software log buffer.
///
/// Contention is modeled with a [`FluidQueue`] (windowed utilization), so
/// the engine's functional-order submissions don't fabricate backlog; the
/// latch still saturates at `1/service` inserts per second.
#[derive(Debug, Clone)]
pub struct LatchedLog {
    params: SwLogParams,
    latch: FluidQueue,
    last_socket: Option<usize>,
}

impl LatchedLog {
    /// Create with the given parameters.
    pub fn new(params: SwLogParams) -> Self {
        LatchedLog {
            params,
            latch: FluidQueue::latch(),
            last_socket: None,
        }
    }
}

impl LogInsertModel for LatchedLog {
    fn name(&self) -> &'static str {
        "latched"
    }

    fn insert(&mut self, arrive: SimTime, agent: usize, bytes: u64) -> InsertTiming {
        let socket = self.params.socket_of(agent);
        let hop = if self.last_socket.is_some_and(|s| s != socket) {
            self.params.socket_hop
        } else {
            SimTime::ZERO
        };
        self.last_socket = Some(socket);
        let service = self.params.latch_overhead + hop + self.params.copy_time(bytes);
        let wait = self.latch.delay(arrive, service);
        InsertTiming {
            buffered_at: arrive + wait + service,
            // The core spins through the wait up to the spin bound (past
            // which it blocks), then holds the latch for its own copy.
            cpu_busy: wait.min(self.params.spin_cap) + service,
            energy: Energy::ZERO,
        }
    }
}

/// The consolidation-array software log buffer (\[7\]).
///
/// Under load, threads that arrive while the buffer is busy *join* the
/// in-flight group and ride its single latch acquisition. Modeled on a
/// [`FluidQueue`]: the probability of being a group **leader** (paying the
/// full latch) falls with utilization, so the amortized latch cost — the
/// whole point of consolidation — emerges from the same load signal that
/// drives queueing.
#[derive(Debug, Clone)]
pub struct ConsolidatedLog {
    params: SwLogParams,
    buffer: FluidQueue,
    last_socket: Option<usize>,
    groups: f64,
    joins: f64,
}

impl ConsolidatedLog {
    /// Create with the given parameters.
    pub fn new(params: SwLogParams) -> Self {
        ConsolidatedLog {
            params,
            buffer: FluidQueue::latch(),
            last_socket: None,
            groups: 0.0,
            joins: 0.0,
        }
    }

    /// `(groups_formed, joins)` — joins rode an existing acquisition.
    pub fn consolidation_stats(&self) -> (u64, u64) {
        (self.groups.round() as u64, self.joins.round() as u64)
    }
}

impl LogInsertModel for ConsolidatedLog {
    fn name(&self) -> &'static str {
        "consolidated"
    }

    fn insert(&mut self, arrive: SimTime, agent: usize, bytes: u64) -> InsertTiming {
        let socket = self.params.socket_of(agent);
        let copy = self.params.copy_time(bytes);
        // Leader probability: an idle buffer makes every arrival a leader;
        // a saturated one absorbs almost everyone into in-flight groups.
        let leader_p = (1.0 - self.buffer.utilization(arrive)).clamp(0.02, 1.0);
        self.groups += leader_p;
        self.joins += 1.0 - leader_p;
        let hop = if self.last_socket.is_some_and(|s| s != socket) {
            self.params.socket_hop
        } else {
            SimTime::ZERO
        };
        self.last_socket = Some(socket);
        let service = copy + (self.params.latch_overhead + hop) * leader_p;
        let wait = self.buffer.delay(arrive, service);
        InsertTiming {
            buffered_at: arrive + wait + service,
            cpu_busy: wait.min(self.params.spin_cap) + service,
            energy: Energy::ZERO,
        }
    }
}

/// Configuration of the hardware log-insertion engine.
#[derive(Debug, Clone)]
pub struct HwLogConfig {
    /// Aggregation window per socket: requests within a window share one
    /// PCIe message.
    pub window: SimTime,
    /// Cost of the (latch-free, socket-local) enqueue on the CPU side.
    pub enqueue_cost: SimTime,
    /// PCIe message header bytes per aggregated batch.
    pub header_bytes: u64,
    /// Fabric cycles to arbitrate/sequence one record.
    pub cycles_per_record: u64,
    /// Fabric energy per record.
    pub energy_per_record: Energy,
    /// Fabric area of the unit.
    pub area_slices: u64,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Socket count.
    pub sockets: usize,
}

impl Default for HwLogConfig {
    fn default() -> Self {
        HwLogConfig {
            window: SimTime::from_ns(500.0),
            enqueue_cost: SimTime::from_ns(25.0),
            header_bytes: 64,
            cycles_per_record: 2,
            energy_per_record: Energy::from_pj(100.0),
            area_slices: 6_000,
            cores_per_socket: 8,
            sockets: 2,
        }
    }
}

/// The hardware log-insertion engine (§5.4).
#[derive(Debug, Clone)]
pub struct HwLog {
    cfg: HwLogConfig,
    /// Last aggregation window flushed per socket (for header accounting).
    last_window: Vec<u64>,
    /// Dedicated PCIe share for log traffic.
    pcie: Link,
    arbiter: FpgaUnit,
    records: u64,
    batches: u64,
}

impl HwLog {
    /// Place the engine on a fabric with a dedicated PCIe link model.
    pub fn place(fabric: &mut FpgaFabric, pcie: Link, cfg: HwLogConfig) -> Result<Self, OutOfArea> {
        let arbiter = fabric.place(
            "log-insert",
            cfg.cycles_per_record,
            64,
            cfg.energy_per_record,
            cfg.area_slices,
        )?;
        Ok(HwLog {
            last_window: vec![u64::MAX; cfg.sockets],
            pcie,
            arbiter,
            cfg,
            records: 0,
            batches: 0,
        })
    }

    /// Place with default config and an HC-2 PCIe link.
    pub fn hc2(fabric: &mut FpgaFabric) -> Result<Self, OutOfArea> {
        let pcie = Link::new(4e9, SimTime::from_us(1.0), Energy::from_pj(10.0));
        Self::place(fabric, pcie, HwLogConfig::default())
    }

    /// `(records, pcie_batches)` — aggregation effectiveness.
    pub fn aggregation_stats(&self) -> (u64, u64) {
        (self.records, self.batches)
    }
}

impl LogInsertModel for HwLog {
    fn name(&self) -> &'static str {
        "hardware"
    }

    fn insert(&mut self, arrive: SimTime, agent: usize, bytes: u64) -> InsertTiming {
        let socket = (agent / self.cfg.cores_per_socket).min(self.cfg.sockets - 1);
        // Socket-local enqueue into a per-core slot of the aggregation
        // buffer: a handful of stores, no shared latch — this constant cost
        // IS the §5.4 win on the CPU side.
        let enqueued = arrive + self.cfg.enqueue_cost;
        let cpu_busy = self.cfg.enqueue_cost;
        // The record ships at the end of its aggregation window.
        let w = self.cfg.window.as_ps().max(1);
        let window_idx = enqueued.as_ps() / w;
        let ship_at = SimTime::from_ps((window_idx + 1) * w);
        let header = if self.last_window[socket] != window_idx {
            self.last_window[socket] = window_idx;
            self.batches += 1;
            self.cfg.header_bytes
        } else {
            0
        };
        let (pcie_done, pcie_energy) = self.pcie.transfer_unqueued(ship_at, header + bytes);
        let (buffered_at, fabric_energy) = self.arbiter.submit(pcie_done);
        self.records += 1;
        InsertTiming {
            buffered_at,
            cpu_busy,
            energy: pcie_energy + fabric_energy,
        }
    }
}

/// Group commit: batches durability flushes to the log SSD.
///
/// All three insertion models share this path — Figure 4 keeps "log files"
/// on the host SSD and "log sync & recovery" in software regardless of how
/// insertion is implemented.
#[derive(Debug, Clone)]
pub struct GroupCommit {
    interval: SimTime,
    ssd: BlockDevice,
    offset: u64,
    flushes: u64,
    last_boundary: Option<SimTime>,
    last_done: SimTime,
    per_byte: Energy,
}

impl GroupCommit {
    /// Group commit with the given flush interval over `ssd`.
    pub fn new(interval: SimTime, ssd: BlockDevice) -> Self {
        GroupCommit {
            interval,
            ssd,
            offset: 0,
            flushes: 0,
            last_boundary: None,
            last_done: SimTime::ZERO,
            per_byte: Energy::from_nj(0.5),
        }
    }

    /// Default: 20 µs boundaries over an HC-2 SSD.
    pub fn hc2() -> Self {
        Self::new(SimTime::from_us(20.0), BlockDevice::ssd())
    }

    /// When does a record buffered at `buffered_at` become durable, and what
    /// energy does its share of the flush cost? Commits landing on the same
    /// boundary ride ONE device write — that is the whole point of group
    /// commit — so followers pay only their per-byte share.
    pub fn durable_at(&mut self, buffered_at: SimTime, bytes: u64) -> (SimTime, Energy) {
        let w = self.interval.as_ps().max(1);
        let boundary = SimTime::from_ps(buffered_at.as_ps().div_ceil(w) * w);
        if self.last_boundary == Some(boundary) {
            self.offset += bytes;
            return (self.last_done, self.per_byte * bytes);
        }
        let (done, energy) = self.ssd.write(boundary, self.offset, bytes);
        self.offset += bytes;
        self.flushes += 1;
        self.last_boundary = Some(boundary);
        self.last_done = done;
        (done, energy)
    }

    /// Flushes issued.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `model` with `threads` agents in a closed loop for `n` total
    /// inserts of `bytes` each, `think` apart; return inserts/sec.
    fn closed_loop_throughput(
        model: &mut dyn LogInsertModel,
        threads: usize,
        n: u64,
        bytes: u64,
        think: SimTime,
    ) -> f64 {
        let mut clocks = vec![SimTime::ZERO; threads];
        let mut last = SimTime::ZERO;
        for i in 0..n {
            let t = (i % threads as u64) as usize;
            let out = model.insert(clocks[t] + think, t, bytes);
            clocks[t] = clocks[t] + think + out.cpu_busy;
            last = last.max(out.buffered_at);
        }
        n as f64 / last.as_secs()
    }

    #[test]
    fn latched_log_serializes() {
        let mut l = LatchedLog::new(SwLogParams::default());
        let a = l.insert(SimTime::ZERO, 0, 100);
        let b = l.insert(SimTime::ZERO, 1, 100);
        assert!(b.buffered_at > a.buffered_at);
        // Thread 1 spun waiting for the latch.
        assert!(b.cpu_busy > a.cpu_busy);
    }

    #[test]
    fn cross_socket_inserts_pay_the_hop() {
        let params = SwLogParams::default();
        let mut same = LatchedLog::new(params);
        same.insert(SimTime::ZERO, 0, 100);
        let s = same.insert(SimTime::from_us(1.0), 1, 100); // same socket
        let mut cross = LatchedLog::new(params);
        cross.insert(SimTime::ZERO, 0, 100);
        let c = cross.insert(SimTime::from_us(1.0), 8, 100); // other socket
        let delta = c.cpu_busy.as_ns() - s.cpu_busy.as_ns();
        // 120ns hop plus a few ns of modeled queueing difference.
        assert!((delta - 120.0).abs() < 15.0, "delta={delta}");
    }

    #[test]
    fn consolidation_amortizes_the_latch() {
        // Under heavy contention the consolidated buffer approaches pure
        // copy bandwidth while the latched one pays the latch per record.
        let params = SwLogParams::default();
        let bytes = 100u64;
        let mut latched = LatchedLog::new(params);
        let mut consolidated = ConsolidatedLog::new(params);
        let tp_latched =
            closed_loop_throughput(&mut latched, 16, 20_000, bytes, SimTime::from_ns(50.0));
        let tp_cons =
            closed_loop_throughput(&mut consolidated, 16, 20_000, bytes, SimTime::from_ns(50.0));
        assert!(
            tp_cons > 2.0 * tp_latched,
            "consolidated={tp_cons:.0}/s latched={tp_latched:.0}/s"
        );
        let (groups, joins) = consolidated.consolidation_stats();
        assert!(joins > groups, "groups={groups} joins={joins}");
    }

    #[test]
    fn hardware_log_scales_past_software() {
        // E5's headline: at high thread counts the hardware engine beats
        // both software schemes on insert throughput.
        let bytes = 100u64;
        let think = SimTime::from_ns(50.0);
        let mut fabric = FpgaFabric::hc2();
        let mut hw = HwLog::hc2(&mut fabric).unwrap();
        let mut latched = LatchedLog::new(SwLogParams::default());
        let tp_hw = closed_loop_throughput(&mut hw, 32, 20_000, bytes, think);
        let tp_latched = closed_loop_throughput(&mut latched, 32, 20_000, bytes, think);
        assert!(
            tp_hw > 3.0 * tp_latched,
            "hw={tp_hw:.0}/s latched={tp_latched:.0}/s"
        );
    }

    #[test]
    fn hardware_inserts_are_asynchronous_but_not_faster_per_record() {
        // §3: "throughput will improve, even if individual requests take
        // just as long to complete." A single hw insert has *higher* latency
        // (window + 1us PCIe) but occupies the core for only ~25ns.
        let mut fabric = FpgaFabric::hc2();
        let mut hw = HwLog::hc2(&mut fabric).unwrap();
        let out = hw.insert(SimTime::ZERO, 0, 100);
        assert!(out.cpu_busy.as_ns() < 30.0);
        assert!(out.buffered_at.as_us() > 1.0, "at={}", out.buffered_at);

        let mut sw = LatchedLog::new(SwLogParams::default());
        let sw_out = sw.insert(SimTime::ZERO, 0, 100);
        assert!(sw_out.buffered_at < out.buffered_at);
        assert!(sw_out.cpu_busy > out.cpu_busy);
    }

    #[test]
    fn aggregation_shares_pcie_headers() {
        let mut fabric = FpgaFabric::hc2();
        let mut hw = HwLog::hc2(&mut fabric).unwrap();
        // 100 inserts inside one 500ns window from one socket: one batch.
        for i in 0..10 {
            hw.insert(SimTime::from_ns(i as f64 * 10.0), 0, 50);
        }
        let (records, batches) = hw.aggregation_stats();
        assert_eq!(records, 10);
        assert!(batches <= 2, "batches={batches}");
    }

    #[test]
    fn group_commit_batches_to_boundaries() {
        let mut gc = GroupCommit::hc2();
        let (d1, _) = gc.durable_at(SimTime::from_us(3.0), 500);
        // Buffered at 3us -> boundary 20us -> +20us SSD access.
        assert!(d1.as_us() >= 40.0 - 1e-6, "d1={d1}");
        let (d2, _) = gc.durable_at(SimTime::from_us(19.0), 500);
        assert!(d2 >= d1);
    }
}
