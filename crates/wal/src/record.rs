//! Log records and their binary encoding.
//!
//! Records carry physical before/after images addressed by `(table, rid)`,
//! plus the per-transaction `prev_lsn` chain that undo walks backwards.
//! The encoding is a plain length-prefixed binary layout — a log is the one
//! place where bytes on disk *are* the contract, so the format is explicit
//! rather than derived.
//!
//! Every record carries an FNV-1a checksum over its payload. [`LogRecord::decode`]
//! treats any violation — short length, bad checksum, unknown kind or CLR
//! action tag — as end-of-valid-log and returns `None`; it never panics on
//! log bytes, however mangled. That is what lets recovery stop cleanly at a
//! torn or bit-flipped tail instead of taking the process down.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Log sequence number: the byte offset of a record in the log.
pub type Lsn = u64;

/// Transaction identifier.
pub type TxnId = u64;

/// LSN value meaning "none" (start of chain).
pub const NULL_LSN: Lsn = u64::MAX;

/// The action a compensation (CLR) performs when replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClrAction {
    /// Re-install an image at `(table, rid)` (undo of update/delete).
    Install {
        /// Table being compensated.
        table: u32,
        /// Record address.
        rid: u64,
        /// Image to install.
        image: Vec<u8>,
    },
    /// Delete `(table, rid)` (undo of insert).
    Remove {
        /// Table being compensated.
        table: u32,
        /// Record address.
        rid: u64,
    },
}

/// Payload of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogBody {
    /// Transaction start.
    Begin,
    /// Transaction commit (durable once flushed).
    Commit,
    /// Transaction abort (undo follows as CLRs).
    Abort,
    /// Transaction fully undone / finished after abort.
    End,
    /// Physical insert.
    Insert {
        /// Table id.
        table: u32,
        /// Record address (packed `RecordId`).
        rid: u64,
        /// Inserted image.
        after: Vec<u8>,
    },
    /// Physical update.
    Update {
        /// Table id.
        table: u32,
        /// Record address.
        rid: u64,
        /// Pre-image (for undo).
        before: Vec<u8>,
        /// Post-image (for redo).
        after: Vec<u8>,
    },
    /// Physical delete.
    Delete {
        /// Table id.
        table: u32,
        /// Record address.
        rid: u64,
        /// Pre-image (for undo).
        before: Vec<u8>,
    },
    /// Compensation record: `undo_next` continues the undo chain.
    Clr {
        /// Next record to undo for this transaction.
        undo_next: Lsn,
        /// The compensating action (idempotently redoable).
        action: ClrAction,
    },
    /// Checkpoint: transactions active at checkpoint time, plus the LSN
    /// redo may start from (for *sharp* checkpoints — where the caller
    /// flushed all dirty pages first — this is the checkpoint's own LSN;
    /// fuzzy checkpoints pass the min recovery LSN, or 0 when unknown).
    Checkpoint {
        /// Active transaction ids and their last LSNs.
        active: Vec<(TxnId, Lsn)>,
        /// Earliest LSN whose effects might not be on disk.
        redo_from: Lsn,
    },
    /// Two-phase-commit prepare vote: once this record is durable the
    /// participant may no longer unilaterally abort the branch — the
    /// decision belongs to the coordinator named here. A prepared branch
    /// found at recovery with no later Commit/End is *in doubt* and must
    /// be resolved against the coordinator's log (presumed abort: no
    /// durable decision means abort).
    Prepare {
        /// Cluster-global transaction id this local branch belongs to.
        gtxn: u64,
        /// Coordinator node id holding the commit decision.
        coord: u32,
    },
}

impl LogBody {
    /// Is this body a data modification (redoable)?
    pub fn is_redoable(&self) -> bool {
        matches!(
            self,
            LogBody::Insert { .. }
                | LogBody::Update { .. }
                | LogBody::Delete { .. }
                | LogBody::Clr { .. }
        )
    }

    fn kind(&self) -> u8 {
        match self {
            LogBody::Begin => 0,
            LogBody::Commit => 1,
            LogBody::Abort => 2,
            LogBody::End => 3,
            LogBody::Insert { .. } => 4,
            LogBody::Update { .. } => 5,
            LogBody::Delete { .. } => 6,
            LogBody::Clr { .. } => 7,
            LogBody::Checkpoint { .. } => 8,
            LogBody::Prepare { .. } => 9,
        }
    }
}

/// A log-record payload by reference — the zero-copy twin of [`LogBody`]
/// for the hot append path. Encodes to exactly the same bytes as the owned
/// variant with the same fields (test-enforced); images are borrowed so a
/// caller can log straight out of its scratch buffers. CLRs and checkpoints
/// (rare, recovery-side) stay on the owned [`LogBody`] path.
#[derive(Debug, Clone, Copy)]
pub enum LogBodyRef<'a> {
    /// Transaction start.
    Begin,
    /// Transaction commit.
    Commit,
    /// Transaction abort.
    Abort,
    /// Transaction fully undone / finished after abort.
    End,
    /// Physical insert.
    Insert {
        /// Table id.
        table: u32,
        /// Record address (packed `RecordId`).
        rid: u64,
        /// Inserted image.
        after: &'a [u8],
    },
    /// Physical update.
    Update {
        /// Table id.
        table: u32,
        /// Record address.
        rid: u64,
        /// Pre-image (for undo).
        before: &'a [u8],
        /// Post-image (for redo).
        after: &'a [u8],
    },
    /// Physical delete.
    Delete {
        /// Table id.
        table: u32,
        /// Record address.
        rid: u64,
        /// Pre-image (for undo).
        before: &'a [u8],
    },
    /// Two-phase-commit prepare vote (see [`LogBody::Prepare`]).
    Prepare {
        /// Cluster-global transaction id.
        gtxn: u64,
        /// Coordinator node id.
        coord: u32,
    },
}

fn push_image(out: &mut Vec<u8>, img: &[u8]) {
    out.extend_from_slice(&(img.len() as u32).to_le_bytes());
    out.extend_from_slice(img);
}

impl LogBodyRef<'_> {
    /// Is this body a data modification (redoable)?
    pub fn is_redoable(&self) -> bool {
        matches!(
            self,
            LogBodyRef::Insert { .. } | LogBodyRef::Update { .. } | LogBodyRef::Delete { .. }
        )
    }

    fn kind(&self) -> u8 {
        match self {
            LogBodyRef::Begin => 0,
            LogBodyRef::Commit => 1,
            LogBodyRef::Abort => 2,
            LogBodyRef::End => 3,
            LogBodyRef::Insert { .. } => 4,
            LogBodyRef::Update { .. } => 5,
            LogBodyRef::Delete { .. } => 6,
            LogBodyRef::Prepare { .. } => 9,
        }
    }

    /// Append the full record encoding (`u32 payload_len | u32 checksum |
    /// payload`) for this body directly to `out`, returning the bytes
    /// written. Byte-identical to [`LogRecord::encode`] of the owned
    /// equivalent, without the intermediate buffers.
    pub fn encode_append(&self, txn: TxnId, prev_lsn: Lsn, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.extend_from_slice(&[0u8; 8]); // length + checksum, backfilled
        out.push(self.kind());
        out.extend_from_slice(&txn.to_le_bytes());
        out.extend_from_slice(&prev_lsn.to_le_bytes());
        match *self {
            LogBodyRef::Begin | LogBodyRef::Commit | LogBodyRef::Abort | LogBodyRef::End => {}
            LogBodyRef::Insert { table, rid, after } => {
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_le_bytes());
                push_image(out, after);
            }
            LogBodyRef::Update {
                table,
                rid,
                before,
                after,
            } => {
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_le_bytes());
                push_image(out, before);
                push_image(out, after);
            }
            LogBodyRef::Delete { table, rid, before } => {
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_le_bytes());
                push_image(out, before);
            }
            LogBodyRef::Prepare { gtxn, coord } => {
                out.extend_from_slice(&gtxn.to_le_bytes());
                out.extend_from_slice(&coord.to_le_bytes());
            }
        }
        let body_len = out.len() - start - 8;
        let csum = fnv1a(&out[start + 8..]);
        out[start..start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
        out[start + 4..start + 8].copy_from_slice(&csum.to_le_bytes());
        body_len + 8
    }
}

/// A complete log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// This record's LSN (byte offset in the log).
    pub lsn: Lsn,
    /// Owning transaction (0 for checkpoints).
    pub txn: TxnId,
    /// Previous record of the same transaction ([`NULL_LSN`] if first).
    pub prev_lsn: Lsn,
    /// Payload.
    pub body: LogBody,
}

fn put_image(buf: &mut BytesMut, img: &[u8]) {
    buf.put_u32_le(img.len() as u32);
    buf.put_slice(img);
}

fn get_image(buf: &mut Bytes) -> Option<Vec<u8>> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let img = buf[..len].to_vec();
    buf.advance(len);
    Some(img)
}

/// 32-bit FNV-1a over a byte slice — the per-record payload checksum.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl LogRecord {
    /// Encode to bytes:
    /// `u32 payload_len | u32 fnv1a(payload) | payload`, where the payload is
    /// `u8 kind | u64 txn | u64 prev | body`.
    /// The LSN itself is implicit (it is the record's offset).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = BytesMut::with_capacity(64);
        body.put_u8(self.body.kind());
        body.put_u64_le(self.txn);
        body.put_u64_le(self.prev_lsn);
        match &self.body {
            LogBody::Begin | LogBody::Commit | LogBody::Abort | LogBody::End => {}
            LogBody::Insert { table, rid, after } => {
                body.put_u32_le(*table);
                body.put_u64_le(*rid);
                put_image(&mut body, after);
            }
            LogBody::Update {
                table,
                rid,
                before,
                after,
            } => {
                body.put_u32_le(*table);
                body.put_u64_le(*rid);
                put_image(&mut body, before);
                put_image(&mut body, after);
            }
            LogBody::Delete { table, rid, before } => {
                body.put_u32_le(*table);
                body.put_u64_le(*rid);
                put_image(&mut body, before);
            }
            LogBody::Clr { undo_next, action } => {
                body.put_u64_le(*undo_next);
                match action {
                    ClrAction::Install { table, rid, image } => {
                        body.put_u8(0);
                        body.put_u32_le(*table);
                        body.put_u64_le(*rid);
                        put_image(&mut body, image);
                    }
                    ClrAction::Remove { table, rid } => {
                        body.put_u8(1);
                        body.put_u32_le(*table);
                        body.put_u64_le(*rid);
                    }
                }
            }
            LogBody::Checkpoint { active, redo_from } => {
                body.put_u64_le(*redo_from);
                body.put_u32_le(active.len() as u32);
                for (t, l) in active {
                    body.put_u64_le(*t);
                    body.put_u64_le(*l);
                }
            }
            LogBody::Prepare { gtxn, coord } => {
                body.put_u64_le(*gtxn);
                body.put_u32_le(*coord);
            }
        }
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode the record starting at offset `lsn` in `log`. Returns the
    /// record and the offset of the next one. `None` on a truncated tail or
    /// any corruption (checksum mismatch, invalid kind/action tag, payload
    /// shorter than its fields claim) — decode never panics on log bytes.
    pub fn decode(log: &[u8], lsn: Lsn) -> Option<(LogRecord, Lsn)> {
        let off = lsn as usize;
        if off + 8 > log.len() {
            return None;
        }
        let body_len = u32::from_le_bytes(log[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + body_len > log.len() {
            return None;
        }
        let csum = u32::from_le_bytes(log[off + 4..off + 8].try_into().unwrap());
        let payload = &log[off + 8..off + 8 + body_len];
        if fnv1a(payload) != csum {
            return None;
        }
        let mut buf = Bytes::copy_from_slice(payload);
        if buf.remaining() < 17 {
            return None;
        }
        let kind = buf.get_u8();
        let txn = buf.get_u64_le();
        let prev_lsn = buf.get_u64_le();
        let body = match kind {
            0 => LogBody::Begin,
            1 => LogBody::Commit,
            2 => LogBody::Abort,
            3 => LogBody::End,
            4 => {
                if buf.remaining() < 12 {
                    return None;
                }
                let table = buf.get_u32_le();
                let rid = buf.get_u64_le();
                LogBody::Insert {
                    table,
                    rid,
                    after: get_image(&mut buf)?,
                }
            }
            5 => {
                if buf.remaining() < 12 {
                    return None;
                }
                let table = buf.get_u32_le();
                let rid = buf.get_u64_le();
                let before = get_image(&mut buf)?;
                let after = get_image(&mut buf)?;
                LogBody::Update {
                    table,
                    rid,
                    before,
                    after,
                }
            }
            6 => {
                if buf.remaining() < 12 {
                    return None;
                }
                let table = buf.get_u32_le();
                let rid = buf.get_u64_le();
                LogBody::Delete {
                    table,
                    rid,
                    before: get_image(&mut buf)?,
                }
            }
            7 => {
                if buf.remaining() < 9 {
                    return None;
                }
                let undo_next = buf.get_u64_le();
                let action = match buf.get_u8() {
                    0 => {
                        if buf.remaining() < 12 {
                            return None;
                        }
                        let table = buf.get_u32_le();
                        let rid = buf.get_u64_le();
                        ClrAction::Install {
                            table,
                            rid,
                            image: get_image(&mut buf)?,
                        }
                    }
                    1 => {
                        if buf.remaining() < 12 {
                            return None;
                        }
                        let table = buf.get_u32_le();
                        let rid = buf.get_u64_le();
                        ClrAction::Remove { table, rid }
                    }
                    _ => return None,
                };
                LogBody::Clr { undo_next, action }
            }
            8 => {
                if buf.remaining() < 12 {
                    return None;
                }
                let redo_from = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n.checked_mul(16)? {
                    return None;
                }
                let mut active = Vec::with_capacity(n);
                for _ in 0..n {
                    let t = buf.get_u64_le();
                    let l = buf.get_u64_le();
                    active.push((t, l));
                }
                LogBody::Checkpoint { active, redo_from }
            }
            9 => {
                if buf.remaining() < 12 {
                    return None;
                }
                let gtxn = buf.get_u64_le();
                let coord = buf.get_u32_le();
                LogBody::Prepare { gtxn, coord }
            }
            _ => return None,
        };
        Some((
            LogRecord {
                lsn,
                txn,
                prev_lsn,
                body,
            },
            lsn + 8 + body_len as u64,
        ))
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(body: LogBody) {
        let rec = LogRecord {
            lsn: 128,
            txn: 42,
            prev_lsn: 64,
            body,
        };
        let mut log = vec![0u8; 128];
        log.extend(rec.encode());
        let (decoded, next) = LogRecord::decode(&log, 128).unwrap();
        assert_eq!(decoded, rec);
        assert_eq!(next as usize, log.len());
    }

    #[test]
    fn all_bodies_round_trip() {
        round_trip(LogBody::Begin);
        round_trip(LogBody::Commit);
        round_trip(LogBody::Abort);
        round_trip(LogBody::End);
        round_trip(LogBody::Insert {
            table: 3,
            rid: 0xABCD,
            after: b"new row".to_vec(),
        });
        round_trip(LogBody::Update {
            table: 1,
            rid: 7,
            before: b"old".to_vec(),
            after: b"new and longer".to_vec(),
        });
        round_trip(LogBody::Delete {
            table: 2,
            rid: 9,
            before: vec![0xFF; 300],
        });
        round_trip(LogBody::Clr {
            undo_next: NULL_LSN,
            action: ClrAction::Install {
                table: 1,
                rid: 5,
                image: b"restored".to_vec(),
            },
        });
        round_trip(LogBody::Clr {
            undo_next: 77,
            action: ClrAction::Remove { table: 4, rid: 11 },
        });
        round_trip(LogBody::Checkpoint {
            active: vec![(1, 100), (2, 200)],
            redo_from: 64,
        });
        round_trip(LogBody::Checkpoint {
            active: vec![],
            redo_from: 0,
        });
        round_trip(LogBody::Prepare {
            gtxn: 0x8000_0000_0000_0001,
            coord: 3,
        });
    }

    #[test]
    fn truncated_tail_decodes_to_none() {
        let rec = LogRecord {
            lsn: 0,
            txn: 1,
            prev_lsn: NULL_LSN,
            body: LogBody::Insert {
                table: 1,
                rid: 2,
                after: vec![1, 2, 3, 4],
            },
        };
        let full = rec.encode();
        for cut in 0..full.len() {
            assert!(
                LogRecord::decode(&full[..cut], 0).is_none(),
                "cut at {cut} should be detected as truncated"
            );
        }
        assert!(LogRecord::decode(&full, 0).is_some());
    }

    #[test]
    fn sequential_decode_walks_the_log() {
        let mut log = Vec::new();
        let mut lsns = Vec::new();
        for i in 0..10u64 {
            let rec = LogRecord {
                lsn: log.len() as u64,
                txn: i,
                prev_lsn: NULL_LSN,
                body: LogBody::Begin,
            };
            lsns.push(rec.lsn);
            log.extend(rec.encode());
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((rec, next)) = LogRecord::decode(&log, at) {
            seen.push(rec.lsn);
            at = next;
        }
        assert_eq!(seen, lsns);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let rec = LogRecord {
            lsn: 0,
            txn: 9,
            prev_lsn: 17,
            body: LogBody::Update {
                table: 2,
                rid: 5,
                before: b"aaaa".to_vec(),
                after: b"bbbbbb".to_vec(),
            },
        };
        let clean = rec.encode();
        assert!(LogRecord::decode(&clean, 0).is_some());
        // Flip every bit of the payload and checksum: decode must reject
        // each mutant (return None), never panic, never mis-decode.
        for byte in 4..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                match LogRecord::decode(&bad, 0) {
                    None => {}
                    Some((got, _)) => panic!(
                        "flip at byte {byte} bit {bit} decoded as {got:?} instead of being rejected"
                    ),
                }
            }
        }
    }

    #[test]
    fn invalid_kind_tag_with_valid_checksum_is_rejected() {
        // Hand-build a record whose checksum is correct but whose kind tag
        // is out of range: validation must catch the tag, not just the sum.
        for kind in [10u8, 42, 0xFF] {
            let mut payload = vec![kind];
            payload.extend_from_slice(&7u64.to_le_bytes());
            payload.extend_from_slice(&NULL_LSN.to_le_bytes());
            let mut log = (payload.len() as u32).to_le_bytes().to_vec();
            log.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            log.extend_from_slice(&payload);
            assert!(
                LogRecord::decode(&log, 0).is_none(),
                "kind {kind} must be rejected"
            );
        }
    }

    #[test]
    fn invalid_clr_action_tag_with_valid_checksum_is_rejected() {
        let mut payload = vec![7u8]; // CLR kind
        payload.extend_from_slice(&3u64.to_le_bytes()); // txn
        payload.extend_from_slice(&NULL_LSN.to_le_bytes()); // prev
        payload.extend_from_slice(&NULL_LSN.to_le_bytes()); // undo_next
        payload.push(2); // invalid action tag
        let mut log = (payload.len() as u32).to_le_bytes().to_vec();
        log.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        log.extend_from_slice(&payload);
        assert!(LogRecord::decode(&log, 0).is_none());
    }

    #[test]
    fn redoable_classification() {
        assert!(!LogBody::Begin.is_redoable());
        assert!(!LogBody::Commit.is_redoable());
        assert!(!LogBody::Prepare { gtxn: 1, coord: 0 }.is_redoable());
        assert!(LogBody::Insert {
            table: 0,
            rid: 0,
            after: vec![]
        }
        .is_redoable());
        assert!(LogBody::Clr {
            undo_next: 0,
            action: ClrAction::Remove { table: 0, rid: 0 }
        }
        .is_redoable());
    }
}
