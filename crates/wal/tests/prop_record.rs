//! Property tests for the WAL record codec: round-trips over arbitrary
//! bodies (including empty and page-sized images), tag validation, and
//! corruption rejection. These back the fault-injection framework — the
//! chaos harness bit-flips log bytes and relies on `decode` rejecting every
//! mutant instead of panicking or mis-decoding.

use bionic_wal::record::{fnv1a, ClrAction, LogBody, LogRecord, Lsn, NULL_LSN};
use proptest::prelude::*;

/// Largest image a record may carry in these tests: a full page, the
/// natural upper bound for physical before/after images.
const MAX_IMAGE: usize = 4096;

fn image() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        Just(Vec::new()),                               // empty image
        Just(vec![0xEE; MAX_IMAGE]),                    // max-size image
        prop::collection::vec(any::<u8>(), 0..512),     // typical
        prop::collection::vec(any::<u8>(), 4000..4097), // near-max
    ]
}

fn body() -> impl Strategy<Value = LogBody> {
    prop_oneof![
        Just(LogBody::Begin),
        Just(LogBody::Commit),
        Just(LogBody::Abort),
        Just(LogBody::End),
        (any::<u32>(), any::<u64>(), image()).prop_map(|(table, rid, after)| LogBody::Insert {
            table,
            rid,
            after
        }),
        (any::<u32>(), any::<u64>(), image(), image()).prop_map(|(table, rid, before, after)| {
            LogBody::Update {
                table,
                rid,
                before,
                after,
            }
        }),
        (any::<u32>(), any::<u64>(), image()).prop_map(|(table, rid, before)| LogBody::Delete {
            table,
            rid,
            before
        }),
        (any::<u64>(), any::<u32>(), any::<u64>(), image()).prop_map(
            |(undo_next, table, rid, img)| LogBody::Clr {
                undo_next,
                action: ClrAction::Install {
                    table,
                    rid,
                    image: img,
                },
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(undo_next, table, rid)| {
            LogBody::Clr {
                undo_next,
                action: ClrAction::Remove { table, rid },
            }
        }),
        (
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..20),
            any::<u64>()
        )
            .prop_map(|(active, redo_from)| LogBody::Checkpoint { active, redo_from }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_body_round_trips(
        body in body(),
        txn in any::<u64>(),
        prev in any::<u64>(),
        pad in 0usize..64,
    ) {
        let rec = LogRecord { lsn: pad as Lsn, txn, prev_lsn: prev, body };
        let mut log = vec![0u8; pad];
        log.extend(rec.encode());
        let (decoded, next) = LogRecord::decode(&log, pad as Lsn).expect("valid record decodes");
        prop_assert_eq!(&decoded, &rec);
        prop_assert_eq!(next as usize, log.len());
        // Every strict prefix of the record is rejected as truncated.
        for cut in [pad, pad + 1, pad + 7, pad + 8, log.len() - 1] {
            prop_assert!(LogRecord::decode(&log[..cut], pad as Lsn).is_none());
        }
    }

    #[test]
    fn single_byte_corruption_never_decodes_to_a_different_record(
        body in body(),
        txn in any::<u64>(),
        at in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let rec = LogRecord { lsn: 0, txn, prev_lsn: NULL_LSN, body };
        let clean = rec.encode();
        let mut bad = clean.clone();
        let i = at % bad.len();
        bad[i] ^= flip;
        match LogRecord::decode(&bad, 0) {
            // Rejection is the expected outcome for payload corruption; a
            // length-field flip may leave a shorter-but-valid view only if
            // it re-frames to the identical record (impossible: the bytes
            // differ), so any successful decode must equal the original —
            // which the checksum makes unreachable for payload bytes.
            None => {}
            Some((got, _)) => prop_assert_eq!(got, rec, "corrupt bytes mis-decoded"),
        }
    }

    #[test]
    fn invalid_kind_tags_are_rejected(
        kind in 9u8..=255,
        txn in any::<u64>(),
        prev in any::<u64>(),
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Hand-build a record with a correct checksum but an out-of-range
        // kind: validation must catch the tag itself.
        let mut payload = vec![kind];
        payload.extend_from_slice(&txn.to_le_bytes());
        payload.extend_from_slice(&prev.to_le_bytes());
        payload.extend_from_slice(&junk);
        let mut log = (payload.len() as u32).to_le_bytes().to_vec();
        log.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        log.extend_from_slice(&payload);
        prop_assert!(LogRecord::decode(&log, 0).is_none());
    }

    #[test]
    fn back_to_back_records_decode_sequentially(
        bodies in prop::collection::vec(body(), 1..16),
    ) {
        let mut log = Vec::new();
        let mut expect = Vec::new();
        for (i, b) in bodies.into_iter().enumerate() {
            let rec = LogRecord {
                lsn: log.len() as Lsn,
                txn: i as u64,
                prev_lsn: NULL_LSN,
                body: b,
            };
            log.extend(rec.encode());
            expect.push(rec);
        }
        let mut at: Lsn = 0;
        let mut got = Vec::new();
        while let Some((rec, next)) = LogRecord::decode(&log, at) {
            got.push(rec);
            at = next;
        }
        prop_assert_eq!(at as usize, log.len(), "walk consumes the whole log");
        prop_assert_eq!(got, expect);
    }
}
