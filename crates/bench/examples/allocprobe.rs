//! Quick allocation/throughput probe for the E8 hot loop (dev tool).
//!
//! Run with `cargo run --release -p bionic-bench --example allocprobe`.
//! Prints events/s and allocations per transaction for the TATP batched
//! loop under the software and bionic configurations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new as u64, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new) }
    }
}

#[global_allocator]
static A: Counting = Counting;

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};

fn probe(name: &str, cfg: EngineConfig, n: u64) {
    let wl = TatpConfig {
        subscribers: 100_000,
        ..Default::default()
    };
    let mut engine = Engine::new(cfg);
    let tables = tatp::load(&mut engine, &wl);
    let mut g = TatpGenerator::new(wl, tables);
    // Warmup to fill caches/maps and grow the reusable pools.
    bionic_workloads::run_batched_pooled(&mut engine, 2_000, SimTime::from_ns(100.0), 32, &mut g);
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let rep =
        bionic_workloads::run_batched_pooled(&mut engine, n, SimTime::from_ns(100.0), 32, &mut g);
    let dt = t0.elapsed().as_secs_f64();
    let da = ALLOCS.load(Ordering::Relaxed) - a0;
    let db = BYTES.load(Ordering::Relaxed) - b0;
    println!(
        "{name}: {n} txns in {dt:.3}s = {:.0} txn/s | {:.1} allocs/txn, {:.0} B/txn | committed {}",
        n as f64 / dt,
        da as f64 / n as f64,
        db as f64 / n as f64,
        rep.committed
    );
}

fn probe_hybrid(n: u64) {
    use bionic_workloads::hybrid::{run_hybrid, HybridConfig};
    let mut engine = Engine::new(EngineConfig::bionic());
    let cfg = HybridConfig {
        tatp: TatpConfig {
            subscribers: 100_000,
            ..Default::default()
        },
        txns: n,
        inter_arrival: SimTime::from_us(2.0),
        scan_pressure: 0.5,
        scan_rows: 1_000_000,
        range_queries: true,
        software_scans: false,
        snapshot_window: None,
    };
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = std::time::Instant::now();
    let r = run_hybrid(&mut engine, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    let da = ALLOCS.load(Ordering::Relaxed) - a0;
    println!(
        "hybrid  : {n} txns in {dt:.3}s = {:.0} txn/s | {:.1} allocs/txn | scans {}",
        n as f64 / dt,
        da as f64 / n as f64,
        r.scans
    );
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    probe("software", EngineConfig::software(), n);
    probe("bionic  ", EngineConfig::bionic(), n);
    probe_hybrid(n.min(64_000));
}
