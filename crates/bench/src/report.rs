//! Run-report assembly: turn the CSV tables a `figures` run left in its
//! results directory into a [`RunReport`] scoreboard (JSON + markdown)
//! with knee/valley detectors over the E13/E14 sweeps.
//!
//! The builder reads only checked-schema tables it knows about
//! (`e13_hybrid`, `e13_attrib`, `e14_brownout`, `e14_attrib`); absent
//! tables are skipped so partial runs (`figures e13`) still report.
//! Every row is prefixed with a synthesized `key` column joining the
//! table's natural-key cells with `/` —
//! [`bionic_telemetry::report::diff_reports`] matches rows by first
//! cell, and e14's raw first cell (`config`) repeats across the
//! fault-rate sweep.

use std::path::{Path, PathBuf};

use bionic_telemetry::report::{
    detect_knee, detect_valley, parse_csv, DetectorResult, ExperimentReport, RunReport,
};

/// How to detect a feature in one numeric column of a source table.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// First row whose value reaches `factor` × the first row's value.
    Knee(f64),
    /// Strict interior minimum (endpoints excluded).
    Valley,
}

/// One detector registration: a named shape over a column.
#[derive(Debug, Clone, Copy)]
struct Detector {
    name: &'static str,
    column: &'static str,
    shape: Shape,
}

/// One source table the report builder understands.
struct Source {
    id: &'static str,
    table: &'static str,
    /// Columns joined (in order) into the synthesized row key.
    key_cols: &'static [&'static str],
    /// Keep only rows whose `column` cell equals `value` — lets two
    /// report views (each with its own detectors) share one table, as
    /// the e15 pressure/fault sweeps do. `None` keeps every row.
    filter: Option<(&'static str, &'static str)>,
    detectors: &'static [Detector],
}

const SOURCES: &[Source] = &[
    Source {
        id: "e13",
        table: "e13_hybrid",
        key_cols: &["scan_pressure_pct"],
        filter: None,
        detectors: &[
            Detector {
                name: "contention-knee",
                column: "txn_p99_us",
                shape: Shape::Knee(1.5),
            },
            Detector {
                name: "energy-knee",
                column: "system_joules_per_txn",
                shape: Shape::Knee(1.5),
            },
        ],
    },
    Source {
        id: "e13-attrib",
        table: "e13_attrib",
        key_cols: &["scan_pressure_pct", "class", "path"],
        filter: None,
        detectors: &[],
    },
    Source {
        id: "e14",
        table: "e14_brownout",
        key_cols: &["config", "fault_rate_bp"],
        filter: None,
        detectors: &[
            Detector {
                name: "brownout-valley",
                column: "txn_throughput_per_s",
                shape: Shape::Valley,
            },
            Detector {
                name: "energy-knee",
                column: "system_joules_per_txn",
                shape: Shape::Knee(1.5),
            },
        ],
    },
    Source {
        id: "e14-attrib",
        table: "e14_attrib",
        key_cols: &["config", "fault_rate_bp", "class", "path"],
        filter: None,
        detectors: &[],
    },
    // E15 splits into two report views over one table: the adaptive
    // controller against the E13 pressure sweep and against the E14
    // fault sweep. The detector pairs pin the controller's headline in
    // the baseline diff: the static arm's p99 knee/valley exists, and
    // the adaptive arm pushes its knee later (or out of the sweep) and
    // keeps a p99-win valley in the fault mid-band.
    Source {
        id: "e15-pressure",
        table: "e15_adaptive",
        key_cols: &["sweep", "point"],
        filter: Some(("sweep", "pressure")),
        detectors: &[
            Detector {
                name: "static-contention-knee",
                column: "static_p99_us",
                shape: Shape::Knee(1.5),
            },
            Detector {
                name: "adaptive-contention-knee",
                column: "adaptive_p99_us",
                shape: Shape::Knee(1.5),
            },
        ],
    },
    Source {
        id: "e15-faults",
        table: "e15_adaptive",
        key_cols: &["sweep", "point"],
        filter: Some(("sweep", "faults")),
        detectors: &[
            Detector {
                name: "adaptive-win-valley",
                column: "p99_ratio_pct",
                shape: Shape::Valley,
            },
            Detector {
                name: "energy-knee",
                column: "adaptive_joules_per_txn",
                shape: Shape::Knee(1.5),
            },
        ],
    },
    // E16 is a grid, not a monotone sweep, so it carries no shape
    // detectors — pinning every cell (commit latency, throughput,
    // joules/txn, in-doubt tail) in the baseline diff is the gate.
    Source {
        id: "e16",
        table: "e16_cluster",
        key_cols: &["nodes", "cross_bp", "net"],
        filter: None,
        detectors: &[],
    },
];

fn column_index(headers: &[String], name: &str, table: &str) -> Result<usize, String> {
    headers
        .iter()
        .position(|h| h == name)
        .ok_or_else(|| format!("{table}.csv: missing column {name:?}"))
}

fn numeric_column(
    rows: &[Vec<String>],
    idx: usize,
    column: &str,
    table: &str,
) -> Result<Vec<f64>, String> {
    rows.iter()
        .map(|r| {
            r[idx]
                .parse::<f64>()
                .map_err(|_| format!("{table}.csv: non-numeric {column:?} cell {:?}", r[idx]))
        })
        .collect()
}

fn run_detector(det: &Detector, keys: &[String], ys: &[f64], table: &str) -> DetectorResult {
    let hit = match det.shape {
        Shape::Knee(factor) => detect_knee(ys, factor),
        Shape::Valley => detect_valley(ys),
    };
    let (found, at, details) = match (det.shape, hit) {
        (Shape::Knee(factor), Some(i)) => (
            true,
            keys[i].clone(),
            format!(
                "{} first reaches {factor}x its baseline at {} (table {table})",
                det.column, keys[i]
            ),
        ),
        (Shape::Knee(factor), None) => (
            false,
            String::new(),
            format!("{} never reaches {factor}x its baseline", det.column),
        ),
        (Shape::Valley, Some(i)) => (
            true,
            keys[i].clone(),
            format!(
                "{} dips below both neighbours at {} (table {table})",
                det.column, keys[i]
            ),
        ),
        (Shape::Valley, None) => (
            false,
            String::new(),
            format!("{} has no interior minimum", det.column),
        ),
    };
    DetectorResult {
        name: det.name.to_string(),
        found,
        at,
        details,
    }
}

fn build_experiment(src: &Source, text: &str) -> Result<ExperimentReport, String> {
    let (headers, mut rows) = parse_csv(text);
    if let Some((col, value)) = src.filter {
        let idx = column_index(&headers, col, src.table)?;
        rows.retain(|r| r[idx] == value);
    }
    if rows.is_empty() {
        return Err(format!("{}.csv: no data rows", src.table));
    }
    let key_idx = src
        .key_cols
        .iter()
        .map(|k| column_index(&headers, k, src.table))
        .collect::<Result<Vec<_>, _>>()?;
    let keys: Vec<String> = rows
        .iter()
        .map(|r| {
            key_idx
                .iter()
                .map(|&i| r[i].as_str())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    let mut columns = vec!["key".to_string()];
    columns.extend(headers.iter().cloned());
    let out_rows: Vec<Vec<String>> = keys
        .iter()
        .zip(&rows)
        .map(|(k, r)| {
            let mut row = vec![k.clone()];
            row.extend(r.iter().cloned());
            row
        })
        .collect();
    let mut detectors = Vec::new();
    for det in src.detectors {
        let idx = column_index(&headers, det.column, src.table)?;
        let ys = numeric_column(&rows, idx, det.column, src.table)?;
        detectors.push(run_detector(det, &keys, &ys, src.table));
    }
    Ok(ExperimentReport {
        id: src.id.to_string(),
        table: src.table.to_string(),
        columns,
        rows: out_rows,
        detectors,
    })
}

/// Assemble a [`RunReport`] from the CSV tables in `dir`. Tables the
/// run did not produce are skipped; producing nothing at all is an
/// error (wrong directory, or the run wrote no reportable tables).
pub fn build_report(dir: &Path, scale: &str) -> Result<RunReport, String> {
    let mut experiments = Vec::new();
    for src in SOURCES {
        let path = dir.join(format!("{}.csv", src.table));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        experiments.push(build_experiment(src, &text)?);
    }
    if experiments.is_empty() {
        return Err(format!(
            "no reportable tables (e13_hybrid.csv / e14_brownout.csv ...) in {}",
            dir.display()
        ));
    }
    Ok(RunReport {
        scale: scale.to_string(),
        experiments,
    })
}

/// Write `report.json` and `report.md` into `dir`; returns their paths.
pub fn write_report(dir: &Path, report: &RunReport) -> std::io::Result<(PathBuf, PathBuf)> {
    let json = dir.join("report.json");
    let md = dir.join("report.md");
    std::fs::write(&json, report.to_json())?;
    std::fs::write(&md, report.to_markdown())?;
    Ok((json, md))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, text: &str) {
        std::fs::write(dir.join(name), text).unwrap();
    }

    #[test]
    fn builds_report_with_knee_and_synthesized_keys() {
        let dir = std::env::temp_dir().join(format!("report_build_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write(
            &dir,
            "e13_hybrid.csv",
            "scan_pressure_pct,txn_p99_us,system_joules_per_txn\n\
             0,10,1\n50,12,1.1\n100,40,1.2\n",
        );
        write(
            &dir,
            "e14_brownout.csv",
            "config,fault_rate_bp,txn_throughput_per_s,system_joules_per_txn\n\
             bionic,0,100,1\nbionic,500,60,1.2\nbionic,5000,80,1.6\nsoftware,0,70,2\n",
        );
        let rep = build_report(&dir, "smoke").unwrap();
        assert_eq!(rep.scale, "smoke");
        let ids: Vec<_> = rep.experiments.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, vec!["e13", "e14"]);

        let e13 = &rep.experiments[0];
        assert_eq!(e13.columns[0], "key");
        assert_eq!(e13.rows[0][0], "0");
        let knee = &e13.detectors[0];
        assert!(knee.found, "p99 4x at 100% pressure must trip the knee");
        assert_eq!(knee.at, "100");

        // e14 keys disambiguate the repeated `config` cell.
        let e14 = &rep.experiments[1];
        assert_eq!(e14.rows[1][0], "bionic/500");
        let valley = &e14.detectors[0];
        assert!(valley.found, "throughput dips at the 500 bp mid-band");
        assert_eq!(valley.at, "bionic/500");

        // Round-trips through the JSON schema.
        let back = RunReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_an_error_and_missing_tables_are_skipped() {
        let dir = std::env::temp_dir().join(format!("report_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(build_report(&dir, "smoke").is_err());
        write(
            &dir,
            "e13_hybrid.csv",
            "scan_pressure_pct,txn_p99_us,system_joules_per_txn\n0,10,1\n",
        );
        let rep = build_report(&dir, "smoke").unwrap();
        assert_eq!(rep.experiments.len(), 1);
        assert!(
            !rep.experiments[0].detectors[0].found,
            "single row: no knee past baseline"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
