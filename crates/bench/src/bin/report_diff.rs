//! Compare two run reports (`report.json` from `figures --report`) and
//! exit nonzero on regression; or validate a single report against the
//! schema.
//!
//! ```sh
//! report-diff --check results/report.json            # schema validation
//! report-diff baseline.json candidate.json           # diff, default tol
//! report-diff baseline.json candidate.json --tol 0.1 # 10% tolerance
//! ```
//!
//! Numeric cells matched by (experiment, row key, column) must stay
//! within `--tol` relative change; missing experiments/rows/columns and
//! detector verdict flips fail outright. The rendered verdict block ends
//! with `verdict: PASS` or `verdict: REGRESSION`.

use bionic_telemetry::report::{diff_reports, RunReport};
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: report-diff --check FILE | report-diff BASE NEW [--tol FRACTION]");
    exit(2);
}

fn load(path: &str) -> RunReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    RunReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid run report: {e}");
        exit(1);
    })
}

fn main() {
    let mut tol = 0.05f64;
    let mut check: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                let f = args.next().unwrap_or_else(|| usage());
                check = Some(f);
            }
            "--tol" => {
                let t = args.next().unwrap_or_else(|| usage());
                tol = t.parse().unwrap_or_else(|_| usage());
                if tol.is_nan() || tol < 0.0 {
                    usage();
                }
            }
            s if s.starts_with('-') => usage(),
            s => files.push(s.to_string()),
        }
    }

    if let Some(path) = check {
        if !files.is_empty() {
            usage();
        }
        let rep = load(&path);
        println!(
            "{path}: schema ok ({} experiments, scale {})",
            rep.experiments.len(),
            rep.scale
        );
        return;
    }

    if files.len() != 2 {
        usage();
    }
    let base = load(&files[0]);
    let new = load(&files[1]);
    let diff = diff_reports(&base, &new, tol);
    print!("{}", diff.render());
    if diff.regressed() {
        exit(1);
    }
}
