//! Regenerate every figure and quantitative claim of the paper.
//!
//! ```sh
//! cargo run --release -p bionic-bench --bin figures             # everything
//! cargo run --release -p bionic-bench --bin figures f3 e8       # a subset
//! cargo run --release -p bionic-bench --bin figures --jobs 8    # 8 workers
//! cargo run --release -p bionic-bench --bin figures --list      # list ids
//! ```
//!
//! Each experiment prints its tables and writes `results/<id>_*.csv`.
//! EXPERIMENTS.md maps each id to the paper artifact it reproduces.
//!
//! Experiments are decomposed into independent cells and run on a
//! work-queue of `--jobs` worker threads (default: all cores). Output is
//! assembled serially in fixed order, so every CSV and printed table is
//! byte-identical regardless of `--jobs`; only wall-clock time changes.
//! Per-experiment timing is written to `results/harness_timing.csv`.

use bionic_bench::experiments::{self, Scale};
use bionic_bench::harness;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--jobs N] [--list] [ids...]   ids: {}",
        experiments::IDS.join(" ")
    );
    exit(2);
}

fn main() {
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for id in experiments::IDS {
                    println!("{id}");
                }
                return;
            }
            "--jobs" | "-j" => {
                let n = args.next().unwrap_or_else(|| usage());
                jobs = n.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            s if s.starts_with('-') => usage(),
            s => ids.push(s.to_string()),
        }
    }
    if ids.is_empty() {
        ids = experiments::IDS.iter().map(|s| s.to_string()).collect();
    }

    let mut selected = Vec::new();
    for id in &ids {
        match experiments::build(id, Scale::Full) {
            Some(e) => selected.push(e),
            None => {
                eprintln!("unknown experiment id: {id}");
                usage();
            }
        }
    }

    let results = PathBuf::from("results");
    let timing = harness::run(selected, jobs, &results);
    timing.table().save_and_print(&results, "harness_timing");
}
