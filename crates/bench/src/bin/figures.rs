//! Regenerate every figure and quantitative claim of the paper.
//!
//! ```sh
//! cargo run --release -p bionic-bench --bin figures            # everything
//! cargo run --release -p bionic-bench --bin figures f3 e8     # a subset
//! ```
//!
//! Each experiment prints its table and writes `results/<id>_*.csv`.
//! EXPERIMENTS.md maps each id to the paper artifact it reproduces.

use bionic_bench::{f, Table};
use bionic_btree::probe::{ProbeEngine, ProbeEngineConfig};
use bionic_btree::tree::BTree;
use bionic_core::breakdown::Category;
use bionic_core::config::{EngineConfig, LogImpl, Offloads};
use bionic_core::engine::Engine;
use bionic_core::ops::TxnProgram;
use bionic_overlay::overlay::OverlayIndex;
use bionic_queue::sched::{simulate_chain, ParkPolicy};
use bionic_queue::timing::{HwQueueTiming, SwQueueTiming};
use bionic_scan::predicate::{CmpOp, ColPredicate, ScanRequest};
use bionic_scan::scanner::{scan_enhanced, scan_software, ScannerConfig};
use bionic_sim::darksilicon::{figure1_curves, ChipGeneration, FIGURE1_SERIAL_FRACTIONS};
use bionic_sim::energy::EnergyDomain;
use bionic_sim::fpga::FpgaFabric;
use bionic_sim::mem::{AccessClass, SgDram};
use bionic_sim::platform::Platform;
use bionic_sim::time::SimTime;
use bionic_storage::columnar::{Column, ColumnarTable};
use bionic_wal::timing::{
    ConsolidatedLog, HwLog, LatchedLog, LogInsertModel, SwLogParams,
};
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator, TatpTxn};
use bionic_workloads::tpcc::{self, TpccConfig, TpccTxn};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

// ---------------------------------------------------------------- F1 ----

/// Figure 1: fraction of chip utilized vs. parallelism, 2011 vs 2018.
fn f1() {
    println!("### F1 — Figure 1: dark silicon & Amdahl chip utilization\n");
    for (tag, cores) in [("2011_64cores", 64u64), ("2018_1024cores", 1024)] {
        let curves = figure1_curves(cores);
        let mut headers = vec!["cores".to_string()];
        for s in FIGURE1_SERIAL_FRACTIONS {
            headers.push(format!("serial_{}pct", s * 100.0));
        }
        let mut t = Table {
            headers,
            rows: Vec::new(),
        };
        for i in 0..curves[0].points.len() {
            let mut row = vec![curves[0].points[i].0.to_string()];
            for c in &curves {
                row.push(f(c.points[i].1));
            }
            t.rows.push(row);
        }
        t.save_and_print(&results_dir(), &format!("f1_{tag}"));
    }
    let g = ChipGeneration::y2018();
    println!(
        "power envelope 2018: {}/{} cores powered ({}% dark, §2's conservative calculation)\n",
        g.powered_cores(),
        g.cores,
        g.dark_fraction * 100.0
    );
}

// ---------------------------------------------------------------- F2 ----

/// Figure 2: validate every modeled platform path against its label.
fn f2() {
    println!("### F2 — Figure 2: platform path characterization\n");
    let mut t = Table::new(&[
        "path",
        "configured_bw",
        "measured_bw",
        "configured_latency",
        "measured_latency",
    ]);

    // PCIe: 1000 x 1 MiB bulk transfers, and a 64 B round trip.
    let mut p = Platform::hc2();
    let mut done = SimTime::ZERO;
    for i in 0..1000u64 {
        done = p.pcie_transfer(SimTime::ZERO, 1 << 20).max(done);
        let _ = i;
    }
    let bw = (1000u64 * (1 << 20)) as f64 / done.as_secs();
    let rt = p.pcie_exchange(done, 64, SimTime::ZERO, 64) - done;
    t.row(vec![
        "PCIe 8x".into(),
        "4.0e9 B/s".into(),
        format!("{:.2e} B/s", bw),
        "2 us RT".into(),
        format!("{:.2} us RT", rt.as_us()),
    ]);

    // SG-DRAM: random 64-bit requests, pipelined.
    let mut sg = SgDram::hc2();
    let (first, _) = sg.access(SimTime::ZERO);
    let n = 100_000u64;
    let mut last = SimTime::ZERO;
    for _ in 0..n {
        last = sg.access(SimTime::ZERO).0;
    }
    t.row(vec![
        "SG-DRAM".into(),
        "8.0e10 B/s".into(),
        format!("{:.2e} B/s", (n * 8) as f64 / last.as_secs()),
        "400 ns".into(),
        format!("{:.0} ns", first.as_ns()),
    ]);

    // SAS array: sequential stream vs random read.
    let mut p = Platform::hc2();
    let mut at = SimTime::ZERO;
    let chunk = 8u64 << 20;
    for i in 0..64u64 {
        at = p.sas_read(at, i * chunk, chunk);
    }
    let sas_bw = (64 * chunk) as f64 / at.as_secs();
    let rand_read = p.sas_read(at, 0, 8192) - at;
    t.row(vec![
        "2x SAS".into(),
        "1.5e9 B/s".into(),
        format!("{:.2e} B/s", sas_bw),
        "5 ms seek".into(),
        format!("{:.2} ms", rand_read.as_ms()),
    ]);

    // SSD.
    let mut p = Platform::hc2();
    let mut at = SimTime::ZERO;
    for i in 0..64u64 {
        at = p.ssd_write(at, i * chunk, chunk);
    }
    let ssd_bw = (64 * chunk) as f64 / at.as_secs();
    let ssd_lat = p.ssd_write(at, 1 << 40, 512) - at;
    t.row(vec![
        "SSD".into(),
        "5.0e8 B/s".into(),
        format!("{:.2e} B/s", ssd_bw),
        "20 us".into(),
        format!("{:.1} us", ssd_lat.as_us()),
    ]);

    // Host memory: expected latencies per access class.
    let p = Platform::hc2();
    for class in AccessClass::ALL {
        let lat = p.cpu_mem.expected_latency(class);
        t.row(vec![
            format!("host mem ({class:?})"),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.1} ns", lat.as_ns()),
        ]);
    }
    t.save_and_print(&results_dir(), "f2_platform");
}

// ---------------------------------------------------------------- F3 ----

fn breakdown_rows(t: &mut Table, label: &str, b: &bionic_core::TimeBreakdown) {
    for (c, pct) in b.percentages() {
        if c == Category::Lock {
            continue;
        }
        t.row(vec![label.into(), c.label().into(), f(pct)]);
    }
}

/// Figure 3: time breakdown of TATP-UpdSubData and TPCC-StockLevel on the
/// software (conventional multicore) DORA engine.
fn f3() {
    println!("### F3 — Figure 3: time breakdown on a conventional multicore\n");
    let mut t = Table::new(&["workload", "category", "percent"]);

    let wl = TatpConfig {
        subscribers: 20_000,
        ..Default::default()
    };
    let mut engine = Engine::new(EngineConfig::software());
    let tables = tatp::load(&mut engine, &wl);
    let mut g = TatpGenerator::new(wl, tables);
    let tatp_report = bionic_workloads::run(&mut engine, 5_000, SimTime::from_us(2.0), || {
        ("UpdSubData", g.program(TatpTxn::UpdateSubscriberData))
    });
    breakdown_rows(&mut t, "TATP-UpdSubData", &tatp_report.breakdown);

    let wl = TpccConfig::default();
    let mut engine = Engine::new(EngineConfig::software());
    let (_, mut g) = tpcc::load(&mut engine, &wl);
    let tpcc_report = bionic_workloads::run(&mut engine, 2_000, SimTime::from_us(10.0), || {
        ("StockLevel", g.program(TpccTxn::StockLevel))
    });
    breakdown_rows(&mut t, "TPCC-StockLevel", &tpcc_report.breakdown);

    // The Figure-4 payoff: the same two workloads on the bionic engine —
    // the categories §5 offloads shrink toward zero.
    let wl = TatpConfig {
        subscribers: 20_000,
        ..Default::default()
    };
    let mut engine = Engine::new(EngineConfig::bionic());
    let tables = tatp::load(&mut engine, &wl);
    let mut g = TatpGenerator::new(wl, tables);
    let tatp_bionic = bionic_workloads::run(&mut engine, 5_000, SimTime::from_us(2.0), || {
        ("UpdSubData", g.program(TatpTxn::UpdateSubscriberData))
    });
    breakdown_rows(&mut t, "TATP-UpdSubData-bionic", &tatp_bionic.breakdown);
    let wl = TpccConfig::default();
    let mut engine = Engine::new(EngineConfig::bionic());
    let (_, mut g) = tpcc::load(&mut engine, &wl);
    let tpcc_bionic = bionic_workloads::run(&mut engine, 2_000, SimTime::from_us(10.0), || {
        ("StockLevel", g.program(TpccTxn::StockLevel))
    });
    breakdown_rows(&mut t, "TPCC-StockLevel-bionic", &tpcc_bionic.breakdown);
    t.save_and_print(&results_dir(), "f3_breakdown");
    println!(
        "figure-4 payoff: StockLevel CPU time {} -> {} per txn; Btree share          {:.1}% -> {:.1}%
",
        tpcc_report.breakdown.total() / 2_000,
        tpcc_bionic.breakdown.total() / 2_000,
        100.0 * tpcc_report.breakdown.fraction(Category::Btree),
        100.0 * tpcc_bionic.breakdown.fraction(Category::Btree),
    );

    println!(
        "shape checks: StockLevel Btree = {:.1}% (paper: \"40% or more\"); \
         UpdSubData Log = {:.1}% (visible) vs StockLevel Log = {:.1}% (nil)\n",
        100.0 * tpcc_report.breakdown.fraction(Category::Btree),
        100.0 * tatp_report.breakdown.fraction(Category::Log),
        100.0 * tpcc_report.breakdown.fraction(Category::Log),
    );
}

// ---------------------------------------------------------------- E4 ----

/// §5.3: the hardware tree-probe engine — outstanding-request sweep,
/// string keys, and software-vs-hardware cost per probe.
fn e4() {
    println!("### E4 — §5.3: tree probe engine\n");

    // (a) Capacity vs outstanding probes: the "dozen outstanding" claim,
    // cross-checked by a paced run at 90% of each capacity.
    let mut t = Table::new(&[
        "outstanding",
        "capacity_probes_per_sec",
        "speedup_vs_1",
        "p_mean_latency_us_at_90pct",
    ]);
    let mut base_rate = 0.0;
    for outstanding in [1usize, 2, 4, 8, 12, 16, 24, 32] {
        let mut fabric = FpgaFabric::hc2();
        let mut eng = ProbeEngine::place(
            &mut fabric,
            ProbeEngineConfig {
                max_outstanding: outstanding,
                ..Default::default()
            },
        )
        .unwrap();
        let mut sg = SgDram::hc2();
        let cap = eng.capacity_per_sec(3, 1, &sg);
        if outstanding == 1 {
            base_rate = cap;
        }
        let inter = SimTime::from_secs(1.0 / (0.9 * cap));
        let n = 10_000u64;
        let mut at = SimTime::ZERO;
        let mut total = SimTime::ZERO;
        for _ in 0..n {
            total += eng.submit(at, 3, 1, &mut sg).time() - at;
            at += inter;
        }
        t.row(vec![
            outstanding.to_string(),
            f(cap),
            f(cap / base_rate),
            f(total.as_us() / n as f64),
        ]);
    }
    t.save_and_print(&results_dir(), "e4_outstanding");

    // (b) Per-probe cost: software vs hardware, int vs string keys.
    let mut t = Table::new(&["path", "key", "latency_us", "cpu_busy_ns", "energy_nJ"]);
    // Software: priced like the engine does (30 + 3*cmp instructions,
    // inner nodes from mid-hierarchy, leaf from the pointer-chase class).
    let mut tree = BTree::with_order(256);
    for i in 0..200_000i64 {
        tree.insert(i, i as u64);
    }
    let (_, fp) = tree.get(&100_000);
    let mut p = Platform::hc2();
    let before = p.energy.total();
    let mut cpu = p.sw_step(30 + 3 * fp.comparisons as u64, 0, AccessClass::Hot);
    cpu += p.cpu_mem_access(AccessClass::Index, fp.inner_visited as u64);
    cpu += p.cpu_mem_access(AccessClass::PointerChase, fp.leaves_visited as u64);
    let sw_energy = (p.energy.total() - before).as_nj();
    t.row(vec![
        "software".into(),
        "i64".into(),
        f(cpu.as_us()),
        f(cpu.as_ns()),
        f(sw_energy),
    ]);

    for (key, factor) in [("i64", 1u32), ("str24B", 3)] {
        let mut fabric = FpgaFabric::hc2();
        let mut eng = ProbeEngine::hc2(&mut fabric).unwrap();
        let mut sg = SgDram::hc2();
        let out = eng.submit(SimTime::ZERO, fp.nodes_visited(), factor, &mut sg);
        t.row(vec![
            "hardware".into(),
            key.into(),
            f(out.time().as_us() + 2.0), // + PCIe round trip
            "16".into(),                 // doorbell
            f(out.energy().as_nj()),
        ]);
    }
    t.save_and_print(&results_dir(), "e4_per_probe");

    // (c) The software counter-measure §5.3 cites: PALM-style batching
    // amortizes descents but cannot remove the leaf-level pointer chase.
    let mut t = Table::new(&["batch", "nodes_per_probe_single", "nodes_per_probe_batched"]);
    for batch in [16usize, 64, 256] {
        let mut keys: Vec<i64> = (0..batch as i64).map(|i| i * 701 % 200_000).collect();
        let (_, bfp) = tree.batch_get(&mut keys);
        let mut singles = 0;
        for k in &keys {
            singles += tree.get(k).1.nodes_visited();
        }
        t.row(vec![
            batch.to_string(),
            f(singles as f64 / keys.len() as f64),
            f(bfp.nodes_visited() as f64 / keys.len() as f64),
        ]);
    }
    t.save_and_print(&results_dir(), "e4_palm_batching");

    let mut fabric = FpgaFabric::hc2();
    let mut eng = ProbeEngine::hc2(&mut fabric).unwrap();
    let mut sg = SgDram::hc2();
    let hw_energy = eng
        .submit(SimTime::ZERO, fp.nodes_visited(), 1, &mut sg)
        .energy()
        .as_nj();
    println!(
        "claims: throughput flattens at ~12 outstanding (the §5.3 \"dozen\"); \
         a hardware probe is slower per-request but {}x cheaper in total \
         energy and ~10x cheaper in core-time ({} ns vs 16 ns of CPU)\n",
        f(sw_energy / hw_energy),
        f(cpu.as_ns()),
    );
}

// ---------------------------------------------------------------- E5 ----

/// §5.4: log insertion scalability — latched vs consolidated vs hardware.
fn e5() {
    println!("### E5 — §5.4: log insertion under contention\n");
    let mut t = Table::new(&[
        "threads",
        "latched_ins_per_s",
        "consolidated_ins_per_s",
        "hardware_ins_per_s",
        "latched_cpu_ns",
        "hw_cpu_ns",
    ]);
    let bytes = 120u64;
    let think = SimTime::from_ns(200.0);
    for threads in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut rates = Vec::new();
        let mut cpu_ns = Vec::new();
        let params = SwLogParams::default();
        let mut fabric = FpgaFabric::hc2();
        let mut models: Vec<Box<dyn LogInsertModel>> = vec![
            Box::new(LatchedLog::new(params)),
            Box::new(ConsolidatedLog::new(params)),
            Box::new(HwLog::hc2(&mut fabric).unwrap()),
        ];
        for m in models.iter_mut() {
            let mut clocks = vec![SimTime::ZERO; threads];
            let n = 30_000u64;
            let mut last = SimTime::ZERO;
            let mut busy = SimTime::ZERO;
            for i in 0..n {
                let th = (i % threads as u64) as usize;
                let out = m.insert(clocks[th] + think, th, bytes);
                clocks[th] = clocks[th] + think + out.cpu_busy;
                busy += out.cpu_busy;
                last = last.max(out.buffered_at);
            }
            rates.push(n as f64 / last.as_secs());
            cpu_ns.push(busy.as_ns() / n as f64);
        }
        t.row(vec![
            threads.to_string(),
            f(rates[0]),
            f(rates[1]),
            f(rates[2]),
            f(cpu_ns[0]),
            f(cpu_ns[2]),
        ]);
    }
    t.save_and_print(&results_dir(), "e5_log_scaling");
    println!(
        "claims: latched plateaus once the latch saturates; consolidation \
         lifts the plateau ([7]); the hardware engine keeps scaling and its \
         per-insert CPU cost is constant\n"
    );
}

// ---------------------------------------------------------------- E6 ----

/// §5.5: queue costs and the scheduling problem hardware does not solve.
fn e6() {
    println!("### E6 — §5.5: queue management\n");
    let mut t = Table::new(&["op", "software_same_socket_ns", "software_cross_socket_ns", "hardware_ns"]);
    let mut sw = SwQueueTiming::default();
    let mut fabric = FpgaFabric::hc2();
    let mut hw = HwQueueTiming::hc2(&mut fabric).unwrap();
    t.row(vec![
        "enqueue".into(),
        f(sw.enqueue(false).cpu_busy.as_ns()),
        f(sw.enqueue(true).cpu_busy.as_ns()),
        f(hw.enqueue(SimTime::ZERO).cpu_busy.as_ns()),
    ]);
    t.row(vec![
        "dequeue".into(),
        f(sw.dequeue(false).cpu_busy.as_ns()),
        f(sw.dequeue(true).cpu_busy.as_ns()),
        f(hw.dequeue(SimTime::ZERO).cpu_busy.as_ns()),
    ]);
    t.save_and_print(&results_dir(), "e6_queue_ops");

    // Convoys: parking policy x wake latency.
    let mut t = Table::new(&[
        "policy",
        "wake_us",
        "p99_latency_us",
        "wakes",
        "spin_waste_ms",
    ]);
    for (policy, name) in [
        (ParkPolicy::Spin, "spin"),
        (ParkPolicy::ParkImmediately, "park-eager"),
        (ParkPolicy::ParkAfter(SimTime::from_us(20.0)), "park-20us-grace"),
    ] {
        for wake_us in [0.8, 8.0] {
            let r = simulate_chain(
                4,
                20_000,
                SimTime::from_us(1.0),
                10,
                SimTime::from_us(50.0),
                SimTime::from_ns(500.0),
                SimTime::from_us(wake_us),
                policy,
            );
            t.row(vec![
                name.into(),
                f(wake_us),
                f(r.latency.quantile(0.99).as_us()),
                r.wakes.to_string(),
                f(r.spin_waste.as_ms()),
            ]);
        }
    }
    t.save_and_print(&results_dir(), "e6_convoys");
    println!(
        "claims: hardware cuts queue op cost ~10x, but eager parking still \
         convoys even with 10x faster wakes — \"it will not magically solve \
         the scheduling problem\"\n"
    );
}

// ---------------------------------------------------------------- E7 ----

/// §5.6: the overlay database.
fn e7() {
    println!("### E7 — §5.6: overlay database\n");

    // (a) Read paths: delta hit vs main fallthrough vs non-resident miss.
    let base: Vec<(i64, u64)> = (0..100_000).map(|i| (i, i as u64)).collect();
    let mut ov = OverlayIndex::new(base.clone(), usize::MAX);
    for i in 0..1_000i64 {
        ov.put(i, 7, i as u64 + 1);
    }
    let mut t = Table::new(&["read_path", "nodes_visited", "note"]);
    let (_, fp_hit) = ov.get_latest(&500);
    t.row(vec![
        "delta hit".into(),
        fp_hit.nodes_visited().to_string(),
        "buffered write answered from delta".into(),
    ]);
    let (_, fp_miss) = ov.get_latest(&50_000);
    t.row(vec![
        "main fallthrough".into(),
        fp_miss.nodes_visited().to_string(),
        "delta probe + main probe".into(),
    ]);
    let tight = OverlayIndex::new(base.clone(), 1 << 18);
    let misses = (0..100_000i64)
        .filter(|k| tight.probe_would_miss(k))
        .count();
    t.row(vec![
        "non-resident".into(),
        "-".into(),
        format!(
            "budget 256KiB -> {:.1}% probes abort to software+SAS",
            100.0 * misses as f64 / 100_000.0
        ),
    ]);
    t.save_and_print(&results_dir(), "e7_read_paths");

    // (b) Merge amortization: bytes written back per buffered write.
    let mut t = Table::new(&[
        "delta_writes_before_merge",
        "merge_bytes",
        "bytes_per_write",
        "retained",
    ]);
    for batch in [1_000u64, 5_000, 20_000, 50_000] {
        let mut ov = OverlayIndex::new(base.clone(), usize::MAX);
        let mut v = 0;
        for i in 0..batch {
            v += 1;
            ov.put((i as i64 * 17) % 100_000, i, v);
        }
        let report = ov.merge(v);
        t.row(vec![
            batch.to_string(),
            report.bytes_written.to_string(),
            f(report.bytes_written as f64 / batch as f64),
            report.entries_retained.to_string(),
        ]);
    }
    t.save_and_print(&results_dir(), "e7_merge_amortization");

    // (c) Historical patching: a query as-of an old version sees old data.
    let mut ov = OverlayIndex::new(base, usize::MAX);
    ov.put(42, 999, 10);
    ov.delete(43, 11);
    let mut rows_old = Vec::new();
    ov.range_asof(&42, &45, 5, |k, v| rows_old.push((*k, v)));
    let mut rows_new = Vec::new();
    ov.range_asof(&42, &45, 11, |k, v| rows_new.push((*k, v)));
    println!(
        "historical patching: asof v5 -> {rows_old:?}; asof v11 -> {rows_new:?} \
         (HANA-style: updates patched into history on read)\n"
    );
}

// ---------------------------------------------------------------- E8 ----

fn run_tatp(cfg: EngineConfig, subscribers: i64, n: u64, inter: SimTime) -> bionic_workloads::WorkloadReport {
    let wl = TatpConfig {
        subscribers,
        ..Default::default()
    };
    let mut engine = Engine::new(cfg);
    let tables = tatp::load(&mut engine, &wl);
    let mut g = TatpGenerator::new(wl, tables);
    bionic_workloads::run(&mut engine, n, inter, || {
        let (t, p) = g.next();
        (t.label(), p)
    })
}

fn run_tpcc(cfg: EngineConfig, n: u64, inter: SimTime) -> bionic_workloads::WorkloadReport {
    let wl = TpccConfig::default();
    let mut engine = Engine::new(cfg);
    let (_, mut g) = tpcc::load(&mut engine, &wl);
    bionic_workloads::run(&mut engine, n, inter, || {
        let (t, p) = g.next();
        (t.label(), p)
    })
}

/// Measure a configuration: capacity from an overloaded run (arrivals far
/// above service rate), then latency/energy from a run at ~70% of that
/// capacity.
fn measure(
    cfg: &EngineConfig,
    workload: &str,
) -> (f64, bionic_workloads::WorkloadReport) {
    let (overload_inter, n) = if workload == "tatp" {
        (SimTime::from_ns(100.0), 20_000u64)
    } else {
        (SimTime::from_ns(1000.0), 6_000u64)
    };
    let cap_report = if workload == "tatp" {
        run_tatp(cfg.clone(), 20_000, n, overload_inter)
    } else {
        run_tpcc(cfg.clone(), n, overload_inter)
    };
    let capacity = cap_report.throughput_per_sec;
    let inter = SimTime::from_secs(1.0 / (0.7 * capacity));
    let loaded = if workload == "tatp" {
        run_tatp(cfg.clone(), 20_000, n, inter)
    } else {
        run_tpcc(cfg.clone(), n, inter)
    };
    (capacity, loaded)
}

/// §1/§3 headline: end-to-end software vs bionic (+ per-unit ablation).
fn e8() {
    println!("### E8 — end-to-end: conventional vs DORA vs bionic\n");
    let mut t = Table::new(&[
        "engine",
        "workload",
        "capacity_txn_s",
        "p50_us_at_70pct",
        "p99_us_at_70pct",
        "joules_per_txn",
        "cpu_mJ",
        "fpga_mJ",
    ]);
    let configs = [
        ("conventional", EngineConfig::conventional()),
        ("dora-software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ];
    for (name, cfg) in &configs {
        for workload in ["tatp", "tpcc"] {
            let (capacity, report) = measure(cfg, workload);
            let energy = |d: EnergyDomain| {
                report
                    .energy
                    .iter()
                    .find(|(dd, _)| *dd == d)
                    .map(|(_, e)| e.as_j() * 1e3)
                    .unwrap_or(0.0)
            };
            t.row(vec![
                (*name).into(),
                workload.into(),
                f(capacity),
                f(report.latency.p50.as_us()),
                f(report.latency.p99.as_us()),
                f(report.joules_per_txn),
                f(energy(EnergyDomain::CpuCore)),
                f(energy(EnergyDomain::Fpga)),
            ]);
        }
    }
    t.save_and_print(&results_dir(), "e8_end_to_end");

    // Per-transaction-type latency on TPC-C, software vs bionic.
    let mut t = Table::new(&["engine", "txn_type", "count", "p50_us", "p99_us"]);
    for (name, cfg) in [
        ("dora-software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        // ~40k txn/s: below both engines' capacity, so the table shows
        // transaction shape, not queueing.
        let report = run_tpcc(cfg, 6_000, SimTime::from_us(25.0));
        for (ty, summary) in &report.per_type_latency {
            t.row(vec![
                name.into(),
                (*ty).into(),
                summary.count.to_string(),
                f(summary.p50.as_us()),
                f(summary.p99.as_us()),
            ]);
        }
    }
    t.save_and_print(&results_dir(), "e8_per_type_latency");

    // Ablation: add one offload at a time on TATP.
    println!("ablation (TATP, DORA engine):\n");
    let mut t = Table::new(&["offloads", "capacity_txn_s", "joules_per_txn", "p50_us_at_70pct"]);
    let variants: Vec<(&str, Offloads)> = vec![
        ("none", Offloads::none()),
        (
            "probe",
            Offloads {
                probe: true,
                ..Offloads::none()
            },
        ),
        (
            "log",
            Offloads {
                log: LogImpl::Hardware,
                ..Offloads::none()
            },
        ),
        (
            "log-consolidated(sw)",
            Offloads {
                log: LogImpl::Consolidated,
                ..Offloads::none()
            },
        ),
        (
            "queue",
            Offloads {
                queue: true,
                ..Offloads::none()
            },
        ),
        (
            "overlay+probe",
            Offloads {
                probe: true,
                overlay: true,
                ..Offloads::none()
            },
        ),
        ("all", Offloads::all()),
    ];
    for (name, offloads) in variants {
        let cfg = EngineConfig {
            offloads,
            ..EngineConfig::software()
        };
        let (capacity, report) = measure(&cfg, "tatp");
        t.row(vec![
            name.into(),
            f(capacity),
            f(report.joules_per_txn),
            f(report.latency.p50.as_us()),
        ]);
    }
    t.save_and_print(&results_dir(), "e8_ablation");
    println!(
        "claims: the bionic engine wins on joules/txn (the §2 metric), not \
         on latency; each offload contributes, the combination compounds\n"
    );
}

// ---------------------------------------------------------------- E9 ----

/// §2/§3: OLTP under dark silicon — scale-up and the power envelope.
fn e9() {
    println!("### E9 — dark-silicon scale-up of the OLTP engine\n");
    let mut t = Table::new(&[
        "agents",
        "throughput_txn_s",
        "scaled_speedup",
        "amdahl_fit_serial_pct",
        "imbalance_max_over_mean",
    ]);
    let mut base = 0.0;
    let mut rows = Vec::new();
    for agents in [2usize, 4, 8, 16, 32, 64, 128] {
        let cfg = EngineConfig::software().with_agents(agents);
        // Overload: arrivals far faster than service so agents saturate.
        let wl = TatpConfig {
            subscribers: 20_000,
            ..Default::default()
        };
        let mut engine = Engine::new(cfg);
        let tables = tatp::load(&mut engine, &wl);
        let mut g = TatpGenerator::new(wl, tables);
        let report = bionic_workloads::run(&mut engine, 20_000, SimTime::from_ns(50.0), || {
            let (t, p) = g.next();
            (t.label(), p)
        });
        if agents == 2 {
            base = report.throughput_per_sec / 2.0;
        }
        let speedup = report.throughput_per_sec / base;
        rows.push((agents, report.throughput_per_sec, speedup, engine.agent_imbalance()));
    }
    // Fit the serial fraction from the largest point: s from Amdahl.
    for (agents, tput, speedup, imbalance) in &rows {
        let n = *agents as f64;
        let s = if *speedup > 1.0 && n > 1.0 {
            ((n / speedup) - 1.0) / (n - 1.0)
        } else {
            0.0
        };
        t.row(vec![
            agents.to_string(),
            f(*tput),
            f(*speedup),
            f(s.max(0.0) * 100.0),
            f(*imbalance),
        ]);
    }
    t.save_and_print(&results_dir(), "e9_scaleup");
    println!(
        "claims: the front-end/log serial fraction caps scale-up exactly as \
         Amdahl predicts; under a 2018 envelope only ~80% of cores could be \
         lit at all (see F1), so joules/txn — not cores — is the lever\n"
    );
}

// --------------------------------------------------------------- E10 ----

/// §5.2: Netezza-style FPGA filtering vs CPU scan, selectivity sweep.
fn e10() {
    println!("### E10 — §5.2: enhanced scanner selectivity sweep\n");
    let rows = 2_000_000usize;
    let mut table = ColumnarTable::new();
    table.add_column("key", Column::I64((0..rows as i64).collect()));
    table.add_column(
        "val",
        Column::I64((0..rows as i64).map(|i| i % 1000).collect()),
    );
    table.add_column(
        "payload",
        Column::I64((0..rows as i64).map(|i| i * 3).collect()),
    );

    let mut t = Table::new(&[
        "selectivity_pct",
        "sw_pcie_MB",
        "hw_pcie_MB",
        "bytes_ratio",
        "sw_ms",
        "hw_ms",
        "sw_J",
        "hw_J",
    ]);
    for sel_pct in [0.1f64, 1.0, 10.0, 50.0, 100.0] {
        let threshold = (1000.0 * sel_pct / 100.0) as i64;
        let req = ScanRequest {
            predicates: vec![ColPredicate::new(1, CmpOp::Lt, threshold)],
            projection: vec![0, 2],
            ..Default::default()
        };
        let mut p_sw = Platform::hc2();
        let sw = scan_software(&mut p_sw, &table, &req, SimTime::ZERO);
        let mut p_hw = Platform::hc2();
        let hw = scan_enhanced(&mut p_hw, &table, &req, SimTime::ZERO, &ScannerConfig::default());
        assert_eq!(sw.matches.len(), hw.matches.len());
        t.row(vec![
            f(sel_pct),
            f(sw.pcie_bytes as f64 / 1e6),
            f(hw.pcie_bytes as f64 / 1e6),
            f(sw.pcie_bytes as f64 / hw.pcie_bytes.max(1) as f64),
            f(sw.done.as_ms()),
            f(hw.done.as_ms()),
            f(p_sw.energy.total().as_j()),
            f(p_hw.energy.total().as_j()),
        ]);
    }
    t.save_and_print(&results_dir(), "e10_scan");
    println!(
        "claims: at low selectivity the FPGA filter ships orders of magnitude \
         fewer bytes over the 4 GB/s bus; the advantage shrinks toward 100% \
         selectivity but never inverts (the predicate column never ships)\n"
    );
}

// --------------------------------------------------------------- E12 ----

/// Robustness: does the E8 energy verdict survive perturbing the two most
/// influential calibration constants? Sweeps CPU nJ/instruction and SG-DRAM
/// nJ/access ±2x around the defaults and reports the bionic/software
/// joules-per-txn ratio for each combination.
fn e12() {
    println!("### E12 — sensitivity of the energy verdict to calibration\n");
    let mut t = Table::new(&[
        "cpu_nj_per_instr",
        "sg_nj_per_access",
        "sw_joules_per_txn",
        "bionic_joules_per_txn",
        "ratio_bionic_over_sw",
    ]);
    let mut worst: f64 = 0.0;
    for cpu_nj in [1.0, 2.0, 4.0] {
        for sg_nj in [1.0, 2.0, 4.0] {
            let mut joules = Vec::new();
            for base in [EngineConfig::software(), EngineConfig::bionic()] {
                let cfg = EngineConfig {
                    cpu_nj_per_instr: cpu_nj,
                    sg_nj_per_access: sg_nj,
                    ..base
                };
                let report = run_tatp(cfg, 20_000, 8_000, SimTime::from_us(2.0));
                joules.push(report.joules_per_txn);
            }
            let ratio = joules[1] / joules[0];
            worst = worst.max(ratio);
            t.row(vec![
                f(cpu_nj),
                f(sg_nj),
                f(joules[0]),
                f(joules[1]),
                f(ratio),
            ]);
        }
    }
    t.save_and_print(&results_dir(), "e12_sensitivity");
    println!(
        "claims: the \"bionic uses less energy\" verdict holds across a 4x \
         range of both constants (worst-case ratio {}); it flips only if \
         general-purpose cores were implausibly efficient AND FPGA-side \
         memory implausibly expensive\n",
        f(worst)
    );
}

// --------------------------------------------------------------- E11 ----

/// §4: control flow in hardware — NFA pattern matching, software
/// active-set simulation vs skeleton-automata lanes \[13\].
fn e11() {
    use bionic_scan::nfa::{Nfa, NfaEngine};
    use bionic_scan::predicate::StrPredicate;
    println!("### E11 — §4: NFA regex matching, software vs hardware\n");

    // (a) Raw matcher: cost per byte as pattern nondeterminism grows.
    let mut t = Table::new(&[
        "pattern",
        "nfa_states",
        "sw_state_visits_per_byte",
        "sw_ns_per_byte",
        "hw_ns_per_byte",
        "hw_energy_pJ_per_byte",
    ]);
    let input: Vec<u8> = (0..100_000u32)
        .map(|i| b"abcdefgh"[(i % 8) as usize])
        .collect();
    for pattern in ["needle", "a[bc]+d", "(a|ab)+c", "(a|aa)+(b|bb)+x"] {
        let nfa = Nfa::compile(pattern).unwrap();
        let (_, stats) = nfa.search_with_stats(&input);
        let visits_per_byte = stats.state_visits as f64 / stats.bytes.max(1) as f64;
        // Software: 4 instructions per state visit at 2.5 GHz.
        let sw_ns = visits_per_byte * 4.0 * 0.4;
        let mut fabric = FpgaFabric::hc2();
        let mut eng = NfaEngine::place(&mut fabric, nfa.state_count()).unwrap();
        let (done, energy) = eng.scan(SimTime::ZERO, &nfa, stats.bytes);
        t.row(vec![
            pattern.into(),
            nfa.state_count().to_string(),
            f(visits_per_byte),
            f(sw_ns),
            f(done.as_ns() / stats.bytes.max(1) as f64),
            f(energy.as_j() * 1e12 / stats.bytes.max(1) as f64),
        ]);
    }
    t.save_and_print(&results_dir(), "e11_nfa_matcher");

    // (b) In the scanner: LIKE-style filter over a string column.
    let rows = 500_000usize;
    let mut data = Vec::with_capacity(rows * 24);
    for i in 0..rows {
        let mut tag = if i % 997 == 0 {
            format!("evt{i:08}FATAL")
        } else {
            format!("evt{i:08}routine")
        }
        .into_bytes();
        tag.resize(24, b'y');
        data.extend_from_slice(&tag);
    }
    let mut table = ColumnarTable::new();
    table.add_column("key", Column::I64((0..rows as i64).collect()));
    table.add_column("tag", Column::FixedStr { width: 24, data });
    let req = ScanRequest {
        str_predicates: vec![StrPredicate::new(1, "FATAL|PANIC").unwrap()],
        projection: vec![0],
        ..Default::default()
    };
    let mut p_sw = Platform::hc2();
    let sw = scan_software(&mut p_sw, &table, &req, SimTime::ZERO);
    let mut p_hw = Platform::hc2();
    let hw = scan_enhanced(&mut p_hw, &table, &req, SimTime::ZERO, &ScannerConfig::default());
    assert_eq!(sw.matches.len(), hw.matches.len());
    let mut t = Table::new(&["path", "matches", "ms", "GB_per_s", "joules"]);
    let bytes = (rows * 24) as f64;
    for (name, out, p) in [("software", &sw, &p_sw), ("hardware", &hw, &p_hw)] {
        t.row(vec![
            name.into(),
            out.matches.len().to_string(),
            f(out.done.as_ms()),
            f(bytes / out.done.as_secs() / 1e9),
            f(p.energy.total().as_j()),
        ]);
    }
    t.save_and_print(&results_dir(), "e11_regex_scan");
    println!(
        "claims (§4): software cost grows with nondeterminism (state visits/byte); \
         the skeleton-automata lanes are flat at 1 byte/cycle/lane regardless\n"
    );
}

// ----------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);

    // Keep TxnProgram linked in even when only analytic figures run.
    let _ = TxnProgram::single_phase("noop", vec![]);

    if want("f1") {
        f1();
    }
    if want("f2") {
        f2();
    }
    if want("f3") {
        f3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11();
    }
    if want("e12") {
        e12();
    }
    println!("done. CSVs under results/.");
}
