//! Regenerate every figure and quantitative claim of the paper.
//!
//! ```sh
//! cargo run --release -p bionic-bench --bin figures             # everything
//! cargo run --release -p bionic-bench --bin figures f3 e8       # a subset
//! cargo run --release -p bionic-bench --bin figures --jobs 8    # 8 workers
//! cargo run --release -p bionic-bench --bin figures --shards 4  # split cells
//! cargo run --release -p bionic-bench --bin figures --list      # list ids
//! cargo run --release -p bionic-bench --bin figures --trace out # traced runs
//! cargo run --release -p bionic-bench --bin figures --smoke e14 # CI-sized run
//! cargo run --release -p bionic-bench --bin figures --report e13 e14 # + scoreboard
//! ```
//!
//! Each experiment prints its tables and writes `results/<id>_*.csv`.
//! EXPERIMENTS.md maps each id to the paper artifact it reproduces.
//!
//! Experiments are decomposed into independent cells and run on a
//! work-queue of `--jobs` worker threads (default: all cores); `--shards`
//! additionally splits shardable cells into that many intra-cell work
//! units (per-model, per-point, or per-config sub-runs merged back
//! deterministically). Output is assembled serially in fixed order, so
//! every CSV and printed table is byte-identical regardless of `--jobs`
//! and `--shards`; only wall-clock time changes. Per-experiment timing is
//! written to `results/harness_timing.csv`.

use bionic_bench::experiments::{self, Scale};
use bionic_bench::harness;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--jobs N] [--shards N] [--list] [--smoke] [--report] [--out DIR] \
         [--trace DIR] [ids...]   ids: {}",
        experiments::ids().collect::<Vec<_>>().join(" ")
    );
    exit(2);
}

fn main() {
    let mut jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut shards = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut trace_dir: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut scale = Scale::Full;
    let mut report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for id in experiments::ids() {
                    println!("{id}");
                }
                return;
            }
            "--jobs" | "-j" => {
                let n = args.next().unwrap_or_else(|| usage());
                jobs = n.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--shards" => {
                let n = args.next().unwrap_or_else(|| usage());
                shards = n.parse().unwrap_or_else(|_| usage());
                if shards == 0 {
                    usage();
                }
            }
            "--trace" => {
                let d = args.next().unwrap_or_else(|| usage());
                trace_dir = Some(PathBuf::from(d));
            }
            // CI-sized cells: same code paths and determinism guarantees
            // as Full, seconds instead of minutes. Published CSVs always
            // come from a Full run, so smoke output defaults away from
            // results/ (override with --out).
            "--smoke" => scale = Scale::Smoke,
            // Assemble a run report (report.json + report.md scoreboard
            // with knee/valley detectors) from the results dir after the
            // selected experiments finish.
            "--report" => report = true,
            "--out" => {
                let d = args.next().unwrap_or_else(|| usage());
                out_dir = Some(PathBuf::from(d));
            }
            s if s.starts_with('-') => usage(),
            s => ids.push(s.to_string()),
        }
    }

    if let Some(dir) = &trace_dir {
        // Traced TATP + TPC-C streams: Perfetto trace, windowed unit/core
        // utilization, and a metrics snapshot per benchmark. Runs instead
        // of the experiment grid when invoked without ids.
        match bionic_bench::trace::run_traced(dir, jobs) {
            Ok(paths) => {
                for p in &paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("trace export failed: {e}");
                exit(1);
            }
        }
        if ids.is_empty() {
            return;
        }
    }
    if ids.is_empty() {
        ids = experiments::ids().map(str::to_string).collect();
    }

    let mut selected = Vec::new();
    for id in &ids {
        match experiments::build(id, scale, shards) {
            Some(e) => selected.push(e),
            None => {
                eprintln!("unknown experiment id: {id}");
                usage();
            }
        }
    }

    let results = out_dir.unwrap_or_else(|| {
        PathBuf::from(match scale {
            Scale::Full => "results",
            Scale::Smoke => "target/smoke-results",
        })
    });
    let timing = harness::run(selected, jobs, &results);
    timing.table().save_and_print(&results, "harness_timing");

    if report {
        let label = match scale {
            Scale::Full => "full",
            Scale::Smoke => "smoke",
        };
        match bionic_bench::report::build_report(&results, label) {
            Ok(rep) => match bionic_bench::report::write_report(&results, &rep) {
                Ok((json, md)) => {
                    println!("wrote {}", json.display());
                    println!("wrote {}", md.display());
                }
                Err(e) => {
                    eprintln!("report write failed: {e}");
                    exit(1);
                }
            },
            Err(e) => {
                eprintln!("report build failed: {e}");
                exit(1);
            }
        }
    }
}
