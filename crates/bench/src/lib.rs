//! Shared reporting utilities for the benchmark harness: a minimal CSV
//! writer and table printer used by the `figures` binary.

#![deny(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;
pub mod trace;

use std::fmt::Write as _;
use std::path::Path;

/// A simple in-memory table that renders to CSV and aligned text.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
        self
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        out
    }

    /// Write CSV to `results/<name>.csv` and echo the text table.
    pub fn save_and_print(&self, results_dir: &Path, name: &str) {
        std::fs::create_dir_all(results_dir).expect("create results dir");
        let path = results_dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv()).expect("write csv");
        println!("{}", self.to_text());
        println!("[saved {}]\n", path.display());
    }
}

/// Format a float compactly.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escapes_and_aligns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1,2".into(), "x".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,2\""));
        let text = t.to_text();
        assert!(text.contains('a') && text.contains('x'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.4), "123");
        assert_eq!(f(1.5), "1.500");
        assert!(f(1e9).contains('e'));
    }
}
