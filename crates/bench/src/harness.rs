//! Parallel experiment harness.
//!
//! Every experiment is decomposed into independent **cells** — pure
//! `FnOnce() -> CellOut` closures closed over nothing but their own
//! configuration (each cell builds its own engine, generators, and seeds).
//! A cell may additionally be split into **shards**: sub-closures covering
//! disjoint slices of the cell's parameter/seed range whose outputs are
//! recombined by a deterministic merge (by default, concatenation in shard
//! order). A work-queue runner executes every shard on `jobs` worker
//! threads; results are collected **by (experiment, cell, shard) index**
//! and every table row, CSV byte, and printed line is produced by the
//! experiment's `assemble` step on the main thread in fixed
//! experiment/cell order. Consequently the contents of `results/*.csv`
//! are byte-identical for every `jobs` **and** `--shards` value —
//! parallelism only changes wall-clock time (reported separately in
//! `harness_timing.csv`, the one file that legitimately differs run to
//! run).
//!
//! Work units are enqueued in descending [`Cell::cost`] order (stable on
//! ties), so the long E8/E13 measurement cells start immediately instead
//! of queueing behind dozens of cheap cells and serializing the makespan
//! as a straggler tail. The schedule is deterministic and, because
//! collection is by index, it cannot affect output bytes.
//!
//! Determinism rules for cells and shards (see DESIGN.md):
//! 1. no printing and no file I/O inside a cell;
//! 2. no shared mutable state — all RNG seeding is per-shard and fixed;
//! 3. a sharded cell's decomposition must be exact: the shard outputs,
//!    merged in shard order, must equal what one closure computing the
//!    whole range would return (this is what keeps CSVs byte-identical
//!    at any `--shards` value);
//! 4. all cross-cell derivation (baselines, ratios, claims) happens in
//!    `assemble` from the collected `values`.

use crate::Table;
use std::path::Path;
use std::time::Instant;

/// What one cell computes: table fragments, scalars for cross-cell
/// derivation, and free-form note lines. Everything is plain data — cells
/// never touch stdout or the filesystem.
#[derive(Debug, Default)]
pub struct CellOut {
    /// Named tables (or fragments of a table shared across cells). The
    /// assembler merges fragments with the same name in cell order.
    pub tables: Vec<(String, Table)>,
    /// Scalars consumed by the experiment's `assemble` step.
    pub values: Vec<f64>,
    /// Lines printed (in cell order) after the experiment's tables.
    pub notes: Vec<String>,
}

impl CellOut {
    /// A cell output carrying one table.
    pub fn table(name: impl Into<String>, table: Table) -> Self {
        CellOut {
            tables: vec![(name.into(), table)],
            ..Default::default()
        }
    }
}

/// A unit of parallel work.
pub type CellFn = Box<dyn FnOnce() -> CellOut + Send>;

/// Deterministic recombination of per-shard outputs into one cell output.
pub type MergeFn = Box<dyn FnOnce(Vec<CellOut>) -> CellOut + Send>;

/// One experiment cell: at least one shard closure, an optional custom
/// shard merge (`None` ⇒ [`concat_outs`]), and a relative cost hint used
/// only to order the work queue.
pub struct Cell {
    shards: Vec<CellFn>,
    merge: Option<MergeFn>,
    cost: u64,
}

impl Cell {
    /// The common case: one closure, no sharding.
    pub fn one(f: impl FnOnce() -> CellOut + Send + 'static) -> Self {
        Cell {
            shards: vec![Box::new(f)],
            merge: None,
            cost: 1,
        }
    }

    /// A cell split into shard closures recombined by [`concat_outs`] —
    /// correct whenever each shard emits the rows/values/notes its slice
    /// of the range would have produced, in range order.
    pub fn sharded(shards: Vec<CellFn>) -> Self {
        assert!(!shards.is_empty(), "a cell needs at least one shard");
        Cell {
            shards,
            merge: None,
            cost: 1,
        }
    }

    /// A sharded cell with a custom deterministic merge (e.g. combining
    /// per-shard rates into one row, or per-shard `Histogram`s into one
    /// `Summary`).
    pub fn sharded_merging(
        shards: Vec<CellFn>,
        merge: impl FnOnce(Vec<CellOut>) -> CellOut + Send + 'static,
    ) -> Self {
        assert!(!shards.is_empty(), "a cell needs at least one shard");
        Cell {
            shards,
            merge: Some(Box::new(merge)),
            cost: 1,
        }
    }

    /// Attach a scheduling cost hint (arbitrary relative units; higher
    /// runs earlier). Purely a wall-clock lever — never affects output.
    pub fn cost(mut self, cost: u64) -> Self {
        self.cost = cost.max(1);
        self
    }
}

/// Split `items` into at most `shards` contiguous, near-equal chunks,
/// preserving order. `shards == 1` (or a single item) yields one chunk, so
/// a sharded decomposition built on this degrades to the unsharded code
/// path exactly.
pub fn shard_items<T>(items: Vec<T>, shards: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let k = shards.max(1).min(n.max(1));
    let (base, extra) = (n / k, n % k);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(k);
    let mut it = items.into_iter();
    for i in 0..k {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out.retain(|c| !c.is_empty());
    if out.is_empty() {
        out.push(Vec::new());
    }
    out
}

/// Final, serial step of an experiment: receives every cell's output in
/// cell-index order and performs all printing and CSV writing.
pub type AssembleFn = Box<dyn FnOnce(Vec<CellOut>, &Path) + Send>;

/// One experiment: an id, a banner line, parallel cells, and the serial
/// assembly step.
pub struct Experiment {
    /// Short id (`f1` … `e14`).
    pub id: &'static str,
    /// Banner printed before the experiment's output.
    pub title: &'static str,
    /// Independent units of work.
    pub cells: Vec<Cell>,
    /// Deterministic merge + print + save step.
    pub assemble: AssembleFn,
}

/// Merge cell outputs into whole tables, in first-seen (cell, table)
/// order. Fragments sharing a name must share headers.
pub fn merge_tables(outs: &[CellOut]) -> Vec<(String, Table)> {
    let mut merged: Vec<(String, Table)> = Vec::new();
    for out in outs {
        for (name, frag) in &out.tables {
            match merged.iter_mut().find(|(n, _)| n == name) {
                Some((_, t)) => {
                    assert_eq!(t.headers, frag.headers, "fragment headers differ: {name}");
                    t.rows.extend(frag.rows.iter().cloned());
                }
                None => merged.push((name.clone(), frag.clone())),
            }
        }
    }
    merged
}

/// The default shard merge: concatenate tables (fragment-wise, like
/// [`merge_tables`]), values, and notes in shard order. With shards
/// emitting their slice of the range in order, this reconstructs exactly
/// the unsharded cell's output.
pub fn concat_outs(shards: Vec<CellOut>) -> CellOut {
    // Fold every fragment (including the first shard's) into a fresh
    // accumulator so duplicate-named fragments *within* one shard are
    // canonicalized the same way as fragments across shards — otherwise a
    // later shard's rows could extend the first duplicate and jump ahead
    // of the first shard's remaining fragments.
    let mut acc = CellOut::default();
    for s in shards {
        for (name, frag) in s.tables {
            match acc.tables.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => {
                    assert_eq!(t.headers, frag.headers, "shard headers differ: {name}");
                    t.rows.extend(frag.rows);
                }
                None => acc.tables.push((name, frag)),
            }
        }
        acc.values.extend(s.values);
        acc.notes.extend(s.notes);
    }
    acc
}

/// The assembly step most experiments need: merge table fragments, save
/// and print each table, then print every note in cell order.
pub fn default_assemble(outs: Vec<CellOut>, results_dir: &Path) {
    for (name, table) in merge_tables(&outs) {
        table.save_and_print(results_dir, &name);
    }
    for out in &outs {
        for note in &out.notes {
            println!("{note}");
        }
    }
}

/// Wall-clock accounting for one experiment within a run.
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// Experiment id.
    pub id: &'static str,
    /// Number of scheduled work units (cell shards).
    pub cells: usize,
    /// Sum of per-unit execution times (the serial cost).
    pub serial_seconds: f64,
    /// First-unit-start to last-unit-end (the parallel cost).
    pub makespan_seconds: f64,
}

impl ExperimentTiming {
    /// Serial-over-makespan speedup for this experiment.
    pub fn speedup(&self) -> f64 {
        if self.makespan_seconds > 0.0 {
            self.serial_seconds / self.makespan_seconds
        } else {
            1.0
        }
    }
}

/// Wall-clock accounting for a whole run.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Worker count used.
    pub jobs: usize,
    /// Per-experiment timings, in run order.
    pub per_experiment: Vec<ExperimentTiming>,
    /// Sum of all cell times (what `--jobs 1` would roughly cost).
    pub serial_seconds: f64,
    /// Elapsed time of the parallel cell phase.
    pub wall_seconds: f64,
}

impl RunTiming {
    /// Render as the `harness_timing.csv` table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(&[
            "experiment",
            "cells",
            "serial_seconds",
            "makespan_seconds",
            "speedup",
        ]);
        for e in &self.per_experiment {
            t.row(vec![
                e.id.to_string(),
                e.cells.to_string(),
                format!("{:.3}", e.serial_seconds),
                format!("{:.3}", e.makespan_seconds),
                format!("{:.2}", e.speedup()),
            ]);
        }
        let total_cells: usize = self.per_experiment.iter().map(|e| e.cells).sum();
        t.row(vec![
            format!("TOTAL(jobs={})", self.jobs),
            total_cells.to_string(),
            format!("{:.3}", self.serial_seconds),
            format!("{:.3}", self.wall_seconds),
            format!(
                "{:.2}",
                if self.wall_seconds > 0.0 {
                    self.serial_seconds / self.wall_seconds
                } else {
                    1.0
                }
            ),
        ]);
        t
    }
}

/// Run `experiments` with `jobs` workers, then assemble each experiment in
/// order. Returns the timing report; all experiment output (tables, CSVs,
/// claims) is produced by the assembly steps.
pub fn run(experiments: Vec<Experiment>, jobs: usize, results_dir: &Path) -> RunTiming {
    let jobs = jobs.max(1);
    let epoch = Instant::now();

    struct Done {
        exp: usize,
        cell: usize,
        shard: usize,
        out: CellOut,
        started: f64,
        finished: f64,
    }

    // Flatten cells into shard work units; remember each cell's shard
    // count and merge so the outputs can be recombined afterwards.
    let mut assembles = Vec::with_capacity(experiments.len());
    let mut merges: Vec<Vec<Option<MergeFn>>> = Vec::new();
    let mut units: Vec<(u64, usize, usize, usize, CellFn)> = Vec::new();
    let mut outs: Vec<Vec<Vec<Option<CellOut>>>> = Vec::new();
    for (ei, exp) in experiments.into_iter().enumerate() {
        let mut cell_merges = Vec::with_capacity(exp.cells.len());
        let mut cell_slots = Vec::with_capacity(exp.cells.len());
        for (ci, cell) in exp.cells.into_iter().enumerate() {
            cell_slots.push((0..cell.shards.len()).map(|_| None).collect::<Vec<_>>());
            cell_merges.push(cell.merge);
            for (si, work) in cell.shards.into_iter().enumerate() {
                units.push((cell.cost, ei, ci, si, work));
            }
        }
        merges.push(cell_merges);
        outs.push(cell_slots);
        assembles.push((exp.id, exp.title, exp.assemble));
    }
    let total_units = units.len();

    // Longest-expected-first schedule: stable sort keeps ties in
    // (experiment, cell, shard) order, so the queue is deterministic.
    units.sort_by_key(|u| std::cmp::Reverse(u.0));

    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, usize, usize, CellFn)>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<Done>();
    for (_, ei, ci, si, work) in units {
        if work_tx.send((ei, ci, si, work)).is_err() {
            unreachable!("work queue closed before workers started");
        }
    }
    drop(work_tx);

    let mut timing: Vec<ExperimentTiming> = assembles
        .iter()
        .map(|(id, _, _)| ExperimentTiming {
            id,
            cells: 0,
            serial_seconds: 0.0,
            makespan_seconds: 0.0,
        })
        .collect();
    let mut spans: Vec<(f64, f64)> = vec![(f64::MAX, 0.0); assembles.len()];

    let mut record = |d: Done, outs: &mut Vec<Vec<Vec<Option<CellOut>>>>| {
        outs[d.exp][d.cell][d.shard] = Some(d.out);
        timing[d.exp].cells += 1;
        timing[d.exp].serial_seconds += d.finished - d.started;
        spans[d.exp].0 = spans[d.exp].0.min(d.started);
        spans[d.exp].1 = spans[d.exp].1.max(d.finished);
    };

    if jobs == 1 {
        // Single worker: run every unit inline on this thread, in queue
        // order. Same results by construction, no thread machinery.
        drop(done_tx);
        while let Ok((exp, cell, shard, work)) = work_rx.try_recv() {
            let started = epoch.elapsed().as_secs_f64();
            let out = work();
            let finished = epoch.elapsed().as_secs_f64();
            record(
                Done {
                    exp,
                    cell,
                    shard,
                    out,
                    started,
                    finished,
                },
                &mut outs,
            );
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    while let Ok((exp, cell, shard, work)) = work_rx.recv() {
                        let started = epoch.elapsed().as_secs_f64();
                        let out = work();
                        let finished = epoch.elapsed().as_secs_f64();
                        let _ = done_tx.send(Done {
                            exp,
                            cell,
                            shard,
                            out,
                            started,
                            finished,
                        });
                    }
                });
            }
            drop(done_tx);
            drop(work_rx);
            for _ in 0..total_units {
                let d = done_rx.recv().expect("worker died with work pending");
                record(d, &mut outs);
            }
        });
    }
    let wall_seconds = epoch.elapsed().as_secs_f64();

    for (t, (lo, hi)) in timing.iter_mut().zip(&spans) {
        if t.cells > 0 {
            t.makespan_seconds = hi - lo;
        }
    }

    // Deterministic serial shard-merge + assembly, in experiment order.
    for (((id, title, assemble), cell_outs), cell_merges) in
        assembles.into_iter().zip(outs).zip(merges)
    {
        println!("{title}");
        let collected: Vec<CellOut> = cell_outs
            .into_iter()
            .zip(cell_merges)
            .map(|(shard_outs, merge)| {
                let shards: Vec<CellOut> = shard_outs
                    .into_iter()
                    .map(|o| o.unwrap_or_else(|| panic!("missing shard output for {id}")))
                    .collect();
                match merge {
                    Some(m) => m(shards),
                    None => concat_outs(shards),
                }
            })
            .collect();
        assemble(collected, results_dir);
    }

    let serial_seconds = timing.iter().map(|t| t.serial_seconds).sum();
    RunTiming {
        jobs,
        per_experiment: timing,
        serial_seconds,
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionic_sim::stats::Histogram;
    use bionic_sim::time::SimTime;

    fn toy(idx: usize) -> Cell {
        Cell::one(move || {
            let mut t = Table::new(&["i", "sq"]);
            t.row(vec![idx.to_string(), (idx * idx).to_string()]);
            CellOut {
                tables: vec![("toy".into(), t)],
                values: vec![idx as f64],
                notes: vec![],
            }
        })
        .cost(idx as u64 % 3 + 1)
    }

    fn toy_experiment() -> Experiment {
        Experiment {
            id: "toy",
            title: "### toy",
            cells: (0..16).map(toy).collect(),
            assemble: Box::new(|outs, dir| {
                let sum: f64 = outs.iter().flat_map(|o| &o.values).sum();
                assert_eq!(sum, 120.0);
                default_assemble(outs, dir);
            }),
        }
    }

    #[test]
    fn results_are_collected_by_index_regardless_of_jobs() {
        let base = std::env::temp_dir().join(format!("bionic_harness_test_{}", std::process::id()));
        let mut csvs = Vec::new();
        for jobs in [1usize, 4] {
            let dir = base.join(format!("jobs{jobs}"));
            run(vec![toy_experiment()], jobs, &dir);
            csvs.push(std::fs::read(dir.join("toy.csv")).expect("csv written"));
        }
        assert_eq!(csvs[0], csvs[1], "CSV bytes must not depend on --jobs");
        let _ = std::fs::remove_dir_all(&base);
    }

    /// A sharded experiment over a seed range: each shard simulates its
    /// slice of seeds; the cell merge records each shard's samples into a
    /// `Histogram`, folds the per-shard histograms together in shard order
    /// via `Histogram::merge`, and reports the pooled `Summary`. The
    /// resulting CSV must be byte-identical for any shards × jobs
    /// combination — the core guarantee the figure suite's `--shards`
    /// knob relies on.
    fn seed_range_experiment(shards: usize) -> Experiment {
        const SEEDS: u64 = 1000;
        let chunks = shard_items((0..SEEDS).collect(), shards);
        let shard_fns: Vec<CellFn> = chunks
            .into_iter()
            .map(|seeds| -> CellFn {
                Box::new(move || CellOut {
                    // Deterministic pseudo-latency per seed; exact as f64.
                    values: seeds.iter().map(|s| (s * s % 7919 + 1) as f64).collect(),
                    ..Default::default()
                })
            })
            .collect();
        Experiment {
            id: "seeds",
            title: "### seeds",
            cells: vec![Cell::sharded_merging(shard_fns, |outs| {
                let mut pooled = Histogram::new();
                for o in &outs {
                    let mut h = Histogram::new();
                    for &ps in &o.values {
                        h.record(SimTime::from_ps(ps as u64));
                    }
                    pooled.merge(&h);
                }
                let s = pooled.summary();
                let mut t = Table::new(&["count", "mean_ps", "p50_ps", "p99_ps", "max_ps"]);
                t.row(vec![
                    s.count.to_string(),
                    s.mean.as_ps().to_string(),
                    s.p50.as_ps().to_string(),
                    s.p99.as_ps().to_string(),
                    s.max.as_ps().to_string(),
                ]);
                CellOut::table("seed_summary", t)
            })],
            assemble: Box::new(default_assemble),
        }
    }

    #[test]
    fn sharded_seed_range_is_byte_identical_for_any_shards_and_jobs() {
        let base = std::env::temp_dir().join(format!("bionic_shard_test_{}", std::process::id()));
        let mut csvs = Vec::new();
        for (i, (shards, jobs)) in [(1usize, 1usize), (2, 4), (8, 4), (1000, 2), (5000, 1)]
            .into_iter()
            .enumerate()
        {
            let dir = base.join(format!("v{i}"));
            run(vec![seed_range_experiment(shards)], jobs, &dir);
            csvs.push(std::fs::read(dir.join("seed_summary.csv")).expect("csv written"));
        }
        for c in &csvs[1..] {
            assert_eq!(&csvs[0], c, "CSV bytes must not depend on shards or jobs");
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn concat_outs_reconstructs_the_unsharded_output() {
        let row = |i: usize| {
            let mut t = Table::new(&["i"]);
            t.row(vec![i.to_string()]);
            CellOut {
                tables: vec![("x".into(), t)],
                values: vec![i as f64],
                notes: vec![format!("n{i}")],
            }
        };
        let merged = concat_outs(vec![row(0), row(1), row(2)]);
        assert_eq!(merged.tables.len(), 1);
        assert_eq!(merged.tables[0].1.rows.len(), 3);
        assert_eq!(merged.tables[0].1.rows[1][0], "1");
        assert_eq!(merged.values, vec![0.0, 1.0, 2.0]);
        assert_eq!(merged.notes, vec!["n0", "n1", "n2"]);
    }

    #[test]
    fn shard_items_is_an_exact_ordered_partition() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for shards in [1usize, 2, 3, 8, 200] {
                let chunks = shard_items((0..n).collect::<Vec<_>>(), shards);
                let flat: Vec<usize> = chunks.iter().flatten().copied().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} shards={shards}");
                assert!(chunks.len() <= shards.max(1));
                if n > 0 {
                    let max = chunks.iter().map(Vec::len).max().unwrap();
                    let min = chunks.iter().map(Vec::len).min().unwrap();
                    assert!(max - min <= 1, "near-equal chunks: n={n} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn merge_rejects_mismatched_fragments() {
        let a = CellOut::table("x", Table::new(&["h1"]));
        let b = CellOut::table("x", Table::new(&["h2"]));
        let r = std::panic::catch_unwind(|| merge_tables(&[a, b]));
        assert!(r.is_err());
    }
}
