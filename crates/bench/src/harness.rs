//! Parallel experiment harness.
//!
//! Every experiment is decomposed into independent **cells** — pure
//! `FnOnce() -> CellOut` closures closed over nothing but their own
//! configuration (each cell builds its own engine, generators, and seeds).
//! A work-queue runner executes cells on `jobs` worker threads; results are
//! collected **by cell index** and every table row, CSV byte, and printed
//! line is produced by the experiment's `assemble` step on the main thread
//! in fixed experiment/cell order. Consequently the contents of
//! `results/*.csv` are byte-identical for every `jobs` value — parallelism
//! only changes wall-clock time (reported separately in
//! `harness_timing.csv`, the one file that legitimately differs run to
//! run).
//!
//! Determinism rules for cells (see DESIGN.md):
//! 1. no printing and no file I/O inside a cell;
//! 2. no shared mutable state — all RNG seeding is per-cell and fixed;
//! 3. all cross-cell derivation (baselines, ratios, claims) happens in
//!    `assemble` from the collected `values`.

use crate::Table;
use std::path::Path;
use std::time::Instant;

/// What one cell computes: table fragments, scalars for cross-cell
/// derivation, and free-form note lines. Everything is plain data — cells
/// never touch stdout or the filesystem.
#[derive(Debug, Default)]
pub struct CellOut {
    /// Named tables (or fragments of a table shared across cells). The
    /// assembler merges fragments with the same name in cell order.
    pub tables: Vec<(String, Table)>,
    /// Scalars consumed by the experiment's `assemble` step.
    pub values: Vec<f64>,
    /// Lines printed (in cell order) after the experiment's tables.
    pub notes: Vec<String>,
}

impl CellOut {
    /// A cell output carrying one table.
    pub fn table(name: impl Into<String>, table: Table) -> Self {
        CellOut {
            tables: vec![(name.into(), table)],
            ..Default::default()
        }
    }
}

/// A unit of parallel work.
pub type CellFn = Box<dyn FnOnce() -> CellOut + Send>;

/// Final, serial step of an experiment: receives every cell's output in
/// cell-index order and performs all printing and CSV writing.
pub type AssembleFn = Box<dyn FnOnce(Vec<CellOut>, &Path) + Send>;

/// One experiment: an id, a banner line, parallel cells, and the serial
/// assembly step.
pub struct Experiment {
    /// Short id (`f1` … `e12`).
    pub id: &'static str,
    /// Banner printed before the experiment's output.
    pub title: &'static str,
    /// Independent units of work.
    pub cells: Vec<CellFn>,
    /// Deterministic merge + print + save step.
    pub assemble: AssembleFn,
}

/// Merge cell outputs into whole tables, in first-seen (cell, table)
/// order. Fragments sharing a name must share headers.
pub fn merge_tables(outs: &[CellOut]) -> Vec<(String, Table)> {
    let mut merged: Vec<(String, Table)> = Vec::new();
    for out in outs {
        for (name, frag) in &out.tables {
            match merged.iter_mut().find(|(n, _)| n == name) {
                Some((_, t)) => {
                    assert_eq!(t.headers, frag.headers, "fragment headers differ: {name}");
                    t.rows.extend(frag.rows.iter().cloned());
                }
                None => merged.push((name.clone(), frag.clone())),
            }
        }
    }
    merged
}

/// The assembly step most experiments need: merge table fragments, save
/// and print each table, then print every note in cell order.
pub fn default_assemble(outs: Vec<CellOut>, results_dir: &Path) {
    for (name, table) in merge_tables(&outs) {
        table.save_and_print(results_dir, &name);
    }
    for out in &outs {
        for note in &out.notes {
            println!("{note}");
        }
    }
}

/// Wall-clock accounting for one experiment within a run.
#[derive(Debug, Clone)]
pub struct ExperimentTiming {
    /// Experiment id.
    pub id: &'static str,
    /// Number of cells.
    pub cells: usize,
    /// Sum of per-cell execution times (the serial cost).
    pub serial_seconds: f64,
    /// First-cell-start to last-cell-end (the parallel cost).
    pub makespan_seconds: f64,
}

impl ExperimentTiming {
    /// Serial-over-makespan speedup for this experiment.
    pub fn speedup(&self) -> f64 {
        if self.makespan_seconds > 0.0 {
            self.serial_seconds / self.makespan_seconds
        } else {
            1.0
        }
    }
}

/// Wall-clock accounting for a whole run.
#[derive(Debug, Clone)]
pub struct RunTiming {
    /// Worker count used.
    pub jobs: usize,
    /// Per-experiment timings, in run order.
    pub per_experiment: Vec<ExperimentTiming>,
    /// Sum of all cell times (what `--jobs 1` would roughly cost).
    pub serial_seconds: f64,
    /// Elapsed time of the parallel cell phase.
    pub wall_seconds: f64,
}

impl RunTiming {
    /// Render as the `harness_timing.csv` table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(&[
            "experiment",
            "cells",
            "serial_seconds",
            "makespan_seconds",
            "speedup",
        ]);
        for e in &self.per_experiment {
            t.row(vec![
                e.id.to_string(),
                e.cells.to_string(),
                format!("{:.3}", e.serial_seconds),
                format!("{:.3}", e.makespan_seconds),
                format!("{:.2}", e.speedup()),
            ]);
        }
        let total_cells: usize = self.per_experiment.iter().map(|e| e.cells).sum();
        t.row(vec![
            format!("TOTAL(jobs={})", self.jobs),
            total_cells.to_string(),
            format!("{:.3}", self.serial_seconds),
            format!("{:.3}", self.wall_seconds),
            format!(
                "{:.2}",
                if self.wall_seconds > 0.0 {
                    self.serial_seconds / self.wall_seconds
                } else {
                    1.0
                }
            ),
        ]);
        t
    }
}

/// Run `experiments` with `jobs` workers, then assemble each experiment in
/// order. Returns the timing report; all experiment output (tables, CSVs,
/// claims) is produced by the assembly steps.
pub fn run(experiments: Vec<Experiment>, jobs: usize, results_dir: &Path) -> RunTiming {
    let jobs = jobs.max(1);
    let epoch = Instant::now();

    struct Done {
        exp: usize,
        cell: usize,
        out: CellOut,
        started: f64,
        finished: f64,
    }

    let (work_tx, work_rx) = crossbeam::channel::unbounded::<(usize, usize, CellFn)>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<Done>();

    let mut assembles = Vec::with_capacity(experiments.len());
    let mut total_cells = 0usize;
    for (ei, exp) in experiments.into_iter().enumerate() {
        for (ci, cell) in exp.cells.into_iter().enumerate() {
            if work_tx.send((ei, ci, cell)).is_err() {
                unreachable!("work queue closed before workers started");
            }
            total_cells += 1;
        }
        assembles.push((exp.id, exp.title, exp.assemble));
    }
    drop(work_tx);

    let mut outs: Vec<Vec<Option<CellOut>>> = Vec::new();
    let mut timing: Vec<ExperimentTiming> = assembles
        .iter()
        .map(|(id, _, _)| {
            outs.push(Vec::new());
            ExperimentTiming {
                id,
                cells: 0,
                serial_seconds: 0.0,
                makespan_seconds: 0.0,
            }
        })
        .collect();
    let mut spans: Vec<(f64, f64)> = vec![(f64::MAX, 0.0); assembles.len()];

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok((exp, cell, work)) = work_rx.recv() {
                    let started = epoch.elapsed().as_secs_f64();
                    let out = work();
                    let finished = epoch.elapsed().as_secs_f64();
                    let _ = done_tx.send(Done {
                        exp,
                        cell,
                        out,
                        started,
                        finished,
                    });
                }
            });
        }
        drop(done_tx);
        drop(work_rx);
        for _ in 0..total_cells {
            let d = done_rx.recv().expect("worker died with work pending");
            let slot = &mut outs[d.exp];
            if slot.len() <= d.cell {
                slot.resize_with(d.cell + 1, || None);
            }
            slot[d.cell] = Some(d.out);
            timing[d.exp].cells += 1;
            timing[d.exp].serial_seconds += d.finished - d.started;
            spans[d.exp].0 = spans[d.exp].0.min(d.started);
            spans[d.exp].1 = spans[d.exp].1.max(d.finished);
        }
    });
    let wall_seconds = epoch.elapsed().as_secs_f64();

    for (t, (lo, hi)) in timing.iter_mut().zip(&spans) {
        if t.cells > 0 {
            t.makespan_seconds = hi - lo;
        }
    }

    // Deterministic serial assembly, in experiment order.
    for ((id, title, assemble), cell_outs) in assembles.into_iter().zip(outs) {
        println!("{title}");
        let collected: Vec<CellOut> = cell_outs
            .into_iter()
            .map(|o| o.unwrap_or_else(|| panic!("missing cell output for {id}")))
            .collect();
        assemble(collected, results_dir);
    }

    let serial_seconds = timing.iter().map(|t| t.serial_seconds).sum();
    RunTiming {
        jobs,
        per_experiment: timing,
        serial_seconds,
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(idx: usize) -> CellFn {
        Box::new(move || {
            let mut t = Table::new(&["i", "sq"]);
            t.row(vec![idx.to_string(), (idx * idx).to_string()]);
            CellOut {
                tables: vec![("toy".into(), t)],
                values: vec![idx as f64],
                notes: vec![],
            }
        })
    }

    fn toy_experiment() -> Experiment {
        Experiment {
            id: "toy",
            title: "### toy",
            cells: (0..16).map(toy).collect(),
            assemble: Box::new(|outs, dir| {
                let sum: f64 = outs.iter().flat_map(|o| &o.values).sum();
                assert_eq!(sum, 120.0);
                default_assemble(outs, dir);
            }),
        }
    }

    #[test]
    fn results_are_collected_by_index_regardless_of_jobs() {
        let base = std::env::temp_dir().join(format!("bionic_harness_test_{}", std::process::id()));
        let mut csvs = Vec::new();
        for jobs in [1usize, 4] {
            let dir = base.join(format!("jobs{jobs}"));
            run(vec![toy_experiment()], jobs, &dir);
            csvs.push(std::fs::read(dir.join("toy.csv")).expect("csv written"));
        }
        assert_eq!(csvs[0], csvs[1], "CSV bytes must not depend on --jobs");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn merge_rejects_mismatched_fragments() {
        let a = CellOut::table("x", Table::new(&["h1"]));
        let b = CellOut::table("x", Table::new(&["h2"]));
        let r = std::panic::catch_unwind(|| merge_tables(&[a, b]));
        assert!(r.is_err());
    }
}
