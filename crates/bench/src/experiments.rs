//! Every figure/claim experiment, decomposed into harness cells.
//!
//! This is the library behind the `figures` binary: each experiment from
//! EXPERIMENTS.md is built as a [`Experiment`] whose independent
//! (config × workload × parameter) cells run on the parallel harness. All
//! output assembly is serial and deterministic — see `harness.rs` for the
//! rules that keep `results/*.csv` byte-identical across `--jobs` values.
//!
//! [`Scale::Smoke`] shrinks workload sizes so integration tests can drive
//! the same code paths quickly; published numbers use [`Scale::Full`].

use crate::harness::{
    default_assemble, merge_tables, shard_items, Cell, CellFn, CellOut, Experiment,
};
use crate::{f, Table};
use bionic_btree::probe::{ProbeEngine, ProbeEngineConfig};
use bionic_btree::tree::BTree;
use bionic_core::breakdown::Category;
use bionic_core::config::{EngineConfig, LogImpl, Offloads};
use bionic_core::engine::Engine;
use bionic_core::placement::PlacementConfig;
use bionic_overlay::overlay::OverlayIndex;
use bionic_queue::sched::{simulate_chain, ParkPolicy};
use bionic_queue::timing::{HwQueueTiming, SwQueueTiming};
use bionic_scan::predicate::{CmpOp, ColPredicate, ScanRequest};
use bionic_scan::scanner::{scan_enhanced, scan_software, ScannerConfig};
use bionic_sim::darksilicon::{figure1_curves, ChipGeneration, FIGURE1_SERIAL_FRACTIONS};
use bionic_sim::energy::EnergyDomain;
use bionic_sim::fault::HwFaultConfig;
use bionic_sim::fpga::FpgaFabric;
use bionic_sim::mem::{AccessClass, SgDram};
use bionic_sim::platform::Platform;
use bionic_sim::time::SimTime;
use bionic_storage::columnar::{Column, ColumnarTable};
use bionic_wal::timing::{ConsolidatedLog, HwLog, LatchedLog, LogInsertModel, SwLogParams};
use bionic_workloads::hybrid::{run_hybrid, HybridConfig};
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator, TatpTxn};
use bionic_workloads::tpcc::{self, TpccConfig, TpccTxn};

/// Workload sizing: full figures or a fast deterministic subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Published experiment sizes.
    Full,
    /// Reduced sizes for integration tests (same code paths, same
    /// determinism guarantees, seconds instead of minutes).
    Smoke,
}

impl Scale {
    /// Pick `full` or `smoke` by scale.
    fn pick(self, full: u64, smoke: u64) -> u64 {
        match self {
            Scale::Full => full,
            Scale::Smoke => smoke,
        }
    }

    fn subscribers(self) -> i64 {
        match self {
            Scale::Full => 20_000,
            Scale::Smoke => 2_000,
        }
    }
}

/// Transactions handed to `Engine::submit_batch` per group in the figure
/// sweeps: large enough that same-table probes share descents, small
/// enough to stay far below any run's transaction count.
const SUBMIT_BATCH: usize = 32;

/// A registry entry: the experiment id and its scale- and shard-aware
/// builder. `shards` is an upper bound on intra-cell parallelism: builders
/// with exact shardable decompositions (independent sub-runs whose merged
/// output reconstructs the serial one byte-for-byte) split their cells
/// into up to that many shard closures; the rest ignore it.
pub type RegistryEntry = (&'static str, fn(Scale, usize) -> Experiment);

/// The experiment registry — the single source of truth for ids, run
/// order, `figures --list`, and [`build`]. Adding an experiment here is
/// the *only* step needed for the binary, the harness, and the default
/// run order to pick it up (the id list used to be duplicated between
/// this module and the builder match, which is how a new experiment could
/// silently miss the CLI).
pub const REGISTRY: [RegistryEntry; 16] = [
    ("f1", |_, _| f1()),
    ("f2", |_, _| f2()),
    ("f3", |s, _| f3(s)),
    ("e4", |s, _| e4(s)),
    ("e5", e5),
    ("e6", |s, _| e6(s)),
    ("e7", e7),
    ("e8", |s, _| e8(s)),
    ("e9", |s, _| e9(s)),
    ("e10", e10),
    ("e11", e11),
    ("e12", e12),
    ("e13", |s, _| e13(s)),
    ("e14", |s, _| e14(s)),
    ("e15", |s, _| e15(s)),
    ("e16", |s, _| e16(s)),
];

/// All experiment ids in run order, derived from [`REGISTRY`].
pub fn ids() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().map(|(id, _)| *id)
}

/// Build one experiment by id (a [`REGISTRY`] lookup) with up to `shards`
/// intra-cell shards.
pub fn build(id: &str, scale: Scale, shards: usize) -> Option<Experiment> {
    REGISTRY
        .iter()
        .find(|(rid, _)| *rid == id)
        .map(|(_, f)| f(scale, shards.max(1)))
}

// ---------------------------------------------------------------- F1 ----

/// Figure 1: fraction of chip utilized vs. parallelism, 2011 vs 2018.
fn f1() -> Experiment {
    let cell = Cell::one(|| {
        let mut out = CellOut::default();
        for (tag, cores) in [("2011_64cores", 64u64), ("2018_1024cores", 1024)] {
            let curves = figure1_curves(cores);
            let mut headers = vec!["cores".to_string()];
            for s in FIGURE1_SERIAL_FRACTIONS {
                headers.push(format!("serial_{}pct", s * 100.0));
            }
            let mut t = Table {
                headers,
                rows: Vec::new(),
            };
            for i in 0..curves[0].points.len() {
                let mut row = vec![curves[0].points[i].0.to_string()];
                for c in &curves {
                    row.push(f(c.points[i].1));
                }
                t.rows.push(row);
            }
            out.tables.push((format!("f1_{tag}"), t));
        }
        let g = ChipGeneration::y2018();
        out.notes.push(format!(
            "power envelope 2018: {}/{} cores powered ({}% dark, §2's conservative calculation)\n",
            g.powered_cores(),
            g.cores,
            g.dark_fraction * 100.0
        ));
        out
    });
    Experiment {
        id: "f1",
        title: "### F1 — Figure 1: dark silicon & Amdahl chip utilization\n",
        cells: vec![cell],
        assemble: Box::new(default_assemble),
    }
}

// ---------------------------------------------------------------- F2 ----

/// Figure 2: validate every modeled platform path against its label.
fn f2() -> Experiment {
    let cell = Cell::one(|| {
        let mut t = Table::new(&[
            "path",
            "configured_bw",
            "measured_bw",
            "configured_latency",
            "measured_latency",
        ]);

        // PCIe: 1000 x 1 MiB bulk transfers, and a 64 B round trip.
        let mut p = Platform::hc2();
        let mut done = SimTime::ZERO;
        for i in 0..1000u64 {
            done = p.pcie_transfer(SimTime::ZERO, 1 << 20).max(done);
            let _ = i;
        }
        let bw = (1000u64 * (1 << 20)) as f64 / done.as_secs();
        let rt = p.pcie_exchange(done, 64, SimTime::ZERO, 64) - done;
        t.row(vec![
            "PCIe 8x".into(),
            "4.0e9 B/s".into(),
            format!("{:.2e} B/s", bw),
            "2 us RT".into(),
            format!("{:.2} us RT", rt.as_us()),
        ]);

        // SG-DRAM: random 64-bit requests, pipelined.
        let mut sg = SgDram::hc2();
        let (first, _) = sg.access(SimTime::ZERO);
        let n = 100_000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = sg.access(SimTime::ZERO).0;
        }
        t.row(vec![
            "SG-DRAM".into(),
            "8.0e10 B/s".into(),
            format!("{:.2e} B/s", (n * 8) as f64 / last.as_secs()),
            "400 ns".into(),
            format!("{:.0} ns", first.as_ns()),
        ]);

        // SAS array: sequential stream vs random read.
        let mut p = Platform::hc2();
        let mut at = SimTime::ZERO;
        let chunk = 8u64 << 20;
        for i in 0..64u64 {
            at = p.sas_read(at, i * chunk, chunk);
        }
        let sas_bw = (64 * chunk) as f64 / at.as_secs();
        let rand_read = p.sas_read(at, 0, 8192) - at;
        t.row(vec![
            "2x SAS".into(),
            "1.5e9 B/s".into(),
            format!("{:.2e} B/s", sas_bw),
            "5 ms seek".into(),
            format!("{:.2} ms", rand_read.as_ms()),
        ]);

        // SSD.
        let mut p = Platform::hc2();
        let mut at = SimTime::ZERO;
        for i in 0..64u64 {
            at = p.ssd_write(at, i * chunk, chunk);
        }
        let ssd_bw = (64 * chunk) as f64 / at.as_secs();
        let ssd_lat = p.ssd_write(at, 1 << 40, 512) - at;
        t.row(vec![
            "SSD".into(),
            "5.0e8 B/s".into(),
            format!("{:.2e} B/s", ssd_bw),
            "20 us".into(),
            format!("{:.1} us", ssd_lat.as_us()),
        ]);

        // Host memory: expected latencies per access class.
        let p = Platform::hc2();
        for class in AccessClass::ALL {
            let lat = p.cpu_mem.expected_latency(class);
            t.row(vec![
                format!("host mem ({class:?})"),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("{:.1} ns", lat.as_ns()),
            ]);
        }
        CellOut::table("f2_platform", t)
    });
    Experiment {
        id: "f2",
        title: "### F2 — Figure 2: platform path characterization\n",
        cells: vec![cell],
        assemble: Box::new(default_assemble),
    }
}

// ---------------------------------------------------------------- F3 ----

fn breakdown_rows(t: &mut Table, label: &str, b: &bionic_core::TimeBreakdown) {
    for (c, pct) in b.percentages() {
        if c == Category::Lock {
            continue;
        }
        t.row(vec![label.into(), c.label().into(), f(pct)]);
    }
}

/// One F3 run: breakdown rows for the shared table plus
/// `[btree_fraction, log_fraction, total_ns_per_txn]` for the claims.
fn f3_cell(label: &'static str, bionic: bool, workload: &'static str, scale: Scale) -> Cell {
    Cell::one(move || {
        let cfg = if bionic {
            EngineConfig::bionic()
        } else {
            EngineConfig::software()
        };
        let report = match workload {
            "tatp" => {
                let wl = TatpConfig {
                    subscribers: scale.subscribers(),
                    ..Default::default()
                };
                let mut engine = Engine::new(cfg);
                let tables = tatp::load(&mut engine, &wl);
                let mut g = TatpGenerator::new(wl, tables);
                bionic_workloads::run_batched(
                    &mut engine,
                    scale.pick(5_000, 800),
                    SimTime::from_us(2.0),
                    SUBMIT_BATCH,
                    || ("UpdSubData", g.program(TatpTxn::UpdateSubscriberData)),
                )
            }
            _ => {
                let wl = TpccConfig::default();
                let mut engine = Engine::new(cfg);
                let (_, mut g) = tpcc::load(&mut engine, &wl);
                bionic_workloads::run_batched(
                    &mut engine,
                    scale.pick(2_000, 400),
                    SimTime::from_us(10.0),
                    SUBMIT_BATCH,
                    || ("StockLevel", g.program(TpccTxn::StockLevel)),
                )
            }
        };
        let mut t = Table::new(&["workload", "category", "percent"]);
        breakdown_rows(&mut t, label, &report.breakdown);
        CellOut {
            tables: vec![("f3_breakdown".into(), t)],
            values: vec![
                report.breakdown.fraction(Category::Btree),
                report.breakdown.fraction(Category::Log),
                report.breakdown.total().as_ns() / report.submitted.max(1) as f64,
            ],
            notes: vec![],
        }
    })
    .cost(40)
}

/// Figure 3: time breakdown of TATP-UpdSubData and TPCC-StockLevel on the
/// software (conventional multicore) DORA engine, plus the Figure-4 payoff
/// on the bionic engine.
fn f3(scale: Scale) -> Experiment {
    Experiment {
        id: "f3",
        title: "### F3 — Figure 3: time breakdown on a conventional multicore\n",
        cells: vec![
            f3_cell("TATP-UpdSubData", false, "tatp", scale),
            f3_cell("TPCC-StockLevel", false, "tpcc", scale),
            f3_cell("TATP-UpdSubData-bionic", true, "tatp", scale),
            f3_cell("TPCC-StockLevel-bionic", true, "tpcc", scale),
        ],
        assemble: Box::new(|outs, dir| {
            for (name, table) in merge_tables(&outs) {
                table.save_and_print(dir, &name);
            }
            let (tatp_sw, tpcc_sw, tpcc_bi) = (&outs[0].values, &outs[1].values, &outs[3].values);
            println!(
                "figure-4 payoff: StockLevel CPU time {} -> {} per txn; Btree share \
                 {:.1}% -> {:.1}%\n",
                SimTime::from_ns(tpcc_sw[2]),
                SimTime::from_ns(tpcc_bi[2]),
                100.0 * tpcc_sw[0],
                100.0 * tpcc_bi[0],
            );
            println!(
                "shape checks: StockLevel Btree = {:.1}% (paper: \"40% or more\"); \
                 UpdSubData Log = {:.1}% (visible) vs StockLevel Log = {:.1}% (nil)\n",
                100.0 * tpcc_sw[0],
                100.0 * tatp_sw[1],
                100.0 * tpcc_sw[1],
            );
        }),
    }
}

// ---------------------------------------------------------------- E4 ----

/// §5.3: the hardware tree-probe engine — outstanding-request sweep,
/// string keys, and software-vs-hardware cost per probe.
fn e4(scale: Scale) -> Experiment {
    // (a) One cell per outstanding-count: `[capacity, mean_latency_us]`.
    let mut cells: Vec<Cell> = [1usize, 2, 4, 8, 12, 16, 24, 32]
        .into_iter()
        .map(|outstanding| -> Cell {
            Cell::one(move || {
                let mut fabric = FpgaFabric::hc2();
                let mut eng = ProbeEngine::place(
                    &mut fabric,
                    ProbeEngineConfig {
                        max_outstanding: outstanding,
                        ..Default::default()
                    },
                )
                .unwrap();
                let mut sg = SgDram::hc2();
                let cap = eng.capacity_per_sec(3, 1, &sg);
                let inter = SimTime::from_secs(1.0 / (0.9 * cap));
                let n = scale.pick(10_000, 1_000);
                let mut at = SimTime::ZERO;
                let mut total = SimTime::ZERO;
                for _ in 0..n {
                    total += eng.submit(at, 3, 1, &mut sg).time() - at;
                    at += inter;
                }
                CellOut {
                    tables: vec![],
                    values: vec![cap, total.as_us() / n as f64],
                    notes: vec![],
                }
            })
        })
        .collect();

    let tree_keys = scale.pick(200_000, 20_000) as i64;

    // (b) Per-probe cost: software vs hardware, int vs string keys.
    // Returns its table plus `[sw_energy_nJ, sw_cpu_ns, hw_energy_nJ]`.
    cells.push(Cell::one(move || {
        let mut t = Table::new(&["path", "key", "latency_us", "cpu_busy_ns", "energy_nJ"]);
        let mut tree = BTree::with_order(256);
        for i in 0..tree_keys {
            tree.insert(i, i as u64);
        }
        let (_, fp) = tree.get(&(tree_keys / 2));
        let mut p = Platform::hc2();
        let before = p.energy.total();
        let mut cpu = p.sw_step(30 + 3 * fp.comparisons as u64, 0, AccessClass::Hot);
        cpu += p.cpu_mem_access(AccessClass::Index, fp.inner_visited as u64);
        cpu += p.cpu_mem_access(AccessClass::PointerChase, fp.leaves_visited as u64);
        let sw_energy = (p.energy.total() - before).as_nj();
        t.row(vec![
            "software".into(),
            "i64".into(),
            f(cpu.as_us()),
            f(cpu.as_ns()),
            f(sw_energy),
        ]);
        let mut hw_energy = 0.0;
        for (key, factor) in [("i64", 1u32), ("str24B", 3)] {
            let mut fabric = FpgaFabric::hc2();
            let mut eng = ProbeEngine::hc2(&mut fabric).unwrap();
            let mut sg = SgDram::hc2();
            let out = eng.submit(SimTime::ZERO, fp.nodes_visited(), factor, &mut sg);
            if factor == 1 {
                hw_energy = out.energy().as_nj();
            }
            t.row(vec![
                "hardware".into(),
                key.into(),
                f(out.time().as_us() + 2.0), // + PCIe round trip
                "16".into(),                 // doorbell
                f(out.energy().as_nj()),
            ]);
        }
        CellOut {
            tables: vec![("e4_per_probe".into(), t)],
            values: vec![sw_energy, cpu.as_ns(), hw_energy],
            notes: vec![],
        }
    }));

    // (c) The software counter-measure §5.3 cites: PALM-style batching
    // amortizes descents but cannot remove the leaf-level pointer chase.
    cells.push(Cell::one(move || {
        let mut tree = BTree::with_order(256);
        for i in 0..tree_keys {
            tree.insert(i, i as u64);
        }
        let mut t = Table::new(&["batch", "nodes_per_probe_single", "nodes_per_probe_batched"]);
        for batch in [16usize, 64, 256] {
            let mut keys: Vec<i64> = (0..batch as i64).map(|i| i * 701 % tree_keys).collect();
            let (_, bfp) = tree.batch_get(&mut keys);
            let mut singles = 0;
            for k in &keys {
                singles += tree.get(k).1.nodes_visited();
            }
            t.row(vec![
                batch.to_string(),
                f(singles as f64 / keys.len() as f64),
                f(bfp.nodes_visited() as f64 / keys.len() as f64),
            ]);
        }
        CellOut::table("e4_palm_batching", t)
    }));

    Experiment {
        id: "e4",
        title: "### E4 — §5.3: tree probe engine\n",
        cells,
        assemble: Box::new(|outs, dir| {
            // (a): sweep table derived from cell values; cell 0 is the base.
            let mut t = Table::new(&[
                "outstanding",
                "capacity_probes_per_sec",
                "speedup_vs_1",
                "p_mean_latency_us_at_90pct",
            ]);
            let base_rate = outs[0].values[0];
            for (outstanding, out) in [1usize, 2, 4, 8, 12, 16, 24, 32].iter().zip(&outs) {
                t.row(vec![
                    outstanding.to_string(),
                    f(out.values[0]),
                    f(out.values[0] / base_rate),
                    f(out.values[1]),
                ]);
            }
            t.save_and_print(dir, "e4_outstanding");
            for (name, table) in merge_tables(&outs) {
                table.save_and_print(dir, &name);
            }
            let probe = &outs[8].values; // the (b) cell
            println!(
                "claims: throughput flattens at ~12 outstanding (the §5.3 \"dozen\"); \
                 a hardware probe is slower per-request but {}x cheaper in total \
                 energy and ~10x cheaper in core-time ({} ns vs 16 ns of CPU)\n",
                f(probe[0] / probe[2]),
                f(probe[1]),
            );
        }),
    }
}

// ---------------------------------------------------------------- E5 ----

/// §5.4: log insertion scalability — latched vs consolidated vs hardware.
///
/// Each thread-count cell prices three independent log models. The models
/// never share state (the two software models ignore the fabric and the
/// hardware model places on a fresh one), so the cell shards the model
/// range across workers; the merge reassembles the per-shard
/// `[rate, cpu_ns]` pairs — in model order — into the one combined row
/// the serial loop used to produce, byte for byte.
fn e5(scale: Scale, shards: usize) -> Experiment {
    let cells: Vec<Cell> = [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|threads| -> Cell {
            let shard_fns: Vec<CellFn> = shard_items((0..3usize).collect(), shards)
                .into_iter()
                .map(|chunk| -> CellFn {
                    Box::new(move || {
                        let bytes = 120u64;
                        let think = SimTime::from_ns(200.0);
                        let params = SwLogParams::default();
                        let mut values = Vec::new();
                        for model in chunk {
                            let mut fabric = FpgaFabric::hc2();
                            let mut m: Box<dyn LogInsertModel> = match model {
                                0 => Box::new(LatchedLog::new(params)),
                                1 => Box::new(ConsolidatedLog::new(params)),
                                _ => Box::new(HwLog::hc2(&mut fabric).unwrap()),
                            };
                            let mut clocks = vec![SimTime::ZERO; threads];
                            let n = scale.pick(30_000, 6_000);
                            let mut last = SimTime::ZERO;
                            let mut busy = SimTime::ZERO;
                            for i in 0..n {
                                let th = (i % threads as u64) as usize;
                                let out = m.insert(clocks[th] + think, th, bytes);
                                clocks[th] = clocks[th] + think + out.cpu_busy;
                                busy += out.cpu_busy;
                                last = last.max(out.buffered_at);
                            }
                            values.push(n as f64 / last.as_secs());
                            values.push(busy.as_ns() / n as f64);
                        }
                        CellOut {
                            values,
                            ..Default::default()
                        }
                    })
                })
                .collect();
            Cell::sharded_merging(shard_fns, move |outs| {
                // Concatenated in shard order = `[rate, cpu_ns]` per model
                // in model order: latched, consolidated, hardware.
                let v: Vec<f64> = outs.into_iter().flat_map(|o| o.values).collect();
                let mut t = Table::new(&[
                    "threads",
                    "latched_ins_per_s",
                    "consolidated_ins_per_s",
                    "hardware_ins_per_s",
                    "latched_cpu_ns",
                    "hw_cpu_ns",
                ]);
                t.row(vec![
                    threads.to_string(),
                    f(v[0]),
                    f(v[2]),
                    f(v[4]),
                    f(v[1]),
                    f(v[5]),
                ]);
                CellOut::table("e5_log_scaling", t)
            })
        })
        .collect();
    Experiment {
        id: "e5",
        title: "### E5 — §5.4: log insertion under contention\n",
        cells,
        assemble: Box::new(|outs, dir| {
            let mut outs = outs;
            outs.push(CellOut {
                notes: vec![
                    "claims: latched plateaus once the latch saturates; consolidation \
                     lifts the plateau ([7]); the hardware engine keeps scaling and its \
                     per-insert CPU cost is constant\n"
                        .into(),
                ],
                ..Default::default()
            });
            default_assemble(outs, dir);
        }),
    }
}

// ---------------------------------------------------------------- E6 ----

/// §5.5: queue costs and the scheduling problem hardware does not solve.
fn e6(scale: Scale) -> Experiment {
    let cell = Cell::one(move || {
        let mut out = CellOut::default();
        let mut t = Table::new(&[
            "op",
            "software_same_socket_ns",
            "software_cross_socket_ns",
            "hardware_ns",
        ]);
        let mut sw = SwQueueTiming::default();
        let mut fabric = FpgaFabric::hc2();
        let mut hw = HwQueueTiming::hc2(&mut fabric).unwrap();
        t.row(vec![
            "enqueue".into(),
            f(sw.enqueue(false).cpu_busy.as_ns()),
            f(sw.enqueue(true).cpu_busy.as_ns()),
            f(hw.enqueue(SimTime::ZERO).cpu_busy.as_ns()),
        ]);
        t.row(vec![
            "dequeue".into(),
            f(sw.dequeue(false).cpu_busy.as_ns()),
            f(sw.dequeue(true).cpu_busy.as_ns()),
            f(hw.dequeue(SimTime::ZERO).cpu_busy.as_ns()),
        ]);
        out.tables.push(("e6_queue_ops".into(), t));

        // Convoys: parking policy x wake latency.
        let mut t = Table::new(&[
            "policy",
            "wake_us",
            "p99_latency_us",
            "wakes",
            "spin_waste_ms",
        ]);
        for (policy, name) in [
            (ParkPolicy::Spin, "spin"),
            (ParkPolicy::ParkImmediately, "park-eager"),
            (
                ParkPolicy::ParkAfter(SimTime::from_us(20.0)),
                "park-20us-grace",
            ),
        ] {
            for wake_us in [0.8, 8.0] {
                let r = simulate_chain(
                    4,
                    scale.pick(20_000, 4_000),
                    SimTime::from_us(1.0),
                    10,
                    SimTime::from_us(50.0),
                    SimTime::from_ns(500.0),
                    SimTime::from_us(wake_us),
                    policy,
                );
                t.row(vec![
                    name.into(),
                    f(wake_us),
                    f(r.latency.quantile(0.99).as_us()),
                    r.wakes.to_string(),
                    f(r.spin_waste.as_ms()),
                ]);
            }
        }
        out.tables.push(("e6_convoys".into(), t));
        out.notes.push(
            "claims: hardware cuts queue op cost ~10x, but eager parking still \
             convoys even with 10x faster wakes — \"it will not magically solve \
             the scheduling problem\"\n"
                .into(),
        );
        out
    });
    Experiment {
        id: "e6",
        title: "### E6 — §5.5: queue management\n",
        cells: vec![cell],
        assemble: Box::new(default_assemble),
    }
}

// ---------------------------------------------------------------- E7 ----

/// §5.6: the overlay database.
///
/// One cell, six independent parts — the (a) read-path table, the four
/// (b) merge-amortization batches, and the (c) historical-patching note —
/// each rebuilding its own base table. The parts shard across workers;
/// the default concat merge restores part order, so the output is
/// byte-identical at any shard count.
fn e7(scale: Scale, shards: usize) -> Experiment {
    let rows = scale.pick(100_000, 20_000) as i64;
    const MERGE_BATCHES: [u64; 4] = [1_000, 5_000, 20_000, 50_000];
    let shard_fns: Vec<CellFn> = shard_items((0..6usize).collect(), shards)
        .into_iter()
        .map(|chunk| -> CellFn {
            Box::new(move || {
                let mut out = CellOut::default();
                let base: Vec<(i64, u64)> = (0..rows).map(|i| (i, i as u64)).collect();
                for part in chunk {
                    match part {
                        // (a) Read paths: delta hit vs main fallthrough vs
                        // non-resident miss.
                        0 => {
                            let mut ov = OverlayIndex::new(base.clone(), usize::MAX);
                            for i in 0..1_000i64.min(rows / 4) {
                                ov.put(i, 7, i as u64 + 1);
                            }
                            let mut t = Table::new(&["read_path", "nodes_visited", "note"]);
                            let (_, fp_hit) = ov.get_latest(&(rows / 200));
                            t.row(vec![
                                "delta hit".into(),
                                fp_hit.nodes_visited().to_string(),
                                "buffered write answered from delta".into(),
                            ]);
                            let (_, fp_miss) = ov.get_latest(&(rows / 2));
                            t.row(vec![
                                "main fallthrough".into(),
                                fp_miss.nodes_visited().to_string(),
                                "delta probe + main probe".into(),
                            ]);
                            let tight = OverlayIndex::new(base.clone(), 1 << 18);
                            let misses = (0..rows).filter(|k| tight.probe_would_miss(k)).count();
                            t.row(vec![
                                "non-resident".into(),
                                "-".into(),
                                format!(
                                    "budget 256KiB -> {:.1}% probes abort to software+SAS",
                                    100.0 * misses as f64 / rows as f64
                                ),
                            ]);
                            out.tables.push(("e7_read_paths".into(), t));
                        }
                        // (b) Merge amortization: bytes written back per
                        // buffered write, one batch size per part.
                        1..=4 => {
                            let batch = MERGE_BATCHES[part - 1];
                            let mut t = Table::new(&[
                                "delta_writes_before_merge",
                                "merge_bytes",
                                "bytes_per_write",
                                "retained",
                            ]);
                            let mut ov = OverlayIndex::new(base.clone(), usize::MAX);
                            let mut v = 0;
                            for i in 0..batch {
                                v += 1;
                                ov.put((i as i64 * 17) % rows, i, v);
                            }
                            let report = ov.merge(v);
                            t.row(vec![
                                batch.to_string(),
                                report.bytes_written.to_string(),
                                f(report.bytes_written as f64 / batch as f64),
                                report.entries_retained.to_string(),
                            ]);
                            out.tables.push(("e7_merge_amortization".into(), t));
                        }
                        // (c) Historical patching: a query as-of an old
                        // version sees old data.
                        _ => {
                            let mut ov = OverlayIndex::new(base.clone(), usize::MAX);
                            ov.put(42, 999, 10);
                            ov.delete(43, 11);
                            let mut rows_old = Vec::new();
                            ov.range_asof(&42, &45, 5, |k, v| rows_old.push((*k, v)));
                            let mut rows_new = Vec::new();
                            ov.range_asof(&42, &45, 11, |k, v| rows_new.push((*k, v)));
                            out.notes.push(format!(
                                "historical patching: asof v5 -> {rows_old:?}; asof v11 -> {rows_new:?} \
                                 (HANA-style: updates patched into history on read)\n"
                            ));
                        }
                    }
                }
                out
            })
        })
        .collect();
    Experiment {
        id: "e7",
        title: "### E7 — §5.6: overlay database\n",
        cells: vec![Cell::sharded(shard_fns).cost(7)],
        assemble: Box::new(default_assemble),
    }
}

// ---------------------------------------------------------------- E8 ----

fn run_tatp(
    cfg: EngineConfig,
    subscribers: i64,
    n: u64,
    inter: SimTime,
) -> bionic_workloads::WorkloadReport {
    let wl = TatpConfig {
        subscribers,
        ..Default::default()
    };
    let mut engine = Engine::new(cfg);
    let tables = tatp::load(&mut engine, &wl);
    let mut g = TatpGenerator::new(wl, tables);
    bionic_workloads::run_batched_pooled(&mut engine, n, inter, SUBMIT_BATCH, &mut g)
}

fn run_tpcc(cfg: EngineConfig, n: u64, inter: SimTime) -> bionic_workloads::WorkloadReport {
    let wl = TpccConfig::default();
    let mut engine = Engine::new(cfg);
    let (_, mut g) = tpcc::load(&mut engine, &wl);
    bionic_workloads::run_batched(&mut engine, n, inter, SUBMIT_BATCH, || {
        let (t, p) = g.next();
        (t.label(), p)
    })
}

/// Measure a configuration: capacity from an overloaded run (arrivals far
/// above service rate), then latency/energy from a run at ~70% of that
/// capacity.
fn measure(
    cfg: &EngineConfig,
    workload: &str,
    scale: Scale,
) -> (f64, bionic_workloads::WorkloadReport) {
    let (overload_inter, n) = if workload == "tatp" {
        (SimTime::from_ns(100.0), scale.pick(20_000, 3_000))
    } else {
        (SimTime::from_ns(1000.0), scale.pick(6_000, 1_000))
    };
    let cap_report = if workload == "tatp" {
        run_tatp(cfg.clone(), scale.subscribers(), n, overload_inter)
    } else {
        run_tpcc(cfg.clone(), n, overload_inter)
    };
    let capacity = cap_report.throughput_per_sec;
    let inter = SimTime::from_secs(1.0 / (0.7 * capacity));
    let loaded = if workload == "tatp" {
        run_tatp(cfg.clone(), scale.subscribers(), n, inter)
    } else {
        run_tpcc(cfg.clone(), n, inter)
    };
    (capacity, loaded)
}

/// §1/§3 headline: end-to-end software vs bionic (+ per-unit ablation).
fn e8(scale: Scale) -> Experiment {
    let mut cells: Vec<Cell> = Vec::new();

    // Cost hints (relative serial seconds, ~centisecond units): the TATP
    // capacity+loaded measurements dominate the whole suite's makespan,
    // so they must enter the work queue first.
    const COST_MEASURE_TATP: u64 = 65;
    const COST_MEASURE_TPCC: u64 = 30;
    const COST_PER_TYPE: u64 = 10;

    // Grid: 3 engines x 2 workloads, one cell each.
    for (name, cfg) in [
        ("conventional", EngineConfig::conventional()),
        ("dora-software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        for workload in ["tatp", "tpcc"] {
            let cfg = cfg.clone();
            let cost = if workload == "tatp" {
                COST_MEASURE_TATP
            } else {
                COST_MEASURE_TPCC
            };
            cells.push(
                Cell::one(move || {
                    let (capacity, report) = measure(&cfg, workload, scale);
                    let energy = |d: EnergyDomain| {
                        report
                            .energy
                            .iter()
                            .find(|(dd, _)| *dd == d)
                            .map(|(_, e)| e.as_j() * 1e3)
                            .unwrap_or(0.0)
                    };
                    let mut t = Table::new(&[
                        "engine",
                        "workload",
                        "capacity_txn_s",
                        "min_us_at_70pct",
                        "p50_us_at_70pct",
                        "p99_us_at_70pct",
                        "joules_per_txn",
                        "cpu_mJ",
                        "fpga_mJ",
                    ]);
                    t.row(vec![
                        name.into(),
                        workload.into(),
                        f(capacity),
                        f(report.latency.min.as_us()),
                        f(report.latency.p50.as_us()),
                        f(report.latency.p99.as_us()),
                        f(report.joules_per_txn),
                        f(energy(EnergyDomain::CpuCore)),
                        f(energy(EnergyDomain::Fpga)),
                    ]);
                    CellOut::table("e8_end_to_end", t)
                })
                .cost(cost),
            );
        }
    }

    // Per-transaction-type latency on TPC-C, software vs bionic.
    for (name, cfg) in [
        ("dora-software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        cells.push(
            Cell::one(move || {
                // ~40k txn/s: below both engines' capacity, so the table shows
                // transaction shape, not queueing.
                let report = run_tpcc(cfg, scale.pick(6_000, 1_000), SimTime::from_us(25.0));
                let mut t =
                    Table::new(&["engine", "txn_type", "count", "min_us", "p50_us", "p99_us"]);
                for (ty, summary) in &report.per_type_latency {
                    t.row(vec![
                        name.into(),
                        (*ty).into(),
                        summary.count.to_string(),
                        f(summary.min.as_us()),
                        f(summary.p50.as_us()),
                        f(summary.p99.as_us()),
                    ]);
                }
                CellOut::table("e8_per_type_latency", t)
            })
            .cost(COST_PER_TYPE),
        );
    }

    // Ablation: add one offload at a time on TATP.
    let variants: Vec<(&'static str, Offloads)> = vec![
        ("none", Offloads::none()),
        (
            "probe",
            Offloads {
                probe: true,
                ..Offloads::none()
            },
        ),
        (
            "log",
            Offloads {
                log: LogImpl::Hardware,
                ..Offloads::none()
            },
        ),
        (
            "log-consolidated(sw)",
            Offloads {
                log: LogImpl::Consolidated,
                ..Offloads::none()
            },
        ),
        (
            "queue",
            Offloads {
                queue: true,
                ..Offloads::none()
            },
        ),
        (
            "overlay+probe",
            Offloads {
                probe: true,
                overlay: true,
                ..Offloads::none()
            },
        ),
        ("all", Offloads::all()),
    ];
    for (name, offloads) in variants {
        cells.push(
            Cell::one(move || {
                let cfg = EngineConfig {
                    offloads,
                    ..EngineConfig::software()
                };
                let (capacity, report) = measure(&cfg, "tatp", scale);
                let mut t = Table::new(&[
                    "offloads",
                    "capacity_txn_s",
                    "joules_per_txn",
                    "min_us_at_70pct",
                    "p50_us_at_70pct",
                ]);
                t.row(vec![
                    name.into(),
                    f(capacity),
                    f(report.joules_per_txn),
                    f(report.latency.min.as_us()),
                    f(report.latency.p50.as_us()),
                ]);
                CellOut::table("e8_ablation", t)
            })
            .cost(COST_MEASURE_TATP),
        );
    }

    Experiment {
        id: "e8",
        title: "### E8 — end-to-end: conventional vs DORA vs bionic\n",
        cells,
        assemble: Box::new(|outs, dir| {
            let mut outs = outs;
            outs.push(CellOut {
                notes: vec![
                    "claims: the bionic engine wins on joules/txn (the §2 metric), not \
                     on latency; each offload contributes, the combination compounds\n"
                        .into(),
                ],
                ..Default::default()
            });
            default_assemble(outs, dir);
        }),
    }
}

// ---------------------------------------------------------------- E9 ----

/// §2/§3: OLTP under dark silicon — scale-up and the power envelope.
fn e9(scale: Scale) -> Experiment {
    const AGENTS: [usize; 7] = [2, 4, 8, 16, 32, 64, 128];
    let cells: Vec<Cell> = AGENTS
        .into_iter()
        .map(|agents| -> Cell {
            Cell::one(move || {
                let cfg = EngineConfig::software().with_agents(agents);
                // Overload: arrivals far faster than service so agents
                // saturate.
                let wl = TatpConfig {
                    subscribers: scale.subscribers(),
                    ..Default::default()
                };
                let mut engine = Engine::new(cfg);
                let tables = tatp::load(&mut engine, &wl);
                let mut g = TatpGenerator::new(wl, tables);
                let report = bionic_workloads::run(
                    &mut engine,
                    scale.pick(20_000, 3_000),
                    SimTime::from_ns(50.0),
                    || {
                        let (t, p) = g.next();
                        (t.label(), p)
                    },
                );
                CellOut {
                    tables: vec![],
                    values: vec![report.throughput_per_sec, engine.agent_imbalance()],
                    notes: vec![],
                }
            })
            .cost(13)
        })
        .collect();
    Experiment {
        id: "e9",
        title: "### E9 — dark-silicon scale-up of the OLTP engine\n",
        cells,
        assemble: Box::new(|outs, dir| {
            let mut t = Table::new(&[
                "agents",
                "throughput_txn_s",
                "scaled_speedup",
                "amdahl_fit_serial_pct",
                "imbalance_max_over_mean",
            ]);
            let base = outs[0].values[0] / 2.0;
            for (agents, out) in AGENTS.iter().zip(&outs) {
                let tput = out.values[0];
                let speedup = tput / base;
                let n = *agents as f64;
                // Fit the serial fraction from each point: s from Amdahl.
                let s = if speedup > 1.0 && n > 1.0 {
                    ((n / speedup) - 1.0) / (n - 1.0)
                } else {
                    0.0
                };
                t.row(vec![
                    agents.to_string(),
                    f(tput),
                    f(speedup),
                    f(s.max(0.0) * 100.0),
                    f(out.values[1]),
                ]);
            }
            t.save_and_print(dir, "e9_scaleup");
            println!(
                "claims: the front-end/log serial fraction caps scale-up exactly as \
                 Amdahl predicts; under a 2018 envelope only ~80% of cores could be \
                 lit at all (see F1), so joules/txn — not cores — is the lever\n"
            );
        }),
    }
}

// --------------------------------------------------------------- E10 ----

/// §5.2: Netezza-style FPGA filtering vs CPU scan, selectivity sweep.
/// §5.2: Netezza-style FPGA filtering vs CPU scan, selectivity sweep.
///
/// The five selectivity points are independent (each builds fresh
/// software/hardware platforms against an identical rebuilt column
/// table), so the point range shards across workers; the concat merge
/// restores sweep order, keeping `e10_scan.csv` byte-identical at any
/// shard count.
fn e10(scale: Scale, shards: usize) -> Experiment {
    const SELECTIVITIES: [f64; 5] = [0.1, 1.0, 10.0, 50.0, 100.0];
    let shard_fns: Vec<CellFn> = shard_items((0..SELECTIVITIES.len()).collect(), shards)
        .into_iter()
        .map(|chunk| -> CellFn {
            Box::new(move || {
                let rows = scale.pick(2_000_000, 200_000) as usize;
                let mut table = ColumnarTable::new();
                table.add_column("key", Column::I64((0..rows as i64).collect()));
                table.add_column(
                    "val",
                    Column::I64((0..rows as i64).map(|i| i % 1000).collect()),
                );
                table.add_column(
                    "payload",
                    Column::I64((0..rows as i64).map(|i| i * 3).collect()),
                );

                let mut t = Table::new(&[
                    "selectivity_pct",
                    "sw_pcie_MB",
                    "hw_pcie_MB",
                    "bytes_ratio",
                    "sw_ms",
                    "hw_ms",
                    "sw_J",
                    "hw_J",
                ]);
                let last = chunk.last().copied();
                for point in chunk {
                    let sel_pct = SELECTIVITIES[point];
                    let threshold = (1000.0 * sel_pct / 100.0) as i64;
                    let req = ScanRequest {
                        predicates: vec![ColPredicate::new(1, CmpOp::Lt, threshold)],
                        projection: vec![0, 2],
                        ..Default::default()
                    };
                    let mut p_sw = Platform::hc2();
                    let sw = scan_software(&mut p_sw, &table, &req, SimTime::ZERO);
                    let mut p_hw = Platform::hc2();
                    let hw = scan_enhanced(
                        &mut p_hw,
                        &table,
                        &req,
                        SimTime::ZERO,
                        &ScannerConfig::default(),
                    );
                    assert_eq!(sw.matches.len(), hw.matches.len());
                    t.row(vec![
                        f(sel_pct),
                        f(sw.pcie_bytes as f64 / 1e6),
                        f(hw.pcie_bytes as f64 / 1e6),
                        f(sw.pcie_bytes as f64 / hw.pcie_bytes.max(1) as f64),
                        f(sw.done.as_ms()),
                        f(hw.done.as_ms()),
                        f(p_sw.energy.total().as_j()),
                        f(p_hw.energy.total().as_j()),
                    ]);
                }
                let notes = if last == Some(SELECTIVITIES.len() - 1) {
                    vec![
                        "claims: at low selectivity the FPGA filter ships orders of magnitude \
                 fewer bytes over the 4 GB/s bus; the advantage shrinks toward 100% \
                 selectivity but never inverts (the predicate column never ships)\n"
                            .into(),
                    ]
                } else {
                    vec![]
                };
                CellOut {
                    tables: vec![("e10_scan".into(), t)],
                    values: vec![],
                    notes,
                }
            })
        })
        .collect();
    Experiment {
        id: "e10",
        title: "### E10 — §5.2: enhanced scanner selectivity sweep\n",
        cells: vec![Cell::sharded(shard_fns).cost(15)],
        assemble: Box::new(default_assemble),
    }
}

// --------------------------------------------------------------- E11 ----

/// §4: control flow in hardware — NFA pattern matching, software
/// active-set simulation vs skeleton-automata lanes \[13\].
///
/// Five independent parts — four (a) matcher patterns and the (b)
/// scanner-integrated regex filter — shard across workers; each shard
/// rebuilds its own input stream, and the concat merge restores pattern
/// order for a byte-identical `e11_nfa_matcher.csv` at any shard count.
fn e11(scale: Scale, shards: usize) -> Experiment {
    const PATTERNS: [&str; 4] = ["needle", "a[bc]+d", "(a|ab)+c", "(a|aa)+(b|bb)+x"];
    let shard_fns: Vec<CellFn> = shard_items((0..5usize).collect(), shards)
        .into_iter()
        .map(|chunk| -> CellFn {
            Box::new(move || {
                use bionic_scan::nfa::{Nfa, NfaEngine};
                use bionic_scan::predicate::StrPredicate;
                let mut out = CellOut::default();

                // (a) Raw matcher: cost per byte as pattern nondeterminism
                // grows. One part per pattern.
                let patterns: Vec<&str> = chunk
                    .iter()
                    .filter(|&&part| part < PATTERNS.len())
                    .map(|&part| PATTERNS[part])
                    .collect();
                if !patterns.is_empty() {
                    let mut t = Table::new(&[
                        "pattern",
                        "nfa_states",
                        "sw_state_visits_per_byte",
                        "sw_ns_per_byte",
                        "hw_ns_per_byte",
                        "hw_energy_pJ_per_byte",
                    ]);
                    let input: Vec<u8> = (0..scale.pick(100_000, 20_000) as u32)
                        .map(|i| b"abcdefgh"[(i % 8) as usize])
                        .collect();
                    for pattern in patterns {
                        let nfa = Nfa::compile(pattern).unwrap();
                        let (_, stats) = nfa.search_with_stats(&input);
                        let visits_per_byte = stats.state_visits as f64 / stats.bytes.max(1) as f64;
                        // Software: 4 instructions per state visit at 2.5 GHz.
                        let sw_ns = visits_per_byte * 4.0 * 0.4;
                        let mut fabric = FpgaFabric::hc2();
                        let mut eng = NfaEngine::place(&mut fabric, nfa.state_count()).unwrap();
                        let (done, energy) = eng.scan(SimTime::ZERO, &nfa, stats.bytes);
                        t.row(vec![
                            pattern.into(),
                            nfa.state_count().to_string(),
                            f(visits_per_byte),
                            f(sw_ns),
                            f(done.as_ns() / stats.bytes.max(1) as f64),
                            f(energy.as_j() * 1e12 / stats.bytes.max(1) as f64),
                        ]);
                    }
                    out.tables.push(("e11_nfa_matcher".into(), t));
                }
                if !chunk.contains(&PATTERNS.len()) {
                    return out;
                }

                // (b) In the scanner: LIKE-style filter over a string column.
                let rows = scale.pick(500_000, 100_000) as usize;
                let mut data = Vec::with_capacity(rows * 24);
                for i in 0..rows {
                    let mut tag = if i % 997 == 0 {
                        format!("evt{i:08}FATAL")
                    } else {
                        format!("evt{i:08}routine")
                    }
                    .into_bytes();
                    tag.resize(24, b'y');
                    data.extend_from_slice(&tag);
                }
                let mut table = ColumnarTable::new();
                table.add_column("key", Column::I64((0..rows as i64).collect()));
                table.add_column("tag", Column::FixedStr { width: 24, data });
                let req = ScanRequest {
                    str_predicates: vec![StrPredicate::new(1, "FATAL|PANIC").unwrap()],
                    projection: vec![0],
                    ..Default::default()
                };
                let mut p_sw = Platform::hc2();
                let sw = scan_software(&mut p_sw, &table, &req, SimTime::ZERO);
                let mut p_hw = Platform::hc2();
                let hw = scan_enhanced(
                    &mut p_hw,
                    &table,
                    &req,
                    SimTime::ZERO,
                    &ScannerConfig::default(),
                );
                assert_eq!(sw.matches.len(), hw.matches.len());
                let mut t = Table::new(&["path", "matches", "ms", "GB_per_s", "joules"]);
                let bytes = (rows * 24) as f64;
                for (name, o, p) in [("software", &sw, &p_sw), ("hardware", &hw, &p_hw)] {
                    t.row(vec![
                        name.into(),
                        o.matches.len().to_string(),
                        f(o.done.as_ms()),
                        f(bytes / o.done.as_secs() / 1e9),
                        f(p.energy.total().as_j()),
                    ]);
                }
                out.tables.push(("e11_regex_scan".into(), t));
                out.notes.push(
                    "claims (§4): software cost grows with nondeterminism (state visits/byte); \
             the skeleton-automata lanes are flat at 1 byte/cycle/lane regardless\n"
                        .into(),
                );
                out
            })
        })
        .collect();
    Experiment {
        id: "e11",
        title: "### E11 — §4: NFA regex matching, software vs hardware\n",
        cells: vec![Cell::sharded(shard_fns).cost(25)],
        assemble: Box::new(default_assemble),
    }
}

// --------------------------------------------------------------- E12 ----

/// Robustness: does the E8 energy verdict survive perturbing the two most
/// influential calibration constants? Sweeps CPU nJ/instruction and SG-DRAM
/// nJ/access ±2x around the defaults and reports the bionic/software
/// joules-per-txn ratio for each combination.
fn e12(scale: Scale, shards: usize) -> Experiment {
    let mut cells: Vec<Cell> = Vec::new();
    for cpu_nj in [1.0, 2.0, 4.0] {
        for sg_nj in [1.0, 2.0, 4.0] {
            // The software and bionic runs of one sensitivity point are
            // fully independent engines, so they shard across workers;
            // the merge reassembles the per-shard joules/txn values — in
            // (software, bionic) order — into the row and ratio the
            // serial loop used to produce.
            let shard_fns: Vec<CellFn> = shard_items(vec![false, true], shards)
                .into_iter()
                .map(|chunk| -> CellFn {
                    Box::new(move || {
                        let mut values = Vec::new();
                        for bionic in chunk {
                            let base = if bionic {
                                EngineConfig::bionic()
                            } else {
                                EngineConfig::software()
                            };
                            let cfg = EngineConfig {
                                cpu_nj_per_instr: cpu_nj,
                                sg_nj_per_access: sg_nj,
                                ..base
                            };
                            let report = run_tatp(
                                cfg,
                                scale.subscribers(),
                                scale.pick(8_000, 400),
                                SimTime::from_us(2.0),
                            );
                            values.push(report.joules_per_txn);
                        }
                        CellOut {
                            values,
                            ..Default::default()
                        }
                    })
                })
                .collect();
            cells.push(
                Cell::sharded_merging(shard_fns, move |outs| {
                    let joules: Vec<f64> = outs.into_iter().flat_map(|o| o.values).collect();
                    let ratio = joules[1] / joules[0];
                    let mut t = Table::new(&[
                        "cpu_nj_per_instr",
                        "sg_nj_per_access",
                        "sw_joules_per_txn",
                        "bionic_joules_per_txn",
                        "ratio_bionic_over_sw",
                    ]);
                    t.row(vec![
                        f(cpu_nj),
                        f(sg_nj),
                        f(joules[0]),
                        f(joules[1]),
                        f(ratio),
                    ]);
                    CellOut {
                        tables: vec![("e12_sensitivity".into(), t)],
                        values: vec![ratio],
                        notes: vec![],
                    }
                })
                .cost(12),
            );
        }
    }
    Experiment {
        id: "e12",
        title: "### E12 — sensitivity of the energy verdict to calibration\n",
        cells,
        assemble: Box::new(|outs, dir| {
            for (name, table) in merge_tables(&outs) {
                table.save_and_print(dir, &name);
            }
            let worst = outs
                .iter()
                .flat_map(|o| &o.values)
                .fold(0.0f64, |a, &b| a.max(b));
            println!(
                "claims: the \"bionic uses less energy\" verdict holds across a 4x \
                 range of both constants (worst-case ratio {}); it flips only if \
                 general-purpose cores were implausibly efficient AND FPGA-side \
                 memory implausibly expensive\n",
                f(worst)
            );
        }),
    }
}

/// Column names of one attribution row (appended after a cell's sweep
/// coordinates): integer picoseconds/picojoules only, so the merged table
/// is byte-identical at any `--jobs`×`--shards`.
const ATTRIB_COLS: [&str; 14] = [
    "class",
    "path",
    "count",
    "lat_mean_ps",
    "lat_p50_ps",
    "lat_p99_ps",
    "lat_max_ps",
    "energy_pj_mean",
    "probe_ps",
    "arbiter_wait_ps",
    "watchdog_retry_ps",
    "fallback_ps",
    "commit_ps",
    "other_ps",
];

/// Append one row per occupied `(class, path)` attribution cell to `t`,
/// each prefixed with `prefix` (the cell's sweep coordinates).
fn attrib_rows(t: &mut Table, prefix: &[String], attrib: &bionic_telemetry::Attribution) {
    for (class, path, cell) in attrib.cells() {
        let mut row = prefix.to_vec();
        let lat = &cell.latency_ps;
        row.push(class.to_string());
        row.push(path.label().to_string());
        row.push(lat.count().to_string());
        row.push(lat.mean().to_string());
        row.push(lat.quantile(0.50).to_string());
        row.push(lat.quantile(0.99).to_string());
        row.push(lat.max().to_string());
        row.push(cell.energy_pj.mean().to_string());
        for ps in cell.segments_ps {
            row.push(ps.to_string());
        }
        t.row(row);
    }
}

// --------------------------------------------------------------- E13 ----

/// Figure 4 end-to-end: the hybrid engine under analytics pressure.
///
/// One cell per scan-pressure point: a bionic engine runs TATP while the
/// enhanced scanner offers `pressure × 80 GB/s` of streaming load against
/// the same SG-DRAM and PCIe link, arbitrated by the shared-bandwidth
/// layer. Each cell also verifies the arbiter conservation invariant.
fn e13(scale: Scale) -> Experiment {
    let pressures: &[u64] = match scale {
        Scale::Full => &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        Scale::Smoke => &[0, 25, 50, 75, 100],
    };
    let cells: Vec<Cell> = pressures
        .iter()
        .map(|&pct| -> Cell {
            Cell::one(move || {
                let mut engine = Engine::new(EngineConfig::bionic());
                engine.enable_attribution();
                let cfg = HybridConfig {
                    tatp: TatpConfig {
                        subscribers: scale.subscribers(),
                        ..Default::default()
                    },
                    txns: scale.pick(8_000, 600),
                    inter_arrival: SimTime::from_us(2.0),
                    scan_pressure: pct as f64 / 100.0,
                    scan_rows: scale.pick(1_000_000, 100_000) as usize,
                    range_queries: true,
                    software_scans: false,
                    snapshot_window: Some(SimTime::from_us(200.0)),
                };
                let r = run_hybrid(&mut engine, &cfg);
                bionic_workloads::hybrid::check_conservation(&engine)
                    .expect("no bandwidth created or lost across clients");
                let mut t = Table::new(&[
                    "scan_pressure_pct",
                    "txn_throughput_per_s",
                    "txn_p50_us",
                    "txn_p99_us",
                    "system_joules_per_txn",
                    "scans",
                    "scan_p50_ms",
                    "scan_achieved_GB_s",
                    "query_cache_hits",
                    "sg_oltp_bytes",
                    "sg_olap_bytes",
                    "sg_mean_fill_pct",
                    "sg_max_fill_pct",
                ]);
                t.row(vec![
                    pct.to_string(),
                    f(r.oltp.throughput_per_sec),
                    f(r.oltp.latency.p50.as_us()),
                    f(r.oltp.latency.p99.as_us()),
                    f(r.oltp.joules_per_txn),
                    r.scans.to_string(),
                    f(r.scan_latency.p50.as_ms()),
                    f(r.scan_bytes_per_sec / 1e9),
                    r.query_cache_hits.to_string(),
                    r.sg_oltp_bytes.to_string(),
                    r.sg_olap_bytes.to_string(),
                    f(100.0 * r.sg_mean_fill_frac),
                    f(100.0 * r.sg_max_fill_frac),
                ]);
                // Critical-path attribution per transaction class × offload
                // path, keyed by this cell's pressure point.
                let mut headers = vec!["scan_pressure_pct"];
                headers.extend_from_slice(&ATTRIB_COLS);
                let mut at = Table::new(&headers);
                attrib_rows(
                    &mut at,
                    &[pct.to_string()],
                    engine.attribution().expect("enabled above"),
                );
                // Windowed snapshot feed: per-window commit/wait/path deltas
                // on the fixed 200 µs grid (run-relative bounds).
                let mut wt = Table::new(&[
                    "scan_pressure_pct",
                    "window",
                    "start_us",
                    "end_us",
                    "committed",
                    "sg_oltp_wait_events",
                    "sg_olap_wait_events",
                    "attrib_hw_hit",
                    "attrib_hw_retry",
                    "attrib_sw_fallback",
                    "fabric_occupancy",
                ]);
                let hub = r.snapshots.as_ref().expect("window configured");
                for w in hub.windows() {
                    wt.row(vec![
                        pct.to_string(),
                        w.index.to_string(),
                        bionic_telemetry::export::fmt_us(w.start.as_ps()),
                        bionic_telemetry::export::fmt_us(w.end.as_ps()),
                        w.counter_delta("engine", "committed").to_string(),
                        w.counter_delta("arbiter/sg", "oltp_wait_events")
                            .to_string(),
                        w.counter_delta("arbiter/sg", "olap_wait_events")
                            .to_string(),
                        w.counter_delta("attrib", "hw-hit").to_string(),
                        w.counter_delta("attrib", "hw-retry").to_string(),
                        w.counter_delta("attrib", "sw-fallback").to_string(),
                        f(w.gauge_level("fabric", "occupancy").unwrap_or(0.0)),
                    ]);
                }
                CellOut {
                    tables: vec![
                        ("e13_hybrid".into(), t),
                        ("e13_attrib".into(), at),
                        ("e13_windows".into(), wt),
                    ],
                    values: vec![r.oltp.latency.p99.as_us()],
                    notes: vec![],
                }
            })
            .cost(50)
        })
        .collect();
    Experiment {
        id: "e13",
        title: "### E13 — Figure 4: hybrid engine under analytics pressure\n",
        cells,
        assemble: Box::new(|outs, dir| {
            for (name, table) in merge_tables(&outs) {
                table.save_and_print(dir, &name);
            }
            let calm = outs.first().and_then(|o| o.values.first()).copied();
            let loaded = outs.last().and_then(|o| o.values.first()).copied();
            if let (Some(calm), Some(loaded)) = (calm, loaded) {
                println!(
                    "claims: transaction p99 grows {}x from 0% to 100% scan pressure; \
                     the knee sits near the scanner's 50% arbiter share, past which \
                     scans saturate their grant and window fills stay persistent\n",
                    f(loaded / calm.max(1e-9)),
                );
            }
        }),
    }
}

// --------------------------------------------------------------- E14 ----

/// One E14 sweep point: the hybrid workload on `engine_cfg`, reported as
/// a `e14_brownout` row. `rate_bp` is the per-family per-attempt fault
/// rate armed on every hardware unit (`None` = the all-software reference
/// configuration, which runs no accelerator at all). The `values` carried
/// to the assembler are the functional outcomes the sweep-wide oracle
/// compares: `[committed, aborted, scan_matches, throughput, joules/txn]`.
fn e14_cell(scale: Scale, config_label: &'static str, rate_bp: Option<u32>) -> CellOut {
    let engine_cfg = match rate_bp {
        Some(bp) => EngineConfig::bionic().with_hw_faults(HwFaultConfig::uniform(bp)),
        None => EngineConfig::software(),
    };
    let mut engine = Engine::new(engine_cfg);
    engine.enable_attribution();
    let cfg = HybridConfig {
        tatp: TatpConfig {
            subscribers: scale.subscribers(),
            ..Default::default()
        },
        txns: scale.pick(6_000, 600),
        inter_arrival: SimTime::from_us(2.0),
        scan_pressure: 0.3,
        scan_rows: scale.pick(500_000, 100_000) as usize,
        range_queries: true,
        software_scans: rate_bp.is_none(),
        snapshot_window: None,
    };
    let r = run_hybrid(&mut engine, &cfg);
    bionic_workloads::hybrid::check_conservation(&engine)
        .expect("no bandwidth created or lost across clients");

    // Degraded-mode totals across the five units (all zero on the
    // reference configuration, whose engine has no fault layer).
    let (mut ops, mut fallbacks, mut retries) = (0u64, 0u64, 0u64);
    let (mut opens, mut closes) = (0u64, 0u64);
    let mut degraded_us = 0.0f64;
    if let Some(report) = engine.fault_report() {
        for u in &report {
            ops += u.stats.ops;
            fallbacks += u.stats.fallbacks;
            retries += u.stats.retries;
            opens += u.breaker_opens;
            closes += u.breaker_closes;
            degraded_us += u.time_degraded.as_us();
        }
    }
    let fallback_pct = if ops == 0 {
        0.0
    } else {
        100.0 * fallbacks as f64 / ops as f64
    };

    let mut t = Table::new(&[
        "config",
        "fault_rate_bp",
        "committed",
        "aborted",
        "txn_throughput_per_s",
        "txn_p50_us",
        "txn_p99_us",
        "system_joules_per_txn",
        "scans",
        "scan_matches",
        "scan_p50_ms",
        "hw_fallback_pct",
        "hw_retries",
        "breaker_opens",
        "breaker_closes",
        "time_degraded_us",
    ]);
    t.row(vec![
        config_label.into(),
        rate_bp.unwrap_or(0).to_string(),
        r.oltp.committed.to_string(),
        r.oltp.aborted.to_string(),
        f(r.oltp.throughput_per_sec),
        f(r.oltp.latency.p50.as_us()),
        f(r.oltp.latency.p99.as_us()),
        f(r.oltp.joules_per_txn),
        r.scans.to_string(),
        r.scan_matches.to_string(),
        f(r.scan_latency.p50.as_ms()),
        f(fallback_pct),
        retries.to_string(),
        opens.to_string(),
        closes.to_string(),
        f(degraded_us),
    ]);
    // Attribution: how each transaction class split between hw-hit,
    // watchdog-retry, and sw-fallback at this fault rate — the brownout's
    // path mix, keyed by (config, rate).
    let mut headers = vec!["config", "fault_rate_bp"];
    headers.extend_from_slice(&ATTRIB_COLS);
    let mut at = Table::new(&headers);
    attrib_rows(
        &mut at,
        &[config_label.to_string(), rate_bp.unwrap_or(0).to_string()],
        engine.attribution().expect("enabled above"),
    );
    CellOut {
        tables: vec![("e14_brownout".into(), t), ("e14_attrib".into(), at)],
        values: vec![
            r.oltp.committed as f64,
            r.oltp.aborted as f64,
            r.scan_matches as f64,
            r.oltp.throughput_per_sec,
            r.oltp.joules_per_txn,
        ],
        notes: vec![],
    }
}

/// E14 — the brownout curve: per-unit hardware fault rate swept from 0 to
/// saturation on the hybrid (Figure 4) workload, plus the all-software
/// reference configuration the curve must degrade toward.
///
/// Every hardware unit arms the same per-family rate, so one knob moves
/// stall, transient-CRC, and uncorrectable-ECC pressure together. The
/// assembler enforces the sweep-wide oracle: the commit/abort stream and
/// scan selectivity are byte-identical in every cell — watchdog expiries,
/// retries, fallbacks, and breaker quarantine are pricing decisions, never
/// functional ones — and the brownout lands on the paper's headline metric:
/// joules/txn rises from the bionic operating point to (within tolerance
/// of) the software baseline as quarantine reroutes every op, while the
/// open-loop arrival stream keeps being served end to end.
fn e14(scale: Scale) -> Experiment {
    let rates_bp: &[u32] = match scale {
        Scale::Full => &[0, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000],
        Scale::Smoke => &[0, 500, 5_000, 10_000],
    };
    let mut cells: Vec<Cell> = rates_bp
        .iter()
        .map(|&bp| -> Cell { Cell::one(move || e14_cell(scale, "bionic", Some(bp))).cost(30) })
        .collect();
    // The floor of the curve: no accelerators anywhere, scans on the host.
    cells.push(Cell::one(move || e14_cell(scale, "software", None)).cost(30));
    Experiment {
        id: "e14",
        title: "### E14 — brownout: hardware fault rate vs hybrid throughput\n",
        cells,
        assemble: Box::new(|outs, dir| {
            for (name, table) in merge_tables(&outs) {
                table.save_and_print(dir, &name);
            }
            // Sweep-wide functional oracle: no lost or duplicated commits,
            // no lost or duplicated scan matches, at any fault rate — and
            // not on the software reference either.
            let first = &outs[0].values;
            for (i, o) in outs.iter().enumerate() {
                assert_eq!(
                    &o.values[..3],
                    &first[..3],
                    "cell {i}: commit/abort/scan outcomes diverged under faults"
                );
            }
            let healthy = outs.first().map(|o| (o.values[3], o.values[4]));
            let saturated = outs.get(outs.len() - 2).map(|o| (o.values[3], o.values[4]));
            let software = outs.last().map(|o| (o.values[3], o.values[4]));
            if let (Some(h), Some(s), Some(sw)) = (healthy, saturated, software) {
                // The brownout curve: the healthy bionic point holds the
                // paper's energy advantage over the software baseline, and
                // saturating the units surrenders it — joules/txn lands
                // within 10 % of the all-software floor (the residual gap
                // is HalfOpen recovery probes that occasionally win).
                assert!(
                    h.1 < sw.1,
                    "healthy bionic must hold an energy advantage to lose"
                );
                assert!(
                    s.1 > 2.0 * h.1 && (s.1 - sw.1).abs() <= 0.1 * sw.1,
                    "saturated joules/txn ({}) must brown out to the software \
                     baseline ({})",
                    s.1,
                    sw.1,
                );
                println!(
                    "claims: the fault sweep erodes the bionic energy advantage from \
                     {}x (healthy, {} J/txn vs software {} J/txn) to {}x at \
                     saturation ({} J/txn) — the engine keeps serving the arrival \
                     stream ({}/s vs software {}/s) with zero lost or duplicated \
                     commits while breaker quarantine reroutes every op to the \
                     software path\n",
                    f(sw.1 / h.1.max(1e-18)),
                    f(h.1),
                    f(sw.1),
                    f(sw.1 / s.1.max(1e-18)),
                    f(s.1),
                    f(h.0),
                    f(sw.0),
                );
            }
        }),
    }
}

// --------------------------------------------------------------- E15 ----

/// One E15 sweep point: the hybrid workload run twice on the same
/// configuration — once static, once with the adaptive placement
/// controller armed — reported side by side as one `e15_adaptive` row.
///
/// The cell itself enforces the controller's functional-identity
/// contract: placement only moves *pricing* between the hardware and
/// software paths, so commit/abort counts and scan selectivity must be
/// equal between the two arms at every point. The `values` carried to
/// the assembler are `[point, static_p99_us, adaptive_p99_us,
/// static_joules, adaptive_joules]` for the sweep-wide win-condition
/// asserts.
fn e15_cell(scale: Scale, sweep: &'static str, point: u64) -> CellOut {
    let (static_cfg, hybrid) = match sweep {
        // The E13 grid: analytics pressure against a healthy bionic engine.
        "pressure" => (
            EngineConfig::bionic(),
            HybridConfig {
                tatp: TatpConfig {
                    subscribers: scale.subscribers(),
                    ..Default::default()
                },
                txns: scale.pick(8_000, 600),
                inter_arrival: SimTime::from_us(2.0),
                scan_pressure: point as f64 / 100.0,
                scan_rows: scale.pick(1_000_000, 100_000) as usize,
                range_queries: true,
                software_scans: false,
                snapshot_window: None,
            },
        ),
        // The E14 grid: uniform per-unit fault rate at moderate pressure.
        "faults" => (
            EngineConfig::bionic().with_hw_faults(HwFaultConfig::uniform(point as u32)),
            HybridConfig {
                tatp: TatpConfig {
                    subscribers: scale.subscribers(),
                    ..Default::default()
                },
                txns: scale.pick(6_000, 600),
                inter_arrival: SimTime::from_us(2.0),
                scan_pressure: 0.3,
                scan_rows: scale.pick(500_000, 100_000) as usize,
                range_queries: true,
                software_scans: false,
                snapshot_window: None,
            },
        ),
        other => unreachable!("unknown e15 sweep {other}"),
    };
    let mut se = Engine::new(static_cfg.clone());
    let sr = run_hybrid(&mut se, &hybrid);
    let mut ae = Engine::new(static_cfg.with_placement(PlacementConfig::default()));
    let ar = run_hybrid(&mut ae, &hybrid);
    bionic_workloads::hybrid::check_conservation(&ae)
        .expect("no bandwidth created or lost across clients");

    // Functional identity: the controller reroutes pricing, never results.
    assert_eq!(
        (sr.oltp.committed, sr.oltp.aborted, sr.scan_matches),
        (ar.oltp.committed, ar.oltp.aborted, ar.scan_matches),
        "{sweep}@{point}: adaptive placement changed functional outcomes"
    );
    let p = ar.placement.expect("adaptive arm armed the controller");

    let (sp99, ap99) = (sr.oltp.latency.p99.as_us(), ar.oltp.latency.p99.as_us());
    let (sj, aj) = (sr.oltp.joules_per_txn, ar.oltp.joules_per_txn);
    let mut t = Table::new(&[
        "sweep",
        "point",
        "committed",
        "aborted",
        "static_p50_us",
        "adaptive_p50_us",
        "static_p99_us",
        "adaptive_p99_us",
        "p99_ratio_pct",
        "static_joules_per_txn",
        "adaptive_joules_per_txn",
        "joules_ratio_pct",
        "static_throughput_per_s",
        "adaptive_throughput_per_s",
        "shed_windows",
        "brownout_windows",
        "transitions",
    ]);
    t.row(vec![
        sweep.into(),
        point.to_string(),
        ar.oltp.committed.to_string(),
        ar.oltp.aborted.to_string(),
        f(sr.oltp.latency.p50.as_us()),
        f(ar.oltp.latency.p50.as_us()),
        f(sp99),
        f(ap99),
        f(100.0 * ap99 / sp99.max(1e-9)),
        f(sj),
        f(aj),
        f(100.0 * aj / sj.max(1e-18)),
        f(sr.oltp.throughput_per_sec),
        f(ar.oltp.throughput_per_sec),
        p.shed_windows.to_string(),
        p.brownout_windows.to_string(),
        p.transitions.to_string(),
    ]);
    CellOut {
        tables: vec![("e15_adaptive".into(), t)],
        values: vec![point as f64, sp99, ap99, sj, aj],
        notes: vec![],
    }
}

/// E15 — adaptive vs static placement across the E13 pressure sweep and
/// the E14 fault sweep.
///
/// Each cell runs its point twice (static reference, then the same
/// configuration with [`PlacementConfig::default`] armed) and the
/// assembler enforces the controller's win condition: adaptive p99 is
/// never worse than static at any swept point, strictly better in the
/// E13 high-pressure band and the E14 mid-band latency valley at full
/// scale, at equal-or-better joules/txn (within the documented ≤1 %
/// overlay-shed energy trade — shed overlay reads price through the
/// host buffer-pool path, which costs slightly more energy than a
/// quiet SG-DRAM access but stops OLTP queueing behind scan grants).
///
/// Strict-win asserts apply at [`Scale::Full`] only: at smoke scale the
/// controller's ~2-window trip latency covers ≈17 % of the 600-txn run,
/// so the pre-trip head dominates the p99 order statistic; at full
/// scale it is ≈1–2 % and the post-trip distribution shows through.
fn e15(scale: Scale) -> Experiment {
    let pressures: &[u64] = match scale {
        Scale::Full => &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        Scale::Smoke => &[0, 25, 50, 75, 100],
    };
    let rates_bp: &[u64] = match scale {
        Scale::Full => &[0, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000],
        Scale::Smoke => &[0, 500, 5_000, 10_000],
    };
    let pressure_cells = pressures.len();
    let mut cells: Vec<Cell> = pressures
        .iter()
        .map(|&pct| -> Cell { Cell::one(move || e15_cell(scale, "pressure", pct)).cost(100) })
        .collect();
    cells.extend(
        rates_bp
            .iter()
            .map(|&bp| -> Cell { Cell::one(move || e15_cell(scale, "faults", bp)).cost(60) }),
    );
    Experiment {
        id: "e15",
        title: "### E15 — adaptive vs static placement over the E13/E14 sweeps\n",
        cells,
        assemble: Box::new(move |outs, dir| {
            for (name, table) in merge_tables(&outs) {
                table.save_and_print(dir, &name);
            }
            let mut best_knee = (0.0f64, 0u64); // (p99 win ratio, point)
            let mut best_valley = (0.0f64, 0u64);
            for (i, o) in outs.iter().enumerate() {
                let is_pressure = i < pressure_cells;
                let point = o.values[0] as u64;
                let (sp99, ap99, sj, aj) = (o.values[1], o.values[2], o.values[3], o.values[4]);
                let arm = if is_pressure { "pressure" } else { "faults" };
                // No-worse everywhere: 1 % relative + 0.5 µs absolute slack
                // absorbs percentile quantization on untripped points.
                assert!(
                    ap99 <= sp99 * 1.01 + 0.5,
                    "{arm}@{point}: adaptive p99 {ap99} worse than static {sp99}"
                );
                // Equal-or-better energy within the overlay-shed trade
                // (measured ≤0.7 % at shed points, full scale).
                assert!(
                    aj <= sj * 1.01,
                    "{arm}@{point}: adaptive joules/txn {aj} exceeds static {sj} by >1%"
                );
                if scale == Scale::Full {
                    // Strict wins where the pathologies live: the E13
                    // high-pressure band and the E14 mid-band valley.
                    if is_pressure && point >= 80 {
                        assert!(
                            ap99 < sp99,
                            "pressure@{point}: expected strict p99 win ({ap99} vs {sp99})"
                        );
                    }
                    if !is_pressure && (250..=1_000).contains(&point) {
                        assert!(
                            ap99 < sp99,
                            "faults@{point}: expected strict p99 win ({ap99} vs {sp99})"
                        );
                    }
                }
                let win = sp99 / ap99.max(1e-9);
                if is_pressure && win > best_knee.0 {
                    best_knee = (win, point);
                }
                if !is_pressure && win > best_valley.0 {
                    best_valley = (win, point);
                }
            }
            println!(
                "claims: shedding OLTP probe/overlay pricing to the CPU while the \
                 scanner owns SG-DRAM cuts p99 up to {}x at {}% pressure, and \
                 pre-emptive probe brownout flattens the mid-band fault valley \
                 (best win {}x at {} bp) — with commit/abort/scan outcomes \
                 byte-identical to static placement at every point\n",
                f(best_knee.0),
                best_knee.1,
                f(best_valley.0),
                best_valley.1,
            );
        }),
    }
}

// --------------------------------------------------------------- E16 ----

/// The E16 grid: `(nodes, cross-partition bp, lossy interconnect)`.
/// Redundant combinations are omitted — with one node or a zero cross
/// fraction no message ever crosses the wire, so the network axis (and,
/// for one node, the cross axis) cannot change anything.
const E16_GRID: [(usize, u32, bool); 11] = [
    (1, 0, false),
    (2, 0, false),
    (4, 0, false),
    (2, 500, false),
    (2, 2_500, false),
    (4, 500, false),
    (4, 2_500, false),
    (2, 500, true),
    (2, 2_500, true),
    (4, 500, true),
    (4, 2_500, true),
];

/// One E16 cell: a TATP cluster run at one grid point. The cell enforces
/// the protocol's safety contract inline — the WAL-only atomicity oracle
/// must pass, and a fault-free interconnect must leave zero in-doubt
/// branches and zero recoveries — so a regression fails the figure run
/// itself, not just the test suite.
fn e16_cell(scale: Scale, nodes: usize, cross_bp: u32, lossy: bool) -> CellOut {
    use bionic_cluster::{Cluster, ClusterConfig, NetConfig};

    let net = if lossy {
        // Moderate but decidedly unhealthy: ~15% drops, dups, delays, and
        // occasional partition windows on every link.
        NetConfig::healthy(16).with_rates(1_500, 800, 1_000, 300)
    } else {
        NetConfig::healthy(16)
    };
    let mut cluster = Cluster::new(ClusterConfig::new(nodes, EngineConfig::bionic(), net));
    let mut wl = cluster.load_small(bionic_workloads::WorkloadKind::Tatp, cross_bp, 16);
    let txns = scale.pick(4_000, 400);
    let mut at = SimTime::ZERO;
    for _ in 0..txns {
        let txn = wl.next();
        cluster.execute(txn, at);
        at += SimTime::from_us(5.0);
    }
    cluster.end_of_run(at);
    cluster
        .verify_atomicity()
        .unwrap_or_else(|e| panic!("e16 nodes={nodes} cross={cross_bp} lossy={lossy}: {e}"));
    let r = cluster.report();
    if !lossy {
        assert_eq!(
            (r.in_doubt_resolved, r.recoveries),
            (0, 0),
            "healthy interconnect must leave no doubt (nodes={nodes} cross={cross_bp})"
        );
    }

    let committed = r.global_committed + r.single_committed;
    let jpt = r.joules / committed.max(1) as f64;
    let mut t = Table::new(&[
        "nodes",
        "cross_bp",
        "net",
        "txns",
        "committed",
        "global_committed",
        "global_aborted",
        "throughput_per_s",
        "commit_p50_us",
        "commit_p99_us",
        "joules_per_txn",
        "in_doubt_resolved",
        "in_doubt_max_us",
        "recoveries",
        "msgs_sent",
        "msgs_lost",
    ]);
    t.row(vec![
        nodes.to_string(),
        cross_bp.to_string(),
        (if lossy { "lossy" } else { "healthy" }).into(),
        txns.to_string(),
        committed.to_string(),
        r.global_committed.to_string(),
        r.global_aborted.to_string(),
        f(r.throughput_per_sec()),
        f(r.commit_p50.as_us()),
        f(r.commit_p99.as_us()),
        f(jpt),
        r.in_doubt_resolved.to_string(),
        f(r.in_doubt_max.as_us()),
        r.recoveries.to_string(),
        r.net.sent.to_string(),
        (r.net.dropped + r.net.partitioned).to_string(),
    ]);
    CellOut {
        tables: vec![("e16_cluster".into(), t)],
        values: vec![
            nodes as f64,
            cross_bp as f64,
            if lossy { 1.0 } else { 0.0 },
            r.commit_p50.as_us(),
            r.commit_p99.as_us(),
            r.in_doubt_max.as_us(),
            r.global_committed as f64,
        ],
        notes: vec![],
    }
}

/// E16 — the bionic cluster: commit latency, throughput, and energy
/// across node count × cross-partition fraction × interconnect health.
///
/// Answers the paper's scale-out question the only way a deterministic
/// simulator can: with a crash-safe presumed-abort 2PC whose cost —
/// two network round trips plus one durable decision flush per
/// cross-partition commit, and a bounded in-doubt-resolution tail under
/// faults — is measured, not asserted. Every cell runs the WAL-only
/// atomicity oracle before it reports a number.
fn e16(scale: Scale) -> Experiment {
    let cells: Vec<Cell> = E16_GRID
        .iter()
        .map(|&(nodes, cross_bp, lossy)| -> Cell {
            let cost = nodes as u64 * if lossy { 40 } else { 25 };
            Cell::one(move || e16_cell(scale, nodes, cross_bp, lossy)).cost(cost)
        })
        .collect();
    Experiment {
        id: "e16",
        title: "### E16 — cluster 2PC: nodes x cross-partition fraction x network faults\n",
        cells,
        assemble: Box::new(|outs, dir| {
            for (name, table) in merge_tables(&outs) {
                table.save_and_print(dir, &name);
            }
            // The cross-partition premium (the protocol's cost clean of
            // queueing: best healthy-net p50 across the grid) against the
            // in-doubt tail the lossy grid points pay.
            let mut healthy_p50 = f64::INFINITY;
            let mut lossy_tail_us = 0.0f64;
            let mut cross_commits = 0u64;
            for o in outs.iter() {
                let (cross_bp, lossy) = (o.values[1], o.values[2] > 0.5);
                if cross_bp > 0.0 && !lossy && o.values[3] > 0.0 {
                    healthy_p50 = healthy_p50.min(o.values[3]);
                }
                if lossy {
                    lossy_tail_us = lossy_tail_us.max(o.values[5]);
                }
                cross_commits += o.values[6] as u64;
            }
            println!(
                "claims: presumed-abort 2PC commits cross-partition work at ~{} us p50 \
                 on a healthy interconnect (two RTTs + one decision flush), degrades to \
                 a bounded in-doubt tail of {} ms under seeded drop/dup/delay/partition \
                 faults, and the WAL-only oracle verified all-or-nothing on every one of \
                 the {} cross-partition commits in the grid\n",
                f(healthy_p50),
                f(lossy_tail_us / 1_000.0),
                cross_commits,
            );
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_builds() {
        for id in ids() {
            assert!(build(id, Scale::Smoke, 1).is_some(), "{id} must build");
            assert!(build(id, Scale::Full, 1).is_some(), "{id} must build");
        }
        assert!(build("nope", Scale::Smoke, 1).is_none());
    }

    /// Sharding is intra-cell: it may split a cell into more work units,
    /// but the logical cell count every `assemble` step indexes into must
    /// not move with `--shards` (that is what keeps `outs[i]` stable and
    /// the CSVs byte-identical).
    #[test]
    fn shards_never_change_the_cell_count() {
        for id in ids() {
            let baseline = build(id, Scale::Smoke, 1).unwrap().cells.len();
            for shards in [2usize, 3, 8, 64] {
                let e = build(id, Scale::Smoke, shards).unwrap();
                assert_eq!(
                    e.cells.len(),
                    baseline,
                    "{id} cells moved at shards={shards}"
                );
            }
        }
    }

    #[test]
    fn registry_ids_are_unique_and_ordered_like_the_table() {
        let ids: Vec<&str> = ids().collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate id in REGISTRY");
        assert_eq!(ids.first(), Some(&"f1"));
        assert_eq!(ids.last(), Some(&"e16"), "new experiments append");
    }

    #[test]
    fn experiment_cell_counts_match_decomposition() {
        let counts: Vec<(&str, usize)> = ids()
            .map(|id| {
                let e = build(id, Scale::Smoke, 1).unwrap();
                (e.id, e.cells.len())
            })
            .collect();
        let expect = [
            ("f1", 1),
            ("f2", 1),
            ("f3", 4),
            ("e4", 10),
            ("e5", 7),
            ("e6", 1),
            ("e7", 1),
            ("e8", 15),
            ("e9", 7),
            ("e10", 1),
            ("e11", 1),
            ("e12", 9),
            ("e13", 5),
            ("e14", 5),
            ("e15", 9),
            ("e16", 11),
        ];
        for (got, want) in counts.iter().zip(&expect) {
            assert_eq!(got, want);
        }
        assert_eq!(counts.len(), expect.len());
    }
}
