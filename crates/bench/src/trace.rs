//! Traced figure runs: short TATP and TPC-C streams executed with the
//! telemetry recorder on, exported as Perfetto-loadable Chrome traces plus
//! windowed utilization and metrics CSVs.
//!
//! Cells follow the same determinism contract as the experiment harness
//! (no I/O inside a cell, per-cell seeds, assembly in fixed cell order), so
//! every artifact written by [`run_traced`] is byte-identical for any
//! `jobs` value — the root-level `trace_determinism` test enforces this.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_telemetry::validate_chrome_trace;
use bionic_workloads::{AnyWorkload, WorkloadKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Transactions per traced stream — long enough for every unit to light up,
/// short enough that tracing adds seconds, not minutes, to a figures run.
pub const TRACED_TXNS: u64 = 300;

/// Ring capacity for traced runs: comfortably above the span volume of
/// [`TRACED_TXNS`] transactions, so nothing is dropped.
const RING_CAPACITY: usize = 1 << 18;

/// Occupancy window width for the utilization report.
const UTIL_WINDOW_US: f64 = 50.0;

/// Everything one traced stream produces, as plain bytes (cells do no I/O).
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Which benchmark ran.
    pub kind: WorkloadKind,
    /// Chrome trace-event JSON, schema-validated.
    pub trace_json: String,
    /// Windowed busy/idle occupancy per track.
    pub utilization_csv: String,
    /// Flat counter/gauge snapshot.
    pub metrics_csv: String,
    /// Spans dropped at the ring boundary (should be zero).
    pub dropped: u64,
}

/// Run one traced stream of `kind` and export its artifacts. Pure —
/// everything is derived from the fixed seed and simulated time.
pub fn trace_cell(kind: WorkloadKind) -> TraceArtifacts {
    let mut engine = Engine::new(EngineConfig::bionic().with_agents(8));
    let mut workload = AnyWorkload::load_small(&mut engine, kind, 0xb10c + kind as u64);
    engine.enable_telemetry(RING_CAPACITY);

    let inter = SimTime::from_us(2.0);
    let mut at = SimTime::ZERO;
    for _ in 0..TRACED_TXNS {
        let (_, program) = workload.next_program();
        engine.submit(&program, at);
        at += inter;
    }
    engine.collect_metrics();

    let trace_json = engine.tel.export_chrome_trace();
    validate_chrome_trace(&trace_json)
        .unwrap_or_else(|e| panic!("{} trace failed schema validation: {e}", kind.label()));
    TraceArtifacts {
        kind,
        trace_json,
        utilization_csv: engine.tel.utilization_csv(SimTime::from_us(UTIL_WINDOW_US)),
        metrics_csv: engine.tel.metrics().to_csv(),
        dropped: engine.tel.dropped(),
    }
}

/// Run the traced TATP + TPC-C cells (in parallel when `jobs > 1`) and
/// write the artifacts under `dir`:
///
/// * `trace_<kind>.json` — Chrome trace-event JSON, one per benchmark;
/// * `utilization_<kind>.csv` — windowed occupancy for every track;
/// * `metrics_<kind>.csv` — flat counter/gauge snapshot.
///
/// Returns the written paths, in fixed order.
pub fn run_traced(dir: &Path, jobs: usize) -> io::Result<Vec<PathBuf>> {
    let kinds = [WorkloadKind::Tatp, WorkloadKind::Tpcc];
    let cells: Vec<TraceArtifacts> = if jobs > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = kinds
                .iter()
                .map(|&k| s.spawn(move || trace_cell(k)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trace cell panicked"))
                .collect()
        })
    } else {
        kinds.iter().map(|&k| trace_cell(k)).collect()
    };

    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for art in &cells {
        assert_eq!(art.dropped, 0, "{} trace dropped spans", art.kind.label());
        for (stem, body) in [
            (format!("trace_{}.json", art.kind.label()), &art.trace_json),
            (
                format!("utilization_{}.csv", art.kind.label()),
                &art.utilization_csv,
            ),
            (
                format!("metrics_{}.csv", art.kind.label()),
                &art.metrics_csv,
            ),
        ] {
            let path = dir.join(stem);
            fs::write(&path, body)?;
            written.push(path);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_tatp_covers_all_five_units_in_utilization() {
        let art = trace_cell(WorkloadKind::Tatp);
        assert_eq!(art.dropped, 0);
        for unit in bionic_telemetry::UNIT_NAMES {
            assert!(
                art.utilization_csv
                    .lines()
                    .any(|l| l.starts_with(&format!("fpga/{unit},"))),
                "utilization rows missing for {unit}"
            );
        }
        // The trace itself mentions every track name as thread metadata.
        for unit in bionic_telemetry::UNIT_NAMES {
            assert!(art.trace_json.contains(&format!("fpga/{unit}")));
        }
        assert!(art.trace_json.contains("core-0"));
        assert!(art.trace_json.contains("dispatch"));
    }

    #[test]
    fn trace_cell_is_deterministic() {
        let a = trace_cell(WorkloadKind::Tpcc);
        let b = trace_cell(WorkloadKind::Tpcc);
        assert_eq!(a.trace_json, b.trace_json);
        assert_eq!(a.utilization_csv, b.utilization_csv);
        assert_eq!(a.metrics_csv, b.metrics_csv);
    }
}
