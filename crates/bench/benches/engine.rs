//! Criterion benchmarks of the whole engine: wall-clock cost of simulating
//! one transaction end to end (how fast the *simulator itself* runs), for
//! software and bionic configurations and both workloads.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};
use bionic_workloads::tpcc::{self, TpccConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tatp(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_tatp_txn");
    for (name, cfg) in [
        ("software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        let wl = TatpConfig {
            subscribers: 10_000,
            ..Default::default()
        };
        let mut engine = Engine::new(cfg);
        let tables = tatp::load(&mut engine, &wl);
        let mut generator = TatpGenerator::new(wl, tables);
        let mut at = SimTime::ZERO;
        g.bench_function(name, |b| {
            b.iter(|| {
                let (_, prog) = generator.next();
                at += SimTime::from_us(1.0);
                black_box(engine.submit(&prog, at).is_committed())
            });
        });
    }
    g.finish();
}

fn bench_tpcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_tpcc_txn");
    g.sample_size(30);
    for (name, cfg) in [
        ("software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        let wl = TpccConfig {
            warehouses: 1,
            customers_per_district: 300,
            items: 10_000,
            initial_orders: 100,
            ..Default::default()
        };
        let mut engine = Engine::new(cfg);
        let (_, mut generator) = tpcc::load(&mut engine, &wl);
        let mut at = SimTime::ZERO;
        g.bench_function(name, |b| {
            b.iter(|| {
                let (_, prog) = generator.next();
                at += SimTime::from_us(4.0);
                black_box(engine.submit(&prog, at).is_committed())
            });
        });
    }
    g.finish();
}

/// `submit` vs `submit_batch`: the PALM-batched hot path at growing batch
/// sizes. Also asserts the point of the batching — the engine charges
/// strictly fewer index nodes per probe than per-op submission does on the
/// same clustered TATP read stream.
fn bench_batch_submit(c: &mut Criterion) {
    let make = || {
        let wl = TatpConfig {
            subscribers: 10_000,
            ..Default::default()
        };
        let mut engine = Engine::new(EngineConfig::software());
        let tables = tatp::load(&mut engine, &wl);
        let generator = TatpGenerator::new(wl, tables);
        (engine, generator)
    };

    let mut g = c.benchmark_group("engine_batch_submit");
    {
        let (mut engine, mut generator) = make();
        let mut at = SimTime::ZERO;
        g.bench_function("per_op_submit", |b| {
            b.iter(|| {
                let (_, prog) = generator.next();
                at += SimTime::from_us(1.0);
                black_box(engine.submit(&prog, at).is_committed())
            });
        });
    }
    for batch in [1usize, 8, 64, 256] {
        let (mut engine, mut generator) = make();
        let mut at = SimTime::ZERO;
        g.bench_with_input(
            BenchmarkId::new("submit_batch", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let programs: Vec<_> = (0..batch).map(|_| generator.next().1).collect();
                    let outcomes = engine.submit_batch(&programs, at, SimTime::from_us(1.0));
                    at += SimTime::from_us(1.0) * batch as u64;
                    black_box(outcomes.len())
                });
            },
        );
    }
    g.finish();

    // The amortization claim, checked on fresh engines over one identical
    // clustered read stream.
    let nodes_per_probe = |engine: &Engine| {
        engine.stats.probe_nodes_visited as f64 / engine.stats.probes.max(1) as f64
    };
    let (mut serial, mut gs) = make();
    let mut at = SimTime::ZERO;
    for _ in 0..512 {
        let (_, prog) = gs.next();
        serial.submit(&prog, at);
        at += SimTime::from_us(1.0);
    }
    let (mut batched, mut gb) = make();
    let mut at = SimTime::ZERO;
    for _ in 0..8 {
        let programs: Vec<_> = (0..64).map(|_| gb.next().1).collect();
        batched.submit_batch(&programs, at, SimTime::from_us(1.0));
        at += SimTime::from_us(1.0) * 64;
    }
    assert!(
        nodes_per_probe(&batched) < nodes_per_probe(&serial),
        "PALM batching must charge fewer nodes per probe: batched {:.2} vs serial {:.2}",
        nodes_per_probe(&batched),
        nodes_per_probe(&serial)
    );
}

criterion_group!(benches, bench_tatp, bench_tpcc, bench_batch_submit);
criterion_main!(benches);
