//! Criterion benchmarks of the whole engine: wall-clock cost of simulating
//! one transaction end to end (how fast the *simulator itself* runs), for
//! software and bionic configurations and both workloads.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};
use bionic_workloads::tpcc::{self, TpccConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_tatp(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_tatp_txn");
    for (name, cfg) in [
        ("software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        let wl = TatpConfig {
            subscribers: 10_000,
            ..Default::default()
        };
        let mut engine = Engine::new(cfg);
        let tables = tatp::load(&mut engine, &wl);
        let mut generator = TatpGenerator::new(wl, tables);
        let mut at = SimTime::ZERO;
        g.bench_function(name, |b| {
            b.iter(|| {
                let (_, prog) = generator.next();
                at += SimTime::from_us(1.0);
                black_box(engine.submit(&prog, at).is_committed())
            });
        });
    }
    g.finish();
}

fn bench_tpcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_tpcc_txn");
    g.sample_size(30);
    for (name, cfg) in [
        ("software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        let wl = TpccConfig {
            warehouses: 1,
            customers_per_district: 300,
            items: 10_000,
            initial_orders: 100,
            ..Default::default()
        };
        let mut engine = Engine::new(cfg);
        let (_, mut generator) = tpcc::load(&mut engine, &wl);
        let mut at = SimTime::ZERO;
        g.bench_function(name, |b| {
            b.iter(|| {
                let (_, prog) = generator.next();
                at += SimTime::from_us(4.0);
                black_box(engine.submit(&prog, at).is_committed())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tatp, bench_tpcc);
criterion_main!(benches);
