//! Criterion microbenchmarks of the WAL: record codec, append path, and a
//! full crash-recovery cycle.

use bionic_storage::bufferpool::BufferPool;
use bionic_storage::disk::DiskManager;
use bionic_storage::heap::HeapFile;
use bionic_storage::slotted::SlottedPage;
use bionic_wal::manager::LogManager;
use bionic_wal::record::{LogBody, LogRecord, NULL_LSN};
use bionic_wal::recovery::recover;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn update_body(n: usize) -> LogBody {
    LogBody::Update {
        table: 1,
        rid: 0xABCDEF,
        before: vec![1u8; n],
        after: vec![2u8; n],
    }
}

fn bench_encode_decode(c: &mut Criterion) {
    let rec = LogRecord {
        lsn: 0,
        txn: 42,
        prev_lsn: NULL_LSN,
        body: update_body(100),
    };
    c.bench_function("log_record_encode_100B", |b| {
        b.iter(|| black_box(rec.encode().len()));
    });
    let encoded = rec.encode();
    c.bench_function("log_record_decode_100B", |b| {
        b.iter(|| black_box(LogRecord::decode(&encoded, 0).unwrap().0.txn));
    });
}

fn bench_append(c: &mut Criterion) {
    c.bench_function("log_append_update_100B", |b| {
        let mut lm = LogManager::new();
        b.iter(|| black_box(lm.append(7, update_body(100)).0.lsn));
    });
}

fn bench_recovery(c: &mut Criterion) {
    // Build a log of 2000 committed inserts + 100 loser updates, then time
    // full analysis/redo/undo against an empty pool.
    let mut lm = LogManager::new();
    let mut pool = BufferPool::new(1024, DiskManager::new());
    let mut heap = HeapFile::new();
    for t in 1..=2000u64 {
        lm.append(t, LogBody::Begin);
        let (rid, _) = heap.insert(&mut pool, &[9u8; 80]).unwrap();
        let (rec, _) = lm.append(
            t,
            LogBody::Insert {
                table: 0,
                rid: rid.to_u64(),
                after: vec![9u8; 80],
            },
        );
        pool.with_page_mut(rid.page, |pg| SlottedPage::attach(pg).set_lsn(rec.lsn));
        lm.append(t, LogBody::Commit);
        lm.append(t, LogBody::End);
    }
    for t in 3000..3100u64 {
        lm.append(t, LogBody::Begin);
        let (rid, _) = heap.insert(&mut pool, &[8u8; 80]).unwrap();
        let (rec, _) = lm.append(
            t,
            LogBody::Insert {
                table: 0,
                rid: rid.to_u64(),
                after: vec![8u8; 80],
            },
        );
        pool.with_page_mut(rid.page, |pg| SlottedPage::attach(pg).set_lsn(rec.lsn));
    }
    lm.flush();
    let image = lm.crash_image();
    let disk = pool.crash();

    c.bench_function("recovery_2000_winners_100_losers", |b| {
        b.iter(|| {
            let mut lm = LogManager::from_image(image.clone());
            // Fresh pool over a snapshot of the crashed disk each iteration.
            let mut pool = BufferPool::new(1024, disk.clone());
            let outcome = recover(&mut lm, &mut pool);
            black_box(outcome.redone)
        });
    });

    // Same crashed state, but the last 4 KiB of the log image are torn off
    // mid-record: times the validating tail scan plus the now-larger undo
    // pass (commits whose records were torn become losers).
    let torn_image = {
        let mut img = image.clone();
        img.truncate(img.len().saturating_sub(4096));
        img
    };
    c.bench_function("recovery_torn_tail_4k", |b| {
        b.iter(|| {
            let mut lm = LogManager::from_image(torn_image.clone());
            let mut pool = BufferPool::new(1024, disk.clone());
            let outcome = recover(&mut lm, &mut pool);
            black_box((outcome.redone, outcome.torn_bytes_skipped))
        });
    });
}

criterion_group!(benches, bench_encode_decode, bench_append, bench_recovery);
criterion_main!(benches);
