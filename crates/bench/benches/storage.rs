//! Criterion microbenchmarks of the storage layer: slotted pages, buffer
//! pool, heap files.

use bionic_storage::bufferpool::BufferPool;
use bionic_storage::disk::DiskManager;
use bionic_storage::heap::HeapFile;
use bionic_storage::page::Page;
use bionic_storage::slotted::SlottedPage;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_slotted_insert(c: &mut Criterion) {
    c.bench_function("slotted_fill_page_100B", |b| {
        let rec = [7u8; 100];
        b.iter(|| {
            let mut page = Page::zeroed();
            let mut sp = SlottedPage::init(&mut page);
            let mut n = 0;
            while sp.insert(&rec).is_ok() {
                n += 1;
            }
            black_box(n)
        });
    });
}

fn bench_slotted_get(c: &mut Criterion) {
    let mut page = Page::zeroed();
    let mut sp = SlottedPage::init(&mut page);
    let rec = [7u8; 100];
    let mut slots = Vec::new();
    while let Ok(s) = sp.insert(&rec) {
        slots.push(s);
    }
    c.bench_function("slotted_get", |b| {
        let sp = SlottedPage::attach(&mut page);
        let mut i = 0;
        b.iter(|| {
            i = (i + 13) % slots.len();
            black_box(sp.get(slots[i]).unwrap().len())
        });
    });
}

fn bench_pool_hit(c: &mut Criterion) {
    let mut pool = BufferPool::new(256, DiskManager::new());
    let ids: Vec<_> = (0..128).map(|_| pool.allocate_page().0).collect();
    c.bench_function("bufferpool_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 17) % ids.len();
            let (byte, _) = pool.with_page(ids[i], |p| p.bytes()[0]);
            black_box(byte)
        });
    });
}

fn bench_pool_thrash(c: &mut Criterion) {
    c.bench_function("bufferpool_miss_evict", |b| {
        let mut pool = BufferPool::new(32, DiskManager::new());
        let ids: Vec<_> = (0..256).map(|_| pool.allocate_page().0).collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 37) % ids.len();
            let (_, access) = pool.with_page(ids[i], |p| p.bytes()[0]);
            black_box(access.hit)
        });
    });
}

fn bench_heap_insert_get(c: &mut Criterion) {
    c.bench_function("heap_insert_100B", |b| {
        let mut pool = BufferPool::new(4096, DiskManager::new());
        let mut heap = HeapFile::new();
        let rec = [5u8; 100];
        b.iter(|| black_box(heap.insert(&mut pool, &rec).unwrap().0));
    });

    let mut pool = BufferPool::new(4096, DiskManager::new());
    let mut heap = HeapFile::new();
    let rids: Vec<_> = (0..10_000)
        .map(|_| heap.insert(&mut pool, &[5u8; 100]).unwrap().0)
        .collect();
    c.bench_function("heap_get_100B", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 101) % rids.len();
            black_box(heap.get(&mut pool, rids[i]).0)
        });
    });
}

criterion_group!(
    benches,
    bench_slotted_insert,
    bench_slotted_get,
    bench_pool_hit,
    bench_pool_thrash,
    bench_heap_insert_get
);
criterion_main!(benches);
