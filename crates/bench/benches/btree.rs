//! Criterion microbenchmarks of the B+tree — real wall-clock performance of
//! the index implementation (the simulated-cost experiments live in the
//! `figures` binary).

use bionic_btree::{BTree, StrKey};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn build_int_tree(n: i64, order: usize) -> BTree<i64> {
    let mut t = BTree::with_order(order);
    for i in 0..n {
        // Multiplicative shuffle for a non-sequential insert order.
        let k = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) as i64;
        t.insert(k, i as u64);
    }
    t
}

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree_get");
    for &n in &[10_000i64, 100_000, 1_000_000] {
        let tree = build_int_tree(n, 256);
        let keys: Vec<i64> = (0..n)
            .step_by((n as usize / 1000).max(1))
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) as i64)
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let k = keys[i % keys.len()];
                i += 1;
                black_box(tree.get(&k).0)
            });
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("btree_insert_100k_shuffled", |b| {
        b.iter(|| black_box(build_int_tree(100_000, 256).len()));
    });
}

fn bench_bulk_load(c: &mut Criterion) {
    let pairs: Vec<(i64, u64)> = (0..100_000).map(|i| (i, i as u64)).collect();
    c.bench_function("btree_bulk_load_100k", |b| {
        b.iter(|| black_box(BTree::bulk_load(pairs.clone(), 256, 0.8).len()));
    });
}

fn bench_range(c: &mut Criterion) {
    let mut tree = BTree::with_order(256);
    for i in 0..1_000_000i64 {
        tree.insert(i, i as u64);
    }
    c.bench_function("btree_range_200", |b| {
        let mut lo = 0i64;
        b.iter(|| {
            lo = (lo + 997) % 999_000;
            let mut sum = 0u64;
            tree.range(&lo, &(lo + 200), |_, v| sum += v);
            black_box(sum)
        });
    });
}

fn bench_string_keys(c: &mut Criterion) {
    let mut tree: BTree<StrKey> = BTree::with_order(128);
    for i in 0..100_000 {
        tree.insert(StrKey::new(format!("subscriber-{i:012}").into_bytes()), i);
    }
    c.bench_function("btree_get_string_100k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            let k = StrKey::new(format!("subscriber-{i:012}").into_bytes());
            black_box(tree.get(&k).0)
        });
    });
}

criterion_group!(
    benches,
    bench_get,
    bench_insert,
    bench_bulk_load,
    bench_range,
    bench_string_keys
);
criterion_main!(benches);
