//! Criterion microbenchmarks of the overlay index, result cache, and the
//! concurrent queue.

use bionic_overlay::overlay::OverlayIndex;
use bionic_overlay::result_cache::ResultCache;
use bionic_queue::concurrent::ConcurrentQueue;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_overlay_reads(c: &mut Criterion) {
    let base: Vec<(i64, u64)> = (0..1_000_000).map(|i| (i, i as u64)).collect();
    let mut ov = OverlayIndex::new(base, usize::MAX);
    for i in 0..10_000i64 {
        ov.put(i * 7, 1, i as u64 + 1);
    }
    c.bench_function("overlay_get_latest_1M_base_10k_delta", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 6151) % 1_000_000;
            black_box(ov.get_latest(&k).0)
        });
    });
    c.bench_function("overlay_get_asof", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 6151) % 1_000_000;
            black_box(ov.get_asof(&k, 5_000).0)
        });
    });
}

fn bench_overlay_write_and_merge(c: &mut Criterion) {
    c.bench_function("overlay_put", |b| {
        let base: Vec<(i64, u64)> = (0..100_000).map(|i| (i, i as u64)).collect();
        let mut ov = OverlayIndex::new(base, usize::MAX);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            ov.put((v as i64 * 31) % 100_000, v, v);
            black_box(ov.delta_writes())
        });
    });
    c.bench_function("overlay_merge_100k_base_10k_delta", |b| {
        let base: Vec<(i64, u64)> = (0..100_000).map(|i| (i, i as u64)).collect();
        b.iter(|| {
            let mut ov = OverlayIndex::new(base.clone(), usize::MAX);
            for i in 0..10_000u64 {
                ov.put((i as i64 * 13) % 100_000, i, i + 1);
            }
            black_box(ov.merge(20_000).keys_merged)
        });
    });
}

fn bench_result_cache(c: &mut Criterion) {
    let mut cache = ResultCache::new(1 << 20);
    for i in 0..1000u64 {
        cache.put(i, vec![0u8; 256], &[(i % 8) as u32]);
    }
    c.bench_function("result_cache_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1000;
            black_box(cache.get(i).map(<[u8]>::len))
        });
    });
}

fn bench_concurrent_queue(c: &mut Criterion) {
    let q: ConcurrentQueue<u64> = ConcurrentQueue::new();
    c.bench_function("concurrent_queue_enq_deq", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.enqueue(i);
            black_box(q.dequeue())
        });
    });
}

criterion_group!(
    benches,
    bench_overlay_reads,
    bench_overlay_write_and_merge,
    bench_result_cache,
    bench_concurrent_queue
);
criterion_main!(benches);
