//! The headline throughput benchmark: simulator events per second on the
//! E8 hot loop (pooled TATP batches through `run_batched_pooled`), for the
//! software and bionic configurations plus the hybrid E13 loop.
//!
//! Criterion reports wall-clock per 1 000-transaction chunk, and the
//! bench also prints explicit `headline_events_per_second,<config>,<n>`
//! lines from a longer manual timing so CI's perf job can parse and gate
//! the headline without scraping criterion output (see
//! `.github/workflows/ci.yml`).
//!
//! Before measuring, the bench asserts the allocation budget that makes
//! the headline stable: the steady-state loop must not allocate per event.
//! Concretely, whole-loop churn (counted by a wrapping global allocator)
//! must stay under one allocation per *transaction* — each transaction is
//! many simulator events, so per-event amortized allocations are zero.
//! The residual fraction is the abort path (~3 % of TATP transactions
//! replay WAL undo records into freshly decoded values), which is not
//! steady-state work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new) }
    }
}

#[global_allocator]
static A: Counting = Counting;

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Transactions per measured chunk; criterion's throughput axis, so the
/// report reads directly in elements (transactions) per second.
const CHUNK: u64 = 1_000;
/// TATP batch size used by E8 itself.
const BATCH: usize = 32;
/// Steady-state allocation budget, in allocations per transaction. The
/// commit path is zero-alloc; the budget leaves room only for the ~3 %
/// abort path and incidental map growth.
const ALLOC_BUDGET_PER_TXN: f64 = 1.0;

fn rig(cfg: EngineConfig) -> (Engine, TatpGenerator) {
    let wl = TatpConfig {
        subscribers: 10_000,
        ..Default::default()
    };
    let mut engine = Engine::new(cfg);
    let tables = tatp::load(&mut engine, &wl);
    let generator = TatpGenerator::new(wl, tables);
    (engine, generator)
}

/// Assert the zero-alloc-per-event budget on a warmed loop, outside any
/// criterion measurement so the counter sees only simulator work. With
/// `attrib` the engine also records per-class critical-path attribution
/// at every commit — the budget must hold there too, since E13/E14 run
/// with it on: histogram recording is plain array arithmetic and the
/// class table only allocates on first sighting (absorbed by warmup).
fn assert_alloc_budget(name: &str, cfg: EngineConfig, attrib: bool) {
    let (mut engine, mut generator) = rig(cfg);
    if attrib {
        engine.enable_attribution();
    }
    // Warmup grows the skeleton pools, scratch arenas, and page maps.
    bionic_workloads::run_batched_pooled(
        &mut engine,
        4_000,
        SimTime::from_ns(100.0),
        BATCH,
        &mut generator,
    );
    let n = 20_000u64;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let rep = bionic_workloads::run_batched_pooled(
        &mut engine,
        n,
        SimTime::from_ns(100.0),
        BATCH,
        &mut generator,
    );
    let per_txn = (ALLOCS.load(Ordering::Relaxed) - a0) as f64 / n as f64;
    assert!(rep.committed > 0, "{name}: loop committed nothing");
    assert!(
        per_txn < ALLOC_BUDGET_PER_TXN,
        "{name}: steady-state loop allocates {per_txn:.2}/txn (budget {ALLOC_BUDGET_PER_TXN})"
    );
}

fn bench_events_per_second(c: &mut Criterion) {
    for (name, cfg, attrib) in [
        ("software", EngineConfig::software(), false),
        ("bionic", EngineConfig::bionic(), false),
        ("bionic+attrib", EngineConfig::bionic(), true),
    ] {
        assert_alloc_budget(name, cfg, attrib);
    }

    let mut g = c.benchmark_group("sim_events_per_second");
    for (name, cfg) in [
        ("software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        let (mut engine, mut generator) = rig(cfg);
        // Warm the pools so the measured loop is pure steady state.
        bionic_workloads::run_batched_pooled(
            &mut engine,
            4_000,
            SimTime::from_ns(100.0),
            BATCH,
            &mut generator,
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let rep = bionic_workloads::run_batched_pooled(
                    &mut engine,
                    CHUNK,
                    SimTime::from_ns(100.0),
                    BATCH,
                    &mut generator,
                );
                black_box(rep.committed)
            });
        });
    }
    g.finish();

    // The CI-parsed headline: a single longer timed run per config.
    for (name, cfg) in [
        ("software", EngineConfig::software()),
        ("bionic", EngineConfig::bionic()),
    ] {
        let (mut engine, mut generator) = rig(cfg);
        bionic_workloads::run_batched_pooled(
            &mut engine,
            4_000,
            SimTime::from_ns(100.0),
            BATCH,
            &mut generator,
        );
        let n = 40_000u64;
        let t0 = std::time::Instant::now();
        let rep = bionic_workloads::run_batched_pooled(
            &mut engine,
            n,
            SimTime::from_ns(100.0),
            BATCH,
            &mut generator,
        );
        let per_sec = n as f64 / t0.elapsed().as_secs_f64();
        assert!(rep.committed > 0);
        println!("headline_events_per_second,{name},{per_sec:.0}");
    }
}

/// The E13 side of the headline: one hybrid OLTP + scan-pressure chunk.
fn bench_hybrid_chunk(c: &mut Criterion) {
    use bionic_workloads::hybrid::{run_hybrid, HybridConfig};
    let mut g = c.benchmark_group("sim_hybrid_chunk");
    g.sample_size(20);
    g.bench_function("bionic", |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::bionic());
            let cfg = HybridConfig {
                tatp: TatpConfig {
                    subscribers: 10_000,
                    ..Default::default()
                },
                txns: CHUNK,
                inter_arrival: SimTime::from_us(2.0),
                scan_pressure: 0.5,
                scan_rows: 100_000,
                range_queries: true,
                software_scans: false,
                snapshot_window: None,
            };
            black_box(run_hybrid(&mut engine, &cfg).scans)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_events_per_second, bench_hybrid_chunk);
criterion_main!(benches);
