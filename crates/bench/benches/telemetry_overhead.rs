//! Does a *disabled* telemetry recorder cost anything on the submit path?
//!
//! The design budget (DESIGN.md, "Telemetry") is one `bool` check and zero
//! allocation per instrumentation point when tracing is off, so
//! `disabled` must sit within noise of pre-telemetry baselines, and well
//! under `enabled`. The benchmark also pins the functional contract:
//! identical commit decisions with the recorder on, off, or enabled.

use bionic_core::config::EngineConfig;
use bionic_core::engine::Engine;
use bionic_sim::time::SimTime;
use bionic_workloads::tatp::{self, TatpConfig, TatpGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn engine_and_generator() -> (Engine, TatpGenerator) {
    let wl = TatpConfig {
        subscribers: 10_000,
        ..Default::default()
    };
    let mut engine = Engine::new(EngineConfig::bionic());
    let tables = tatp::load(&mut engine, &wl);
    let generator = TatpGenerator::new(wl, tables);
    (engine, generator)
}

fn bench_overhead(c: &mut Criterion) {
    // Functional guard first: tracing must not change a single outcome.
    {
        let run = |trace: bool| {
            let (mut e, mut g) = engine_and_generator();
            if trace {
                e.enable_telemetry(1 << 16);
            }
            let mut at = SimTime::ZERO;
            (0..500)
                .map(|_| {
                    let (_, prog) = g.next();
                    at += SimTime::from_us(1.0);
                    e.submit(&prog, at).is_committed()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(false), run(true), "tracing changed an outcome");
    }

    let mut group = c.benchmark_group("telemetry_overhead");
    for (name, trace) in [("disabled", false), ("enabled", true)] {
        let (mut engine, mut generator) = engine_and_generator();
        if trace {
            // Large ring: measure recording cost, not wrap-around churn.
            engine.enable_telemetry(1 << 20);
        }
        let mut at = SimTime::ZERO;
        group.bench_function(name, |b| {
            b.iter(|| {
                let (_, prog) = generator.next();
                at += SimTime::from_us(1.0);
                black_box(engine.submit(&prog, at).is_committed())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
