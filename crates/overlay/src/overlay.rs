//! The FPGA-side database overlay (§5.6).
//!
//! "Rather than a buffer pool, the bionic system would employ two data
//! pools. … the FPGA side maintains an in-memory overlay of the database.
//! The overlay serves to cache reads and to buffer writes until they can be
//! bulk-merged back to the on-disk data (replacing the buffer pool), and
//! will also patch updates into historical data requested by queries; SAP
//! HANA is an excellent example of this approach. Recognizing that OLTP
//! workloads are heavy index-users, the overlay will consist entirely of
//! various indexes that can be probed by the hardware engine. If disk access
//! is needed, the hardware operation aborts so that software can trigger a
//! data fetch and then retry."
//!
//! Concretely: a **main** B+tree holding the state as of the last merge
//! (version `merged_version`), and a **delta** B+tree mapping keys to
//! version chains of later writes (including tombstones). Reads consult
//! delta then main; versioned reads patch history; `merge` folds the delta
//! back into main in bulk. A memory budget determines which main keys are
//! FPGA-resident — probes of non-resident keys miss, modeling the
//! abort-to-software path.

use bionic_btree::key::TreeKey;
use bionic_btree::tree::{BTree, Footprint};
use std::cell::Cell;
use std::hash::{Hash, Hasher};

/// Cache-invalid sentinel for the byte memos ([`BTree::version`] counts up
/// from zero, so `u64::MAX` can never match a live version).
const STALE: u64 = u64::MAX;

/// A versioned write: `None` is a delete tombstone.
type Versioned = (u64, Option<u64>);

/// Footprint of one overlay read.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlayFootprint {
    /// Probe of the delta index.
    pub delta: Footprint,
    /// Probe of the main index (skipped when delta answered).
    pub main: Option<Footprint>,
    /// Did the delta answer the read?
    pub hit_delta: bool,
}

impl OverlayFootprint {
    /// Total nodes visited across both probes.
    pub fn nodes_visited(&self) -> u32 {
        self.delta.nodes_visited() + self.main.map_or(0, |f| f.nodes_visited())
    }
}

/// Report from a bulk merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeReport {
    /// Distinct keys folded into main.
    pub keys_merged: u64,
    /// Of those, keys removed by tombstones.
    pub keys_deleted: u64,
    /// Version entries that stayed in the delta (newer than the merge).
    pub entries_retained: u64,
    /// Main index size after the merge.
    pub main_len: usize,
    /// Approximate bytes written back to disk (the bulk-merge I/O).
    pub bytes_written: u64,
}

/// The overlay index: versioned delta over a bulk-loaded main.
///
/// ```
/// use bionic_overlay::OverlayIndex;
///
/// let mut overlay = OverlayIndex::new(vec![(1i64, 10), (2, 20)], usize::MAX);
/// overlay.put(1, 99, /*version*/ 5);
/// assert_eq!(overlay.get_latest(&1).0, Some(99));
/// assert_eq!(overlay.get_asof(&1, 4).0, Some(10)); // history patched
/// overlay.merge(5);
/// assert_eq!(overlay.get_latest(&1).0, Some(99));
/// assert_eq!(overlay.delta_len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct OverlayIndex<K: TreeKey> {
    main: BTree<K>,
    delta: BTree<K>,
    chains: Vec<Vec<Versioned>>,
    /// Total entries across all `chains` — kept exact so `delta_bytes`
    /// never has to walk the chain table.
    chain_entries: usize,
    /// `(tree version, bytes)` memo for `main.approx_bytes()`; the version
    /// sentinel `u64::MAX` marks the cache invalid (trees start at 0 and
    /// only count up). Refreshed lazily — `probe_would_miss` runs on every
    /// hardware probe and must not walk the index each time.
    main_bytes_cache: Cell<(u64, usize)>,
    /// Same memo for `delta.approx_bytes()`.
    delta_bytes_cache: Cell<(u64, usize)>,
    merged_version: u64,
    memory_budget: usize,
    delta_writes: u64,
}

fn residency_hash<K: Hash>(k: &K) -> u64 {
    // FxHash-style multiply-xor — only used to spread residency decisions.
    struct FxLite(u64);
    impl Hasher for FxLite {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001B3);
            }
        }
    }
    let mut h = FxLite(0xCBF29CE484222325);
    k.hash(&mut h);
    h.finish()
}

impl<K: TreeKey + Hash> OverlayIndex<K> {
    /// Build an overlay over sorted `(key, value)` base data, with a given
    /// FPGA memory budget in bytes.
    pub fn new(base: Vec<(K, u64)>, memory_budget: usize) -> Self {
        OverlayIndex {
            main: BTree::bulk_load(base, 256, 0.8),
            delta: BTree::new(),
            chains: Vec::new(),
            chain_entries: 0,
            main_bytes_cache: Cell::new((STALE, 0)),
            delta_bytes_cache: Cell::new((STALE, 0)),
            merged_version: 0,
            memory_budget,
            delta_writes: 0,
        }
    }

    /// State version captured by main (the last merge's high-water mark).
    pub fn merged_version(&self) -> u64 {
        self.merged_version
    }

    /// Entries in the main index.
    pub fn main_len(&self) -> usize {
        self.main.len()
    }

    /// Distinct keys with pending delta entries.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Writes buffered since the last merge.
    pub fn delta_writes(&self) -> u64 {
        self.delta_writes
    }

    /// Approximate bytes of the main index (memoized per tree version).
    pub fn main_bytes(&self) -> usize {
        let v = self.main.version();
        let (cached_v, cached) = self.main_bytes_cache.get();
        if cached_v == v {
            return cached;
        }
        let b = self.main.approx_bytes();
        self.main_bytes_cache.set((v, b));
        b
    }

    /// Approximate bytes of the delta (index + chains).
    pub fn delta_bytes(&self) -> usize {
        let v = self.delta.version();
        let (cached_v, cached) = self.delta_bytes_cache.get();
        let tree = if cached_v == v {
            cached
        } else {
            let b = self.delta.approx_bytes();
            self.delta_bytes_cache.set((v, b));
            b
        };
        tree + self.chain_entries * 16
    }

    /// Fraction of main keys resident in FPGA memory under the budget.
    pub fn resident_fraction(&self) -> f64 {
        let total = self.main_bytes() + self.delta_bytes();
        if total == 0 {
            1.0
        } else {
            (self.memory_budget as f64 / total as f64).min(1.0)
        }
    }

    /// Would a hardware probe of `k` miss FPGA memory? Deterministic per
    /// key: the delta is always resident (it's the write buffer), main keys
    /// are resident with probability equal to the resident fraction.
    pub fn probe_would_miss(&self, k: &K) -> bool {
        let f = self.resident_fraction();
        if f >= 1.0 {
            return false;
        }
        (residency_hash(k) as f64 / u64::MAX as f64) >= f
    }

    /// Buffer a versioned write. `version` must be ≥ any previous version
    /// for the same key and > `merged_version`.
    pub fn put(&mut self, k: K, v: u64, version: u64) -> Footprint {
        self.upsert(k, version, Some(v))
    }

    /// Buffer a versioned delete (tombstone).
    pub fn delete(&mut self, k: K, version: u64) -> Footprint {
        self.upsert(k, version, None)
    }

    fn upsert(&mut self, k: K, version: u64, value: Option<u64>) -> Footprint {
        assert!(
            version > self.merged_version,
            "write version {version} not newer than merged {}",
            self.merged_version
        );
        self.delta_writes += 1;
        self.chain_entries += 1;
        let (existing, mut fp) = self.delta.get(&k);
        match existing {
            Some(chain_idx) => {
                let chain = &mut self.chains[chain_idx as usize];
                debug_assert!(chain.last().is_none_or(|&(v0, _)| v0 <= version));
                chain.push((version, value));
                fp
            }
            None => {
                let idx = self.chains.len() as u64;
                self.chains.push(vec![(version, value)]);
                let (_, ins_fp) = self.delta.insert(k, idx);
                fp.merge_from(ins_fp);
                fp
            }
        }
    }

    /// Read the newest visible value.
    pub fn get_latest(&self, k: &K) -> (Option<u64>, OverlayFootprint) {
        let mut fp = OverlayFootprint::default();
        let (chain, dfp) = self.delta.get(k);
        fp.delta = dfp;
        if let Some(idx) = chain {
            let chain = &self.chains[idx as usize];
            if let Some(&(_, value)) = chain.last() {
                fp.hit_delta = true;
                return (value, fp);
            }
        }
        let (v, mfp) = self.main.get(k);
        fp.main = Some(mfp);
        (v, fp)
    }

    /// Read the value visible at `version` — the historical-query patching
    /// path. History older than the last merge has been folded into main,
    /// so `version < merged_version` answers as of the merge (documented
    /// HANA-style bound).
    pub fn get_asof(&self, k: &K, version: u64) -> (Option<u64>, OverlayFootprint) {
        let mut fp = OverlayFootprint::default();
        let (chain, dfp) = self.delta.get(k);
        fp.delta = dfp;
        if let Some(idx) = chain {
            let chain = &self.chains[idx as usize];
            // Newest entry with version <= asked-for version.
            if let Some(&(_, value)) = chain.iter().rev().find(|&&(v, _)| v <= version) {
                fp.hit_delta = true;
                return (value, fp);
            }
        }
        let (v, mfp) = self.main.get(k);
        fp.main = Some(mfp);
        (v, fp)
    }

    /// Ordered scan of `lo..hi` as visible at `version`, patching delta
    /// entries into the main data — the query-side read path of §5.6.
    pub fn range_asof(&self, lo: &K, hi: &K, version: u64, mut visit: impl FnMut(&K, u64)) {
        // Collect both sides (ranges are short in OLTP usage).
        let mut main_rows: Vec<(K, u64)> = Vec::new();
        self.main
            .range(lo, hi, |k, v| main_rows.push((k.clone(), v)));
        let mut patches: Vec<(K, Option<u64>)> = Vec::new();
        self.delta.range(lo, hi, |k, idx| {
            let chain = &self.chains[idx as usize];
            if let Some(&(_, value)) = chain.iter().rev().find(|&&(v, _)| v <= version) {
                patches.push((k.clone(), value));
            }
        });
        // Merge-join the two sorted streams; delta wins on key collisions.
        let mut mi = 0;
        let mut pi = 0;
        while mi < main_rows.len() || pi < patches.len() {
            let take_patch = match (main_rows.get(mi), patches.get(pi)) {
                (Some((mk, _)), Some((pk, _))) => pk <= mk,
                (None, Some(_)) => true,
                _ => false,
            };
            if take_patch {
                let (pk, pv) = &patches[pi];
                if mi < main_rows.len() && &main_rows[mi].0 == pk {
                    mi += 1; // shadowed base row
                }
                if let Some(v) = pv {
                    visit(pk, *v);
                }
                pi += 1;
            } else {
                let (mk, mv) = &main_rows[mi];
                visit(mk, *mv);
                mi += 1;
            }
        }
    }

    /// Fold all delta entries with version ≤ `up_to` into main, rebuilding
    /// it in bulk. Entries newer than `up_to` remain buffered.
    pub fn merge(&mut self, up_to: u64) -> MergeReport {
        assert!(up_to >= self.merged_version);
        // Resolve each delta key to its value at `up_to`, keep the rest.
        let mut resolved: Vec<(K, Option<u64>)> = Vec::new();
        let mut retained: Vec<(K, Vec<Versioned>)> = Vec::new();
        let mut entries_retained = 0u64;
        let chains = std::mem::take(&mut self.chains);
        let delta = std::mem::replace(&mut self.delta, BTree::new());
        delta.scan_all(|k, idx| {
            let chain = &chains[idx as usize];
            let (merged, rest): (Vec<Versioned>, Vec<Versioned>) =
                chain.iter().partition(|&&(v, _)| v <= up_to);
            if let Some(&(_, value)) = merged.last() {
                resolved.push((k.clone(), value));
            }
            if !rest.is_empty() {
                entries_retained += rest.len() as u64;
                retained.push((k.clone(), rest));
            }
        });

        // Merge-join main with resolved writes into a new sorted base.
        let mut base: Vec<(K, u64)> = Vec::with_capacity(self.main.len() + resolved.len());
        let mut deleted = 0u64;
        let mut di = 0;
        self.main.scan_all(|k, v| {
            while di < resolved.len() && resolved[di].0 < *k {
                if let Some(nv) = resolved[di].1 {
                    base.push((resolved[di].0.clone(), nv));
                }
                di += 1;
            }
            if di < resolved.len() && &resolved[di].0 == k {
                match resolved[di].1 {
                    Some(nv) => base.push((k.clone(), nv)),
                    None => deleted += 1,
                }
                di += 1;
            } else {
                base.push((k.clone(), v));
            }
        });
        while di < resolved.len() {
            if let Some(nv) = resolved[di].1 {
                base.push((resolved[di].0.clone(), nv));
            }
            di += 1;
        }

        let keys_merged = resolved.len() as u64;
        let bytes_written: u64 = base.iter().map(|(k, _)| k.encoded_len() as u64 + 8).sum();
        self.main = BTree::bulk_load(base, 256, 0.8);
        for (k, chain) in retained {
            let idx = self.chains.len() as u64;
            self.chains.push(chain);
            self.delta.insert(k, idx);
        }
        // Both trees were replaced above, so their version counters
        // restarted — the memos must not survive into the new epoch.
        self.main_bytes_cache.set((STALE, 0));
        self.delta_bytes_cache.set((STALE, 0));
        self.chain_entries = entries_retained as usize;
        self.merged_version = up_to;
        MergeReport {
            keys_merged,
            keys_deleted: deleted,
            entries_retained,
            main_len: self.main.len(),
            bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: i64) -> Vec<(i64, u64)> {
        (0..n).map(|i| (i, (i * 10) as u64)).collect()
    }

    #[test]
    fn reads_fall_through_to_main() {
        let ov = OverlayIndex::new(base(100), usize::MAX);
        let (v, fp) = ov.get_latest(&7);
        assert_eq!(v, Some(70));
        assert!(!fp.hit_delta);
        assert!(fp.main.is_some());
        assert!(fp.nodes_visited() >= 2, "delta + main probes");
    }

    #[test]
    fn writes_shadow_main_until_merged() {
        let mut ov = OverlayIndex::new(base(100), usize::MAX);
        ov.put(7, 777, 1);
        let (v, fp) = ov.get_latest(&7);
        assert_eq!(v, Some(777));
        assert!(fp.hit_delta);
        assert!(fp.main.is_none(), "delta answered; main not probed");
        // Unwritten keys unaffected.
        assert_eq!(ov.get_latest(&8).0, Some(80));
    }

    #[test]
    fn tombstones_hide_base_rows() {
        let mut ov = OverlayIndex::new(base(100), usize::MAX);
        ov.delete(7, 1);
        assert_eq!(ov.get_latest(&7).0, None);
        assert_eq!(ov.get_asof(&7, 0).0, Some(70), "history still visible");
    }

    #[test]
    fn asof_reads_patch_history() {
        let mut ov = OverlayIndex::new(base(10), usize::MAX);
        ov.put(3, 100, 5);
        ov.put(3, 200, 8);
        ov.delete(3, 12);
        assert_eq!(ov.get_asof(&3, 4).0, Some(30), "before first write");
        assert_eq!(ov.get_asof(&3, 5).0, Some(100));
        assert_eq!(ov.get_asof(&3, 9).0, Some(200));
        assert_eq!(ov.get_asof(&3, 12).0, None);
        assert_eq!(ov.get_latest(&3).0, None);
    }

    #[test]
    fn range_asof_merges_and_patches() {
        let mut ov = OverlayIndex::new(base(10), usize::MAX);
        ov.put(3, 333, 5); // update
        ov.delete(4, 5); // delete
        ov.put(100, 1000, 5); // insert beyond base range? use in-range key
        ov.put(5, 555, 9); // later than asof: must NOT appear at v=5

        let mut rows = Vec::new();
        ov.range_asof(&2, &7, 5, |k, v| rows.push((*k, v)));
        assert_eq!(rows, vec![(2, 20), (3, 333), (5, 50), (6, 60)]);

        let mut latest = Vec::new();
        ov.range_asof(&2, &7, u64::MAX, |k, v| latest.push((*k, v)));
        assert_eq!(latest, vec![(2, 20), (3, 333), (5, 555), (6, 60)]);
    }

    #[test]
    fn range_asof_includes_fresh_inserts() {
        let mut ov = OverlayIndex::new(vec![(0i64, 0), (10, 100)], usize::MAX);
        ov.put(5, 55, 1);
        let mut rows = Vec::new();
        ov.range_asof(&0, &20, 1, |k, v| rows.push((*k, v)));
        assert_eq!(rows, vec![(0, 0), (5, 55), (10, 100)]);
    }

    #[test]
    fn merge_folds_delta_into_main() {
        let mut ov = OverlayIndex::new(base(100), usize::MAX);
        ov.put(7, 777, 1);
        ov.delete(8, 2);
        ov.put(200, 2000, 3); // new key
        ov.put(9, 999, 10); // newer than merge point: retained
        let report = ov.merge(5);
        assert_eq!(report.keys_merged, 3);
        assert_eq!(report.keys_deleted, 1);
        assert_eq!(report.entries_retained, 1);
        assert_eq!(report.main_len, 100 + 1 - 1);
        assert!(report.bytes_written > 0);
        assert_eq!(ov.merged_version(), 5);
        // Post-merge reads come from main.
        let (v, fp) = ov.get_latest(&7);
        assert_eq!(v, Some(777));
        assert!(!fp.hit_delta);
        assert_eq!(ov.get_latest(&8).0, None);
        assert_eq!(ov.get_latest(&200).0, Some(2000));
        // The retained write still shadows.
        assert_eq!(ov.get_latest(&9).0, Some(999));
        assert_eq!(ov.delta_len(), 1);
    }

    #[test]
    fn repeated_merge_converges_to_empty_delta() {
        let mut ov = OverlayIndex::new(base(50), usize::MAX);
        for round in 1..=5u64 {
            for i in 0..50 {
                ov.put(i, round * 1000 + i as u64, round);
            }
            let r = ov.merge(round);
            assert_eq!(r.entries_retained, 0);
            assert_eq!(ov.delta_len(), 0);
        }
        assert_eq!(ov.get_latest(&10).0, Some(5010));
    }

    #[test]
    #[should_panic(expected = "not newer than merged")]
    fn stale_writes_rejected_after_merge() {
        let mut ov = OverlayIndex::new(base(10), usize::MAX);
        ov.put(1, 11, 5);
        ov.merge(5);
        ov.put(2, 22, 5);
    }

    #[test]
    fn residency_follows_memory_budget() {
        let full = OverlayIndex::new(base(10_000), usize::MAX);
        assert_eq!(full.resident_fraction(), 1.0);
        assert!(!full.probe_would_miss(&42));

        let half_budget = full.main_bytes() / 2;
        let tight = OverlayIndex::new(base(10_000), half_budget);
        let f = tight.resident_fraction();
        assert!(f < 0.6 && f > 0.4, "f={f}");
        let misses = (0..10_000i64).filter(|k| tight.probe_would_miss(k)).count();
        let miss_frac = misses as f64 / 10_000.0;
        assert!(
            (miss_frac - (1.0 - f)).abs() < 0.05,
            "miss_frac={miss_frac} expected~{}",
            1.0 - f
        );
        // Deterministic per key.
        assert_eq!(tight.probe_would_miss(&42), tight.probe_would_miss(&42));
    }

    #[test]
    fn delta_growth_is_observable_for_merge_policy() {
        let mut ov = OverlayIndex::new(base(100), usize::MAX);
        let before = ov.delta_bytes();
        for i in 0..100 {
            ov.put(i, i as u64, 1 + i as u64);
        }
        assert!(ov.delta_bytes() > before);
        assert_eq!(ov.delta_writes(), 100);
    }
}
